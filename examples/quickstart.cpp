/**
 * @file
 * Quickstart: assemble a tiny program, set a DISE watchpoint on one of
 * its variables, run under the cycle-level simulator, and print every
 * user-visible watchpoint event plus the measured overhead.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "debug/debugger.hh"

using namespace dise;

int
main()
{
    using namespace reg;

    // 1. A little program: x starts at 3, is doubled five times.
    Assembler a;
    a.data(layout::DataBase);
    a.label("x");
    a.quad(3);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "x");
    a.lda(t1, 0, zero);
    a.label("loop");
    a.ldq(t0, 0, s0);
    a.addq(t0, t0, t0);
    a.stq(t0, 0, s0); // the watched store
    a.addq(t1, 1, t1);
    a.cmplt(t1, 5, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    Program prog = a.finish("main");

    // 2. Attach a DISE-backed debugger and watch x.
    DebugTarget target(prog);
    DebuggerOptions opts;
    opts.backend = BackendKind::Dise;
    Debugger dbg(target, opts);
    dbg.watch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    if (!dbg.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }

    // 3. Run under the timing model and report.
    RunStats stats = dbg.run();
    std::printf("program ran %llu instructions in %llu cycles "
                "(IPC %.2f)\n",
                static_cast<unsigned long long>(stats.appInsts),
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    std::printf("watchpoint events:\n");
    for (const auto &e : dbg.watchEvents())
        std::printf("  x: %llu -> %llu  (store at 0x%llx)\n",
                    static_cast<unsigned long long>(e.oldValue),
                    static_cast<unsigned long long>(e.newValue),
                    static_cast<unsigned long long>(e.addr));
    std::printf("spurious debugger transitions: %llu (DISE prunes them "
                "inside the application)\n",
                static_cast<unsigned long long>(
                    stats.spuriousTransitions()));
    return 0;
}
