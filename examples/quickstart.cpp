/**
 * @file
 * Quickstart: assemble a tiny program, open a DebugSession with a DISE
 * watchpoint on one of its variables, run under the cycle-level
 * simulator, and print every user-visible event from the session's
 * ordered queue plus the measured overhead.
 *
 * Build & run:  ./build/example_quickstart
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "session/debug_session.hh"

using namespace dise;

int
main()
{
    using namespace reg;

    // 1. A little program: x starts at 3, is doubled five times.
    Assembler a;
    a.data(layout::DataBase);
    a.label("x");
    a.quad(3);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "x");
    a.lda(t1, 0, zero);
    a.label("loop");
    a.ldq(t0, 0, s0);
    a.addq(t0, t0, t0);
    a.stq(t0, 0, s0); // the watched store
    a.addq(t1, 1, t1);
    a.cmplt(t1, 5, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    Program prog = a.finish("main");

    // 2. Open a DISE-backed debug session and watch x.
    SessionOptions opts;
    opts.debugger.backend = BackendKind::Dise;
    DebugSession session(prog, opts);
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    if (!session.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }

    // 3. Run under the timing model and report from the event queue.
    RunStats stats = session.runCycles();
    std::printf("program ran %llu instructions in %llu cycles "
                "(IPC %.2f)\n",
                static_cast<unsigned long long>(stats.appInsts),
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    std::printf("session events:\n");
    for (const SessionEvent &ev : session.events().drain())
        std::printf("  %s\n", ev.describe().c_str());
    std::printf("spurious debugger transitions: %llu (DISE prunes them "
                "inside the application)\n",
                static_cast<unsigned long long>(
                    stats.spuriousTransitions()));
    return 0;
}
