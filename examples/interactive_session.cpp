/**
 * @file
 * A scripted interactive-debugging session in the style the paper's
 * introduction motivates: a user chasing a value bug in twolf's
 * annealing loop sets a watchpoint, continues to hits, travels
 * backward, and compares what the session costs under DISE versus the
 * incumbent implementations.
 *
 * This version drives the session entirely through the wire protocol —
 * every command below is the literal encoded request line a remote
 * client would send, and every reply is printed via its describe()
 * renderer — demonstrating that a remote front end gets byte-identical
 * semantics to linked-in C++.
 *
 * Build & run:  ./build/example_interactive_session
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"

using namespace dise;

namespace {

/** Send one encoded request line, print the transcript. */
Response
send(DebugSession &session, const std::string &line)
{
    std::printf("  -> %s\n", line.c_str());
    std::string reply = session.handleEncoded(line);
    Response resp;
    decodeResponse(reply, resp);
    std::printf("  <- %s\n", resp.describe().c_str());
    return resp;
}

void
banner(const char *text)
{
    std::printf("\n(gdb-alike) %s\n", text);
}

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    const Workload &w = runner.workload("twolf");
    WatchSpec hot = w.watch(WatchSel::HOT);

    // ---- session 1: where does the cost counter change? -------------
    // A wire client: select a backend, set the watch, continue twice,
    // inspect, and travel back — one encoded line per command.
    banner("watch total_cost  (wire protocol, DISE backend)");
    {
        SessionOptions opts;
        opts.timeTravel.checkpointInterval = 4096;
        DebugSession session(w.program, opts);
        send(session, "select-backend seq=1 backend=dise");
        Request setw;
        setw.kind = RequestKind::SetWatch;
        setw.seq = 2;
        setw.watch = hot;
        send(session, encodeRequest(setw));
        send(session, "cont seq=3");
        send(session, "cont seq=4");
        send(session, "read-memory seq=5 addr=" + hex(hot.addr) +
                          " size=8");
        send(session, "reverse-continue seq=6");
        send(session, "stats seq=7");
        std::printf("  async events delivered on the queue:\n");
        for (const SessionEvent &ev : session.events().drain())
            std::printf("    %s\n", ev.describe().c_str());
    }

    // ---- session 2: only stop when the value hits a target ----------
    banner("watch total_cost if total_cost == 12");
    {
        SessionOptions opts;
        opts.debugger.backend = BackendKind::Dise;
        DebugSession session(w.program, opts);
        session.setWatch(hot.withCondition(12));
        StopInfo end = session.runToEnd();
        size_t stops = 0;
        for (const SessionEvent &ev : session.events().drain())
            stops += ev.kind == SessionEventKind::Watch;
        std::printf("stopped %zu time(s); every other change was "
                    "filtered inside the application (%s)\n",
                    stops, end.describe().c_str());
    }

    // ---- session 3: the same request under the incumbents -----------
    banner("the same conditional watchpoint, other debuggers");
    for (BackendKind kind :
         {BackendKind::SingleStep, BackendKind::HardwareReg,
          BackendKind::Dise}) {
        DebuggerOptions opts;
        opts.backend = kind;
        RunOutcome out = runner.debugged(
            "twolf", {runner.standardWatch("twolf", WatchSel::HOT, true)},
            opts);
        std::printf("  %-16s %s slowdown\n", backendName(kind),
                    out.supported ? fmtSlowdown(out.slowdown).c_str()
                                  : "n/a");
    }

    // ---- session 4: a breakpoint at the accept path ------------------
    banner("break reject  (wire protocol)");
    {
        SessionOptions opts;
        opts.debugger.backend = BackendKind::Dise;
        opts.timeTravel.maxAppInsts = 40000;
        DebugSession session(w.program, opts);
        send(session,
             "set-break seq=1 pc=" + hex(w.program.symbol("reject")) +
                 " name=reject");
        Response r = send(session, "cont seq=2");
        size_t hits = 0;
        while (r.ok() && r.hasStop &&
               r.stop.reason == StopReason::Event) {
            ++hits;
            r = session.handle([] {
                Request req;
                req.kind = RequestKind::Cont;
                return req;
            }());
        }
        send(session, "detach seq=3");
        std::printf("breakpoint hit %zu times in the first 40K "
                    "instructions\n",
                    hits);
        session.events().clear();
    }

    return 0;
}
