/**
 * @file
 * A scripted interactive-debugging session in the style the paper's
 * introduction motivates: a user chasing a value bug in twolf's
 * annealing loop sets a breakpoint, then a conditional watchpoint, and
 * compares what the session costs under DISE versus the incumbent
 * implementations.
 *
 * Build & run:  ./build/examples/interactive_session
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

namespace {

void
banner(const char *text)
{
    std::printf("\n(gdb-alike) %s\n", text);
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    const Workload &w = runner.workload("twolf");

    // ---- session 1: where does the cost counter first change? -------
    banner("watch total_cost");
    {
        DebugTarget target(w.program);
        DebuggerOptions opts;
        opts.backend = BackendKind::Dise;
        Debugger dbg(target, opts);
        dbg.watch(w.watch(WatchSel::HOT));
        if (!dbg.attach())
            return 1;
        RunStats stats = dbg.run();
        const auto &events = dbg.watchEvents();
        std::printf("Hardware watchpoint 1: total_cost\n");
        for (size_t i = 0; i < std::min<size_t>(events.size(), 3); ++i)
            std::printf("  Old value = %lld\n  New value = %lld\n",
                        static_cast<long long>(events[i].oldValue),
                        static_cast<long long>(events[i].newValue));
        std::printf("  ... %zu changes in total, overhead %.1f%%\n",
                    events.size(),
                    100.0 * (static_cast<double>(stats.cycles) /
                                 runner.baseline("twolf").cycles -
                             1.0));
    }

    // ---- session 2: only stop when the value hits a target ----------
    banner("watch total_cost if total_cost == 12");
    {
        DebugTarget target(w.program);
        DebuggerOptions opts;
        opts.backend = BackendKind::Dise;
        Debugger dbg(target, opts);
        dbg.watch(w.watch(WatchSel::HOT).withCondition(12));
        if (!dbg.attach())
            return 1;
        dbg.run();
        std::printf("stopped %zu time(s); every other change was "
                    "filtered inside the application\n",
                    dbg.watchEvents().size());
    }

    // ---- session 3: the same request under the incumbents -----------
    banner("the same conditional watchpoint, other debuggers");
    for (BackendKind kind :
         {BackendKind::SingleStep, BackendKind::HardwareReg,
          BackendKind::Dise}) {
        DebuggerOptions opts;
        opts.backend = kind;
        RunOutcome out = runner.debugged(
            "twolf", {runner.standardWatch("twolf", WatchSel::HOT, true)},
            opts);
        std::printf("  %-16s %s slowdown\n", backendName(kind),
                    out.supported ? fmtSlowdown(out.slowdown).c_str()
                                  : "n/a");
    }

    // ---- session 4: a breakpoint at the accept path ------------------
    banner("break uloop_accept");
    {
        DebugTarget target(w.program);
        DebuggerOptions opts;
        opts.backend = BackendKind::Dise;
        Debugger dbg(target, opts);
        // The accepted-move counter increment is a stable anchor.
        BreakSpec bp;
        bp.pc = w.program.symbol("reject");
        dbg.breakAt(bp);
        if (!dbg.attach())
            return 1;
        dbg.runFunctional(40000);
        std::printf("breakpoint hit %zu times in the first 40K "
                    "instructions\n",
                    dbg.breakEvents().size());
    }

    return 0;
}
