/**
 * @file
 * DISE is not debugging-specific (the paper's third contribution):
 * this example uses raw productions as a store profiler — counting
 * dynamic stores per region of interest in private DISE registers,
 * with codewords marking region boundaries — without touching the
 * application's registers, code, or data.
 *
 * Build & run:  ./build/examples/custom_instrumentation
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "session/debug_session.hh"

using namespace dise;

int
main()
{
    using namespace reg;

    // An application with two phases, each storing a different amount.
    Assembler a;
    a.data(layout::DataBase);
    a.label("buf");
    a.space(4096);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "buf");
    a.codeword(1); // begin phase 1
    for (int i = 0; i < 10; ++i)
        a.stq(t0, static_cast<int64_t>(8 * i), s0);
    a.codeword(2); // begin phase 2
    for (int i = 0; i < 25; ++i)
        a.stb(t0, static_cast<int64_t>(i), s0);
    a.syscall(SysExit);
    Program prog = a.finish("main");

    // DISE sessions are not debugging-specific: the prepare hook
    // installs raw productions on the fresh target before the backend
    // installs and the program loads.
    //
    // Production 1: every store bumps the running counter in dr0.
    // DISE can't indirect registers, so we keep one counter and
    // snapshot it at phase boundaries instead — all still invisible to
    // the application's registers, code, and data.
    SessionOptions opts;
    opts.prepare = [](DebugTarget &target) {
        Production count;
        count.name = "count-stores";
        count.pattern = Pattern::forClass(OpClass::Store);
        count.replacement = {
            TemplateInst::trigInst(),
            TemplateInst::opImm(Opcode::ADDQ_I, TRegField::reg(dr(0)),
                                1, TRegField::reg(dr(0))),
        };
        target.engine.addProduction(count);

        // Production 2/3: codewords snapshot the running count.
        for (int phase = 1; phase <= 2; ++phase) {
            Production snap;
            snap.name = "phase-mark";
            snap.pattern = Pattern::forCodeword(phase);
            snap.replacement = {
                // drN = dr0 (copy of the count at phase entry)
                TemplateInst::op3(Opcode::BIS, TRegField::reg(dr(0)),
                                  TRegField::reg(dr(0)),
                                  TRegField::reg(dr(phase + 1))),
            };
            target.engine.addProduction(snap);
        }
    };

    DebugSession session(prog, opts);
    if (!session.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }
    FuncResult r = session.runFunctional();
    if (r.halt != HaltReason::Exited) {
        std::fprintf(stderr, "run failed\n");
        return 1;
    }

    const ArchState &arch = session.target().arch;
    uint64_t total = arch.readDise(0);
    uint64_t atPhase1 = arch.readDise(2);
    uint64_t atPhase2 = arch.readDise(3);
    std::printf("application instructions: %llu (plus %llu injected)\n",
                static_cast<unsigned long long>(r.appInsts),
                static_cast<unsigned long long>(r.expansionOps));
    std::printf("stores before phase 1:  %llu\n",
                static_cast<unsigned long long>(atPhase1));
    std::printf("stores in phase 1:      %llu\n",
                static_cast<unsigned long long>(atPhase2 - atPhase1));
    std::printf("stores in phase 2:      %llu\n",
                static_cast<unsigned long long>(total - atPhase2));
    std::printf("application registers/data were never touched.\n");
    return 0;
}
