/**
 * @file
 * Hunting a memory-corruption heisenbug with a RANGE watchpoint —
 * forward with DISE, then backward with the time-travel debugger.
 *
 * The program keeps a "directory" structure that an unrelated,
 * out-of-bounds array write occasionally tramples. Trap-based
 * debuggers make this hunt painful (the directory shares pages with
 * hot data); the DISE range watchpoint pinpoints the corrupting store
 * immediately, at a few percent overhead, and the Figure 2f production
 * simultaneously shields the debugger's own structures from the same
 * bug.
 *
 * Act two runs the same scenario the way a user who only noticed the
 * corruption *after the fact* would: run to the end, then
 * reverseContinue() back through the checkpointed timeline until the
 * debugger is parked on the exact corrupting store, and inspect the
 * machine state as it was at that instant.
 *
 * Build & run:  ./build/example_heisenbug_hunt
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "debug/debugger.hh"
#include "replay/time_travel.hh"

using namespace dise;

namespace {

Program
buggyProgram()
{
    using namespace reg;
    Assembler a;
    a.data(layout::DataBase);
    a.label("table"); // 32 quads, legitimately written
    a.space(32 * 8);
    a.label("directory"); // 8 quads of precious metadata right after
    a.quad(0xd1);
    a.quad(0xd2);
    a.quad(0xd3);
    a.quad(0xd4);
    a.space(32);

    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "table");
    a.lda(t9, 0, zero);
    a.li(t11, 77);
    a.label("loop");
    // idx = lcg() % 33  -- the bug: 33, not 32.
    a.li(t2, 1103515245);
    a.mulq(t11, t2, t11);
    a.addq(t11, 57, t11);
    a.srl(t11, 16, t0);
    a.and_(t0, 255, t0);
    a.li(t1, 33);
    a.label("mod");
    a.cmplt(t0, t1, t2);
    a.bne(t2, "modok");
    a.subq(t0, t1, t0);
    a.br("mod");
    a.label("modok");
    a.sll(t0, 3, t0);
    a.addq(s0, t0, t0);
    a.label("the_store");
    a.stq(t11, 0, t0); // idx == 32 writes directory[0]!
    a.addq(t9, 1, t9);
    a.li(t1, 400);
    a.cmplt(t9, t1, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    return a.finish("main");
}

} // namespace

int
main()
{
    Program prog = buggyProgram();
    DebugTarget target(prog);

    DebuggerOptions opts;
    opts.backend = BackendKind::Dise;
    opts.dise.protectDebuggerData = true; // Figure 2f shielding
    Debugger dbg(target, opts);
    dbg.watch(
        WatchSpec::range("directory", prog.symbol("directory"), 64));
    if (!dbg.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }

    RunStats stats = dbg.run();
    std::printf("ran %llu instructions; directory was corrupted %zu "
                "time(s)\n",
                static_cast<unsigned long long>(stats.appInsts),
                dbg.watchEvents().size());
    for (const auto &e : dbg.watchEvents())
        std::printf("  corruption at directory+%llu: 0x%llx -> 0x%llx "
                    "(culprit store pc 0x%llx)\n",
                    static_cast<unsigned long long>(
                        e.addr - prog.symbol("directory")),
                    static_cast<unsigned long long>(e.oldValue),
                    static_cast<unsigned long long>(e.newValue),
                    static_cast<unsigned long long>(e.pc));
    std::printf("the culprit is the store at label 'the_store' "
                "(0x%llx)\n",
                static_cast<unsigned long long>(
                    prog.symbol("the_store")));
    std::printf("debugger dseg protection violations: %zu\n",
                dbg.protectionEvents().size());

    // ------------------------------------------------------ act two
    // The same hunt, backward: a fresh session runs to completion
    // first (as if the corruption were only noticed post-mortem), then
    // travels back to the moment of the crime.
    std::printf("\n-- time travel: how did we get here? --\n");
    DebugTarget ttTarget(buggyProgram());
    Debugger ttDbg(ttTarget, opts);
    ttDbg.watch(WatchSpec::range("directory",
                                 ttTarget.symbol("directory"), 64));
    if (!ttDbg.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }
    TimeTravelConfig ttCfg;
    ttCfg.checkpointInterval = 1024;
    TimeTravel &tt = ttDbg.timeTravel(ttCfg);
    StopInfo end = tt.runToEnd();
    std::printf("program exited at t=%llu (%llu checkpoints, %llu "
                "pages copied)\n",
                static_cast<unsigned long long>(end.time),
                static_cast<unsigned long long>(
                    tt.stats().checkpointsTaken),
                static_cast<unsigned long long>(tt.stats().pagesCopied));

    for (StopInfo hit = tt.reverseContinue();
         hit.reason == StopReason::Event; hit = tt.reverseContinue()) {
        std::printf("reverse-continue: event #%d at t=%llu, iteration "
                    "t9=%llu, store pc 0x%llx%s\n",
                    hit.eventIndex,
                    static_cast<unsigned long long>(hit.time),
                    static_cast<unsigned long long>(
                        ttTarget.arch.read(reg::t9)),
                    static_cast<unsigned long long>(hit.mark.pc),
                    hit.mark.pc == ttTarget.symbol("the_store")
                        ? "  <- the_store"
                        : "");
    }
    std::printf("reached the beginning of time; the first corruption "
                "is pinned.\n");
    return 0;
}
