/**
 * @file
 * Hunting a memory-corruption heisenbug with a RANGE watchpoint —
 * forward with DISE, then backward with the time-travel debugger.
 *
 * The program keeps a "directory" structure that an unrelated,
 * out-of-bounds array write occasionally tramples. Trap-based
 * debuggers make this hunt painful (the directory shares pages with
 * hot data); the DISE range watchpoint pinpoints the corrupting store
 * immediately, at a few percent overhead, and the Figure 2f production
 * simultaneously shields the debugger's own structures from the same
 * bug.
 *
 * Act two runs the same scenario the way a user who only noticed the
 * corruption *after the fact* would: run to the end, then
 * reverseContinue() back through the checkpointed timeline until the
 * debugger is parked on the exact corrupting store, and inspect the
 * machine state as it was at that instant.
 *
 * Build & run:  ./build/example_heisenbug_hunt
 */

#include <cstdio>

#include "session/debug_session.hh"
#include "workloads/workload.hh"

using namespace dise;

int
main()
{
    Program prog = buildHeisenbugDemo();

    SessionOptions opts;
    opts.debugger.backend = BackendKind::Dise;
    opts.debugger.dise.protectDebuggerData = true; // Fig. 2f shielding
    DebugSession session(prog, opts);
    session.setWatch(
        WatchSpec::range("directory", prog.symbol("directory"), 64));
    if (!session.attach()) {
        std::fprintf(stderr, "attach failed\n");
        return 1;
    }

    RunStats stats = session.runCycles();
    size_t corruptions = 0, protections = 0;
    std::vector<SessionEvent> events = session.events().drain();
    for (const SessionEvent &ev : events) {
        corruptions += ev.kind == SessionEventKind::Watch;
        protections += ev.kind == SessionEventKind::Protection;
    }
    std::printf("ran %llu instructions; directory was corrupted %zu "
                "time(s)\n",
                static_cast<unsigned long long>(stats.appInsts),
                corruptions);
    for (const SessionEvent &ev : events)
        if (ev.kind == SessionEventKind::Watch)
            std::printf("  corruption at directory+%llu: 0x%llx -> "
                        "0x%llx (culprit store pc 0x%llx)\n",
                        static_cast<unsigned long long>(
                            ev.addr - prog.symbol("directory")),
                        static_cast<unsigned long long>(ev.oldValue),
                        static_cast<unsigned long long>(ev.newValue),
                        static_cast<unsigned long long>(ev.pc));
    std::printf("the culprit is the store at label 'the_store' "
                "(0x%llx)\n",
                static_cast<unsigned long long>(
                    prog.symbol("the_store")));
    std::printf("debugger dseg protection violations: %zu\n",
                protections);

    // ------------------------------------------------------ act two
    // The same hunt, backward: a fresh session runs to completion
    // first (as if the corruption were only noticed post-mortem), then
    // travels back to the moment of the crime.
    std::printf("\n-- time travel: how did we get here? --\n");
    SessionOptions ttOpts = opts;
    ttOpts.timeTravel.checkpointInterval = 1024;
    DebugSession tt(buildHeisenbugDemo(), ttOpts);
    tt.setWatch(WatchSpec::range("directory",
                                 tt.program().symbol("directory"), 64));
    StopInfo end = tt.runToEnd(); // lazy attach: first resume installs
    SessionStats ss = tt.stats();
    std::printf("program exited at t=%llu (%zu checkpoints, %llu "
                "pages copied)\n",
                static_cast<unsigned long long>(end.time),
                ss.checkpoints,
                static_cast<unsigned long long>(ss.pagesCopied));

    for (StopInfo hit = tt.reverseContinue();
         hit.reason == StopReason::Event; hit = tt.reverseContinue()) {
        std::printf("reverse-continue: event #%d at t=%llu, iteration "
                    "t9=%llu, store pc 0x%llx%s\n",
                    hit.eventIndex,
                    static_cast<unsigned long long>(hit.time),
                    static_cast<unsigned long long>(
                        tt.target().arch.read(reg::t9)),
                    static_cast<unsigned long long>(hit.mark.pc),
                    hit.mark.pc == tt.program().symbol("the_store")
                        ? "  <- the_store"
                        : "");
    }
    std::printf("reached the beginning of time; the first corruption "
                "is pinned.\n");
    return 0;
}
