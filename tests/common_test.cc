/**
 * @file
 * Unit tests for the common runtime: bit utilities, the deterministic
 * RNG, statistics groups, table rendering, and error reporting.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace dise {
namespace {

TEST(BitUtils, BitsExtractsField)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 16), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtils, SextSignExtends)
{
    EXPECT_EQ(sext(0x1fff, 14), 0x1fff);
    EXPECT_EQ(sext(0x2000, 14), -8192);
    EXPECT_EQ(sext(0x3fff, 14), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(5, 64), 5);
}

TEST(BitUtils, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(8191, 14));
    EXPECT_FALSE(fitsSigned(8192, 14));
    EXPECT_TRUE(fitsSigned(-8192, 14));
    EXPECT_FALSE(fitsSigned(-8193, 14));
}

TEST(BitUtils, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
}

TEST(BitUtils, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(24));
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Stats, IncAndGet)
{
    StatGroup g("test");
    EXPECT_EQ(g.get("x"), 0u);
    g.inc("x");
    g.inc("x", 4);
    EXPECT_EQ(g.get("x"), 5u);
    g.set("x", 2);
    EXPECT_EQ(g.get("x"), 2u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(Stats, CounterHandleSharesStorageAndSurvivesReset)
{
    StatGroup g("test");
    uint64_t *h = g.counter("hits");
    EXPECT_EQ(g.get("hits"), 0u);
    *h += 3;
    g.inc("hits", 2);
    EXPECT_EQ(g.get("hits"), 5u);
    EXPECT_EQ(*h, 5u);
    g.reset();
    EXPECT_EQ(*h, 0u); // handle stays valid, value zeroed
    ++*h;
    EXPECT_EQ(g.get("hits"), 1u);
}

TEST(Stats, DumpFormat)
{
    StatGroup g("grp");
    g.inc("hits", 3);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.hits 3\n");
}

TEST(Table, RendersAligned)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"bb", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, FmtSlowdownScales)
{
    EXPECT_EQ(fmtSlowdown(1.234), "1.23");
    EXPECT_EQ(fmtSlowdown(123.4), "123.4");
    EXPECT_EQ(fmtSlowdown(40123.0), "40123");
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, AssertMacro)
{
    EXPECT_THROW(DISE_ASSERT(1 == 2, "nope"), PanicError);
    EXPECT_NO_THROW(DISE_ASSERT(1 == 1, "fine"));
}

TEST(Logging, ParseLevelTokens)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    // Unknown tokens fail and leave the out-param untouched.
    EXPECT_FALSE(parseLogLevel("chatty", level));
    EXPECT_EQ(level, LogLevel::Debug);
}

TEST(Logging, SetLevelGatesAndRestores)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    EXPECT_FALSE(detail::levelEnabled(LogLevel::Warn));
    EXPECT_FALSE(detail::levelEnabled(LogLevel::Info));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(detail::levelEnabled(LogLevel::Warn));
    EXPECT_TRUE(detail::levelEnabled(LogLevel::Debug));
    // panic/fatal ignore the level entirely.
    setLogLevel(LogLevel::Error);
    EXPECT_THROW(panic("still throws"), PanicError);
    setLogLevel(before);
}

TEST(Histogram, BucketBoundaryTable)
{
    struct Case
    {
        uint64_t value;
        size_t bucket;
    };
    // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
    const Case cases[] = {
        {0, 0},         {1, 1},          {2, 2},
        {3, 2},         {4, 3},          {7, 3},
        {8, 4},         {1023, 10},      {1024, 11},
        {1025, 11},     {(1u << 20), 21},
        {(uint64_t(1) << 38), 39},
        {(uint64_t(1) << 39) - 1, 39},
        {uint64_t(1) << 39, 39}, // beyond range: last bucket absorbs
        {~uint64_t(0), 39},
    };
    for (const Case &c : cases) {
        EXPECT_EQ(Histogram::bucketIndex(c.value), c.bucket)
            << "value " << c.value;
        // The floor/ceil tables must agree with the index mapping.
        EXPECT_LE(Histogram::bucketFloor(c.bucket), c.value);
        EXPECT_GE(Histogram::bucketCeil(c.bucket), c.value);
    }
    for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketFloor(i)), i);
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketCeil(i)), i);
        EXPECT_EQ(Histogram::bucketCeil(i) + 1,
                  Histogram::bucketFloor(i + 1));
    }
    EXPECT_EQ(Histogram::bucketCeil(Histogram::kBuckets - 1),
              ~uint64_t(0));
}

TEST(Histogram, ObserveAndSnapshotTrimsTrailingZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    h.observe(0);
    h.observe(1);
    h.observe(5); // bucket 3
    h.observe(5);
    HistogramSnapshot s = h.snapshot("t");
    EXPECT_EQ(s.name, "t");
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.sum, 11u);
    ASSERT_EQ(s.buckets.size(), 4u); // trimmed after last nonzero
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 0u);
    EXPECT_EQ(s.buckets[3], 2u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.snapshot("t").buckets.empty());
}

TEST(Histogram, SnapshotEquality)
{
    Histogram a, b;
    for (uint64_t v : {0u, 3u, 900u, 900u})
        a.observe(v), b.observe(v);
    EXPECT_TRUE(a.snapshot("x") == b.snapshot("x"));
    b.observe(900);
    EXPECT_FALSE(a.snapshot("x") == b.snapshot("x"));
}

} // namespace
} // namespace dise
