/**
 * @file
 * GDB Remote Serial Protocol tests: the packet codec (framing,
 * checksum round-trip, escaping, run-length encoding, and a fuzz-ish
 * malformed-input table) and the transport-free server command set
 * over every backend — attach, Z2 watchpoint, continue to the hit,
 * reverse-continue back across it — checked for identical stop
 * locations against the in-process DebugSession path.
 */

#include <gtest/gtest.h>

#include <thread>

#include "rsp/client.hh"
#include "rsp/server.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

using namespace rsp;
using namespace reg;

// ------------------------------------------------------------- framing

TEST(RspPacket, ChecksumAndFrame)
{
    EXPECT_EQ(checksum("OK"), 0x9a);
    EXPECT_EQ(frame("OK"), "$OK#9a");
    EXPECT_EQ(frame(""), "$#00");

    std::string payload;
    ASSERT_TRUE(decodeFrame("$OK#9a", payload));
    EXPECT_EQ(payload, "OK");
}

// Helper: frame a raw (pre-encoded) body without escaping.
std::string
frameRaw(const std::string &body)
{
    char tail[8];
    std::snprintf(tail, sizeof tail, "#%02x", checksum(body));
    return "$" + body + tail;
}

TEST(RspPacket, EscapingRoundTrip)
{
    // All four in-band characters survive a frame round-trip, and the
    // escaped body carries no literal '$' or '#'.
    std::string raw = "a$b#c}d*e";
    std::string wire = frame(raw);
    std::string body = wire.substr(1, wire.size() - 4);
    EXPECT_EQ(body.find('$'), std::string::npos);
    EXPECT_EQ(body.find('#'), std::string::npos);

    std::string payload;
    ASSERT_TRUE(decodeFrame(wire, payload));
    EXPECT_EQ(payload, raw);
}

TEST(RspPacket, RunLengthDecode)
{
    // "0* " = '0' + 3 repeats (' ' is 32, count 32-29=3).
    std::string payload;
    ASSERT_TRUE(decodeFrame(frameRaw("0* "), payload));
    EXPECT_EQ(payload, "0000");
}

TEST(RspPacket, RunLengthEncodeRoundTrip)
{
    // Runs of every interesting length: below the threshold, the
    // forbidden-count lengths (7, 8, 15, 17 would need '#', '$',
    // '+', '-'), and a run longer than one chunk can carry.
    for (size_t len : {1u, 3u, 4u, 6u, 7u, 8u, 15u, 17u, 97u, 98u,
                       99u, 200u}) {
        std::string raw(len, 'x');
        std::string encoded = runLengthEncode(raw);
        // No forbidden repeat characters may appear after '*'.
        for (size_t i = 0; i + 1 < encoded.size(); ++i)
            if (encoded[i] == '*') {
                char n = encoded[i + 1];
                EXPECT_NE(n, '$');
                EXPECT_NE(n, '#');
                EXPECT_NE(n, '+');
                EXPECT_NE(n, '-');
                EXPECT_GE(static_cast<int>(n), 32);
            }
        std::string payload;
        ASSERT_TRUE(decodeFrame(frameRaw(encoded), payload))
            << "len=" << len << " encoded='" << encoded << "'";
        EXPECT_EQ(payload, raw) << "len=" << len;
        if (len >= 4)
            EXPECT_LT(encoded.size(), raw.size()) << "len=" << len;
    }

    // Mixed content round-trips through the full framer with RLE on.
    std::string mixed = "g0000000011112222222222233}x";
    std::string payload;
    ASSERT_TRUE(decodeFrame(frame(mixed, /*rle=*/true), payload));
    EXPECT_EQ(payload, mixed);
}

TEST(RspPacket, MalformedFrameTable)
{
    const char *cases[] = {
        "$OK#00",      // wrong checksum
        "$OK#zz",      // non-hex checksum
        "$OK#9",       // truncated checksum
        "OK#9a",       // missing '$'
        "$O#K9a",      // '#' inside body shifts the frame
        "$}#fd",       // escape with nothing to escape
        "$*x#xx",      // '*' with nothing to repeat
        "$a*\x01#xx",  // repeat count below the minimum
        "",            // empty
        "$#",          // too short
    };
    for (const char *wire : cases) {
        std::string payload;
        EXPECT_FALSE(decodeFrame(wire, payload))
            << "accepted malformed frame '" << wire << "'";
    }
}

TEST(RspPacket, DecoderResyncsPastGarbage)
{
    PacketDecoder dec;
    // Garbage, a bad-checksum frame, then a good frame, byte by byte.
    std::string stream = "junk$OK#00\x01\x02+$m0,4#fd";
    for (char c : stream)
        dec.feed(&c, 1);

    ItemKind kind;
    std::string payload;
    ASSERT_TRUE(dec.next(kind, payload));
    EXPECT_EQ(kind, ItemKind::Ack);
    ASSERT_TRUE(dec.next(kind, payload));
    EXPECT_EQ(kind, ItemKind::Packet);
    EXPECT_EQ(payload, "m0,4");
    EXPECT_FALSE(dec.next(kind, payload));
    EXPECT_EQ(dec.badFrames(), 1u);
    EXPECT_GT(dec.strayBytes(), 0u);
}

TEST(RspPacket, HexHelpers)
{
    EXPECT_EQ(hexLe(0x1122334455667788ull, 8), "8877665544332211");
    uint64_t v = 0;
    ASSERT_TRUE(parseHexLe("8877665544332211", v));
    EXPECT_EQ(v, 0x1122334455667788ull);
    ASSERT_TRUE(parseHexNum("1000054", v));
    EXPECT_EQ(v, 0x1000054u);
    EXPECT_FALSE(parseHexLe("887", v));
    EXPECT_FALSE(parseHexNum("10zz", v));
}

// ------------------------------------------------- the server, 5 ways

SessionOptions
optionsFor(BackendKind kind)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 500;
    return o;
}

class RspAllBackends : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(RspAllBackends, WireStopsMatchInProcessSession)
{
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    // In-process reference: same spec, typed verbs.
    DebugSession ref(prog, optionsFor(GetParam()));
    ref.setWatch(WatchSpec::scalar("directory", watchAddr, 8));
    ASSERT_TRUE(ref.attach());
    StopInfo refHit1 = ref.cont();
    StopInfo refHit2 = ref.cont();
    ASSERT_EQ(refHit1.reason, StopReason::Event);
    ASSERT_EQ(refHit2.reason, StopReason::Event);
    StopInfo refBack = ref.reverseContinue();
    ASSERT_EQ(refBack.reason, StopReason::Event);
    EXPECT_EQ(refBack.time, refHit1.time);

    // Wire path: a second session driven purely through packets.
    DebugSession session(prog, optionsFor(GetParam()));
    RspServer server(session);

    EXPECT_NE(server.handlePacket("qSupported:hwbreak+").find(
                  "ReverseContinue+"),
              std::string::npos);
    EXPECT_EQ(server.handlePacket("?"), "S05");

    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    EXPECT_EQ(server.handlePacket(z2), "OK");

    std::string hit1 = server.handlePacket("c");
    EXPECT_NE(hit1.find("watch:"), std::string::npos) << hit1;
    uint64_t pc1 = 0;
    ASSERT_TRUE(stopReplyPc(hit1, pc1)) << hit1;
    EXPECT_EQ(pc1, refHit1.pc);

    std::string hit2 = server.handlePacket("c");
    uint64_t pc2 = 0;
    ASSERT_TRUE(stopReplyPc(hit2, pc2)) << hit2;
    EXPECT_EQ(pc2, refHit2.pc);

    // Reverse-continue back across the second hit.
    std::string back = server.handlePacket("bc");
    EXPECT_NE(back.find("watch:"), std::string::npos) << back;
    uint64_t pcBack = 0;
    ASSERT_TRUE(stopReplyPc(back, pcBack)) << back;
    EXPECT_EQ(pcBack, refBack.pc);

    // Registers agree with the reference at the same position.
    std::string g = server.handlePacket("g");
    ASSERT_EQ(g.size(), DebugSession::NumSessionRegs * 16u);
    std::vector<uint64_t> refRegs = ref.readRegisters();
    for (unsigned i = 0; i < DebugSession::NumSessionRegs; ++i) {
        uint64_t v = 0;
        ASSERT_TRUE(parseHexLe(g.substr(i * 16, 16), v));
        EXPECT_EQ(v, refRegs[i]) << "register " << i;
    }

    // Memory reads go through too.
    char m[64];
    std::snprintf(m, sizeof m, "m%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    std::string mem = server.handlePacket(m);
    EXPECT_EQ(mem.size(), 16u);

    // Reverse-step and detach.
    std::string bs = server.handlePacket("bs");
    uint64_t pcBs = 0;
    EXPECT_TRUE(stopReplyPc(bs, pcBs)) << bs;
    EXPECT_EQ(server.handlePacket("D"), "OK");
    EXPECT_TRUE(server.wantClose());
}

INSTANTIATE_TEST_SUITE_P(Kinds, RspAllBackends,
                         ::testing::Values(BackendKind::Dise,
                                           BackendKind::SingleStep,
                                           BackendKind::VirtualMemory,
                                           BackendKind::HardwareReg,
                                           BackendKind::Rewrite));

// ------------------------------------------------------- TCP transport

TEST(RspServerTcp, LoopbackSessionEndToEnd)
{
    Program prog = buildHeisenbugDemo();
    DebugSession session(prog, optionsFor(BackendKind::Dise));
    RspServer server(session);
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.port(), 0);

    std::thread serving([&] { server.serveOne(); });

    RspClient client;
    ASSERT_TRUE(client.connectTo(server.port()));
    auto exchange = [&](const std::string &payload) {
        return client.exchange(payload);
    };

    EXPECT_NE(exchange("qSupported").find("ReverseStep+"),
              std::string::npos);
    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(
                      prog.symbol("directory")));
    EXPECT_EQ(exchange(z2), "OK");
    std::string hit = exchange("c");
    EXPECT_NE(hit.find("watch:"), std::string::npos) << hit;
    std::string back = exchange("bc");
    EXPECT_NE(back.find("replaylog:begin"), std::string::npos) << back;
    EXPECT_EQ(exchange("D"), "OK");

    serving.join();
    client.close();
    server.stop();
}

} // namespace
} // namespace dise
