/**
 * @file
 * GDB Remote Serial Protocol tests: the packet codec (framing,
 * checksum round-trip, escaping, run-length encoding, and a fuzz-ish
 * malformed-input table) and the transport-free server command set
 * over every backend — attach, Z2 watchpoint, continue to the hit,
 * reverse-continue back across it — checked for identical stop
 * locations against the in-process DebugSession path.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "rsp/client.hh"
#include "rsp/server.hh"
#include "server/server.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

using namespace rsp;
using namespace reg;

// ------------------------------------------------------------- framing

TEST(RspPacket, ChecksumAndFrame)
{
    EXPECT_EQ(checksum("OK"), 0x9a);
    EXPECT_EQ(frame("OK"), "$OK#9a");
    EXPECT_EQ(frame(""), "$#00");

    std::string payload;
    ASSERT_TRUE(decodeFrame("$OK#9a", payload));
    EXPECT_EQ(payload, "OK");
}

// Helper: frame a raw (pre-encoded) body without escaping.
std::string
frameRaw(const std::string &body)
{
    char tail[8];
    std::snprintf(tail, sizeof tail, "#%02x", checksum(body));
    return "$" + body + tail;
}

TEST(RspPacket, EscapingRoundTrip)
{
    // All four in-band characters survive a frame round-trip, and the
    // escaped body carries no literal '$' or '#'.
    std::string raw = "a$b#c}d*e";
    std::string wire = frame(raw);
    std::string body = wire.substr(1, wire.size() - 4);
    EXPECT_EQ(body.find('$'), std::string::npos);
    EXPECT_EQ(body.find('#'), std::string::npos);

    std::string payload;
    ASSERT_TRUE(decodeFrame(wire, payload));
    EXPECT_EQ(payload, raw);
}

TEST(RspPacket, RunLengthDecode)
{
    // "0* " = '0' + 3 repeats (' ' is 32, count 32-29=3).
    std::string payload;
    ASSERT_TRUE(decodeFrame(frameRaw("0* "), payload));
    EXPECT_EQ(payload, "0000");
}

TEST(RspPacket, RunLengthEncodeRoundTrip)
{
    // Runs of every interesting length: below the threshold, the
    // forbidden-count lengths (7, 8, 15, 17 would need '#', '$',
    // '+', '-'), and a run longer than one chunk can carry.
    for (size_t len : {1u, 3u, 4u, 6u, 7u, 8u, 15u, 17u, 97u, 98u,
                       99u, 200u}) {
        std::string raw(len, 'x');
        std::string encoded = runLengthEncode(raw);
        // No forbidden repeat characters may appear after '*'.
        for (size_t i = 0; i + 1 < encoded.size(); ++i)
            if (encoded[i] == '*') {
                char n = encoded[i + 1];
                EXPECT_NE(n, '$');
                EXPECT_NE(n, '#');
                EXPECT_NE(n, '+');
                EXPECT_NE(n, '-');
                EXPECT_GE(static_cast<int>(n), 32);
            }
        std::string payload;
        ASSERT_TRUE(decodeFrame(frameRaw(encoded), payload))
            << "len=" << len << " encoded='" << encoded << "'";
        EXPECT_EQ(payload, raw) << "len=" << len;
        if (len >= 4)
            EXPECT_LT(encoded.size(), raw.size()) << "len=" << len;
    }

    // Mixed content round-trips through the full framer with RLE on.
    std::string mixed = "g0000000011112222222222233}x";
    std::string payload;
    ASSERT_TRUE(decodeFrame(frame(mixed, /*rle=*/true), payload));
    EXPECT_EQ(payload, mixed);
}

TEST(RspPacket, MalformedFrameTable)
{
    const char *cases[] = {
        "$OK#00",      // wrong checksum
        "$OK#zz",      // non-hex checksum
        "$OK#9",       // truncated checksum
        "OK#9a",       // missing '$'
        "$O#K9a",      // '#' inside body shifts the frame
        "$}#fd",       // escape with nothing to escape
        "$*x#xx",      // '*' with nothing to repeat
        "$a*\x01#xx",  // repeat count below the minimum
        "",            // empty
        "$#",          // too short
    };
    for (const char *wire : cases) {
        std::string payload;
        EXPECT_FALSE(decodeFrame(wire, payload))
            << "accepted malformed frame '" << wire << "'";
    }
}

TEST(RspPacket, DecoderResyncsPastGarbage)
{
    PacketDecoder dec;
    // Garbage, a bad-checksum frame, then a good frame, byte by byte.
    std::string stream = "junk$OK#00\x01\x02+$m0,4#fd";
    for (char c : stream)
        dec.feed(&c, 1);

    ItemKind kind;
    std::string payload;
    ASSERT_TRUE(dec.next(kind, payload));
    EXPECT_EQ(kind, ItemKind::Ack);
    ASSERT_TRUE(dec.next(kind, payload));
    EXPECT_EQ(kind, ItemKind::Packet);
    EXPECT_EQ(payload, "m0,4");
    EXPECT_FALSE(dec.next(kind, payload));
    EXPECT_EQ(dec.badFrames(), 1u);
    EXPECT_GT(dec.strayBytes(), 0u);
}

TEST(RspPacket, HexHelpers)
{
    EXPECT_EQ(hexLe(0x1122334455667788ull, 8), "8877665544332211");
    uint64_t v = 0;
    ASSERT_TRUE(parseHexLe("8877665544332211", v));
    EXPECT_EQ(v, 0x1122334455667788ull);
    ASSERT_TRUE(parseHexNum("1000054", v));
    EXPECT_EQ(v, 0x1000054u);
    EXPECT_FALSE(parseHexLe("887", v));
    EXPECT_FALSE(parseHexNum("10zz", v));
}

// ------------------------------------------------- the server, 5 ways

SessionOptions
optionsFor(BackendKind kind)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 500;
    return o;
}

class RspAllBackends : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(RspAllBackends, WireStopsMatchInProcessSession)
{
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    // In-process reference: same spec, typed verbs.
    DebugSession ref(prog, optionsFor(GetParam()));
    ref.setWatch(WatchSpec::scalar("directory", watchAddr, 8));
    ASSERT_TRUE(ref.attach());
    StopInfo refHit1 = ref.cont();
    StopInfo refHit2 = ref.cont();
    ASSERT_EQ(refHit1.reason, StopReason::Event);
    ASSERT_EQ(refHit2.reason, StopReason::Event);
    StopInfo refBack = ref.reverseContinue();
    ASSERT_EQ(refBack.reason, StopReason::Event);
    EXPECT_EQ(refBack.time, refHit1.time);

    // Wire path: a second session driven purely through packets.
    DebugSession session(prog, optionsFor(GetParam()));
    RspServer server(session);

    EXPECT_NE(server.handlePacket("qSupported:hwbreak+").find(
                  "ReverseContinue+"),
              std::string::npos);
    EXPECT_EQ(server.handlePacket("?"), "S05");

    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    EXPECT_EQ(server.handlePacket(z2), "OK");

    std::string hit1 = server.handlePacket("c");
    EXPECT_NE(hit1.find("watch:"), std::string::npos) << hit1;
    uint64_t pc1 = 0;
    ASSERT_TRUE(stopReplyPc(hit1, pc1)) << hit1;
    EXPECT_EQ(pc1, refHit1.pc);

    std::string hit2 = server.handlePacket("c");
    uint64_t pc2 = 0;
    ASSERT_TRUE(stopReplyPc(hit2, pc2)) << hit2;
    EXPECT_EQ(pc2, refHit2.pc);

    // Reverse-continue back across the second hit.
    std::string back = server.handlePacket("bc");
    EXPECT_NE(back.find("watch:"), std::string::npos) << back;
    uint64_t pcBack = 0;
    ASSERT_TRUE(stopReplyPc(back, pcBack)) << back;
    EXPECT_EQ(pcBack, refBack.pc);

    // Registers agree with the reference at the same position.
    std::string g = server.handlePacket("g");
    ASSERT_EQ(g.size(), DebugSession::NumSessionRegs * 16u);
    std::vector<uint64_t> refRegs = ref.readRegisters();
    for (unsigned i = 0; i < DebugSession::NumSessionRegs; ++i) {
        uint64_t v = 0;
        ASSERT_TRUE(parseHexLe(g.substr(i * 16, 16), v));
        EXPECT_EQ(v, refRegs[i]) << "register " << i;
    }

    // Memory reads go through too.
    char m[64];
    std::snprintf(m, sizeof m, "m%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    std::string mem = server.handlePacket(m);
    EXPECT_EQ(mem.size(), 16u);

    // Reverse-step and detach.
    std::string bs = server.handlePacket("bs");
    uint64_t pcBs = 0;
    EXPECT_TRUE(stopReplyPc(bs, pcBs)) << bs;
    EXPECT_EQ(server.handlePacket("D"), "OK");
    EXPECT_TRUE(server.wantClose());
}

INSTANTIATE_TEST_SUITE_P(Kinds, RspAllBackends,
                         ::testing::Values(BackendKind::Dise,
                                           BackendKind::SingleStep,
                                           BackendKind::VirtualMemory,
                                           BackendKind::HardwareReg,
                                           BackendKind::Rewrite));

// ------------------------------------------------------- TCP transport

// -------------------------------------------- fuzz, multi-connection

/**
 * A raw loopback socket speaking hand-framed (and deliberately
 * mis-framed) RSP: the fuzz tests need byte-level control the polite
 * RspClient does not give.
 */
class RawRspClient
{
  public:
    ~RawRspClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connectTo(uint16_t port, unsigned timeoutSeconds = 20)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        timeval tv{};
        tv.tv_sec = timeoutSeconds;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        return ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr) == 0;
    }

    bool
    sendRaw(const std::string &bytes)
    {
        return ::write(fd_, bytes.data(), bytes.size()) ==
               static_cast<ssize_t>(bytes.size());
    }

    /** Next framed reply payload, skipping acks. Empty on timeout. */
    std::string
    readReply()
    {
        for (;;) {
            ItemKind kind;
            std::string payload;
            while (dec_.next(kind, payload))
                if (kind == ItemKind::Packet)
                    return payload;
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n <= 0)
                return "<eof>";
            dec_.feed(chunk, static_cast<size_t>(n));
        }
    }

    /** Frame + send a payload, collect the reply. */
    std::string
    exchange(const std::string &payload)
    {
        if (!sendRaw("+" + frame(payload)))
            return "<write-error>";
        return readReply();
    }

  private:
    int fd_ = -1;
    PacketDecoder dec_;
};

/** Deterministic garbage: a fixed-seed LCG, bytes that never include
 *  '$' (so the decoder's resync has to skip them as stray). */
std::string
garbageBytes(uint32_t &state, size_t n)
{
    std::string out;
    for (size_t i = 0; i < n; ++i) {
        state = state * 1664525u + 1013904223u;
        char c = static_cast<char>(state >> 24);
        if (c == '$' || c == '+' || c == '-' || c == '\x03')
            c = '!';
        out += c;
    }
    return out;
}

TEST(RspFuzz, CorruptFramesAcrossConcurrentConnectionsDontLeak)
{
    // Three concurrent connections to one daemon, each interleaving a
    // deterministic corruption corpus (truncation, bad checksums,
    // resync garbage) with valid commands. Every client must keep
    // getting correct replies on ITS OWN session: the watchpoint one
    // client sets must never surface on another's target.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    DebugSession ref(demo, optionsFor(BackendKind::Dise));
    ref.setWatch(WatchSpec::scalar("w", watchAddr, 8));
    StopInfo refHit = ref.cont();
    ASSERT_EQ(refHit.reason, StopReason::Event);

    server::DebugServerOptions opts;
    opts.maxSessions = 4;
    opts.session.timeTravel.checkpointInterval = 512;
    server::DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));

    std::atomic<int> failures{0};
    auto fail = [&](const char *what, const std::string &got) {
        ++failures;
        ADD_FAILURE() << what << ": '" << got << "'";
    };

    // Client 0 sets a watch and interleaves corruption; clients 1-2
    // send corruption plus a clean `c` that must run to completion
    // (no watch on THEIR session) — a leaked watchpoint would stop
    // them with T05watch instead of W00.
    auto watcher = [&](uint32_t seed) {
        RawRspClient c;
        if (!c.connectTo(srv.port()))
            return fail("connect", "");
        uint32_t lcg = seed;
        if (c.exchange(z2) != "OK")
            return fail("Z2", "not OK");
        // Truncated frame, then garbage, then a valid continue.
        c.sendRaw("$m0,4#");             // checksum cut mid-frame
        c.sendRaw(garbageBytes(lcg, 64));
        std::string hit = c.exchange("c");
        uint64_t pc = 0;
        if (hit.find("watch:") == std::string::npos ||
            !stopReplyPc(hit, pc) || pc != refHit.pc)
            return fail("post-corruption c", hit);
        // Bad checksum + escape-with-nothing, then reverse works.
        c.sendRaw("$bc#00");
        c.sendRaw("$}#fd");
        std::string back = c.exchange("bc");
        if (back.find("replaylog:begin") == std::string::npos)
            return fail("post-corruption bc", back);
        if (c.exchange("D") != "OK")
            return fail("detach", "");
    };
    auto bystander = [&](uint32_t seed) {
        RawRspClient c;
        if (!c.connectTo(srv.port()))
            return fail("connect", "");
        uint32_t lcg = seed;
        // A clean opening classifies the connection as RSP; the
        // garbage goes mid-stream, where resync must skip it.
        if (c.exchange("qSupported").find("PacketSize") ==
            std::string::npos)
            return fail("bystander handshake", "");
        c.sendRaw(garbageBytes(lcg, 128));
        c.sendRaw("$OK#9z");             // non-hex checksum
        std::string run = c.exchange("c");
        if (run != "W00") // no watch here: must run to completion
            return fail("bystander c (leakage?)", run);
        c.sendRaw("$*x#xx");             // repeat with nothing before
        std::string regs = c.exchange("g");
        if (regs.size() != DebugSession::NumSessionRegs * 16)
            return fail("bystander g", regs);
        if (c.exchange("D") != "OK")
            return fail("bystander detach", "");
    };

    std::thread t0(watcher, 0xd15e0001u);
    std::thread t1(bystander, 0xd15e0002u);
    std::thread t2(bystander, 0xd15e0003u);
    t0.join();
    t1.join();
    t2.join();
    EXPECT_EQ(failures.load(), 0);

    // The daemon survived the corpus and still admits clients.
    RawRspClient post;
    ASSERT_TRUE(post.connectTo(srv.port()));
    EXPECT_NE(post.exchange("qSupported").find("PacketSize"),
              std::string::npos);
    srv.stop();
}

TEST(RspFuzz, OversizedAndPathologicalFramesSingleConnection)
{
    // Pathological-but-framed input against a plain RspServer: the
    // handler must answer (or empty-reply) every decodable payload
    // and never throw out of the packet layer.
    Program demo = buildHeisenbugDemo();
    DebugSession session(demo, optionsFor(BackendKind::Dise));
    RspServer server(session);

    // Payloads with a pinned reply shape.
    struct Case
    {
        const char *payload;
        const char *expect; // exact reply
    };
    const Case pinned[] = {
        {"m,", "E01"},          {"mzz,8", "E01"},
        {"m0,zz", "E01"},       {"m0,ffffffff", "E01"},
        {"M0,4:zzzz", "E01"},   {"M0,8:00", "E01"},
        {"Zx,0,0", "E01"},      {"Z2,,", "E01"},
        {"z2,beef,8", "E03"},   {"p999", "E01"},
        {"P=deadbeef", "E01"},  {"Pzz=00", "E01"},
        // qRcmd now answers: bad hex is E01, a decodable non-tool
        // command gets a hex-encoded usage hint (checked elsewhere).
        {"G0011", "E01"},       {"qRcmd,zz", "E01"},
        {"vAttach;1", ""},      {"Hg-1", "OK"},
        {"X0,0:", ""},          {"!", ""},
        {"R00", ""},
    };
    for (const Case &c : pinned)
        EXPECT_EQ(server.handlePacket(c.payload), c.expect)
            << c.payload;
    // `c` with a (bogus) resume address: runs the watch-less session
    // to completion rather than crashing on the argument.
    EXPECT_EQ(server.handlePacket("c0bad"), "W00");
    // And the session still works afterwards — the stray `c` in the
    // corpus ran it to completion, so this Z2 exercises the
    // post-attach rebuild+replay path over the wire, and reverse
    // lands on the materialized watch history.
    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(
                      demo.symbol("directory")));
    EXPECT_EQ(server.handlePacket(z2), "OK");
    std::string back = server.handlePacket("bc");
    EXPECT_NE(back.find("watch:"), std::string::npos) << back;
}

// --------------------------------------- vCont / qXfer / parked pokes

TEST(RspVCont, ActionsMatchPlainResumePackets)
{
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");
    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));

    DebugSession a(prog, optionsFor(BackendKind::Dise));
    DebugSession b(prog, optionsFor(BackendKind::Dise));
    RspServer plain(a), vcont(b);
    EXPECT_EQ(plain.handlePacket(z2), "OK");
    EXPECT_EQ(vcont.handlePacket(z2), "OK");

    EXPECT_EQ(vcont.handlePacket("vCont?"), "vCont;c;C;s;S");
    EXPECT_NE(plain.handlePacket("qSupported")
                  .find("vContSupported+"),
              std::string::npos);

    // vCont;c ≙ c, vCont;s ≙ s, signal forms accepted, thread ids
    // tolerated; bogus actions are errors.
    EXPECT_EQ(vcont.handlePacket("vCont;c"),
              plain.handlePacket("c"));
    EXPECT_EQ(vcont.handlePacket("vCont;s:0"),
              plain.handlePacket("s"));
    EXPECT_EQ(vcont.handlePacket("vCont;C05"),
              plain.handlePacket("c"));
    EXPECT_EQ(vcont.handlePacket("vCont;t"), "E01");
    EXPECT_EQ(vcont.handlePacket("vCont"), "E01");
}

TEST(RspQXfer, TargetXmlChunksReassemble)
{
    Program prog = buildHeisenbugDemo();
    DebugSession session(prog, optionsFor(BackendKind::Dise));
    RspServer server(session);

    EXPECT_NE(server.handlePacket("qSupported")
                  .find("qXfer:features:read+"),
              std::string::npos);

    // Read the document in small chunks, honoring the m/l framing.
    std::string doc;
    for (uint64_t off = 0;;) {
        char req[80];
        std::snprintf(req, sizeof req,
                      "qXfer:features:read:target.xml:%llx,40",
                      static_cast<unsigned long long>(off));
        std::string reply = server.handlePacket(req);
        ASSERT_FALSE(reply.empty());
        ASSERT_TRUE(reply[0] == 'm' || reply[0] == 'l') << reply;
        doc += reply.substr(1);
        off += reply.size() - 1;
        if (reply[0] == 'l')
            break;
        ASSERT_LT(off, 65536u) << "runaway document";
    }
    EXPECT_NE(doc.find("<target"), std::string::npos);
    EXPECT_NE(doc.find("org.dise.sim.core"), std::string::npos);
    // One <reg> per session register, pc at the session's index.
    size_t regs = 0;
    for (size_t pos = 0; (pos = doc.find("<reg ", pos)) !=
                         std::string::npos;
         ++pos)
        ++regs;
    EXPECT_EQ(regs, DebugSession::NumSessionRegs);
    EXPECT_NE(doc.find("name=\"pc\""), std::string::npos);

    // Unknown annexes and malformed ranges fail cleanly.
    EXPECT_EQ(server.handlePacket("qXfer:features:read:other.xml:0,40"),
              "E01");
    EXPECT_EQ(server.handlePacket("qXfer:features:read:target.xml:zz"),
              "E01");
}

TEST(RspParkedPoke, MemoryWriteAtWatchpointStopSucceeds)
{
    // gdb writing memory at a watchpoint stop used to get E02 (step
    // once first); the poke now records against the park position.
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");
    DebugSession session(prog, optionsFor(BackendKind::Dise));
    RspServer server(session);

    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    ASSERT_EQ(server.handlePacket(z2), "OK");
    std::string hit = server.handlePacket("c");
    ASSERT_NE(hit.find("watch:"), std::string::npos) << hit;

    Addr scratch = watchAddr + 48;
    char m[96];
    std::snprintf(m, sizeof m, "M%llx,8:efbeadde00000000",
                  static_cast<unsigned long long>(scratch));
    EXPECT_EQ(server.handlePacket(m), "OK");
    std::snprintf(m, sizeof m, "m%llx,8",
                  static_cast<unsigned long long>(scratch));
    EXPECT_EQ(server.handlePacket(m), "efbeadde00000000");

    // The poked timeline stays reversible.
    std::string back = server.handlePacket("bs");
    uint64_t backPc = 0;
    EXPECT_TRUE(stopReplyPc(back, backPc)) << back;
}

// ----------------------------------------------------- non-stop mode

TEST(RspNonStop, AsyncContinueNotifiesStopAndStaysResponsive)
{
    using namespace server;
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    SessionManagerOptions mopts;
    mopts.maxSessions = 1;
    mopts.session = optionsFor(BackendKind::Dise);
    SessionManager mgr(mopts);
    JobScheduler sched({1, 200});
    ManagedSessionPtr ms =
        mgr.create("demo", BackendKind::Dise, /*exclusive=*/true);
    ASSERT_TRUE(ms);

    auto exec = [&](RequestKind kind, uint64_t count, StopInfo &out,
                    std::string *err) {
        return sched.drive(*ms, kind, count, out, err);
    };
    rsp::RspConnection conn(ms->session, exec);
    conn.setAsyncExec(
        [&](RequestKind kind, uint64_t count,
            rsp::RspConnection::AsyncDoneFn done)
            -> std::function<void()> {
            JobScheduler::TicketPtr t = sched.driveAsync(
                ms, kind, count,
                [done](bool ok, bool interrupted, const StopInfo &stop,
                       const std::string &err) {
                    done(ok, interrupted, stop, err);
                });
            if (!t)
                return {};
            return [&sched, t] { sched.cancel(t); };
        });

    EXPECT_NE(conn.handlePacket("qSupported").find("QNonStop+"),
              std::string::npos);
    EXPECT_EQ(conn.handlePacket("QNonStop:1"), "OK");
    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    ASSERT_EQ(conn.handlePacket(z2), "OK");

    // The continue is acknowledged immediately; the stop lands later
    // (observable through `?`, which never blocks).
    ASSERT_EQ(conn.handlePacket("vCont;c"), "OK");
    std::string stop;
    for (int spin = 0; spin < 5000; ++spin) {
        stop = conn.handlePacket("?");
        if (stop.rfind("T05", 0) == 0)
            break;
        EXPECT_EQ(stop, "OK"); // still running: responsive, not wedged
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_NE(stop.find("watch:"), std::string::npos) << stop;
    EXPECT_EQ(conn.handlePacket("vStopped"), "OK");

    // Back to all-stop: synchronous verbs behave as before.
    EXPECT_EQ(conn.handlePacket("QNonStop:0"), "OK");
    std::string back = conn.handlePacket("bc");
    EXPECT_NE(back.find("replaylog:begin"), std::string::npos) << back;
}

TEST(RspNonStop, WritePacketsLandAtSliceBoundariesWhileRunning)
{
    // Write-class packets (M/P/Z/z) during a non-stop run used to get
    // a flat E05; they now take the peek lock like g/p/m, landing the
    // mutation exactly at a slice boundary — stock gdbserver behavior.
    using namespace server;
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    SessionManagerOptions mopts;
    mopts.maxSessions = 1;
    mopts.session = optionsFor(BackendKind::Dise);
    SessionManager mgr(mopts);
    JobScheduler sched({1, 200});
    ManagedSessionPtr ms =
        mgr.create("demo", BackendKind::Dise, /*exclusive=*/true);
    ASSERT_TRUE(ms);

    auto exec = [&](RequestKind kind, uint64_t count, StopInfo &out,
                    std::string *err) {
        return sched.drive(*ms, kind, count, out, err);
    };
    rsp::RspConnection conn(ms->session, exec);
    conn.setAsyncExec(
        [&](RequestKind kind, uint64_t count,
            rsp::RspConnection::AsyncDoneFn done)
            -> std::function<void()> {
            JobScheduler::TicketPtr t = sched.driveAsync(
                ms, kind, count,
                [done](bool ok, bool interrupted, const StopInfo &stop,
                       const std::string &err) {
                    done(ok, interrupted, stop, err);
                });
            if (!t)
                return {};
            return [&sched, t] { sched.cancel(t); };
        });
    conn.setPeekLock([ms] {
        return std::unique_lock<std::mutex>(ms->sliceMu);
    });

    EXPECT_EQ(conn.handlePacket("QNonStop:1"), "OK");

    // Park the job deterministically: holding sliceMu keeps the async
    // run alive (running between slices) while we poke at it.
    std::unique_lock<std::mutex> park(ms->sliceMu);
    ASSERT_EQ(conn.handlePacket("vCont;c"), "OK");

    std::thread poker([&] {
        // These block on the peek lock until the parker releases,
        // then mutate at the slice boundary instead of failing.
        Addr scratch = watchAddr + 48;
        char m[96];
        std::snprintf(m, sizeof m, "M%llx,8:efbeadde00000000",
                      static_cast<unsigned long long>(scratch));
        EXPECT_EQ(conn.handlePacket(m), "OK");
        char z2[64];
        std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                      static_cast<unsigned long long>(watchAddr));
        EXPECT_EQ(conn.handlePacket(z2), "OK");
        std::snprintf(m, sizeof m, "m%llx,8",
                      static_cast<unsigned long long>(scratch));
        EXPECT_EQ(conn.handlePacket(m), "efbeadde00000000");
    });
    // Give the poker time to block on the held lock, then release.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    park.unlock();
    poker.join();

    // The run finishes healthy: either the freshly inserted watch
    // fires (T05) or the program runs to its natural end (W00) when
    // the scheduler got ahead of the poke — never a wedge, never a
    // corrupted stop. What must NOT happen is the old E05.
    std::string stop;
    for (int spin = 0; spin < 5000; ++spin) {
        stop = conn.handlePacket("?");
        if (stop.rfind("T05", 0) == 0 || stop.rfind("W", 0) == 0)
            break;
        EXPECT_EQ(stop, "OK");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (stop.rfind("T05", 0) == 0) {
        EXPECT_NE(stop.find("watch:"), std::string::npos) << stop;
        EXPECT_EQ(conn.handlePacket("vStopped"), "OK");
    }
    // The mid-run insert registered for real: removing it succeeds.
    char z2off[64];
    std::snprintf(z2off, sizeof z2off, "z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    EXPECT_EQ(conn.handlePacket(z2off), "OK");
    EXPECT_EQ(conn.handlePacket("QNonStop:0"), "OK");
}

TEST(RspServerTcp, LoopbackSessionEndToEnd)
{
    Program prog = buildHeisenbugDemo();
    DebugSession session(prog, optionsFor(BackendKind::Dise));
    RspServer server(session);
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.port(), 0);

    std::thread serving([&] { server.serveOne(); });

    RspClient client;
    ASSERT_TRUE(client.connectTo(server.port()));
    auto exchange = [&](const std::string &payload) {
        return client.exchange(payload);
    };

    EXPECT_NE(exchange("qSupported").find("ReverseStep+"),
              std::string::npos);
    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(
                      prog.symbol("directory")));
    EXPECT_EQ(exchange(z2), "OK");
    std::string hit = exchange("c");
    EXPECT_NE(hit.find("watch:"), std::string::npos) << hit;
    std::string back = exchange("bc");
    EXPECT_NE(back.find("replaylog:begin"), std::string::npos) << back;
    EXPECT_EQ(exchange("D"), "OK");

    serving.join();
    client.close();
    server.stop();
}

} // namespace
} // namespace dise
