/**
 * @file
 * DISE engine tests: pattern matching and specificity, template
 * instantiation, the production tables (capacity, removal, replacement-
 * table residency), the controller's OS policy, and the end-to-end
 * expansion semantics in the instruction stream — DISEPC control flow,
 * DISE calls into generated functions, register-space isolation.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/func_cpu.hh"
#include "cpu/loader.hh"
#include "debug/target.hh"
#include "dise/controller.hh"
#include "dise/engine.hh"

namespace dise {
namespace {

using namespace reg;

// ------------------------------------------------------------ patterns

TEST(Pattern, ClassMatch)
{
    Pattern p = Pattern::forClass(OpClass::Store);
    EXPECT_TRUE(p.matches(makeMem(Opcode::STQ, t0, 0, sp), 0x100));
    EXPECT_TRUE(p.matches(makeMem(Opcode::STB, t0, 4, t1), 0x100));
    EXPECT_FALSE(p.matches(makeMem(Opcode::LDQ, t0, 0, sp), 0x100));
}

TEST(Pattern, BaseRegisterMatch)
{
    // The paper's example: loads whose base address is sp.
    Pattern p = Pattern::forClass(OpClass::Load);
    p.baseReg = sp;
    EXPECT_TRUE(p.matches(makeMem(Opcode::LDQ, ir(4), 32, sp), 0));
    EXPECT_FALSE(p.matches(makeMem(Opcode::LDQ, ir(4), 32, t1), 0));
}

TEST(Pattern, PcMatch)
{
    Pattern p = Pattern::forPc(0x1008);
    EXPECT_TRUE(p.matches(makeNullary(Opcode::NOP), 0x1008));
    EXPECT_FALSE(p.matches(makeNullary(Opcode::NOP), 0x100c));
}

TEST(Pattern, CodewordMatch)
{
    Pattern p = Pattern::forCodeword(7);
    EXPECT_TRUE(p.matches(makeSystem(Opcode::CODEWORD, 7), 0));
    EXPECT_FALSE(p.matches(makeSystem(Opcode::CODEWORD, 8), 0));
    EXPECT_FALSE(p.matches(makeNullary(Opcode::NOP), 0));
}

TEST(Pattern, EmptyPatternNeverMatches)
{
    Pattern p;
    EXPECT_FALSE(p.matches(makeNullary(Opcode::NOP), 0));
    EXPECT_EQ(p.specificity(), 0u);
}

TEST(Pattern, SpecificityCounts)
{
    Pattern p = Pattern::forClass(OpClass::Store);
    EXPECT_EQ(p.specificity(), 1u);
    p.baseReg = sp;
    EXPECT_EQ(p.specificity(), 2u);
    p.pc = 0x1000;
    EXPECT_EQ(p.specificity(), 3u);
}

// ----------------------------------------------------------- templates

TEST(Template, TriggerCopy)
{
    Inst trig = makeMem(Opcode::STL, t3, 24, t4);
    EXPECT_EQ(TemplateInst::trigInst().instantiate(trig), trig);
}

TEST(Template, PaperExpansionExample)
{
    // Figure 1: addq T.RS1, 8, dr0 ; T.OP T.RD, T.IMM(dr0)
    Inst trig = makeMem(Opcode::LDQ, ir(4), 32, sp);
    TemplateInst add = TemplateInst::opImm(
        Opcode::ADDQ_I, TRegField::trigRb(), 8, TRegField::reg(dr(0)));
    TemplateInst repl = TemplateInst::mem(
        Opcode::LDQ, TRegField::trigRa(), TImmField::trigImm(),
        TRegField::reg(dr(0)));

    Inst i0 = add.instantiate(trig);
    EXPECT_EQ(i0.ra, sp);
    EXPECT_EQ(i0.imm, 8);
    EXPECT_EQ(i0.rc, dr(0));

    Inst i1 = repl.instantiate(trig);
    EXPECT_EQ(i1.ra, ir(4));
    EXPECT_EQ(i1.imm, 32);
    EXPECT_EQ(i1.rb, dr(0));
}

// -------------------------------------------------------------- engine

Production
identityProduction(std::string name, Pattern pat)
{
    Production p;
    p.name = std::move(name);
    p.pattern = pat;
    p.replacement = {TemplateInst::trigInst()};
    return p;
}

TEST(Engine, AddRemoveCount)
{
    DiseEngine engine;
    ProductionId id =
        engine.addProduction(identityProduction(
            "a", Pattern::forClass(OpClass::Store)));
    EXPECT_EQ(engine.productionCount(), 1u);
    EXPECT_NE(engine.production(id), nullptr);
    engine.removeProduction(id);
    EXPECT_EQ(engine.productionCount(), 0u);
}

TEST(Engine, PatternTableCapacity)
{
    DiseEngineConfig cfg;
    cfg.patternTableEntries = 4;
    DiseEngine engine(cfg);
    for (int i = 0; i < 4; ++i)
        engine.addProduction(
            identityProduction("p", Pattern::forCodeword(i)));
    EXPECT_THROW(engine.addProduction(identityProduction(
                     "overflow", Pattern::forCodeword(99))),
                 FatalError);
}

TEST(Engine, MostSpecificWins)
{
    DiseEngine engine;
    Production general = identityProduction(
        "general", Pattern::forClass(OpClass::Store));
    Production specific = identityProduction(
        "specific", Pattern::forClass(OpClass::Store));
    specific.pattern.baseReg = sp;
    engine.addProduction(general);
    engine.addProduction(specific);

    const Production *m =
        engine.matchFunctional(makeMem(Opcode::STQ, t0, 0, sp), 0);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name, "specific");
    m = engine.matchFunctional(makeMem(Opcode::STQ, t0, 0, t1), 0);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name, "general");
}

TEST(Engine, DisabledEngineMatchesNothing)
{
    DiseEngine engine;
    engine.addProduction(
        identityProduction("p", Pattern::forClass(OpClass::Store)));
    engine.setEnabled(false);
    EXPECT_EQ(engine.matchFunctional(makeMem(Opcode::STQ, t0, 0, sp), 0),
              nullptr);
}

TEST(Engine, ReplacementTableMissesTracked)
{
    DiseEngineConfig cfg;
    cfg.replacementTableInsts = 16;
    cfg.replacementLineInsts = 8;
    cfg.replacementTableAssoc = 2;
    DiseEngine engine(cfg);
    // Two productions whose lines collide in the single set.
    for (int i = 0; i < 2; ++i) {
        Production p = identityProduction("p" + std::to_string(i),
                                          Pattern::forCodeword(i));
        p.replacement.assign(8, TemplateInst::trigInst());
        engine.addProduction(p);
    }
    Inst cw0 = makeSystem(Opcode::CODEWORD, 0);
    Inst cw1 = makeSystem(Opcode::CODEWORD, 1);
    MatchResult r = engine.match(cw0, 0);
    EXPECT_GT(r.stallCycles, 0u); // compulsory miss
    r = engine.match(cw0, 0);
    EXPECT_EQ(r.stallCycles, 0u); // resident
    engine.match(cw1, 0); // may or may not conflict
    uint64_t misses = engine.stats().get("rt_misses");
    EXPECT_GE(misses, 2u);
}

TEST(Controller, ApplicationMayInstrumentItself)
{
    DiseEngine engine;
    DiseController ctl(engine, /*ownerPid=*/7);
    DiseClient app{7, false};
    ProductionId id = ctl.install(
        app, 7, identityProduction("p", Pattern::forCodeword(1)));
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ctl.remove(app, 7, id));
}

TEST(Controller, UntrustedCannotTouchOthers)
{
    DiseEngine engine;
    DiseController ctl(engine, 7);
    DiseClient rogue{8, false};
    EXPECT_EQ(ctl.install(rogue, 7,
                          identityProduction(
                              "p", Pattern::forCodeword(1))),
              0u);
    EXPECT_EQ(engine.productionCount(), 0u);
}

TEST(Controller, TrustedDebuggerMayInstrumentOthers)
{
    DiseEngine engine;
    DiseController ctl(engine, 7);
    DiseClient debugger{99, true};
    EXPECT_NE(ctl.install(debugger, 7,
                          identityProduction(
                              "p", Pattern::forCodeword(1))),
              0u);
}

// --------------------------------------------- stream-level expansion

/** Run a program with productions installed. */
template <typename Setup, typename Emit>
FuncResult
runWithDise(Setup &&setup, Emit &&emit, DebugTarget **outTarget)
{
    Assembler a;
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    emit(a);
    static thread_local std::unique_ptr<DebugTarget> keep;
    keep = std::make_unique<DebugTarget>(a.finish("main"));
    setup(*keep);
    keep->load();
    *outTarget = keep.get();
    StreamEnv env;
    env.sink = &keep->sink;
    FuncCpu cpu(keep->arch, keep->mem, &keep->engine, env);
    return cpu.run();
}

TEST(Expansion, InsertedInstructionsExecute)
{
    // Expand every store into {T.INST; addq dr0, 1, dr0} — a dynamic
    // store counter in a private DISE register.
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "count-stores";
            p.pattern = Pattern::forClass(OpClass::Store);
            p.replacement = {
                TemplateInst::trigInst(),
                TemplateInst::opImm(Opcode::ADDQ_I,
                                    TRegField::reg(dr(0)), 1,
                                    TRegField::reg(dr(0))),
            };
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.la(s0, "buf");
            for (int i = 0; i < 5; ++i)
                a.stq(t0, static_cast<int64_t>(8 * i), s0);
            a.syscall(SysExit);
            a.data(0x0200'0000);
            a.label("buf");
            a.space(64);
        },
        &t);
    EXPECT_EQ(r.halt, HaltReason::Exited);
    EXPECT_EQ(t->arch.readDise(0), 5u);
    EXPECT_EQ(r.expansionOps, 5u); // five inserted adds
}

TEST(Expansion, TriggerCopyCountsAsAppInst)
{
    DebugTarget *t = nullptr;
    FuncResult plain = runWithDise(
        [](DebugTarget &) {},
        [](Assembler &a) {
            a.label("main");
            a.la(s0, "buf");
            a.stq(t0, 0, s0);
            a.syscall(SysExit);
            a.data(0x0200'0000);
            a.label("buf");
            a.space(8);
        },
        &t);
    DebugTarget *t2 = nullptr;
    FuncResult expanded = runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "noop-wrap";
            p.pattern = Pattern::forClass(OpClass::Store);
            p.replacement = {
                TemplateInst::trigInst(),
                TemplateInst::opImm(Opcode::ADDQ_I,
                                    TRegField::reg(dr(0)), 1,
                                    TRegField::reg(dr(0))),
            };
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.la(s0, "buf");
            a.stq(t0, 0, s0);
            a.syscall(SysExit);
            a.data(0x0200'0000);
            a.label("buf");
            a.space(8);
        },
        &t2);
    EXPECT_EQ(plain.appInsts, expanded.appInsts);
}

static TemplateInst
makeDiseBranchTemplate()
{
    TemplateInst b;
    b.op = Opcode::D_BNE;
    b.ra = TRegField::reg(dr(1));
    b.imm = TImmField::imm(1);
    return b;
}

TEST(Expansion, DiseBranchSkips)
{
    // Replacement: {cmpeq dr0,0 -> dr1; d_bne dr1, +1; addq dr2,1,dr2}
    // With dr0 == 0 the branch is taken and the add is skipped.
    DebugTarget *t = nullptr;
    runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "skip";
            p.pattern = Pattern::forCodeword(1);
            p.replacement = {
                TemplateInst::opImm(Opcode::CMPEQ_I,
                                    TRegField::reg(dr(0)), 0,
                                    TRegField::reg(dr(1))),
                makeDiseBranchTemplate(),
                TemplateInst::opImm(Opcode::ADDQ_I,
                                    TRegField::reg(dr(2)), 1,
                                    TRegField::reg(dr(2))),
            };
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.codeword(1);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->arch.readDise(2), 0u); // skipped
}

TEST(Expansion, DiseCallRunsHandlerAndReturns)
{
    // Handler: t0 += 41 via DISE registers; returns with d_ret.
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            target.arch.writeDise(5, target.program.symbol("handler"));
            Production p;
            p.name = "call";
            p.pattern = Pattern::forCodeword(2);
            TemplateInst call;
            call.op = Opcode::D_CALL;
            call.rb = TRegField::reg(dr(5));
            p.replacement = {
                call,
                // Executed after d_ret resumes the expansion:
                TemplateInst::opImm(Opcode::ADDQ_I,
                                    TRegField::reg(dr(3)), 1,
                                    TRegField::reg(dr(3))),
            };
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.codeword(2);
            a.mov(t0, a0);
            a.syscall(SysMark);
            a.syscall(SysExit);
            // The "debugger-generated" function.
            a.label("handler");
            a.d_mtr(dr(0), t1); // stash t1
            a.li(t1, 41);
            a.addq(t0, t1, t0);
            a.d_mfr(t1, dr(0)); // restore t1
            a.d_ret();
        },
        &t);
    (void)r;
    // The handler ran: t0 == 41 observed via the mark.
    ASSERT_FALSE(t->sink.marks.empty());
    EXPECT_EQ(t->sink.marks[0], 41u);
    // The post-return template instruction also ran.
    EXPECT_EQ(t->arch.readDise(3), 1u);
}

TEST(Expansion, ConditionalCallNotTakenIsFree)
{
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "ccall";
            p.pattern = Pattern::forCodeword(3);
            TemplateInst call;
            call.op = Opcode::D_CCALL;
            call.ra = TRegField::reg(dr(1)); // condition: 0
            call.rb = TRegField::reg(dr(5));
            p.replacement = {call};
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.codeword(3);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(r.handlerOps, 0u);
    EXPECT_EQ(r.halt, HaltReason::Exited);
}

TEST(Expansion, HandlerIsNotReexpanded)
{
    // DISE is disabled inside DISE-called functions: stores in the
    // handler must not trigger the store production (no recursion).
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            target.arch.writeDise(5, target.program.symbol("handler"));
            Production p;
            p.name = "stores";
            p.pattern = Pattern::forClass(OpClass::Store);
            TemplateInst call;
            call.op = Opcode::D_CALL;
            call.rb = TRegField::reg(dr(5));
            p.replacement = {TemplateInst::trigInst(), call};
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.la(s0, "buf");
            a.stq(t0, 0, s0); // triggers exactly one handler call
            a.syscall(SysExit);
            a.label("handler");
            a.stq(t1, 8, s0); // must NOT recurse
            a.d_ret();
            a.data(0x0200'0000);
            a.label("buf");
            a.space(64);
        },
        &t);
    EXPECT_EQ(r.halt, HaltReason::Exited);
    // One handler invocation: stq + d_ret.
    EXPECT_EQ(r.handlerOps, 2u);
}

TEST(Expansion, EmptyReplacementDeletesInstruction)
{
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "delete-codewords";
            p.pattern = Pattern::forCodeword(9);
            p.replacement = {};
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.li(t0, 1);
            a.codeword(9);
            a.mov(t0, a0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(r.halt, HaltReason::Exited);
    EXPECT_EQ(t->sink.marks[0], 1u);
}

TEST(Expansion, ConventionalBranchInExpansionAborts)
{
    // A taken conventional branch inside a replacement sequence goes to
    // <newPC:0>, abandoning the rest of the expansion.
    DebugTarget *t = nullptr;
    runWithDise(
        [](DebugTarget &target) {
            Production p;
            p.name = "branch-out";
            p.pattern = Pattern::forCodeword(4);
            p.replacement = {
                TemplateInst::fixed(makeBranch(Opcode::BR, zero, 1)),
                // Never reached:
                TemplateInst::opImm(Opcode::ADDQ_I,
                                    TRegField::reg(dr(2)), 1,
                                    TRegField::reg(dr(2))),
            };
            target.engine.addProduction(p);
        },
        [](Assembler &a) {
            a.label("main");
            a.codeword(4); // BR +1 lands on the syscall below
            a.nop();
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->arch.readDise(2), 0u);
}

TEST(Expansion, AppCannotReadDiseRegisters)
{
    // d_mfr from ordinary application code faults: the DISE register
    // space is private.
    DebugTarget *t = nullptr;
    FuncResult r = runWithDise(
        [](DebugTarget &target) {
            target.arch.writeDise(4, 0x5ec2e7);
        },
        [](Assembler &a) {
            a.label("main");
            a.d_mfr(t0, dr(4));
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(r.halt, HaltReason::Fault);
}

} // namespace
} // namespace dise
