/**
 * @file
 * Assembler tests: label resolution, branch fixups, data directives,
 * la/li pseudo-expansion, statement tables, jump tables via quadLabel,
 * blobs, and error paths.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "cpu/loader.hh"
#include "isa/encoding.hh"

namespace dise {
namespace {

TEST(Assembler, ForwardAndBackwardBranches)
{
    Assembler a;
    a.text(0x1000);
    a.label("start");
    a.beq(reg::t0, "fwd");   // +2 words
    a.br("start");           // -2 words
    a.label("fwd");
    a.halt();
    Program p = a.finish("start");
    ASSERT_EQ(p.segments.size(), 1u);
    const auto &text = p.segments[0];

    auto word = [&](size_t idx) {
        uint32_t w = 0;
        for (int b = 3; b >= 0; --b)
            w = (w << 8) | text.bytes[idx * 4 + b];
        return w;
    };
    auto beq = decode(word(0));
    ASSERT_TRUE(beq);
    EXPECT_EQ(beq->imm, 1); // 0x1000+4+1*4 = 0x1008
    auto br = decode(word(1));
    ASSERT_TRUE(br);
    EXPECT_EQ(br->imm, -2); // 0x1004+4-2*4 = 0x1000
}

TEST(Assembler, SymbolsInBothSections)
{
    Assembler a;
    a.data(0x2000);
    a.label("glob");
    a.quad(7);
    a.text(0x1000);
    a.label("main");
    a.halt();
    Program p = a.finish("main");
    EXPECT_EQ(p.symbol("main"), 0x1000u);
    EXPECT_EQ(p.symbol("glob"), 0x2000u);
    EXPECT_EQ(p.entry, 0x1000u);
}

TEST(Assembler, DataDirectivesLayout)
{
    Assembler a;
    a.data(0x2000);
    a.byte(0xaa);
    a.align(8);
    a.label("q");
    a.quad(0x1122334455667788ull);
    a.word(0xbeef);
    a.long_(0xdeadbeef);
    a.space(3);
    a.label("end");
    a.text(0x1000);
    a.label("main");
    a.halt();
    Program p = a.finish("main");
    EXPECT_EQ(p.symbol("q"), 0x2008u);
    EXPECT_EQ(p.symbol("end"), 0x2008u + 8 + 2 + 4 + 3);

    // Check little-endian quad bytes.
    const auto &data = p.segments[1];
    EXPECT_EQ(data.bytes[8], 0x88);
    EXPECT_EQ(data.bytes[15], 0x11);
}

TEST(Assembler, StatementTable)
{
    Assembler a;
    a.text(0x1000);
    a.label("main");
    a.stmt(10);
    a.nop();
    a.nop();
    a.stmt(11);
    a.nop();
    a.halt();
    Program p = a.finish("main");
    ASSERT_EQ(p.stmtBoundaries.size(), 2u);
    EXPECT_EQ(p.stmtBoundaries[0], 0x1000u);
    EXPECT_EQ(p.stmtBoundaries[1], 0x1008u);
    EXPECT_EQ(p.lineTable.at(0x1000), 10);
    EXPECT_EQ(p.lineTable.at(0x1008), 11);
}

TEST(Assembler, QuadLabelEmitsAddress)
{
    Assembler a;
    a.data(0x2000);
    a.label("table");
    a.quadLabel("target");
    a.text(0x1000);
    a.label("main");
    a.nop();
    a.label("target");
    a.halt();
    Program p = a.finish("main");
    const auto &data = p.segments[1];
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | data.bytes[i];
    EXPECT_EQ(v, p.symbol("target"));
    EXPECT_EQ(v, 0x1004u);
}

TEST(Assembler, BlobBytes)
{
    Assembler a;
    a.data(0x2000);
    a.label("blobby");
    a.blob({1, 2, 3, 4, 5});
    a.text(0x1000);
    a.label("main");
    a.halt();
    Program p = a.finish("main");
    const auto &data = p.segments[1];
    ASSERT_EQ(data.bytes.size(), 5u);
    EXPECT_EQ(data.bytes[4], 5);
}

TEST(Assembler, DuplicateLabelFatal)
{
    Assembler a;
    a.text(0x1000);
    a.label("x");
    a.nop();
    a.label("x");
    a.halt();
    EXPECT_THROW(a.finish("x"), FatalError);
}

TEST(Assembler, UndefinedLabelFatal)
{
    Assembler a;
    a.text(0x1000);
    a.label("main");
    a.br("nowhere");
    EXPECT_THROW(a.finish("main"), FatalError);
}

TEST(Assembler, GenLabelUnique)
{
    Assembler a;
    EXPECT_NE(a.genLabel("L"), a.genLabel("L"));
}

TEST(Assembler, TextEndAndWords)
{
    Assembler a;
    a.text(0x1000);
    a.label("main");
    a.nop();
    a.nop();
    a.halt();
    Program p = a.finish("main");
    EXPECT_EQ(p.textEnd(), 0x100cu);
    EXPECT_EQ(p.textWords(), 3u);
    EXPECT_TRUE(p.contains(0x1000));
    EXPECT_TRUE(p.contains(0x100b));
    EXPECT_FALSE(p.contains(0x100c));
}

TEST(Assembler, SourceIrRetained)
{
    Assembler a;
    a.text(0x1000);
    a.label("main");
    a.stq(reg::t0, 8, reg::sp);
    a.halt();
    Program p = a.finish("main");
    ASSERT_TRUE(p.source);
    EXPECT_EQ(p.source->entryLabel, "main");
    int stores = 0;
    for (const auto &item : p.source->text.items)
        if (item.kind == AsmItem::Kind::Inst && item.inst.isStore())
            ++stores;
    EXPECT_EQ(stores, 1);
}

/** la must materialize the exact address for every segment we use. */
class LaRangeTest : public ::testing::TestWithParam<Addr>
{
};

TEST_P(LaRangeTest, MaterializesExactAddress)
{
    // Assemble "la t0, label" with the label at the parameter address,
    // then verify the three-instruction expansion computes it.
    Addr target = GetParam();
    Assembler a;
    a.data(target);
    a.label("obj");
    a.quad(1);
    a.text(0x0100'0000);
    a.label("main");
    a.la(reg::t0, "obj");
    a.halt();
    Program p = a.finish("main");

    // Interpret the three instructions by hand.
    const auto &text = p.segments[0];
    auto word = [&](size_t idx) {
        uint32_t w = 0;
        for (int b = 3; b >= 0; --b)
            w = (w << 8) | text.bytes[idx * 4 + b];
        return w;
    };
    auto i0 = decode(word(0));
    auto i1 = decode(word(1));
    auto i2 = decode(word(2));
    ASSERT_TRUE(i0 && i1 && i2);
    int64_t v = i0->imm;          // lda t0, hi(zero)
    v <<= i1->imm;                // sll t0, 14, t0
    v += i2->imm;                 // lda t0, lo(t0)
    EXPECT_EQ(static_cast<Addr>(v), target);
}

INSTANTIATE_TEST_SUITE_P(Layout, LaRangeTest,
                         ::testing::Values(layout::DataBase,
                                           layout::HeapBase,
                                           layout::DebuggerDataBase,
                                           layout::StackTop - 4096,
                                           Addr{0x2000},
                                           Addr{0x03ff'fff8}));

} // namespace
} // namespace dise
