/**
 * @file
 * Debug-tool subsystem tests (src/tools/): seeded-bug findings on the
 * tool-demo workload, the five-backend parity battery (bit-identical
 * tool digests everywhere), the hostile-input decode table for the
 * tool wire verbs, tool enable/disable as replayed interventions
 * (reverse travel unwinds, forward re-travel re-derives), and the
 * ToolFinding events on the ordered session queue.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "debug/backend.hh"
#include "session/debug_session.hh"
#include "tools/toolset.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

const BackendKind kAllBackends[] = {
    BackendKind::Dise,          BackendKind::SingleStep,
    BackendKind::VirtualMemory, BackendKind::HardwareReg,
    BackendKind::Rewrite,
};

SessionOptions
sessionOptions(BackendKind kind = BackendKind::Dise)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 512;
    return o;
}

const char *kAllTools[] = {"asan", "leakcheck", "coverage", "memtrace",
                           "addrleak"};

/** Count findings of one kind emitted by one tool. */
size_t
countFindings(const std::vector<tools::ToolFinding> &fs,
              const std::string &tool, const std::string &kind)
{
    size_t n = 0;
    for (const tools::ToolFinding &f : fs)
        if (f.tool == tool && f.kind == kind)
            ++n;
    return n;
}

// ------------------------------------------------- seeded-bug findings

TEST(ToolDemo, AllFiveToolsFindTheirSeededBugs)
{
    DebugSession session(buildToolDemo(), sessionOptions());
    std::string err;
    for (const char *t : kAllTools)
        ASSERT_TRUE(session.toolEnable(t, {}, &err)) << t << ": " << err;

    StopInfo stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);

    const tools::ToolSet &ts = session.debugger().backend().tools();
    const std::vector<tools::ToolFinding> &fs = ts.findings();

    // asan: the redzone store, the freed-block load, the bogus free.
    EXPECT_EQ(countFindings(fs, "asan", "heap-oob"), 1u);
    EXPECT_EQ(countFindings(fs, "asan", "use-after-free"), 1u);
    EXPECT_EQ(countFindings(fs, "asan", "invalid-free"), 1u);
    // leakcheck: exactly block C leaks; the bogus free is flagged.
    EXPECT_EQ(countFindings(fs, "leakcheck", "leak"), 1u);
    EXPECT_EQ(countFindings(fs, "leakcheck", "bad-free"), 1u);
    // addrleak: C's address reaches the first put, the benign 42
    // does not.
    EXPECT_EQ(countFindings(fs, "addrleak", "addr-leak"), 1u);

    // The oob finding names the seeded store.
    Program demo = buildToolDemo();
    for (const tools::ToolFinding &f : fs)
        if (f.tool == "asan" && f.kind == "heap-oob")
            EXPECT_EQ(f.pc, demo.symbol("oob_store"));

    // Coverage saw the loops; memtrace's suppression actually elided
    // redundant same-granule work from the hammer loop.
    std::map<std::string, tools::ToolStatsRow> rows;
    for (const tools::ToolStatsRow &r : ts.statsRows())
        rows[r.name] = r;
    EXPECT_GT(rows["coverage"].checks, 60u); // >= hammer iterations
    EXPECT_GT(rows["memtrace"].suppressed, 50u);
    EXPECT_GT(rows["memtrace"].checks, rows["memtrace"].suppressed);
    EXPECT_GT(rows["asan"].checks, 0u);
    for (const char *t : kAllTools)
        EXPECT_GT(rows[t].uopsSeen, 0u) << t;

    // Reports render and digests are live.
    for (const char *t : kAllTools) {
        std::string out;
        uint64_t digest = 0;
        ASSERT_TRUE(session.toolReport(t, &out, &digest, &err))
            << t << ": " << err;
        EXPECT_FALSE(out.empty()) << t;
        EXPECT_NE(digest, 0u) << t;
    }
}

TEST(ToolDemo, FindingsLandOnTheEventQueue)
{
    DebugSession session(buildToolDemo(), sessionOptions());
    std::string err;
    ASSERT_TRUE(session.toolEnable("asan", {}, &err)) << err;
    ASSERT_TRUE(session.toolEnable("leakcheck", {}, &err)) << err;
    session.runToEnd();

    size_t toolEvents = 0;
    bool sawOob = false;
    for (const SessionEvent &ev : session.events().drain()) {
        if (ev.kind != SessionEventKind::ToolFinding)
            continue;
        ++toolEvents;
        EXPECT_FALSE(ev.tool.empty());
        EXPECT_FALSE(ev.detail.empty());
        if (ev.tool == "asan" &&
            ev.detail.rfind("heap-oob", 0) == 0)
            sawOob = true;
    }
    const tools::ToolSet &ts = session.debugger().backend().tools();
    EXPECT_EQ(toolEvents, ts.findings().size());
    EXPECT_TRUE(sawOob);
}

TEST(ToolDemo, AsanRedzoneConfigIsHonored)
{
    // A 8-byte redzone still catches the +32 store (first granule past
    // the block is poisoned); a tiny redzone on a *distant* store is
    // the config contract worth testing — so instead verify the knob
    // round-trips into the report.
    DebugSession session(buildToolDemo(), sessionOptions());
    std::string err;
    ASSERT_TRUE(session.toolEnable("asan", {{"redzone", "64"}}, &err))
        << err;
    session.runToEnd();
    std::string out;
    uint64_t digest = 0;
    ASSERT_TRUE(session.toolReport("asan", &out, &digest, &err)) << err;
    EXPECT_NE(out.find("redzone=64B"), std::string::npos) << out;
}

// ------------------------------------------------ five-backend parity

TEST(ToolParity, IdenticalFindingsAndDigestsOnAllFiveBackends)
{
    // The battery: every tool enabled on every backend over the same
    // workload must produce bit-identical serialized tool state.
    std::map<std::string, uint64_t> reference;
    std::vector<tools::ToolFinding> refFindings;
    bool first = true;
    for (BackendKind kind : kAllBackends) {
        DebugSession session(buildToolDemo(), sessionOptions(kind));
        std::string err;
        for (const char *t : kAllTools)
            ASSERT_TRUE(session.toolEnable(t, {}, &err))
                << backendName(kind) << "/" << t << ": " << err;
        StopInfo stop = session.runToEnd();
        EXPECT_EQ(stop.reason, StopReason::Halted) << backendName(kind);

        const tools::ToolSet &ts = session.debugger().backend().tools();
        if (first) {
            refFindings = ts.findings();
            EXPECT_FALSE(refFindings.empty());
            for (const char *t : kAllTools)
                reference[t] = ts.digest(t);
            first = false;
            continue;
        }
        for (const char *t : kAllTools)
            EXPECT_EQ(ts.digest(t), reference[t])
                << backendName(kind) << "/" << t;
        const std::vector<tools::ToolFinding> &fs = ts.findings();
        ASSERT_EQ(fs.size(), refFindings.size()) << backendName(kind);
        for (size_t i = 0; i < fs.size(); ++i) {
            EXPECT_EQ(fs[i].tool, refFindings[i].tool);
            EXPECT_EQ(fs[i].kind, refFindings[i].kind);
            EXPECT_EQ(fs[i].pc, refFindings[i].pc);
            EXPECT_EQ(fs[i].addr, refFindings[i].addr);
            EXPECT_EQ(fs[i].detail, refFindings[i].detail);
        }
    }
}

// ------------------------------------------- wire verbs: hostile input

TEST(ToolWire, HostileInputDecodeTable)
{
    DebugSession session(buildToolDemo(), sessionOptions());

    struct Case
    {
        const char *line;     ///< raw wire line
        bool ok;              ///< expected response status
        const char *needle;   ///< substring the error must carry
    };
    const Case table[] = {
        // Decode-level rejections.
        {"tool-enable", false, "needs name="},
        {"tool-disable", false, "needs name="},
        {"tool-report", false, "needs name="},
        {"tool-enable name=", false, "needs name="},
        {"tool-enable name=asan cfg.=1", false, "configuration key"},
        // A bad escape in the key survives as a literal and is then
        // rejected as an unknown config key.
        {"tool-enable name=asan cfg.red%zz=1", false, "red%zz"},
        {"tool-enable name=asan redzone", false, ""},
        // Semantic rejections.
        {"tool-enable name=nosuchtool", false, "unknown tool"},
        {"tool-enable name=asan cfg.redzone=0", false, "redzone"},
        {"tool-enable name=asan cfg.redzone=banana", false, "redzone"},
        {"tool-enable name=asan cfg.bogus=1", false, "bogus"},
        {"tool-enable name=memtrace cfg.suppress=2", false, "suppress"},
        {"tool-disable name=asan", false, "not enabled"},
        {"tool-report name=asan", false, "not enabled"},
        {"tool-report name=nosuchtool", false, "unknown tool"},
        // The happy path, for contrast.
        {"tool-list", true, ""},
        {"tool-enable name=asan cfg.redzone=16", true, ""},
        {"tool-enable name=asan", false, "already enabled"},
        {"tool-report name=asan", true, ""},
        {"tool-disable name=asan", true, ""},
        {"tool-disable name=asan", false, "not enabled"},
    };
    for (const Case &c : table) {
        Response resp;
        std::string err;
        ASSERT_TRUE(decodeResponse(session.handleEncoded(c.line), resp,
                                   &err))
            << c.line << ": " << err;
        EXPECT_EQ(resp.status == ResponseStatus::Ok, c.ok)
            << c.line << " -> " << resp.error;
        if (!c.ok && c.needle[0]) {
            EXPECT_NE(resp.error.find(c.needle), std::string::npos)
                << c.line << " -> " << resp.error;
        }
    }
}

TEST(ToolWire, EnableRunReportOverTheWire)
{
    DebugSession session(buildToolDemo(), sessionOptions());
    Response resp;
    ASSERT_TRUE(decodeResponse(
        session.handleEncoded("tool-enable name=memtrace "
                              "cfg.suppress=1"),
        resp));
    ASSERT_EQ(resp.status, ResponseStatus::Ok);

    ASSERT_TRUE(
        decodeResponse(session.handleEncoded("run-to-end"), resp));
    ASSERT_EQ(resp.status, ResponseStatus::Ok);

    ASSERT_TRUE(decodeResponse(
        session.handleEncoded("tool-report name=memtrace"), resp));
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    EXPECT_NE(resp.text.find("suppress=1"), std::string::npos)
        << resp.text;
    EXPECT_NE(resp.text.find("suppressed"), std::string::npos);

    // tool-list marks enabled tools.
    ASSERT_TRUE(decodeResponse(session.handleEncoded("tool-list"), resp));
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    EXPECT_NE(resp.text.find("memtrace*"), std::string::npos)
        << resp.text;
    EXPECT_NE(resp.text.find("asan"), std::string::npos);
}

// ------------------------------------ interventions: travel + replay

TEST(ToolTravel, ReverseUnwindsEnableAndForwardRearms)
{
    DebugSession session(buildToolDemo(), sessionOptions());
    // Advance a little, then enable asan mid-run: the enable is a
    // logged intervention at this stream position.
    session.stepi(40);
    std::string err;
    ASSERT_TRUE(session.toolEnable("asan", {}, &err)) << err;
    StopInfo stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);

    const tools::ToolSet &ts = session.debugger().backend().tools();
    uint64_t endDigest = ts.digest("asan");
    size_t endFindings = ts.findings().size();
    EXPECT_NE(endDigest, 0u);
    EXPECT_GT(endFindings, 0u);
    uint64_t endState = session.digest();

    // Travel back before the enable point: the tool must be unwound.
    SessionStats st = session.stats();
    ASSERT_GT(st.appInsts, 50u);
    session.reverseStep(st.appInsts - 20);
    EXPECT_FALSE(ts.isEnabled("asan"));

    // Forward re-travel re-arms the tool at the recorded position and
    // re-derives bit-identical state.
    stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);
    EXPECT_TRUE(ts.isEnabled("asan"));
    EXPECT_EQ(ts.digest("asan"), endDigest);
    EXPECT_EQ(ts.findings().size(), endFindings);
    EXPECT_EQ(session.digest(), endState);
}

TEST(ToolTravel, MidRunDisableIsReplayedToo)
{
    DebugSession session(buildToolDemo(), sessionOptions());
    std::string err;
    ASSERT_TRUE(session.toolEnable("coverage", {}, &err)) << err;
    session.stepi(60);
    ASSERT_TRUE(session.toolDisable("coverage", &err)) << err;
    session.stepi(40);
    ASSERT_TRUE(session.toolEnable("memtrace", {}, &err)) << err;
    StopInfo stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);

    const tools::ToolSet &ts = session.debugger().backend().tools();
    EXPECT_FALSE(ts.isEnabled("coverage"));
    ASSERT_TRUE(ts.isEnabled("memtrace"));
    uint64_t endDigest = ts.digest("memtrace");
    uint64_t endState = session.digest();

    // Cross the whole intervention history backwards, then forwards.
    SessionStats st = session.stats();
    session.reverseStep(st.appInsts - 10);
    EXPECT_FALSE(ts.isEnabled("memtrace"));
    // Landed between enable(coverage)@0 and disable@60: coverage is
    // live again on the unwound timeline.
    EXPECT_TRUE(ts.isEnabled("coverage"));
    stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);
    EXPECT_FALSE(ts.isEnabled("coverage"));
    EXPECT_EQ(ts.digest("memtrace"), endDigest);
    EXPECT_EQ(session.digest(), endState);
}

TEST(ToolTravel, IntervalReplayVerifiesWithToolsEnabled)
{
    // The interval-parallel reconstruction re-arms tools per interval
    // from the journal; its stitched digest must match the live one.
    DebugSession session(buildToolDemo(), sessionOptions());
    std::string err;
    ASSERT_TRUE(session.toolEnable("asan", {}, &err)) << err;
    session.stepi(100);
    ASSERT_TRUE(session.toolEnable("memtrace", {}, &err)) << err;
    StopInfo stop = session.runToEnd();
    EXPECT_EQ(stop.reason, StopReason::Halted);

    IntervalReplay::Report rep = session.verifyReplay(3);
    EXPECT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.finalDigest, session.digest());
}

TEST(ToolTravel, RefusedEnableLeavesTimelineIntact)
{
    // A refused enable (unknown tool / bad config) must not truncate
    // the redo timeline: reverse after the refusal still works.
    DebugSession session(buildToolDemo(), sessionOptions());
    session.stepi(50);
    std::string err;
    EXPECT_FALSE(session.toolEnable("nosuchtool", {}, &err));
    EXPECT_FALSE(
        session.toolEnable("asan", {{"redzone", "huge"}}, &err));
    uint64_t before = session.stats().appInsts;
    session.stepi(25);
    session.reverseStep(25);
    EXPECT_EQ(session.stats().appInsts, before);
}

} // namespace
} // namespace dise
