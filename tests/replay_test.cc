/**
 * @file
 * Time-travel subsystem tests: copy-on-write undo-log mechanics and
 * cost proportionality, restore-side cache invalidation, same-seed
 * determinism (digest equality), checkpoint/restore/re-run
 * equivalence, reverse-continue landing on the exact watchpoint-hit
 * event under every backend, reverse-step exactness, and logged
 * debugger interventions (timeline forks, DISE-table unwinding).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "debug/debugger.hh"
#include "isa/encoding.hh"
#include "replay/interval_replay.hh"
#include "replay/time_travel.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

using namespace reg;

// ---------------------------------------------------- undo-log basics

TEST(UndoLog, CostProportionalToDirtyPagesNotFootprint)
{
    MainMemory mem;
    // Big footprint: touch 512 distinct pages.
    for (uint64_t p = 0; p < 512; ++p)
        mem.write(0x10000 + p * PageBytes, 8, p + 1);
    ASSERT_GE(mem.pageCount(), 512u);

    mem.beginUndoLog();
    // Dirty only 3 pages, repeatedly: pre-images are captured once per
    // page per interval, so the interval size tracks pages dirtied.
    for (int rep = 0; rep < 100; ++rep)
        for (uint64_t p = 0; p < 3; ++p)
            mem.write(0x10000 + p * PageBytes, 8, rep);
    EXPECT_EQ(mem.undoPagesPending(), 3u);
    UndoLog log = mem.sealUndoInterval();
    EXPECT_EQ(log.size(), 3u);

    // The next interval captures them afresh.
    mem.write(0x10000, 8, 7);
    EXPECT_EQ(mem.undoPagesPending(), 1u);
    mem.endUndoLog();
}

TEST(UndoLog, ApplyRestoresPreImages)
{
    MainMemory mem;
    mem.write(0x4000, 8, 0x1111);
    mem.write(0x8000, 8, 0x2222);
    mem.beginUndoLog();
    mem.sealUndoInterval(); // fresh interval

    mem.write(0x4000, 8, 0xaaaa);
    mem.write(0x8000, 8, 0xbbbb);
    mem.write(0xc000, 8, 0xcccc); // page that did not exist before
    UndoLog log = mem.sealUndoInterval();
    EXPECT_EQ(log.size(), 3u);

    mem.applyUndo(log);
    EXPECT_EQ(mem.read(0x4000, 8), 0x1111u);
    EXPECT_EQ(mem.read(0x8000, 8), 0x2222u);
    EXPECT_EQ(mem.read(0xc000, 8), 0u);
    mem.endUndoLog();
}

TEST(UndoLog, RestoreNotifiesCodeWatchers)
{
    struct Recorder : CodeWatcher
    {
        std::vector<uint64_t> frames;
        void onCodeWrite(uint64_t frame) override
        {
            frames.push_back(frame);
        }
    } rec;

    MainMemory mem;
    mem.write(0x4000, 4, 0x1234);
    mem.addCodeWatcher(&rec);
    mem.beginUndoLog();
    mem.sealUndoInterval();

    mem.markCodePage(0x4000); // as a µop cache would after decoding
    mem.write(0x4000, 4, 0x5678);
    ASSERT_EQ(rec.frames.size(), 1u); // the write itself invalidates

    UndoLog log = mem.sealUndoInterval();
    mem.markCodePage(0x4000); // decodes re-cached after the write
    mem.applyUndo(log);
    // Restoring the pre-image is a modification: stale decodes for the
    // restored page must be dropped again.
    ASSERT_EQ(rec.frames.size(), 2u);
    EXPECT_EQ(rec.frames[1], 0x4000u / PageBytes);
    EXPECT_EQ(mem.read(0x4000, 4), 0x1234u);
    mem.removeCodeWatcher(&rec);
    mem.endUndoLog();
}

// ----------------------------------------- a heisenbug-style program

struct Session
{
    DebugTarget target;
    Debugger dbg;

    explicit Session(BackendKind kind, uint64_t cpInterval = 500)
        : target(buildHeisenbugDemo()), dbg(target, options(kind))
    {
        dbg.watch(WatchSpec::scalar("directory[0]",
                                    target.symbol("directory"), 8));
        EXPECT_TRUE(dbg.attach());
        TimeTravelConfig cfg;
        cfg.checkpointInterval = cpInterval;
        dbg.timeTravel(cfg);
    }

    static DebuggerOptions
    options(BackendKind kind)
    {
        DebuggerOptions o;
        o.backend = kind;
        return o;
    }

    TimeTravel &tt() { return dbg.timeTravel(); }
};

// -------------------------------------------------------- determinism

TEST(Replay, SameSeedDoubleRunDigestEquality)
{
    Session a(BackendKind::Dise);
    Session b(BackendKind::Dise);
    StopInfo ea = a.tt().runToEnd();
    StopInfo eb = b.tt().runToEnd();
    ASSERT_EQ(ea.reason, StopReason::Halted);
    ASSERT_EQ(eb.reason, StopReason::Halted);
    EXPECT_EQ(ea.time, eb.time);
    EXPECT_EQ(a.tt().eventCount(), b.tt().eventCount());
    EXPECT_EQ(a.tt().digest(), b.tt().digest());
}

TEST(Replay, CheckpointRestoreRerunEquivalence)
{
    Session s(BackendKind::Dise, 300);
    StopInfo end = s.tt().runToEnd();
    ASSERT_EQ(end.reason, StopReason::Halted);
    ASSERT_GT(s.tt().checkpointCount(), 3u);
    uint64_t endDigest = s.tt().digest();
    size_t events = s.tt().eventCount();

    // Travel most of the way back, then re-run to the end: the replay
    // must land on the identical final state and event timeline.
    StopInfo back = s.tt().reverseStep(end.appInsts - 5);
    EXPECT_EQ(back.appInsts, 5u);
    ASSERT_GE(s.tt().stats().restores, 1u);
    StopInfo end2 = s.tt().runToEnd();
    EXPECT_EQ(end2.time, end.time);
    EXPECT_EQ(s.tt().eventCount(), events);
    EXPECT_EQ(s.tt().digest(), endDigest);
}

TEST(Replay, ReverseStepIsExact)
{
    Session s(BackendKind::Dise);
    StopInfo p10 = s.tt().stepi(10);
    uint64_t d10 = s.tt().digest();
    StopInfo p15 = s.tt().stepi(5);
    ASSERT_EQ(p15.appInsts, 10u + 5u);
    StopInfo backAt10 = s.tt().reverseStep(5);
    EXPECT_EQ(backAt10.appInsts, p10.appInsts);
    EXPECT_EQ(backAt10.time, p10.time);
    EXPECT_EQ(backAt10.pc, p10.pc);
    EXPECT_EQ(s.tt().digest(), d10);
}

// --------------------------------------- reverse-continue, 5 backends

class AllBackendsReverse : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(AllBackendsReverse, ReverseContinueLandsOnCorruptingStore)
{
    Session s(GetParam());
    StopInfo end = s.tt().runToEnd();
    ASSERT_EQ(end.reason, StopReason::Halted);
    ASSERT_GE(s.dbg.watchEvents().size(), 2u)
        << "scenario should corrupt the directory at least twice";
    size_t events = s.tt().eventCount();
    uint64_t endDigest = s.tt().digest();
    Addr lastHitPc = s.dbg.watchEvents().back().pc;

    // Reverse-continue from the end lands on the last watchpoint hit.
    StopInfo hit = s.tt().reverseContinue();
    ASSERT_EQ(hit.reason, StopReason::Event);
    EXPECT_EQ(hit.eventIndex, static_cast<int>(events) - 1);
    EXPECT_EQ(hit.mark.kind, EventKind::Watch);
    EXPECT_EQ(hit.mark.pc, lastHitPc);
    EXPECT_LT(hit.time, end.time);
    // The event list is rolled back to exactly this hit.
    EXPECT_EQ(s.dbg.watchEvents().size(),
              static_cast<size_t>(hit.mark.index) + 1);
    // Backends that detect at the store itself pinpoint the culprit.
    if (GetParam() == BackendKind::Dise ||
        GetParam() == BackendKind::VirtualMemory ||
        GetParam() == BackendKind::HardwareReg)
        EXPECT_EQ(hit.mark.pc, s.target.symbol("the_store"));

    // Again: the previous hit, strictly earlier.
    StopInfo prev = s.tt().reverseContinue();
    ASSERT_EQ(prev.reason, StopReason::Event);
    EXPECT_EQ(prev.eventIndex, hit.eventIndex - 1);
    EXPECT_LT(prev.time, hit.time);

    // Forward to the end again: bit-identical final state.
    StopInfo end2 = s.tt().runToEnd();
    EXPECT_EQ(end2.time, end.time);
    EXPECT_EQ(s.tt().digest(), endDigest);
}

TEST_P(AllBackendsReverse, RunToEventTravelsBothWays)
{
    Session s(GetParam());
    s.tt().runToEnd();
    size_t events = s.tt().eventCount();
    ASSERT_GE(events, 2u);

    StopInfo first = s.tt().runToEvent(0);
    ASSERT_EQ(first.reason, StopReason::Event);
    EXPECT_EQ(first.eventIndex, 0);
    EXPECT_EQ(s.tt().eventsSoFar(), 1u);

    StopInfo last = s.tt().runToEvent(events - 1);
    ASSERT_EQ(last.reason, StopReason::Event);
    EXPECT_EQ(last.eventIndex, static_cast<int>(events) - 1);
    EXPECT_EQ(s.tt().eventsSoFar(), events);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllBackendsReverse,
                         ::testing::Values(BackendKind::Dise,
                                           BackendKind::SingleStep,
                                           BackendKind::VirtualMemory,
                                           BackendKind::HardwareReg,
                                           BackendKind::Rewrite));

TEST(Replay, ReverseContinueTerminatesOnCoincidentEvents)
{
    // Two watchpoints on the same cell fire at the same micro-op,
    // producing marks with identical stream positions. Reverse-
    // continue must step past the whole coincident group or it would
    // re-land on the same position forever.
    DebugTarget target(buildHeisenbugDemo());
    DebuggerOptions o;
    o.backend = BackendKind::SingleStep;
    Debugger dbg(target, o);
    dbg.watch(WatchSpec::scalar("d0", target.symbol("directory"), 8));
    dbg.watch(WatchSpec::scalar("d0b", target.symbol("directory"), 8));
    ASSERT_TRUE(dbg.attach());
    TimeTravelConfig cfg;
    cfg.checkpointInterval = 500;
    TimeTravel &tt = dbg.timeTravel(cfg);
    tt.runToEnd();
    ASSERT_GE(tt.eventCount(), 4u);

    uint64_t prevTime = ~uint64_t{0};
    size_t stops = 0;
    for (StopInfo hit = tt.reverseContinue();
         hit.reason == StopReason::Event; hit = tt.reverseContinue()) {
        ASSERT_LT(hit.time, prevTime) << "no backward progress";
        prevTime = hit.time;
        ASSERT_LE(++stops, tt.eventCount());
    }
    EXPECT_GE(stops, 2u);
}

// ------------------------------------------------------ interventions

TEST(Replay, PokeForksTimelineAndReplaysDeterministically)
{
    Session s(BackendKind::Dise);
    StopInfo end = s.tt().runToEnd();
    size_t originalEvents = s.tt().eventCount();

    // Travel back to before the first corruption and scribble on the
    // watched cell: the future timeline is materially different now.
    s.tt().runToEvent(0);
    StopInfo before = s.tt().reverseStep(4);
    s.tt().pokeMemory(s.target.symbol("directory"), 8, 0x9999);
    // The explored future is stale now.
    EXPECT_EQ(s.tt().eventCount(), s.tt().eventsSoFar());
    EXPECT_LT(s.tt().eventCount(), originalEvents);

    StopInfo endA = s.tt().runToEnd();
    uint64_t digestA = s.tt().digest();
    size_t eventsA = s.tt().eventCount();

    // Replay across the poke: it is re-applied at its recorded time.
    s.tt().reverseStep(endA.appInsts - before.appInsts);
    StopInfo endB = s.tt().runToEnd();
    EXPECT_EQ(endB.time, endA.time);
    EXPECT_EQ(s.tt().eventCount(), eventsA);
    EXPECT_EQ(s.tt().digest(), digestA);
    (void)end;
}

TEST(Replay, RemovalUnwindPreservesPatternTableOrder)
{
    // Slot order breaks equal-specificity match ties. Remove two
    // same-anchor productions via interventions, reverse across both
    // removals, and verify the original winner still wins — a
    // first-free re-insert would have swapped their slots.
    Session s(BackendKind::Dise);
    const Addr anchor = 0x7fff0000; // never executed
    Production pa;
    pa.name = "first";
    pa.pattern = Pattern::forPc(anchor);
    pa.replacement.push_back(TemplateInst::trigInst());
    Production pb = pa;
    pb.name = "second";
    ProductionId idA = s.target.engine.addProduction(pa);
    ProductionId idB = s.target.engine.addProduction(pb);

    Inst nop;
    nop.op = Opcode::NOP;
    ASSERT_EQ(s.target.engine.matchFunctional(nop, anchor)->name,
              "first");

    s.tt().stepi(10);
    s.tt().removeProduction(idA);
    s.tt().stepi(10);
    s.tt().removeProduction(idB);
    s.tt().stepi(10);
    EXPECT_EQ(s.target.engine.matchFunctional(nop, anchor), nullptr);

    s.tt().reverseStep(25); // back across both removals
    const Production *winner =
        s.target.engine.matchFunctional(nop, anchor);
    ASSERT_NE(winner, nullptr);
    EXPECT_EQ(winner->name, "first");
}

TEST(Replay, ProductionInterventionUnwindsAcrossReverse)
{
    Session s(BackendKind::Dise);
    size_t baseProds = s.target.engine.productionCount();
    s.tt().stepi(50);

    // Debugger installs an extra (inert) production mid-session.
    Production p;
    p.name = "inert";
    p.pattern = Pattern::forPc(0x7fff0000); // never matches
    p.replacement.push_back(TemplateInst::trigInst());
    s.tt().addProduction(p);
    EXPECT_EQ(s.target.engine.productionCount(), baseProds + 1);

    s.tt().stepi(50);
    // Reverse across the intervention: the table mutation unwinds.
    s.tt().reverseStep(75);
    EXPECT_EQ(s.target.engine.productionCount(), baseProds);
    // Forward across it again: re-applied.
    s.tt().stepi(50);
    EXPECT_EQ(s.target.engine.productionCount(), baseProds + 1);
}

// ------------------------------------------- restore cache invalidation

TEST(Replay, RestoreInvalidatesStaleDecodes)
{
    // Self-modifying scenario: run to the end (fully populating the
    // predecoded µop cache for the text page), travel back to before
    // the first corruption, and patch the culprit store into a NOP via
    // a poke. If any stale decode survived the restore, the old store
    // would still execute; with correct invalidation the new timeline
    // never fires the watchpoint again.
    Session s(BackendKind::Dise);
    StopInfo end = s.tt().runToEnd();
    ASSERT_GE(s.tt().eventCount(), 1u);

    s.tt().runToEvent(0);
    s.tt().reverseStep(30); // safely before the first corrupting store
    Inst nop;
    nop.op = Opcode::NOP;
    s.tt().pokeMemory(s.target.symbol("the_store"), 4, encode(nop));
    EXPECT_EQ(s.tt().eventCount(), 0u); // explored future discarded

    StopInfo end2 = s.tt().runToEnd();
    EXPECT_EQ(end2.reason, StopReason::Halted);
    // No store ever executes again: the directory is never corrupted.
    EXPECT_EQ(s.tt().eventCount(), 0u);
    EXPECT_EQ(s.dbg.watchEvents().size(), 0u);
    EXPECT_NE(s.tt().digest(), 0u);
    (void)end;

    // The patched timeline replays deterministically too.
    uint64_t d1 = s.tt().digest();
    s.tt().reverseStep(end2.appInsts);
    s.tt().runToEnd();
    EXPECT_EQ(s.tt().digest(), d1);
}

// ------------------------------------------------------- sliced travel

TEST(SlicedTravel, BoundedQuantaMatchOneShotReverseContinue)
{
    // The same reverse-continue, one driven in tiny preemptible quanta
    // (the job scheduler's view), must land on the identical stop and
    // state as the one-shot verb.
    Session a(BackendKind::Dise), b(BackendKind::Dise);
    a.tt().runToEnd();
    b.tt().runToEnd();
    ASSERT_GE(a.tt().eventCount(), 2u);

    StopInfo ref = a.tt().reverseContinue();
    bool done = false;
    StopInfo got = b.tt().travelBegin(TravelVerb::ReverseContinue, 0,
                                      done);
    unsigned slices = 0;
    while (!done) {
        got = b.tt().travelStep(25, done);
        ++slices;
    }
    EXPECT_EQ(got.reason, ref.reason);
    EXPECT_EQ(got.eventIndex, ref.eventIndex);
    EXPECT_EQ(got.time, ref.time);
    EXPECT_EQ(got.pc, ref.pc);
    EXPECT_EQ(a.tt().digest(), b.tt().digest());
    // Interim quanta reported Step, never a user-visible stop.
    EXPECT_GE(slices, 1u);

    // reverse-step and run-to-event slice identically.
    StopInfo refStep = a.tt().reverseStep(40);
    got = b.tt().travelBegin(TravelVerb::ReverseStep, 40, done);
    while (!done)
        got = b.tt().travelStep(15, done);
    EXPECT_EQ(got.time, refStep.time);
    EXPECT_EQ(a.tt().digest(), b.tt().digest());

    size_t lastEvent = a.tt().eventCount() - 1;
    StopInfo refEvt = a.tt().runToEvent(lastEvent);
    got = b.tt().travelBegin(TravelVerb::RunToEvent, lastEvent, done);
    while (!done)
        got = b.tt().travelStep(30, done);
    EXPECT_EQ(got.reason, StopReason::Event);
    EXPECT_EQ(got.time, refEvt.time);
    EXPECT_EQ(a.tt().digest(), b.tt().digest());
}

TEST(SlicedTravel, AbandonedTravelLeavesAValidPosition)
{
    // An interrupted job stops mid-travel; the session must be usable
    // (and deterministic) from the intermediate position.
    Session s(BackendKind::Dise);
    StopInfo end = s.tt().runToEnd();
    uint64_t endDigest = s.tt().digest();

    bool done = false;
    s.tt().travelBegin(TravelVerb::ReverseStep, end.appInsts - 2, done);
    if (!done)
        s.tt().travelStep(1, done); // one tiny quantum, then abandon
    StopInfo resumed = s.tt().runToEnd(); // new verb cancels the travel
    EXPECT_EQ(resumed.reason, StopReason::Halted);
    EXPECT_EQ(resumed.time, end.time);
    EXPECT_EQ(s.tt().digest(), endDigest);
}

// ------------------------------------------------- pokes at event parks

TEST(Replay, PokeAtEventStopIsRecordedAndReplayed)
{
    // A gdb user writing memory at a watchpoint stop: the session sits
    // mid-expansion (an event park), which used to be refused. The
    // poke must apply, be recorded at its exact µop time, and replay
    // deterministically across reverse travel.
    Session s(BackendKind::Dise);
    StopInfo hit = s.tt().cont();
    ASSERT_EQ(hit.reason, StopReason::Event);

    Addr scratch = s.target.symbol("directory") + 64;
    s.tt().pokeMemory(scratch, 8, 0xfeedface);
    EXPECT_EQ(s.target.mem.read(scratch, 8), 0xfeedfaceu);

    // Travel across the poke and back: the intervention re-applies at
    // the park's exact stream position.
    StopInfo later = s.tt().stepi(100);
    ASSERT_GT(later.time, hit.time);
    EXPECT_EQ(s.target.mem.read(scratch, 8), 0xfeedfaceu);
    StopInfo backAtPark = s.tt().runToEvent(hit.eventIndex);
    EXPECT_EQ(backAtPark.time, hit.time);
    EXPECT_EQ(s.target.mem.read(scratch, 8), 0xfeedfaceu);
    StopInfo before = s.tt().reverseStep(5);
    ASSERT_LT(before.time, hit.time);
    EXPECT_NE(s.target.mem.read(scratch, 8), 0xfeedfaceu);
    StopInfo again = s.tt().runToEvent(hit.eventIndex);
    EXPECT_EQ(again.time, hit.time);
    EXPECT_EQ(s.target.mem.read(scratch, 8), 0xfeedfaceu);

    // Arbitrary mid-expansion positions (not an event park) stay
    // refused — there is no client-visible way to reach them anyway.
    // (Covered by the atBoundary assert; nothing to drive here.)
}

// ------------------------------------------- interval-parallel replay

class AllBackendsIntervalReplay
    : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(AllBackendsIntervalReplay, ParallelDigestsMatchSerialAndLive)
{
    // Reconstruct the explored timeline as independent checkpoint
    // intervals on share-nothing replicas: serial (1 worker) and
    // parallel (2 and 4 workers) must produce bit-identical stitched
    // digests, equal to the live session's own digest.
    SessionOptions so;
    so.debugger.backend = GetParam();
    so.timeTravel.checkpointInterval = 300;
    DebugSession s(buildHeisenbugDemo(), so);
    Program demo = buildHeisenbugDemo();
    s.setWatch(WatchSpec::scalar("directory", demo.symbol("directory"),
                                 8));
    StopInfo hit = s.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    StopInfo end = s.runToEnd();
    ASSERT_EQ(end.reason, StopReason::Halted);

    IntervalReplay::Report serial = s.verifyReplay(1);
    ASSERT_TRUE(serial.ok) << serial.error;
    EXPECT_GT(serial.intervals.size(), 3u)
        << "timeline should span several checkpoint intervals";
    EXPECT_EQ(serial.finalDigest, s.digest());
    EXPECT_GT(serial.marksVerified, 0u);

    // Static assignment (stealing off) must reproduce the serial cut
    // and its per-interval digests exactly.
    for (unsigned workers : {2u, 4u}) {
        IntervalReplay::Report par = s.verifyReplay(workers, 0, false);
        ASSERT_TRUE(par.ok) << par.error;
        EXPECT_EQ(par.finalDigest, serial.finalDigest);
        EXPECT_EQ(par.marksVerified, serial.marksVerified);
        ASSERT_EQ(par.intervals.size(), serial.intervals.size());
        for (size_t i = 0; i < par.intervals.size(); ++i)
            EXPECT_EQ(par.intervals[i].endDigest,
                      serial.intervals[i].endDigest)
                << "interval " << i;
    }

    // Work-stealing may cut the timeline finer (chunk boundaries
    // depend on thread timing), but every boundary shared with the
    // serial cut must carry the identical digest, and the stitched
    // result is bit-identical regardless.
    std::map<size_t, uint64_t> serialStarts;
    for (const IntervalReplay::Interval &iv : serial.intervals)
        serialStarts[iv.cpFrom] = iv.startDigest;
    for (unsigned workers : {2u, 4u}) {
        IntervalReplay::Report par = s.verifyReplay(workers);
        ASSERT_TRUE(par.ok) << par.error;
        EXPECT_EQ(par.finalDigest, serial.finalDigest);
        EXPECT_EQ(par.marksVerified, serial.marksVerified);
        EXPECT_GE(par.intervals.size(), serial.intervals.size());
        for (const IntervalReplay::Interval &iv : par.intervals) {
            auto it = serialStarts.find(iv.cpFrom);
            if (it != serialStarts.end())
                EXPECT_EQ(iv.startDigest, it->second)
                    << "chunk starting at checkpoint " << iv.cpFrom;
        }
    }
}

TEST_P(AllBackendsIntervalReplay, WorkStealingOddRatiosStitchClean)
{
    // The PR 5 debt case: worker counts that do not divide the piece
    // count — and worker counts *larger* than the piece count, where
    // static assignment left cores idle. With stealing both must
    // stitch bit-identically to the live digest.
    SessionOptions so;
    so.debugger.backend = GetParam();
    so.timeTravel.checkpointInterval = 300;
    Program demo = buildHeisenbugDemo();
    DebugSession s(demo, so);
    s.setWatch(WatchSpec::scalar("directory", demo.symbol("directory"),
                                 8));
    StopInfo hit = s.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    StopInfo end = s.runToEnd();
    ASSERT_EQ(end.reason, StopReason::Halted);
    uint64_t live = s.digest();
    IntervalReplay::Report serial = s.verifyReplay(1);
    ASSERT_TRUE(serial.ok) << serial.error;

    // 3 workers over a 7-range seed cut.
    IntervalReplay::Report odd = s.verifyReplay(3, 7, true);
    ASSERT_TRUE(odd.ok) << odd.error;
    EXPECT_EQ(odd.finalDigest, live);
    EXPECT_EQ(odd.marksVerified, serial.marksVerified);

    // 4 workers over a 2-range seed cut: only stealing can hand the
    // extra workers anything to do.
    IntervalReplay::Report wide = s.verifyReplay(4, 2, true);
    ASSERT_TRUE(wide.ok) << wide.error;
    EXPECT_EQ(wide.finalDigest, live);
    EXPECT_EQ(wide.marksVerified, serial.marksVerified);
}

TEST(IntervalReplay, StealSplitsInFlightRangesAtCheckpointBoundaries)
{
    // Drive the pool by hand so the steal path is deterministic: with
    // both seed ranges in flight, further claims must split them, the
    // victims must stop exactly at the handoff boundaries, and the
    // stolen chunks must stitch into the same digest chain.
    SessionOptions so;
    so.timeTravel.checkpointInterval = 250;
    Program demo = buildHeisenbugDemo();
    DebugSession s(demo, so);
    s.setWatch(WatchSpec::scalar("directory", demo.symbol("directory"),
                                 8));
    StopInfo hit = s.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    s.runToEnd();

    std::unique_ptr<IntervalReplay> ir = s.beginIntervalReplay(2, true);
    ASSERT_TRUE(ir);
    ASSERT_EQ(ir->intervalCount(), 2u);
    std::unique_ptr<IntervalReplay::Pool> pool = ir->makePool();

    std::vector<std::unique_ptr<IntervalReplay::Worker>> workers;
    workers.push_back(pool->claim());
    workers.push_back(pool->claim());
    ASSERT_TRUE(workers[0] && workers[1]);
    EXPECT_FALSE(workers[0]->result().stolen);
    EXPECT_FALSE(workers[1]->result().stolen);
    // Pending is dry and both ranges are untouched in flight: the
    // next two claims must be steals.
    workers.push_back(pool->claim());
    workers.push_back(pool->claim());
    ASSERT_TRUE(workers[2] && workers[3]);
    EXPECT_TRUE(workers[2]->result().stolen);
    EXPECT_TRUE(workers[3]->result().stolen);
    EXPECT_EQ(pool->steals(), 2u);

    for (auto &w : workers)
        w->prepare();
    // Round-robin tiny budgets: the victims cross checkpoint
    // boundaries while their ends have already been stolen down.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto &w : workers) {
            if (!w)
                continue;
            progress = true;
            if (w->step(500)) {
                pool->complete(*w);
                w.reset();
            }
        }
    }
    // Drain anything still claimable (further steals are possible
    // only from in-flight ranges, and none remain).
    EXPECT_EQ(pool->claim(), nullptr);

    IntervalReplay::Report rep = ir->stitch(pool->take());
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.intervals.size(), 4u);
    EXPECT_EQ(rep.finalDigest, s.digest());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, AllBackendsIntervalReplay,
    ::testing::Values(BackendKind::Dise, BackendKind::SingleStep,
                      BackendKind::VirtualMemory,
                      BackendKind::HardwareReg, BackendKind::Rewrite),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        switch (info.param) {
          case BackendKind::Dise: return "dise";
          case BackendKind::SingleStep: return "singlestep";
          case BackendKind::VirtualMemory: return "vm";
          case BackendKind::HardwareReg: return "hwreg";
          case BackendKind::Rewrite: return "rewrite";
        }
        return "unknown";
    });

TEST(IntervalReplay, ReconstructsAParkedPositionWithInterventions)
{
    // The hard case: the live session sits parked on an event
    // (mid-expansion), with pokes logged both at boundaries and at the
    // park itself. The parallel reconstruction must still stitch to
    // the live digest.
    SessionOptions so;
    so.timeTravel.checkpointInterval = 250;
    Program demo = buildHeisenbugDemo();
    DebugSession s(demo, so);
    s.setWatch(WatchSpec::scalar("directory", demo.symbol("directory"),
                                 8));
    StopInfo hit = s.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    Addr scratch = demo.symbol("directory") + 72;
    ASSERT_TRUE(s.writeMemory(scratch, 8, 0x1234)); // poke at the park
    s.stepi(40);
    ASSERT_TRUE(s.writeMemory(scratch, 8, 0x5678)); // boundary poke
    StopInfo hit2 = s.cont();
    (void)hit2;

    IntervalReplay::Report serial = s.verifyReplay(1);
    ASSERT_TRUE(serial.ok) << serial.error;
    IntervalReplay::Report par = s.verifyReplay(2);
    ASSERT_TRUE(par.ok) << par.error;
    EXPECT_EQ(par.finalDigest, serial.finalDigest);
    EXPECT_EQ(serial.finalDigest, s.digest());
}

} // namespace
} // namespace dise
