/**
 * @file
 * Branch-predictor tests: bimodal/gshare learning, the chooser, BTB
 * target prediction and eviction, and the return-address stack.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace dise {
namespace {

TEST(Predictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true, 0x2000, true);
    EXPECT_TRUE(bp.predictDirection(pc));
}

TEST(Predictor, LearnsNeverTaken)
{
    BranchPredictor bp;
    Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, false, 0, true);
    EXPECT_FALSE(bp.predictDirection(pc));
}

TEST(Predictor, GshareLearnsAlternation)
{
    // A strict T/N/T/N pattern is history-predictable: after warmup
    // the hybrid should get nearly everything right.
    BranchPredictor bp;
    Addr pc = 0x1234;
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        bool pred = bp.predictDirection(pc);
        if (i >= 200 && pred == taken)
            ++correct;
        bp.update(pc, taken, taken ? 0x2000 : 0, true);
    }
    EXPECT_GT(correct, 180);
}

TEST(Predictor, BtbRemembersTargets)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.predictTarget(0x1000), 0u);
    bp.update(0x1000, true, 0xbeef0, false);
    EXPECT_EQ(bp.predictTarget(0x1000), 0xbeef0u);
    bp.update(0x1000, true, 0xcafe0, false);
    EXPECT_EQ(bp.predictTarget(0x1000), 0xcafe0u);
}

TEST(Predictor, BtbCapacityEvicts)
{
    BranchPredictorConfig cfg;
    cfg.btbEntries = 8;
    cfg.btbAssoc = 2; // 4 sets
    BranchPredictor bp(cfg);
    // Fill one set (pcs congruent mod 4 words) beyond capacity.
    bp.update(0x1000, true, 0xa0, false);
    bp.update(0x1000 + 16 * 4, true, 0xb0, false);
    bp.update(0x1000 + 32 * 4, true, 0xc0, false); // evicts 0x1000
    EXPECT_EQ(bp.predictTarget(0x1000), 0u);
    EXPECT_EQ(bp.predictTarget(0x1000 + 32 * 4), 0xc0u);
}

TEST(Predictor, RasPushPop)
{
    BranchPredictor bp;
    bp.pushRas(0x100);
    bp.pushRas(0x200);
    EXPECT_EQ(bp.popRas(), 0x200u);
    EXPECT_EQ(bp.popRas(), 0x100u);
    EXPECT_EQ(bp.popRas(), 0u); // empty
}

TEST(Predictor, RasWrapsAtCapacity)
{
    BranchPredictorConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    for (int i = 1; i <= 6; ++i)
        bp.pushRas(i * 0x10);
    // The two oldest entries were overwritten.
    EXPECT_EQ(bp.popRas(), 0x60u);
    EXPECT_EQ(bp.popRas(), 0x50u);
    EXPECT_EQ(bp.popRas(), 0x40u);
    EXPECT_EQ(bp.popRas(), 0x30u);
}

TEST(Predictor, UnconditionalDoesNotTrainDirection)
{
    BranchPredictor bp;
    Addr pc = 0x3000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true, 0x4000, false); // jumps: BTB only
    // Direction tables untouched: weakly-not-taken initial state.
    EXPECT_FALSE(bp.predictDirection(pc));
}

} // namespace
} // namespace dise
