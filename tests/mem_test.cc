/**
 * @file
 * Memory-system tests: functional memory (including page protection),
 * tag-only caches (hits, LRU, write-back), TLBs, and the composed
 * hierarchy with its bus bandwidth model.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/hierarchy.hh"
#include "mem/mainmem.hh"

namespace dise {
namespace {

TEST(MainMemory, ReadWriteSizes)
{
    MainMemory mem;
    mem.write(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(mem.read(0x1000, 1), 0x88u);
    EXPECT_EQ(mem.read(0x1004, 4), 0x11223344u);
}

TEST(MainMemory, UntouchedReadsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read(0xdead000, 8), 0u);
}

TEST(MainMemory, SignedReads)
{
    MainMemory mem;
    mem.write(0x100, 4, 0xfffffffe);
    EXPECT_EQ(mem.readSigned(0x100, 4), -2);
    mem.write(0x200, 1, 0x80);
    EXPECT_EQ(mem.readSigned(0x200, 1), -128);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory mem;
    Addr addr = PageBytes - 4;
    mem.write(addr, 8, 0xaabbccdd11223344ull);
    EXPECT_EQ(mem.read(addr, 8), 0xaabbccdd11223344ull);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(MainMemory, BlockCopyRoundTrip)
{
    MainMemory mem;
    std::vector<uint8_t> src(10000);
    Rng rng(5);
    for (auto &b : src)
        b = static_cast<uint8_t>(rng.below(256));
    mem.writeBlock(0x3ffe, src.data(), src.size());
    std::vector<uint8_t> dst(src.size());
    mem.readBlock(0x3ffe, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(MainMemory, PageProtection)
{
    MainMemory mem;
    EXPECT_FALSE(mem.isWriteProtected(0x5000));
    mem.protectPage(0x5123);
    EXPECT_TRUE(mem.isWriteProtected(0x5000));
    EXPECT_TRUE(mem.isWriteProtected(0x5fff));
    EXPECT_FALSE(mem.isWriteProtected(0x6000));
    mem.unprotectPage(0x5001);
    EXPECT_FALSE(mem.isWriteProtected(0x5000));
    mem.protectPage(0x7000);
    mem.clearProtections();
    EXPECT_EQ(mem.protectedPageCount(), 0u);
}

TEST(Cache, HitAfterMiss)
{
    Cache c({"t", 1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    // 1KB, 2-way, 64B lines -> 8 sets. Same set: stride 512.
    Cache c({"t", 1024, 2, 64, 1});
    c.access(0x0000, false);
    c.access(0x0200, false);
    EXPECT_TRUE(c.access(0x0000, false).hit); // refresh LRU
    c.access(0x0400, false);                  // evicts 0x0200
    EXPECT_TRUE(c.access(0x0000, false).hit);
    EXPECT_FALSE(c.access(0x0200, false).hit);
}

TEST(Cache, DirtyWritebackReported)
{
    Cache c({"t", 1024, 2, 64, 1});
    c.access(0x0000, true); // dirty
    c.access(0x0200, false);
    CacheResult r = c.access(0x0400, false); // evicts dirty 0x0000
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.stats().get("writebacks"), 1u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c({"t", 1024, 2, 64, 1});
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, FlushAll)
{
    Cache c({"t", 1024, 2, 64, 1});
    c.access(0x1000, false);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, StatsCount)
{
    Cache c({"t", 1024, 2, 64, 1});
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, true);
    EXPECT_EQ(c.stats().get("reads"), 2u);
    EXPECT_EQ(c.stats().get("writes"), 1u);
    EXPECT_EQ(c.stats().get("misses"), 2u);
}

/** Property: a cache never reports a hit for a line never accessed. */
TEST(Cache, PropertyNoFalseHits)
{
    Cache c({"t", 4096, 4, 64, 1});
    Rng rng(77);
    std::set<uint64_t> touched;
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(1 << 20);
        uint64_t line = addr / 64;
        bool hit = c.access(addr, rng.chance(1, 4)).hit;
        if (hit)
            EXPECT_TRUE(touched.count(line));
        touched.insert(line);
    }
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb({"t", 64, 4, 4096, 30});
    EXPECT_EQ(tlb.access(0x10000), 30u);
    EXPECT_EQ(tlb.access(0x10fff), 0u);
    EXPECT_EQ(tlb.access(0x11000), 30u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb({"t", 4, 2, 4096, 30});
    // 2 sets; pages 0,2,4 map to set 0.
    tlb.access(0x0000);
    tlb.access(0x2000);
    tlb.access(0x4000); // evicts page 0
    EXPECT_EQ(tlb.access(0x0000), 30u);
}

TEST(MemSystem, FetchLatencyTiers)
{
    MemSystem ms;
    // Cold: ITLB miss + L1 miss + L2 miss + memory + bus.
    uint64_t cold = ms.fetchAccess(0x1000, 0);
    EXPECT_GT(cold, 100u);
    uint64_t warm = ms.fetchAccess(0x1000, 1000);
    EXPECT_EQ(warm, ms.config().l1i.hitLatency);
}

TEST(MemSystem, DataLatencyTiers)
{
    MemSystem ms;
    uint64_t cold = ms.dataAccess(0x2000, false, 0);
    EXPECT_GT(cold, ms.config().memLatency);
    uint64_t hit = ms.dataAccess(0x2000, false, 500);
    EXPECT_EQ(hit, ms.config().l1d.hitLatency);
}

TEST(MemSystem, BusSerializesMisses)
{
    MemSystem ms;
    // Two same-cycle cold misses: the second waits on the 32-byte bus.
    uint64_t first = ms.dataAccess(0x10000, false, 0);
    uint64_t second = ms.dataAccess(0x80000, false, 0);
    EXPECT_GT(second, first);
}

TEST(MemSystem, FlushInstructionState)
{
    MemSystem ms;
    ms.fetchAccess(0x1000, 0);
    EXPECT_TRUE(ms.l1i().probe(0x1000));
    ms.flushInstructionState();
    EXPECT_FALSE(ms.l1i().probe(0x1000));
}

/** Parameterized geometry sweep: all legal configs behave sanely. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, FillAndRevisit)
{
    auto [sizeKb, assoc, line] = GetParam();
    Cache c({"t", static_cast<uint64_t>(sizeKb) * 1024,
             static_cast<unsigned>(assoc), static_cast<unsigned>(line),
             1});
    unsigned lines = sizeKb * 1024 / line;
    // Fill the whole cache, then every line must hit.
    for (unsigned i = 0; i < lines; ++i)
        c.access(static_cast<Addr>(i) * line, false);
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_TRUE(
            c.access(static_cast<Addr>(i) * line, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1, 1, 32),
                      std::make_tuple(8, 2, 64),
                      std::make_tuple(32, 2, 64),
                      std::make_tuple(64, 4, 64),
                      std::make_tuple(1024, 4, 64),
                      std::make_tuple(16, 8, 32)));

} // namespace
} // namespace dise
