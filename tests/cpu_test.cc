/**
 * @file
 * CPU tests: ALU semantics (parameterized), functional execution of
 * assembled programs, syscalls, faults, and timing-pipeline properties
 * (width bounds, dependency serialization, load latency, store
 * forwarding, mispredict penalties, transition stalls).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/alu.hh"
#include "cpu/func_cpu.hh"
#include "cpu/loader.hh"
#include "cpu/timing_cpu.hh"
#include "debug/target.hh"

namespace dise {
namespace {

using namespace reg;

// ---------------------------------------------------------------- ALU

struct AluCase
{
    Opcode op;
    uint64_t a, b, expect;
};

class AluTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluTest, Computes)
{
    const AluCase &c = GetParam();
    EXPECT_EQ(aluCompute(c.op, c.a, c.b), c.expect)
        << opName(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Semantics, AluTest,
    ::testing::Values(
        AluCase{Opcode::ADDQ, 2, 3, 5},
        AluCase{Opcode::ADDQ, ~0ull, 1, 0},
        AluCase{Opcode::SUBQ, 3, 5, static_cast<uint64_t>(-2)},
        AluCase{Opcode::MULQ, 7, 6, 42},
        AluCase{Opcode::AND, 0xf0f0, 0xff00, 0xf000},
        AluCase{Opcode::BIS, 0xf0, 0x0f, 0xff},
        AluCase{Opcode::XOR, 0xff, 0x0f, 0xf0},
        AluCase{Opcode::BIC, 0xff, 0x0f, 0xf0},
        AluCase{Opcode::SLL, 1, 63, 1ull << 63},
        AluCase{Opcode::SRL, 1ull << 63, 63, 1},
        AluCase{Opcode::SRA, static_cast<uint64_t>(-8), 2,
                static_cast<uint64_t>(-2)},
        AluCase{Opcode::CMPEQ, 4, 4, 1},
        AluCase{Opcode::CMPEQ, 4, 5, 0},
        AluCase{Opcode::CMPLT, static_cast<uint64_t>(-1), 0, 1},
        AluCase{Opcode::CMPULT, static_cast<uint64_t>(-1), 0, 0},
        AluCase{Opcode::CMPLE, 4, 4, 1},
        AluCase{Opcode::CMPULE, 5, 4, 0}));

TEST(Alu, BranchDirections)
{
    EXPECT_TRUE(branchTaken(Opcode::BEQ, 0));
    EXPECT_FALSE(branchTaken(Opcode::BEQ, 1));
    EXPECT_TRUE(branchTaken(Opcode::BNE, 5));
    EXPECT_TRUE(branchTaken(Opcode::BLT, static_cast<uint64_t>(-3)));
    EXPECT_FALSE(branchTaken(Opcode::BLT, 3));
    EXPECT_TRUE(branchTaken(Opcode::BGE, 0));
    EXPECT_TRUE(branchTaken(Opcode::BGT, 1));
    EXPECT_TRUE(branchTaken(Opcode::BLE, 0));
    EXPECT_TRUE(branchTaken(Opcode::BR, 12345));
}

// ------------------------------------------------- functional programs

/** Build a target from an assembly thunk and run it functionally. */
template <typename Fn>
FuncResult
runProgram(Fn &&emit, DebugTarget **outTarget = nullptr,
           uint64_t maxInsts = 0)
{
    Assembler a;
    a.text(0x0100'0000);
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    emit(a);
    static thread_local std::unique_ptr<DebugTarget> keep;
    keep = std::make_unique<DebugTarget>(a.finish("main"));
    keep->load();
    if (outTarget)
        *outTarget = keep.get();
    StreamEnv env;
    env.sink = &keep->sink;
    FuncCpu cpu(keep->arch, keep->mem, &keep->engine, env);
    return cpu.run(maxInsts);
}

TEST(FuncCpu, ArithmeticAndMarks)
{
    DebugTarget *t = nullptr;
    FuncResult r = runProgram(
        [](Assembler &a) {
            a.label("main");
            a.li(a0, 40);
            a.addq(a0, 2, a0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(r.halt, HaltReason::Exited);
    ASSERT_EQ(t->sink.marks.size(), 1u);
    EXPECT_EQ(t->sink.marks[0], 42u);
}

TEST(FuncCpu, LoopSum)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.label("main");
            a.lda(t0, 0, zero);  // i
            a.lda(t1, 0, zero);  // sum
            a.label("loop");
            a.addq(t1, t0, t1);
            a.addq(t0, 1, t0);
            a.cmplt(t0, 100, t2);
            a.bne(t2, "loop");
            a.mov(t1, a0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->sink.marks[0], 4950u);
}

TEST(FuncCpu, MemoryRoundTrip)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.data(0x0200'0000);
            a.label("buf");
            a.space(64);
            a.text(0x0100'0000);
            a.label("main");
            a.la(t0, "buf");
            a.li(t1, 0x1234567890ull);
            a.stq(t1, 8, t0);
            a.ldq(a0, 8, t0);
            a.syscall(SysMark);
            a.ldl(a0, 8, t0); // low 32 bits, sign-extended
            a.syscall(SysMark);
            a.ldb(a0, 9, t0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    ASSERT_EQ(t->sink.marks.size(), 3u);
    EXPECT_EQ(t->sink.marks[0], 0x1234567890ull);
    EXPECT_EQ(t->sink.marks[1], 0x34567890ull);
    EXPECT_EQ(t->sink.marks[2], 0x78u);
}

TEST(FuncCpu, SignExtendingLoad)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.data(0x0200'0000);
            a.label("buf");
            a.long_(0xffffffff);
            a.text(0x0100'0000);
            a.label("main");
            a.la(t0, "buf");
            a.ldl(a0, 0, t0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->sink.marks[0], ~0ull); // -1 sign-extended
}

TEST(FuncCpu, CallAndReturn)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.label("main");
            a.li(a0, 5);
            a.bsr(ra, "double");
            a.syscall(SysMark); // expect 10
            a.syscall(SysExit);
            a.label("double");
            a.addq(a0, a0, a0);
            a.ret(ra);
        },
        &t);
    EXPECT_EQ(t->sink.marks[0], 10u);
}

TEST(FuncCpu, JumpTableDispatch)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.data(0x0200'0000);
            a.label("table");
            a.quadLabel("case0");
            a.quadLabel("case1");
            a.text(0x0100'0000);
            a.label("main");
            a.la(t0, "table");
            a.ldq(t1, 8, t0); // case1
            a.jmp(t1);
            a.label("case0");
            a.li(a0, 100);
            a.br("out");
            a.label("case1");
            a.li(a0, 200);
            a.label("out");
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->sink.marks[0], 200u);
}

TEST(FuncCpu, ZeroRegisterDiscardsWrites)
{
    DebugTarget *t = nullptr;
    runProgram(
        [](Assembler &a) {
            a.label("main");
            a.li(t0, 7);
            a.addq(t0, t0, zero); // discarded
            a.mov(zero, a0);
            a.syscall(SysMark);
            a.syscall(SysExit);
        },
        &t);
    EXPECT_EQ(t->sink.marks[0], 0u);
}

TEST(FuncCpu, IllegalInstructionFaults)
{
    FuncResult r = runProgram([](Assembler &a) {
        a.label("main");
        a.nop();
        // falls off the end into zeroed memory... which decodes as
        // opcode 0 (LDQ) forever; jump into data instead:
        a.data(0x0200'0000);
        a.label("bad");
        a.quad(0xffffffffffffffffull);
        a.text(0x0100'0000);
        a.la(t0, "bad");
        a.jmp(t0);
    });
    EXPECT_EQ(r.halt, HaltReason::Fault);
}

TEST(FuncCpu, DiseMoveOutsideHandlerFaults)
{
    FuncResult r = runProgram([](Assembler &a) {
        a.label("main");
        a.d_mfr(t0, dr(0)); // illegal outside a DISE-called function
        a.syscall(SysExit);
    });
    EXPECT_EQ(r.halt, HaltReason::Fault);
}

TEST(FuncCpu, DRetOutsideHandlerFaults)
{
    FuncResult r = runProgram([](Assembler &a) {
        a.label("main");
        a.d_ret();
        a.syscall(SysExit);
    });
    EXPECT_EQ(r.halt, HaltReason::Fault);
}

TEST(FuncCpu, InstLimitStopsRun)
{
    FuncResult r = runProgram(
        [](Assembler &a) {
            a.label("main");
            a.label("spin");
            a.br("spin");
        },
        nullptr, 1000);
    EXPECT_EQ(r.halt, HaltReason::InstLimit);
    EXPECT_EQ(r.appInsts, 1000u);
}

TEST(FuncCpu, HaltInstruction)
{
    FuncResult r = runProgram([](Assembler &a) {
        a.label("main");
        a.halt();
    });
    EXPECT_EQ(r.halt, HaltReason::Halted);
}

// ---------------------------------------------------- timing pipeline

/** Run an assembly thunk under the timing model. */
template <typename Fn>
RunStats
runTiming(Fn &&emit, TimingConfig cfg = {})
{
    Assembler a;
    a.text(0x0100'0000);
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    emit(a);
    DebugTarget t(a.finish("main"));
    t.load();
    StreamEnv env;
    env.sink = &t.sink;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
    return cpu.run({});
}

TEST(TimingCpu, IndependentOpsReachWidth)
{
    RunStats s = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 2000);
        a.lda(t9, 0, zero);
        a.label("loop");
        for (int i = 0; i < 16; ++i)
            a.addq(ir(1 + (i % 4)), 1, ir(5 + (i % 4)));
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
    });
    // 16 independent adds + 3 loop ops on a 4-wide machine: IPC near 3+.
    EXPECT_GT(s.ipc(), 2.5);
    EXPECT_EQ(s.halt, HaltReason::Exited);
}

TEST(TimingCpu, DependencyChainSerializes)
{
    RunStats s = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 2000);
        a.lda(t9, 0, zero);
        a.label("loop");
        for (int i = 0; i < 16; ++i)
            a.addq(t0, 1, t0); // serial chain
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
    });
    // The chain forces ~1 IPC for the adds.
    EXPECT_LT(s.ipc(), 1.4);
    EXPECT_GT(s.ipc(), 0.7);
}

TEST(TimingCpu, MulLatencyVisible)
{
    RunStats chain = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 1000);
        a.lda(t9, 0, zero);
        a.li(t0, 3);
        a.label("loop");
        for (int i = 0; i < 8; ++i)
            a.mulq(t0, 3, t0); // serial multiplies
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
    });
    // Each mul takes mulLatency cycles on the chain: IPC well under 1.
    EXPECT_LT(chain.ipc(), 0.6);
}

TEST(TimingCpu, PredictableBranchesAreCheap)
{
    RunStats s = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 20000);
        a.lda(t9, 0, zero);
        a.label("loop");
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
    });
    // A tight countdown loop trains to near-zero mispredicts.
    EXPECT_LT(s.mispredictFlushes, 100u);
}

TEST(TimingCpu, DataDependentBranchesMispredict)
{
    RunStats s = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 4000);
        a.lda(t9, 0, zero);
        a.li(t11, 12345);
        a.label("loop");
        // LCG-driven unpredictable branch.
        a.li(t2, 1103515245);
        a.mulq(t11, t2, t11);
        a.addq(t11, 57, t11);
        a.srl(t11, 13, t3);
        a.and_(t3, 1, t3);
        a.beq(t3, "skip");
        a.addq(t4, 1, t4);
        a.label("skip");
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
    });
    // Roughly half the 4000 data-dependent branches mispredict.
    EXPECT_GT(s.mispredictFlushes, 800u);
}

TEST(TimingCpu, ColdLoadsSlowerThanWarm)
{
    auto body = [](Assembler &a, int reps) {
        a.label("main");
        a.li(t8, reps);
        a.lda(t9, 0, zero);
        a.la(s0, "buf");
        a.label("loop");
        a.ldq(t0, 0, s0);
        a.ldq(t1, 8, s0);
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
        a.data(0x0200'0000);
        a.label("buf");
        a.space(64);
    };
    RunStats warm = runTiming([&](Assembler &a) { body(a, 10000); });
    // Warm loop: all hits; IPC healthy.
    EXPECT_GT(warm.ipc(), 1.5);
}

TEST(TimingCpu, StoreLoadForwarding)
{
    RunStats s = runTiming([](Assembler &a) {
        a.label("main");
        a.li(t8, 5000);
        a.lda(t9, 0, zero);
        a.la(s0, "slot");
        a.label("loop");
        a.stq(t9, 0, s0);
        a.ldq(t0, 0, s0); // forwarded from the store queue
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
        a.data(0x0200'0000);
        a.label("slot");
        a.quad(0);
    });
    // Forwarding keeps this fast despite the through-memory dependence.
    EXPECT_GT(s.ipc(), 1.0);
}

TEST(TimingCpu, SpuriousTransitionCostCharged)
{
    // A statement-trap monitor that flags every statement as spurious.
    struct AllSpurious : DebugMonitor
    {
        DebugAction
        onStatement(Addr) override
        {
            return {TransitionKind::SpuriousAddress};
        }
    };

    Assembler a;
    a.text(0x0100'0000);
    a.label("main");
    for (int i = 0; i < 10; ++i) {
        a.stmt();
        a.addq(t0, 1, t0);
    }
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));
    t.load();

    AllSpurious mon;
    std::unordered_set<Addr> stmts(t.program.stmtBoundaries.begin(),
                                   t.program.stmtBoundaries.end());
    StreamEnv env;
    env.sink = &t.sink;
    env.monitor = &mon;
    env.stmtTraps = &stmts;
    TimingConfig cfg;
    cfg.transitionCost = 1000;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
    RunStats s = cpu.run({});
    EXPECT_EQ(s.transitionsSpuriousAddr, 10u);
    EXPECT_GE(s.cycles, 10000u);
    EXPECT_EQ(s.transitionStallCycles, 10000u);
}

TEST(TimingCpu, UserTransitionsAreFree)
{
    struct AllUser : DebugMonitor
    {
        DebugAction
        onStatement(Addr) override
        {
            return {TransitionKind::User};
        }
    };

    Assembler a;
    a.text(0x0100'0000);
    a.label("main");
    for (int i = 0; i < 10; ++i) {
        a.stmt();
        a.addq(t0, 1, t0);
    }
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));
    t.load();

    AllUser mon;
    std::unordered_set<Addr> stmts(t.program.stmtBoundaries.begin(),
                                   t.program.stmtBoundaries.end());
    StreamEnv env;
    env.sink = &t.sink;
    env.monitor = &mon;
    env.stmtTraps = &stmts;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats s = cpu.run({});
    EXPECT_EQ(s.transitionsUser, 10u);
    EXPECT_EQ(s.transitionStallCycles, 0u);
    EXPECT_LT(s.cycles, 1000u);
}

TEST(TimingCpu, CycleLimitStops)
{
    Assembler a;
    a.text(0x0100'0000);
    a.label("main");
    a.label("spin");
    a.br("spin");
    DebugTarget t(a.finish("main"));
    t.load();
    StreamEnv env;
    env.sink = &t.sink;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats r = cpu.run({0, 5000});
    EXPECT_EQ(r.halt, HaltReason::CycleLimit);
}

TEST(TimingCpu, TimingMatchesFunctionalCounts)
{
    auto emit = [](Assembler &a) {
        a.label("main");
        a.li(t8, 300);
        a.lda(t9, 0, zero);
        a.la(s0, "buf");
        a.label("loop");
        a.stq(t9, 0, s0);
        a.ldq(t0, 0, s0);
        a.addq(t9, 1, t9);
        a.cmplt(t9, t8, t10);
        a.bne(t10, "loop");
        a.syscall(SysExit);
        a.data(0x0200'0000);
        a.label("buf");
        a.quad(0);
    };
    FuncResult f = runProgram(emit);
    RunStats s = runTiming(emit);
    EXPECT_EQ(f.appInsts, s.appInsts);
    EXPECT_EQ(f.stores, s.stores);
    EXPECT_EQ(f.loads, s.loads);
}

} // namespace
} // namespace dise
