/**
 * @file
 * Trace-cache invalidation edges and executor exactness.
 *
 * Each test drives FuncCpu twice — trace cache on and off — over a
 * scenario built around one stale-assumption channel: self-modifying
 * code patched between hot phases, a store rewriting the running
 * trace's own body, a DISE production added mid-run (tableVersion), an
 * armed µop observer (tools), the build-time redundancy-suppression
 * pass, and app-instruction budgets landing inside a trace. The two
 * legs must agree on every architectural observable.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/func_cpu.hh"
#include "cpu/loader.hh"
#include "debug/target.hh"
#include "dise/engine.hh"
#include "isa/encoding.hh"
#include "jit/trace_cache.hh"

namespace dise {
namespace {

using namespace reg;

/** Expand every store into {T.INST; addq dr0, 1, dr0}. */
Production
countStoresProduction()
{
    Production p;
    p.name = "count-stores";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement = {
        TemplateInst::trigInst(),
        TemplateInst::opImm(Opcode::ADDQ_I, TRegField::reg(dr(0)), 1,
                            TRegField::reg(dr(0))),
    };
    return p;
}

/** Figure 2a-style unconditional watch check appended to every store. */
Production
watchCheckProduction()
{
    auto R = [](RegId r) { return TRegField::reg(r); };
    Production p;
    p.name = "watch-uncond";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement.push_back(TemplateInst::trigInst());
    p.replacement.push_back(TemplateInst::mem(Opcode::LDA, R(dr(1)),
                                              TImmField::trigImm(),
                                              TRegField::trigRb()));
    p.replacement.push_back(TemplateInst::op3(Opcode::CMPEQ, R(dr(1)),
                                              R(dr(3)), R(dr(2))));
    TemplateInst trap;
    trap.op = Opcode::CTRAP;
    trap.ra = R(dr(2));
    trap.imm = TImmField::imm(1);
    p.replacement.push_back(trap);
    return p;
}

// --------------------------------------------------------- hot path

/** Sum 100..1 in a register-only hot loop, reported via SysMark. */
void
emitSumLoop(Assembler &a)
{
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    a.label("main");
    a.li(t0, 0);
    a.li(s1, 100);
    a.label("loop");
    a.addq(t0, s1, t0);
    a.subq(s1, 1, s1);
    a.bne(s1, "loop");
    a.mov(t0, a0);
    a.syscall(SysMark);
    a.syscall(SysExit);
}

TEST(TraceJit, HotLoopMatchesInterpreter)
{
    uint64_t marks[2];
    FuncResult res[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        emitSumLoop(a);
        DebugTarget target(a.finish("main"));
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit)
            env.jit = target.jit();
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        res[jit] = cpu.run();
        ASSERT_EQ(res[jit].halt, HaltReason::Exited);
        ASSERT_EQ(target.sink.marks.size(), 1u);
        marks[jit] = target.sink.marks[0];
        if (jit) {
            const TraceCacheStats &s = target.jit()->stats();
            EXPECT_GT(s.built, 0u);
            EXPECT_GT(s.runs, 0u);
            EXPECT_GT(s.tracedUops, 0u);
        }
    }
    EXPECT_EQ(marks[0], 5050u);
    EXPECT_EQ(marks[1], marks[0]);
    EXPECT_EQ(res[1].appInsts, res[0].appInsts);
    EXPECT_EQ(res[1].microOps, res[0].microOps);
}

// ------------------------------------------------ SMC invalidation

/**
 * Phase 1 runs a hot loop long enough to trace it; the loop epilogue
 * then patches an instruction inside the (now cached) body and runs
 * the loop again. The patched semantics must take effect — the write
 * drops the trace through the CodeWatcher channel.
 */
TEST(TraceJit, PatchedTraceBodyIsInvalidated)
{
    uint32_t patched = encode(makeOpImm(Opcode::ADDQ_I, t0, 7, t0));
    uint64_t marks[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        a.data(0x0200'0000);
        a.text(0x0100'0000);
        a.label("main");
        a.la(s0, "site");
        a.li(t2, patched);
        a.li(t0, 0);
        a.li(s2, 0); // phase counter
        a.label("again");
        a.li(s1, 30);
        a.label("loop");
        a.label("site");
        a.addq(t0, 1, t0); // phase 0: +1; phase 1 (patched): +7
        a.subq(s1, 1, s1);
        a.bne(s1, "loop");
        a.stl(t2, 0, s0); // patch the site (idempotent in phase 1)
        a.addq(s2, 1, s2);
        a.cmplt(s2, 2, t4);
        a.bne(t4, "again");
        a.mov(t0, a0);
        a.syscall(SysMark);
        a.syscall(SysExit);

        DebugTarget target(a.finish("main"));
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit) {
            env.jit = target.jit();
            target.jit()->config().hotThreshold = 4;
        }
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        FuncResult r = cpu.run();
        ASSERT_EQ(r.halt, HaltReason::Exited);
        ASSERT_EQ(target.sink.marks.size(), 1u);
        marks[jit] = target.sink.marks[0];
        if (jit)
            EXPECT_GT(target.jit()->stats().invalidated, 0u);
    }
    EXPECT_EQ(marks[0], 30u + 30u * 7u);
    EXPECT_EQ(marks[1], marks[0]);
}

/**
 * The hot loop stores its own body word back every iteration (same
 * bytes — no semantic change). Once the loop is traced its pages are
 * marked, so each in-trace store advances the write epoch and forces a
 * side exit after that op; the result must still match the
 * interpreter.
 */
TEST(TraceJit, InTraceCodeStoreSideExits)
{
    uint64_t marks[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        a.data(0x0200'0000);
        a.text(0x0100'0000);
        a.label("main");
        a.la(s0, "site");
        a.ldl(t5, 0, s0); // the site's own encoding
        a.li(t0, 0);
        a.li(s1, 40);
        a.label("loop");
        a.label("site");
        a.addq(t0, 1, t0);
        a.stl(t5, 0, s0); // rewrite the site with identical bytes
        a.subq(s1, 1, s1);
        a.bne(s1, "loop");
        a.mov(t0, a0);
        a.syscall(SysMark);
        a.syscall(SysExit);

        DebugTarget target(a.finish("main"));
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit) {
            env.jit = target.jit();
            target.jit()->config().hotThreshold = 4;
        }
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        FuncResult r = cpu.run();
        ASSERT_EQ(r.halt, HaltReason::Exited);
        marks[jit] = target.sink.marks.at(0);
        if (jit) {
            const TraceCacheStats &s = target.jit()->stats();
            EXPECT_GT(s.invalidated, 0u);
            EXPECT_GT(s.sideExits, 0u);
        }
    }
    EXPECT_EQ(marks[0], 40u);
    EXPECT_EQ(marks[1], marks[0]);
}

// --------------------------------------- DISE table-version staleness

/**
 * A production added mid-run (tableVersion bump) must stale every
 * cached trace: stores after the mutation get the expansion, exactly
 * as interpreted execution would.
 */
TEST(TraceJit, ProductionAddMidRunStalesTraces)
{
    uint64_t counts[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        a.data(0x0200'0000);
        a.label("buf");
        a.quad(0);
        a.text(0x0100'0000);
        a.label("main");
        a.la(s0, "buf");
        a.li(t0, 0);
        a.li(s1, 60);
        a.label("loop");
        a.stq(t0, 0, s0);
        a.addq(t0, 1, t0);
        a.subq(s1, 1, s1);
        a.bne(s1, "loop");
        a.syscall(SysExit);

        DebugTarget target(a.finish("main"));
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit) {
            env.jit = target.jit();
            target.jit()->config().hotThreshold = 4;
        }
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        FuncResult r1 = cpu.run(30);
        ASSERT_EQ(r1.halt, HaltReason::InstLimit);
        // Budget exactness: the cap must land on the instruction
        // boundary, trace or no trace.
        EXPECT_EQ(r1.appInsts, 30u);

        target.engine.addProduction(countStoresProduction());
        FuncResult r2 = cpu.run();
        ASSERT_EQ(r2.halt, HaltReason::Exited);
        counts[jit] = target.arch.readDise(0);
        if (jit)
            EXPECT_GT(target.jit()->stats().invalidated, 0u);
    }
    EXPECT_GT(counts[0], 0u);
    EXPECT_EQ(counts[1], counts[0]);
}

// ------------------------------------------------- tool observation

/** Counts every retired µop, like an enabled debug tool. */
struct CountingObserver : UopObserver
{
    uint64_t n = 0;
    CountingObserver() { armed_ = true; }
    void onUop(const MicroOp &) override { ++n; }
};

/**
 * An armed µop observer (an enabled tool) must see every op in
 * functional order, so trace dispatch stands down entirely.
 */
TEST(TraceJit, ArmedObserverDisablesDispatch)
{
    Assembler a;
    emitSumLoop(a);
    DebugTarget target(a.finish("main"));
    target.load();
    CountingObserver obs;
    StreamEnv env;
    env.sink = &target.sink;
    env.observer = &obs;
    env.jit = target.jit();
    target.jit()->config().hotThreshold = 4;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);
    FuncResult r = cpu.run();
    ASSERT_EQ(r.halt, HaltReason::Exited);
    EXPECT_EQ(target.sink.marks.at(0), 5050u);
    EXPECT_EQ(obs.n, r.microOps);
    EXPECT_EQ(target.jit()->stats().runs, 0u);
    EXPECT_EQ(target.jit()->stats().tracedUops, 0u);
}

// -------------------------------------------- redundancy suppression

/** Two identical adjacent stores under the given production. */
void
emitDoubleStoreLoop(Assembler &a)
{
    a.data(0x0200'0000);
    a.label("buf");
    a.quad(0);
    a.text(0x0100'0000);
    a.label("main");
    a.la(s0, "buf");
    a.li(t0, 0);
    a.li(s1, 50);
    a.label("loop");
    a.stq(t0, 0, s0);
    a.stq(t0, 0, s0);
    a.addq(t0, 1, t0);
    a.subq(s1, 1, s1);
    a.bne(s1, "loop");
    a.syscall(SysExit);
}

/**
 * Idempotent check groups (address rematerialization + compare) repeat
 * between the two identical stores; the second instance must execute
 * as counter retirement only — with identical retirement counts and
 * architectural state.
 */
TEST(TraceJit, SuppressionElidesIdempotentChecks)
{
    FuncResult res[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        emitDoubleStoreLoop(a);
        DebugTarget target(a.finish("main"));
        target.engine.addProduction(watchCheckProduction());
        target.arch.writeDise(3, 0x0300'0000); // never the stored addr
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit) {
            env.jit = target.jit();
            target.jit()->config().hotThreshold = 4;
        }
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        res[jit] = cpu.run();
        ASSERT_EQ(res[jit].halt, HaltReason::Exited);
        if (jit)
            EXPECT_GT(target.jit()->stats().suppressedExecs, 0u);
    }
    EXPECT_EQ(res[1].appInsts, res[0].appInsts);
    EXPECT_EQ(res[1].microOps, res[0].microOps);
    EXPECT_EQ(res[1].expansionOps, res[0].expansionOps);
}

/**
 * An accumulator group (addq dr0, 1, dr0) reads its own output: the
 * "second instance recomputes the same values" argument does not hold,
 * so suppression must leave it alone. Counts diverging from the
 * interpreter here means the suppression pass elided live work.
 */
TEST(TraceJit, SuppressionKeepsAccumulatorGroups)
{
    uint64_t counts[2];
    for (int jit = 0; jit < 2; ++jit) {
        Assembler a;
        emitDoubleStoreLoop(a);
        DebugTarget target(a.finish("main"));
        target.engine.addProduction(countStoresProduction());
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        if (jit) {
            env.jit = target.jit();
            target.jit()->config().hotThreshold = 4;
        }
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        FuncResult r = cpu.run();
        ASSERT_EQ(r.halt, HaltReason::Exited);
        counts[jit] = target.arch.readDise(0);
    }
    EXPECT_EQ(counts[0], 100u); // 50 laps x 2 stores
    EXPECT_EQ(counts[1], counts[0]);
}

// -------------------------------------------------- budget exactness

/** A split run (limit landing mid-trace) must equal one unbounded run. */
TEST(TraceJit, SplitRunMatchesSingleRun)
{
    uint64_t marks[2];
    for (int split = 0; split < 2; ++split) {
        Assembler a;
        emitSumLoop(a);
        DebugTarget target(a.finish("main"));
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        env.jit = target.jit();
        target.jit()->config().hotThreshold = 4;
        FuncCpu cpu(target.arch, target.mem, &target.engine, env);
        if (split) {
            FuncResult r1 = cpu.run(17);
            ASSERT_EQ(r1.halt, HaltReason::InstLimit);
            EXPECT_EQ(r1.appInsts, 17u);
            FuncResult r2 = cpu.run(101);
            ASSERT_EQ(r2.halt, HaltReason::InstLimit);
            EXPECT_EQ(r2.appInsts, 101u);
            FuncResult r3 = cpu.run();
            ASSERT_EQ(r3.halt, HaltReason::Exited);
        } else {
            FuncResult r = cpu.run();
            ASSERT_EQ(r.halt, HaltReason::Exited);
        }
        marks[split] = target.sink.marks.at(0);
    }
    EXPECT_EQ(marks[0], 5050u);
    EXPECT_EQ(marks[1], marks[0]);
}

} // namespace
} // namespace dise
