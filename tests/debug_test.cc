/**
 * @file
 * Debugger tests: the watchpoint expression machinery, every backend's
 * functional detection behavior (scalars, indirection, ranges,
 * conditionals, silent stores), breakpoints in all flavors, the
 * protection production, Bloom-filter correctness, and the binary
 * rewriter's semantic transparency.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/random.hh"
#include "cpu/loader.hh"
#include "debug/debugger.hh"
#include "debug/hwreg_backend.hh"
#include "debug/rewrite_backend.hh"
#include "debug/vm_backend.hh"

namespace dise {
namespace {

using namespace reg;

// ------------------------------------------------------- watch state

TEST(WatchState, ScalarDetectsChange)
{
    MainMemory mem;
    mem.write(0x1000, 8, 5);
    WatchState ws(WatchSpec::scalar("x", 0x1000, 8));
    ws.prime(mem);
    EXPECT_FALSE(ws.evaluate(mem).has_value());
    mem.write(0x1000, 8, 6);
    auto ch = ws.evaluate(mem);
    ASSERT_TRUE(ch);
    EXPECT_EQ(ch->oldValue, 5u);
    EXPECT_EQ(ch->newValue, 6u);
    EXPECT_FALSE(ws.evaluate(mem).has_value()); // shadow updated
}

TEST(WatchState, SilentWriteIsNoChange)
{
    MainMemory mem;
    mem.write(0x1000, 8, 5);
    WatchState ws(WatchSpec::scalar("x", 0x1000, 8));
    ws.prime(mem);
    mem.write(0x1000, 8, 5); // silent
    EXPECT_FALSE(ws.evaluate(mem).has_value());
}

TEST(WatchState, IndirectFollowsPointer)
{
    MainMemory mem;
    mem.write(0x1000, 8, 0x2000); // p = &a
    mem.write(0x2000, 8, 11);     // a
    mem.write(0x3000, 8, 22);     // b
    WatchState ws(WatchSpec::indirect("*p", 0x1000, 8));
    ws.prime(mem);

    // Writing *p is a change.
    mem.write(0x2000, 8, 12);
    auto ch = ws.evaluate(mem);
    ASSERT_TRUE(ch);
    EXPECT_EQ(ch->newValue, 12u);

    // Retargeting p to b changes the expression value (12 -> 22).
    mem.write(0x1000, 8, 0x3000);
    ch = ws.evaluate(mem);
    ASSERT_TRUE(ch);
    EXPECT_EQ(ch->newValue, 22u);
    EXPECT_EQ(ws.currentTarget(), 0x3000u);

    // Writes to the old target no longer matter.
    mem.write(0x2000, 8, 99);
    EXPECT_FALSE(ws.evaluate(mem).has_value());
}

TEST(WatchState, RangeDetectsAnyByte)
{
    MainMemory mem;
    WatchState ws(WatchSpec::range("arr", 0x4000, 256));
    ws.prime(mem);
    mem.write(0x4000 + 131, 1, 0xab);
    auto ch = ws.evaluate(mem);
    ASSERT_TRUE(ch);
    EXPECT_EQ(ch->addr, 0x4000u + 128); // quad-aligned window
    EXPECT_FALSE(ws.evaluate(mem).has_value());
}

TEST(WatchState, OverlapTests)
{
    MainMemory mem;
    WatchState s(WatchSpec::scalar("x", 0x1000, 8));
    EXPECT_TRUE(s.overlaps(0x1000, 8));
    EXPECT_TRUE(s.overlaps(0x0fff, 2));
    EXPECT_TRUE(s.overlaps(0x1007, 1));
    EXPECT_FALSE(s.overlaps(0x1008, 8));
    WatchState r(WatchSpec::range("a", 0x2000, 64));
    EXPECT_TRUE(r.overlaps(0x203f, 1));
    EXPECT_FALSE(r.overlaps(0x2040, 8));
}

TEST(WatchState, PredicateGates)
{
    WatchState ws(WatchSpec::scalar("x", 0x1000, 8).withCondition(42));
    EXPECT_TRUE(ws.predicatePasses(42));
    EXPECT_FALSE(ws.predicatePasses(41));
    WatchState un(WatchSpec::scalar("x", 0x1000, 8));
    EXPECT_TRUE(un.predicatePasses(123));
}

// ------------------------------------------------ a tiny shared target

/** A program writing a watched variable with known old/new values. */
Program
watchProgram()
{
    Assembler a;
    a.data(0x0200'0000);
    a.label("var");
    a.quad(100);
    a.align(8);
    a.label("other");
    a.quad(0);
    a.align(4096);
    a.label("far");
    a.quad(0);
    a.text(0x0100'0000);
    a.label("main");
    a.stmt(1);
    a.la(s0, "var");
    a.la(s1, "other");
    a.label("bp_spot");
    a.li(t0, 100);
    a.stmt(2);
    a.stq(t0, 0, s0); // silent: 100 -> 100
    a.stmt(3);
    a.stq(t0, 0, s1); // unwatched
    a.stmt(4);
    a.li(t0, 7);
    a.stq(t0, 0, s0); // change: 100 -> 7
    a.stmt(5);
    a.li(t0, 42);
    a.stq(t0, 0, s0); // change: 7 -> 42
    a.stmt(6);
    a.syscall(SysExit);
    return a.finish("main");
}

struct EventSummary
{
    bool supported = true;
    std::vector<std::pair<uint64_t, uint64_t>> oldNew;
};

EventSummary
runBackend(BackendKind kind, WatchSpec spec, DiseOptions dopts = {})
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = kind;
    o.dise = dopts;
    Debugger dbg(t, o);
    dbg.watch(spec);
    EventSummary sum;
    if (!dbg.attach()) {
        sum.supported = false;
        return sum;
    }
    FuncResult r = dbg.runFunctional();
    EXPECT_EQ(r.halt, HaltReason::Exited) << r.faultMessage;
    for (const auto &e : dbg.watchEvents())
        sum.oldNew.emplace_back(e.oldValue, e.newValue);
    return sum;
}

WatchSpec
varSpec(bool conditional = false)
{
    Program p = watchProgram();
    WatchSpec spec = WatchSpec::scalar("var", p.symbol("var"), 8);
    if (conditional)
        spec = spec.withCondition(42); // matches only the last write
    return spec;
}

class AllBackends : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(AllBackends, DetectsChangesIgnoresSilent)
{
    EventSummary sum = runBackend(GetParam(), varSpec());
    ASSERT_TRUE(sum.supported);
    ASSERT_EQ(sum.oldNew.size(), 2u);
    EXPECT_EQ(sum.oldNew[0], (std::pair<uint64_t, uint64_t>{100, 7}));
    EXPECT_EQ(sum.oldNew[1], (std::pair<uint64_t, uint64_t>{7, 42}));
}

TEST_P(AllBackends, ConditionalReportsOnlyPredicateTrue)
{
    EventSummary sum = runBackend(GetParam(), varSpec(true));
    ASSERT_TRUE(sum.supported);
    ASSERT_EQ(sum.oldNew.size(), 1u);
    EXPECT_EQ(sum.oldNew[0].second, 42ull);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllBackends,
                         ::testing::Values(BackendKind::Dise,
                                           BackendKind::SingleStep,
                                           BackendKind::VirtualMemory,
                                           BackendKind::HardwareReg,
                                           BackendKind::Rewrite));

/** DISE variants and strategies must agree with the default. */
class DiseFlavors : public ::testing::TestWithParam<DiseOptions>
{
};

TEST_P(DiseFlavors, DetectsChangesIgnoresSilent)
{
    EventSummary sum =
        runBackend(BackendKind::Dise, varSpec(), GetParam());
    ASSERT_TRUE(sum.supported);
    ASSERT_EQ(sum.oldNew.size(), 2u);
    EXPECT_EQ(sum.oldNew[1], (std::pair<uint64_t, uint64_t>{7, 42}));
}

TEST_P(DiseFlavors, ConditionalFiltered)
{
    EventSummary sum =
        runBackend(BackendKind::Dise, varSpec(true), GetParam());
    ASSERT_TRUE(sum.supported);
    ASSERT_EQ(sum.oldNew.size(), 1u);
}

DiseOptions
flavor(DiseVariant v, bool cc, MultiMatch s,
       bool protect = false)
{
    DiseOptions o;
    o.variant = v;
    o.condCallTrap = cc;
    o.strategy = s;
    o.protectDebuggerData = protect;
    return o;
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, DiseFlavors,
    ::testing::Values(
        flavor(DiseVariant::MatchAddrEvalExpr, true, MultiMatch::Auto),
        flavor(DiseVariant::MatchAddrEvalExpr, false, MultiMatch::Auto),
        flavor(DiseVariant::EvalExpr, true, MultiMatch::Auto),
        flavor(DiseVariant::EvalExpr, false, MultiMatch::Auto),
        flavor(DiseVariant::MatchAddrValue, true, MultiMatch::Auto),
        flavor(DiseVariant::MatchAddrValue, false, MultiMatch::Auto),
        flavor(DiseVariant::MatchAddrEvalExpr, true,
               MultiMatch::BloomByte),
        flavor(DiseVariant::MatchAddrEvalExpr, true,
               MultiMatch::BloomBit),
        flavor(DiseVariant::MatchAddrEvalExpr, true, MultiMatch::Auto,
               true)));

// ------------------------------------------------------- VM specifics

TEST(VmBackend, SamePageStoreIsSpuriousAddress)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::VirtualMemory;
    Debugger dbg(t, o);
    // Watch "other"'s neighbor page-mate "var": both live on one page,
    // so the unwatched store to "other" traps spuriously.
    dbg.watch(WatchSpec::scalar("var", t.symbol("var"), 8));
    ASSERT_TRUE(dbg.attach());
    StreamEnv env = dbg.backend().streamEnv(t);
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats s = cpu.run({});
    // One spurious-address (store to other), one spurious-value
    // (silent store), two user transitions.
    EXPECT_EQ(s.transitionsSpuriousAddr, 1u);
    EXPECT_EQ(s.transitionsSpuriousValue, 1u);
    EXPECT_EQ(s.transitionsUser, 2u);
}

TEST(VmBackend, FarPageDoesNotTrap)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::VirtualMemory;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::scalar("far", t.symbol("far"), 8));
    ASSERT_TRUE(dbg.attach());
    StreamEnv env = dbg.backend().streamEnv(t);
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats s = cpu.run({});
    EXPECT_EQ(s.spuriousTransitions(), 0u);
    EXPECT_EQ(s.transitionsUser, 0u);
}

TEST(VmBackend, IndirectUnsupported)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::VirtualMemory;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::indirect("*p", t.symbol("var"), 8));
    EXPECT_FALSE(dbg.attach());
}

// ------------------------------------------------------- HW specifics

TEST(HwBackend, SilentStoreIsSpuriousValue)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::HardwareReg;
    Debugger dbg(t, o);
    dbg.watch(varSpec());
    ASSERT_TRUE(dbg.attach());
    StreamEnv env = dbg.backend().streamEnv(t);
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats s = cpu.run({});
    EXPECT_EQ(s.transitionsSpuriousValue, 1u);
    EXPECT_EQ(s.transitionsSpuriousAddr, 0u); // quad granularity
    EXPECT_EQ(s.transitionsUser, 2u);
}

TEST(HwBackend, RangeUnsupported)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::HardwareReg;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::range("r", t.symbol("var"), 64));
    EXPECT_FALSE(dbg.attach());
}

TEST(HwBackend, FallsBackToVmPastFourRegisters)
{
    DebugTarget t(watchProgram());
    HwRegBackend backend(4);
    std::vector<WatchSpec> specs;
    for (int i = 0; i < 6; ++i)
        specs.push_back(WatchSpec::scalar(
            "w" + std::to_string(i),
            t.symbol("var") + 16 * static_cast<Addr>(i), 8));
    ASSERT_TRUE(backend.install(t, specs, {}));
    EXPECT_EQ(backend.hwAssigned(), 4u);
    EXPECT_GE(backend.vmPages(), 1u);
}

// ------------------------------------------------------ DISE details

TEST(DiseBackend, HandlerAndDsegAppended)
{
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    dbg.watch(varSpec());
    ASSERT_TRUE(dbg.attach());
    bool haveHandler = false, haveDseg = false;
    for (const auto &seg : t.program.segments) {
        haveHandler |= seg.name == "dise_handler_text";
        haveDseg |= seg.name == "dseg";
    }
    EXPECT_TRUE(haveHandler);
    EXPECT_TRUE(haveDseg);
    auto &backend = static_cast<DiseBackend &>(dbg.backend());
    // Paper: three or four instructions after every store.
    EXPECT_LE(backend.replacementLength(), 6u);
    EXPECT_GE(backend.replacementLength(), 4u);
}

TEST(DiseBackend, NoTransitionsWithoutRealChanges)
{
    // All spurious events are pruned inside the application: a DISE
    // run shows zero spurious transitions, ever.
    DebugTarget t(watchProgram());
    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    dbg.watch(varSpec());
    ASSERT_TRUE(dbg.attach());
    StreamEnv env = dbg.backend().streamEnv(t);
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
    RunStats s = cpu.run({});
    EXPECT_EQ(s.spuriousTransitions(), 0u);
    EXPECT_EQ(s.transitionsUser, 2u);
}

TEST(DiseBackend, ProtectionCatchesWildStore)
{
    // A program that stores into the debugger's dseg region.
    Assembler a;
    a.data(0x0200'0000);
    a.label("var");
    a.quad(0);
    a.text(0x0100'0000);
    a.label("main");
    a.li(t0, layout::DebuggerDataBase + 64);
    a.li(t1, 0xbad);
    a.stq(t1, 0, t0);
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));

    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    o.dise.protectDebuggerData = true;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::scalar("var", t.symbol("var"), 8));
    ASSERT_TRUE(dbg.attach());
    dbg.runFunctional();
    ASSERT_EQ(dbg.protectionEvents().size(), 1u);
    EXPECT_EQ(dbg.protectionEvents()[0].addr,
              layout::DebuggerDataBase + 64);
}

TEST(DiseBackend, IndirectRetargetsViaHandler)
{
    // p initially points at a; retarget to b mid-run and verify writes
    // to b are then caught and writes to a are not.
    Assembler a;
    a.data(0x0200'0000);
    a.label("p");
    a.quadLabel("a");
    a.label("a");
    a.quad(1);
    a.label("b");
    a.quad(2);
    a.text(0x0100'0000);
    a.label("main");
    a.la(s0, "p");
    a.la(s1, "a");
    a.la(s2, "b");
    a.li(t0, 10);
    a.stq(t0, 0, s1); // *p changes: 1 -> 10 (event)
    a.stq(s2, 0, s0); // p = &b: expression 10 -> 2 (event)
    a.li(t0, 30);
    a.stq(t0, 0, s1); // a no longer watched: no event
    a.li(t0, 40);
    a.stq(t0, 0, s2); // *p: 2 -> 40 (event)
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));

    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::indirect("*p", t.symbol("p"), 8));
    ASSERT_TRUE(dbg.attach());
    FuncResult r = dbg.runFunctional();
    EXPECT_EQ(r.halt, HaltReason::Exited);
    ASSERT_EQ(dbg.watchEvents().size(), 3u);
    EXPECT_EQ(dbg.watchEvents()[0].newValue, 10u);
    EXPECT_EQ(dbg.watchEvents()[1].newValue, 2u);
    EXPECT_EQ(dbg.watchEvents()[2].newValue, 40u);
}

/** Property: Bloom-filter strategies never miss a real change. */
TEST(DiseBackend, PropertyBloomNeverMisses)
{
    Rng rng(321);
    for (int trial = 0; trial < 8; ++trial) {
        // Random store program over 16 slots, 3 of them watched.
        Assembler a;
        a.data(0x0200'0000);
        a.label("slots");
        a.space(16 * 8);
        a.text(0x0100'0000);
        a.label("main");
        a.la(s0, "slots");
        std::vector<uint64_t> lastVal(16, 0);
        std::vector<int> expectHits;
        std::vector<int> watched = {1, 7, 12};
        for (int i = 0; i < 40; ++i) {
            int slot = static_cast<int>(rng.below(16));
            uint64_t val = rng.below(50);
            a.li(t0, val);
            a.stq(t0, static_cast<int64_t>(slot * 8), s0);
            bool isWatched = std::count(watched.begin(), watched.end(),
                                        slot) > 0;
            if (isWatched && lastVal[slot] != val)
                expectHits.push_back(slot);
            lastVal[slot] = val;
        }
        a.syscall(SysExit);
        DebugTarget t(a.finish("main"));

        DebuggerOptions o;
        o.backend = BackendKind::Dise;
        o.dise.strategy =
            trial % 2 ? MultiMatch::BloomBit : MultiMatch::BloomByte;
        Debugger dbg(t, o);
        Addr base = t.symbol("slots");
        for (int slot : watched)
            dbg.watch(WatchSpec::scalar("s" + std::to_string(slot),
                                        base + slot * 8, 8));
        ASSERT_TRUE(dbg.attach());
        FuncResult r = dbg.runFunctional();
        EXPECT_EQ(r.halt, HaltReason::Exited) << r.faultMessage;
        EXPECT_EQ(dbg.watchEvents().size(), expectHits.size());
    }
}

// --------------------------------------------------------- breakpoints

TEST(Breakpoints, DiseByPcPattern)
{
    DebugTarget t(watchProgram());
    Addr pc = t.symbol("main") + 8;
    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    dbg.breakAt(pc);
    ASSERT_TRUE(dbg.attach());
    dbg.runFunctional();
    ASSERT_EQ(dbg.breakEvents().size(), 1u);
    EXPECT_EQ(dbg.breakEvents()[0].pc, pc);
}

TEST(Breakpoints, DiseByCodeword)
{
    DebugTarget t(watchProgram());
    Addr pc = t.symbol("main") + 8;
    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    o.dise.breakpointsByCodeword = true;
    Debugger dbg(t, o);
    dbg.breakAt(pc);
    ASSERT_TRUE(dbg.attach());
    FuncResult r = dbg.runFunctional();
    EXPECT_EQ(r.halt, HaltReason::Exited);
    ASSERT_EQ(dbg.breakEvents().size(), 1u);
}

TEST(Breakpoints, ConditionalOnlyFiresWhenTrue)
{
    // Break in the loop only when var == 3.
    Assembler a;
    a.data(0x0200'0000);
    a.label("var");
    a.quad(0);
    a.text(0x0100'0000);
    a.label("main");
    a.la(s0, "var");
    a.lda(t0, 0, zero);
    a.label("loop");
    a.addq(t0, 1, t0);
    a.stq(t0, 0, s0);
    a.label("bp_here");
    a.nop();
    a.cmplt(t0, 8, t1);
    a.bne(t1, "loop");
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));

    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    BreakSpec bp;
    bp.pc = t.symbol("bp_here");
    bp.conditional = true;
    bp.condAddr = t.symbol("var");
    bp.condSize = 8;
    bp.condConst = 3;
    dbg.breakAt(bp);
    ASSERT_TRUE(dbg.attach());
    dbg.runFunctional();
    ASSERT_EQ(dbg.breakEvents().size(), 1u);
}

TEST(Breakpoints, RewriteBackendTrapPatch)
{
    DebugTarget t(watchProgram());
    // Rewriting operates at instruction granularity; breakpoints must
    // name an instruction start (debuggers get this from line tables).
    Addr pc = t.symbol("bp_spot");
    DebuggerOptions o;
    o.backend = BackendKind::Rewrite;
    Debugger dbg(t, o);
    dbg.breakAt(pc);
    ASSERT_TRUE(dbg.attach());
    FuncResult r = dbg.runFunctional();
    EXPECT_EQ(r.halt, HaltReason::Exited);
    EXPECT_EQ(dbg.breakEvents().size(), 1u);
}

// -------------------------------------------------- rewriter property

/** Property: rewriting preserves program semantics (marks/output). */
TEST(RewriteBackend, PropertySemanticTransparency)
{
    // A program with data-dependent control, calls, and stores.
    auto build = [] {
        Assembler a;
        a.data(0x0200'0000);
        a.label("buf");
        a.space(256);
        a.text(0x0100'0000);
        a.label("main");
        a.la(s0, "buf");
        a.lda(t9, 0, zero);
        a.li(t11, 99);
        a.label("loop");
        a.li(t2, 25173);
        a.mulq(t11, t2, t11);
        a.addq(t11, 13849 & 0xff, t11);
        a.srl(t11, 9, t0);
        a.and_(t0, 31, t0);
        a.sll(t0, 3, t1);
        a.addq(s0, t1, t1);
        a.stq(t11, 0, t1);
        a.bsr(ra, "mix");
        a.addq(t9, 1, t9);
        a.cmplt(t9, 50, t2);
        a.bne(t2, "loop");
        a.lda(t0, 0, zero);
        a.lda(t3, 0, zero);
        a.label("sumloop");
        a.sll(t3, 3, t1);
        a.addq(s0, t1, t1);
        a.ldq(t1, 0, t1);
        a.addq(t0, t1, t0);
        a.addq(t3, 1, t3);
        a.cmplt(t3, 32, t2);
        a.bne(t2, "sumloop");
        a.mov(t0, a0);
        a.syscall(SysMark);
        a.syscall(SysExit);
        a.label("mix");
        a.xor_(t11, 0x5a, t11);
        a.ret(ra);
        return a.finish("main");
    };

    // Plain run.
    DebugTarget plain(build());
    plain.load();
    StreamEnv env;
    env.sink = &plain.sink;
    FuncCpu cpu(plain.arch, plain.mem, &plain.engine, env);
    FuncResult rp = cpu.run();
    ASSERT_EQ(rp.halt, HaltReason::Exited);

    // Rewritten run with a watchpoint on one slot.
    DebugTarget rt(build());
    DebuggerOptions o;
    o.backend = BackendKind::Rewrite;
    Debugger dbg(rt, o);
    dbg.watch(WatchSpec::scalar("slot", rt.symbol("buf") + 8 * 5, 8));
    ASSERT_TRUE(dbg.attach());
    FuncResult rr = dbg.runFunctional();
    EXPECT_EQ(rr.halt, HaltReason::Exited);
    ASSERT_EQ(plain.sink.marks.size(), rt.sink.marks.size());
    EXPECT_EQ(plain.sink.marks, rt.sink.marks);
    // And it is genuinely bloated.
    auto &backend = static_cast<RewriteBackend &>(dbg.backend());
    EXPECT_GT(backend.bloatFactor(), 1.5);
}

// --------------------------------------------------- stack exclusion

TEST(DiseBackend, StackExclusionSkipsStackStores)
{
    Assembler a;
    a.data(0x0200'0000);
    a.label("var");
    a.quad(0);
    a.text(0x0100'0000);
    a.label("main");
    a.lda(sp, -64, sp);
    a.la(s0, "var");
    a.li(t0, 5);
    a.stq(t0, 8, sp); // stack store: exempt
    a.stq(t0, 0, s0); // heap store: expanded (event)
    a.lda(sp, 64, sp);
    a.syscall(SysExit);
    DebugTarget t(a.finish("main"));

    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    o.dise.excludeStackStores = true;
    Debugger dbg(t, o);
    dbg.watch(WatchSpec::scalar("var", t.symbol("var"), 8));
    ASSERT_TRUE(dbg.attach());
    FuncResult r = dbg.runFunctional();
    EXPECT_EQ(dbg.watchEvents().size(), 1u);
    // Only the heap store was expanded: expansion ops for one store.
    EXPECT_LE(r.expansionOps, 8u);
}

} // namespace
} // namespace dise
