/**
 * @file
 * Persistence-layer tests: SessionImage encode/decode round-trips and
 * hostile-input rejection, the crash-consistent SessionStore (put /
 * load / erase / reopen, manifest commit point, salvage scan, orphan
 * GC), a loader-fuzz table proving every corrupt artifact quarantines
 * instead of crashing, the seeded FaultInjector battery over every VFS
 * call site (a failed persistence step must leave the store serving
 * its old state), and full DebugSession hibernate→resurrect round
 * trips on all five backends with bit-identical digests.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "persist/fault_injector.hh"
#include "persist/image.hh"
#include "persist/store.hh"
#include "persist/vfs.hh"
#include "session/debug_session.hh"
#include "tools/toolset.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

using namespace reg;
using persist::FaultInjector;
using persist::ImageErr;
using persist::RealVfs;
using persist::SessionImage;
using persist::SessionStore;
using persist::StoreErr;
using persist::StoreResult;

// --------------------------------------------------------------- helpers

/** Fresh per-test scratch directory under the build tree (ctest cwd). */
std::string
scratchDir(const std::string &name)
{
    std::string dir = "persist_test_" + name + "_" +
                      std::to_string(static_cast<long>(::getpid()));
    RealVfs vfs;
    std::vector<std::string> names;
    if (vfs.list(dir, names))
        for (const std::string &n : names)
            vfs.remove(dir + "/" + n);
    std::string err;
    EXPECT_TRUE(vfs.mkdirs(dir, &err)) << err;
    return dir;
}

/** Little-endian u32/u64 writers matching the store/image format. */
void
putU32(std::vector<uint8_t> &b, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &b, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Rewrite the trailing FNV-1a 64 so a deliberate field mutation is
 *  NOT masked by the checksum check (version-skew tests). */
void
refreshTrailingChecksum(std::vector<uint8_t> &bytes)
{
    ASSERT_GE(bytes.size(), 8u);
    uint64_t sum = persist::fnv64(bytes.data(), bytes.size() - 8);
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + i] =
            static_cast<uint8_t>(sum >> (8 * i));
}

SessionImage
sampleImage(uint64_t id)
{
    SessionImage img;
    img.id = id;
    img.workload = "demo";
    img.backend = BackendKind::HardwareReg;
    img.attached = true;
    img.hasTravel = true;
    img.watches.push_back(WatchSpec::scalar("x", 0x20000, 8));
    img.watches.push_back(
        WatchSpec::range("hot table", 0x20040, 64).withCondition(7));
    BreakSpec b;
    b.pc = 0x1000054;
    b.name = "the_store";
    b.conditional = true;
    b.condAddr = 0x20008;
    b.condSize = 4;
    b.condConst = 9;
    img.breaks.push_back(b);
    img.mutedWatches.push_back(1);
    SessionImage::Poke p;
    p.isReg = false;
    p.addr = 0x20010;
    p.size = 8;
    p.value = 0xabcd;
    img.pokes.push_back(p);
    img.seed = 0x5eed;
    img.programName = "doubler";
    Intervention iv;
    iv.kind = InterventionKind::PokeMemory;
    iv.time = 120;
    iv.appInsts = 30;
    iv.atEventPark = true;
    iv.addr = 0x20018;
    iv.size = 8;
    iv.value = 0x99;
    img.interventions.push_back(iv);
    Intervention te;
    te.kind = InterventionKind::ToolEnable;
    te.time = 140;
    te.appInsts = 35;
    te.toolName = "asan";
    te.toolConfig.push_back({"redzone", "16"});
    te.toolSlots = {4, 5};
    img.interventions.push_back(te);
    EventMark m;
    m.kind = EventKind::Watch;
    m.index = 0;
    m.time = 115;
    m.appInsts = 28;
    m.pc = 0x1000054;
    img.marks.push_back(m);
    img.time = 400;
    img.appInsts = 100;
    img.digest = 0xfeedface;
    img.checkpoints.push_back({0, 0});
    img.checkpoints.push_back({160, 40});
    img.toolDigests.push_back({"asan", 0x1234abcd});
    return img;
}

// ------------------------------------------------------------ the image

TEST(SessionImage, RoundTripAllFields)
{
    SessionImage img = sampleImage(42);
    std::vector<uint8_t> bytes = persist::encodeImage(img);

    SessionImage back;
    std::string detail;
    ASSERT_EQ(persist::decodeImage(bytes, back, &detail), ImageErr::None)
        << detail;
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.workload, "demo");
    EXPECT_EQ(back.backend, BackendKind::HardwareReg);
    EXPECT_TRUE(back.attached);
    EXPECT_TRUE(back.hasTravel);
    ASSERT_EQ(back.watches.size(), 2u);
    EXPECT_EQ(back.watches[0].name, "x");
    EXPECT_EQ(back.watches[1].kind, WatchKind::Range);
    EXPECT_EQ(back.watches[1].length, 64u);
    EXPECT_TRUE(back.watches[1].conditional);
    EXPECT_EQ(back.watches[1].predConst, 7u);
    ASSERT_EQ(back.breaks.size(), 1u);
    EXPECT_EQ(back.breaks[0].pc, 0x1000054u);
    EXPECT_TRUE(back.breaks[0].conditional);
    EXPECT_EQ(back.breaks[0].condConst, 9u);
    ASSERT_EQ(back.mutedWatches.size(), 1u);
    EXPECT_EQ(back.mutedWatches[0], 1);
    ASSERT_EQ(back.pokes.size(), 1u);
    EXPECT_EQ(back.pokes[0].addr, 0x20010u);
    EXPECT_EQ(back.pokes[0].value, 0xabcdu);
    EXPECT_EQ(back.seed, 0x5eedu);
    EXPECT_EQ(back.programName, "doubler");
    ASSERT_EQ(back.interventions.size(), 2u);
    EXPECT_EQ(back.interventions[0].kind, InterventionKind::PokeMemory);
    EXPECT_EQ(back.interventions[0].time, 120u);
    EXPECT_TRUE(back.interventions[0].atEventPark);
    EXPECT_EQ(back.interventions[1].kind, InterventionKind::ToolEnable);
    EXPECT_EQ(back.interventions[1].toolName, "asan");
    ASSERT_EQ(back.interventions[1].toolConfig.size(), 1u);
    EXPECT_EQ(back.interventions[1].toolConfig[0].first, "redzone");
    EXPECT_EQ(back.interventions[1].toolConfig[0].second, "16");
    EXPECT_EQ(back.interventions[1].toolSlots,
              (std::vector<int>{4, 5}));
    ASSERT_EQ(back.marks.size(), 1u);
    EXPECT_EQ(back.marks[0].time, 115u);
    EXPECT_EQ(back.time, 400u);
    EXPECT_EQ(back.appInsts, 100u);
    EXPECT_EQ(back.digest, 0xfeedfaceu);
    ASSERT_EQ(back.checkpoints.size(), 2u);
    EXPECT_EQ(back.checkpoints[1], (persist::CheckpointMeta{160, 40}));
    ASSERT_EQ(back.toolDigests.size(), 1u);
    EXPECT_EQ(back.toolDigests[0],
              (persist::ToolDigest{"asan", 0x1234abcd}));
}

TEST(SessionImage, HostileInputsRejectTyped)
{
    std::vector<uint8_t> good = persist::encodeImage(sampleImage(7));
    SessionImage out;

    // Empty and every truncation point: Truncated (or BadChecksum once
    // the frame exists), never a crash or an accepted image.
    EXPECT_EQ(persist::decodeImage(nullptr, 0, out), ImageErr::Truncated);
    for (size_t n = 1; n < good.size(); n += 7) {
        ImageErr e = persist::decodeImage(good.data(), n, out);
        EXPECT_NE(e, ImageErr::None) << "prefix " << n;
    }

    // Bad magic.
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff;
    EXPECT_EQ(persist::decodeImage(bad, out), ImageErr::BadMagic);

    // Every single-byte flip past the magic is caught by the checksum
    // (or a stricter structural check that fires first).
    for (size_t i = 8; i < good.size(); i += 11) {
        bad = good;
        bad[i] ^= 0x04;
        ImageErr e = persist::decodeImage(bad, out);
        EXPECT_NE(e, ImageErr::None) << "flip @ " << i;
    }

    // Version skew with a VALID checksum: typed as BadVersion.
    bad = good;
    bad[8] = 0x7f;
    refreshTrailingChecksum(bad);
    EXPECT_EQ(persist::decodeImage(bad, out), ImageErr::BadVersion);

    // A count field inflated to claim more elements than the payload
    // holds (checksum fixed): bounded reader refuses allocation.
    bad = good;
    bool rejected = true;
    // Scan for any 4-byte window whose inflation breaks decode but
    // never crashes it (ASan/UBSan guard the walk).
    for (size_t i = 12; i + 4 < bad.size() - 8; i += 13) {
        std::vector<uint8_t> mut = good;
        mut[i] = 0xff;
        mut[i + 1] = 0xff;
        mut[i + 2] = 0xff;
        mut[i + 3] = 0x7f;
        refreshTrailingChecksum(mut);
        SessionImage tmp;
        rejected = persist::decodeImage(mut, tmp) != ImageErr::None &&
                   rejected;
    }
    SUCCEED(); // surviving the sweep without UB is the assertion
}

// ------------------------------------------------------------ the store

TEST(SessionStore, PutLoadEraseReopen)
{
    std::string dir = scratchDir("basic");
    RealVfs vfs;
    SessionStore store(dir, vfs);
    ASSERT_TRUE(store.open().ok);
    EXPECT_TRUE(store.entries().empty());

    ASSERT_TRUE(store.put(sampleImage(1)).ok);
    ASSERT_TRUE(store.put(sampleImage(2)).ok);
    // Replacing an entry supersedes its file (versioned, then GC'd).
    SessionImage v2 = sampleImage(1);
    v2.appInsts = 12345;
    ASSERT_TRUE(store.put(v2).ok);

    SessionImage out;
    ASSERT_TRUE(store.load(1, out).ok);
    EXPECT_EQ(out.appInsts, 12345u);
    EXPECT_TRUE(store.contains(2));
    EXPECT_FALSE(store.contains(3));
    StoreResult missing = store.load(3, out);
    EXPECT_FALSE(missing.ok);
    EXPECT_EQ(missing.err, StoreErr::Missing);

    // A second store on the same directory sees exactly the committed
    // state (the manifest is the commit point).
    SessionStore reopened(dir, vfs);
    ASSERT_TRUE(reopened.open().ok);
    EXPECT_EQ(reopened.entries().size(), 2u);
    ASSERT_TRUE(reopened.load(1, out).ok);
    EXPECT_EQ(out.appInsts, 12345u);
    EXPECT_TRUE(reopened.quarantined().empty());

    ASSERT_TRUE(reopened.erase(1).ok);
    EXPECT_FALSE(reopened.contains(1));
    StoreResult gone = reopened.erase(1);
    EXPECT_FALSE(gone.ok);
    EXPECT_EQ(gone.err, StoreErr::Missing);

    SessionStore again(dir, vfs);
    ASSERT_TRUE(again.open().ok);
    EXPECT_EQ(again.entries().size(), 1u);
    EXPECT_EQ(again.entries()[0].id, 2u);
}

/** The loader-fuzz table: every way a store directory can rot must
 *  quarantine (typed) and keep recovery alive — never crash, never
 *  admit a corrupt image. */
TEST(SessionStore, LoaderFuzzQuarantinesEveryCorruption)
{
    RealVfs vfs;

    struct Case
    {
        const char *name;
        /** Mutate a freshly-populated store directory (ids 1 and 2). */
        std::function<void(const std::string &dir)> corrupt;
        /** Ids that must survive recovery. */
        std::vector<uint64_t> survivors;
        bool expectQuarantine;
    };

    auto readF = [&](const std::string &p) {
        std::vector<uint8_t> b;
        std::string e;
        EXPECT_TRUE(vfs.readFile(p, b, &e)) << p << ": " << e;
        return b;
    };
    auto writeF = [&](const std::string &p,
                      const std::vector<uint8_t> &b) {
        std::string e;
        ASSERT_TRUE(vfs.writeFile(p, b.data(), b.size(), &e)) << e;
    };
    auto imageFileOf = [&](const std::string &dir, uint64_t id) {
        std::vector<std::string> names;
        vfs.list(dir, names);
        std::string prefix = "sess-" + std::to_string(id) + ".v";
        for (const std::string &n : names)
            if (n.rfind(prefix, 0) == 0)
                return dir + "/" + n;
        ADD_FAILURE() << "no image file for id " << id;
        return std::string();
    };

    std::vector<Case> cases = {
        {"truncated-manifest",
         [&](const std::string &dir) {
             std::vector<uint8_t> m = readF(dir + "/manifest.bin");
             m.resize(m.size() / 2);
             writeF(dir + "/manifest.bin", m);
         },
         {1, 2},
         true},
        {"bitflip-manifest",
         [&](const std::string &dir) {
             std::vector<uint8_t> m = readF(dir + "/manifest.bin");
             m[m.size() / 2] ^= 0x20;
             writeF(dir + "/manifest.bin", m);
         },
         {1, 2},
         true},
        {"manifest-version-skew",
         [&](const std::string &dir) {
             std::vector<uint8_t> m = readF(dir + "/manifest.bin");
             m[8] = 0x6f; // version u32 follows the 8-byte magic
             refreshTrailingChecksum(m);
             writeF(dir + "/manifest.bin", m);
         },
         {1, 2},
         true},
        {"zero-length-image",
         [&](const std::string &dir) {
             writeF(imageFileOf(dir, 1), {});
         },
         {2},
         true},
        {"garbage-magic-image",
         [&](const std::string &dir) {
             std::vector<uint8_t> b = readF(imageFileOf(dir, 2));
             std::memcpy(b.data(), "NOTDISE!", 8);
             writeF(imageFileOf(dir, 2), b);
         },
         {1},
         true},
        {"bitflip-image",
         [&](const std::string &dir) {
             std::vector<uint8_t> b = readF(imageFileOf(dir, 1));
             b[b.size() / 3] ^= 0x01;
             writeF(imageFileOf(dir, 1), b);
         },
         {2},
         true},
        {"image-version-skew",
         [&](const std::string &dir) {
             std::vector<uint8_t> b = readF(imageFileOf(dir, 2));
             b[8] = 0x7e;
             refreshTrailingChecksum(b);
             writeF(imageFileOf(dir, 2), b);
         },
         {1},
         true},
        {"duplicate-ids-no-manifest",
         [&](const std::string &dir) {
             // Two valid versions of id 1 and no manifest: the salvage
             // scan must adopt the newest and quarantine the loser.
             std::vector<uint8_t> b = readF(imageFileOf(dir, 1));
             SessionImage img;
             ASSERT_EQ(persist::decodeImage(b, img), ImageErr::None);
             img.appInsts = 777;
             std::vector<uint8_t> newer = persist::encodeImage(img);
             writeF(dir + "/sess-1.v99.img", newer);
             vfs.remove(dir + "/manifest.bin");
         },
         {1, 2},
         true},
        {"tmp-residue-collected",
         [&](const std::string &dir) {
             writeF(dir + "/sess-9.v1.img.tmp", {1, 2, 3});
             writeF(dir + "/manifest.bin.tmp", {4, 5});
         },
         {1, 2},
         false},
    };

    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        std::string dir = scratchDir(std::string("fuzz_") + c.name);
        {
            SessionStore store(dir, vfs);
            ASSERT_TRUE(store.open().ok);
            ASSERT_TRUE(store.put(sampleImage(1)).ok);
            ASSERT_TRUE(store.put(sampleImage(2)).ok);
        }
        c.corrupt(dir);

        SessionStore recovered(dir, vfs);
        StoreResult res = recovered.open();
        ASSERT_TRUE(res.ok) << res.detail; // recovery NEVER aborts
        std::vector<persist::StoreEntryMeta> entries =
            recovered.entries();
        EXPECT_EQ(entries.size(), c.survivors.size());
        for (uint64_t id : c.survivors) {
            EXPECT_TRUE(recovered.contains(id)) << "lost id " << id;
            SessionImage out;
            StoreResult load = recovered.load(id, out);
            EXPECT_TRUE(load.ok) << load.detail;
            EXPECT_EQ(out.id, id);
        }
        if (c.expectQuarantine) {
            EXPECT_FALSE(recovered.quarantined().empty());
            for (const persist::QuarantineRecord &q :
                 recovered.quarantined()) {
                EXPECT_NE(q.err, StoreErr::None);
                EXPECT_FALSE(q.detail.empty());
            }
        } else {
            EXPECT_TRUE(recovered.quarantined().empty());
            EXPECT_GT(recovered.counters().orphansRemoved, 0u);
        }

        // The rebuilt store must be fully serviceable: a fresh put and
        // a reopen both succeed.
        ASSERT_TRUE(recovered.put(sampleImage(50)).ok);
        SessionStore verify(dir, vfs);
        ASSERT_TRUE(verify.open().ok);
        EXPECT_TRUE(verify.contains(50));
    }
}

TEST(SessionStore, FaultBatteryEveryVfsSite)
{
    RealVfs real;
    for (FaultInjector::Site site :
         {FaultInjector::Site::Open, FaultInjector::Site::Write,
          FaultInjector::Site::Fsync, FaultInjector::Site::Rename}) {
        SCOPED_TRACE(FaultInjector::siteName(site));
        std::string dir = scratchDir(
            std::string("fault_") + FaultInjector::siteName(site));
        FaultInjector faults(0xc0ffee);
        persist::FaultyVfs vfs(real, faults);
        SessionStore store(dir, vfs);
        ASSERT_TRUE(store.open().ok);
        ASSERT_TRUE(store.put(sampleImage(1)).ok);
        SessionImage before;
        ASSERT_TRUE(store.load(1, before).ok);

        // Fail every nth touch of this site in turn until an update
        // attempt stops tripping faults: every failure must be typed
        // Injected AND leave the old state fully readable.
        SessionImage update = sampleImage(1);
        update.appInsts = 4242;
        for (uint64_t nth = 1; nth <= 8; ++nth) {
            faults.armNth(site, nth);
            StoreResult res = store.put(update);
            faults.disarm();
            if (res.ok)
                break; // nth exceeded the site's touches in one put
            EXPECT_EQ(res.err, StoreErr::Injected) << res.detail;
            EXPECT_NE(res.detail.find("injected"), std::string::npos);
            SessionImage out;
            StoreResult load = store.load(1, out);
            ASSERT_TRUE(load.ok)
                << "store lost data after injected "
                << FaultInjector::siteName(site) << ": " << load.detail;
            // Old OR new content, never garbage or absence.
            EXPECT_TRUE(out.appInsts == before.appInsts ||
                        out.appInsts == 4242u)
                << out.appInsts;

            // Recovery on the torn directory also stays clean.
            SessionStore reopened(dir, real);
            ASSERT_TRUE(reopened.open().ok);
            ASSERT_TRUE(reopened.contains(1));
        }

        // Disarmed, the update lands.
        ASSERT_TRUE(store.put(update).ok);
        SessionImage out;
        ASSERT_TRUE(store.load(1, out).ok);
        EXPECT_EQ(out.appInsts, 4242u);
        EXPECT_GT(faults.injected(), 0u);
    }

    // Probability mode: a sustained storm of faults never corrupts the
    // store; once calm, everything works and the last committed state
    // is intact.
    std::string dir = scratchDir("fault_storm");
    FaultInjector faults(0xdecade);
    persist::FaultyVfs vfs(real, faults);
    SessionStore store(dir, vfs);
    ASSERT_TRUE(store.open().ok);
    ASSERT_TRUE(store.put(sampleImage(1)).ok);
    for (FaultInjector::Site site :
         {FaultInjector::Site::Open, FaultInjector::Site::Write,
          FaultInjector::Site::Fsync, FaultInjector::Site::Rename})
        faults.armProbability(site, 1, 4);
    unsigned failures = 0;
    for (unsigned round = 0; round < 40; ++round) {
        SessionImage img = sampleImage(1 + (round % 3));
        img.appInsts = round;
        StoreResult res = store.put(img);
        if (!res.ok) {
            ++failures;
            EXPECT_TRUE(res.err == StoreErr::Injected ||
                        res.err == StoreErr::Io)
                << res.detail;
        }
        SessionImage out;
        StoreResult load = store.load(1, out);
        if (load.ok)
            EXPECT_EQ(out.id, 1u);
    }
    EXPECT_GT(failures, 0u) << "storm injected nothing — seed drift?";
    faults.disarm();
    ASSERT_TRUE(store.put(sampleImage(4)).ok);
    SessionStore reopened(dir, real);
    ASSERT_TRUE(reopened.open().ok);
    EXPECT_TRUE(reopened.contains(4));
    SessionImage out;
    for (const persist::StoreEntryMeta &e : reopened.entries())
        EXPECT_TRUE(reopened.load(e.id, out).ok);
}

TEST(FaultInjector, SeededAndDeterministic)
{
    FaultInjector a(123), b(123);
    a.armProbability(FaultInjector::Site::Write, 1, 3);
    b.armProbability(FaultInjector::Site::Write, 1, 3);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.shouldFail(FaultInjector::Site::Write),
                  b.shouldFail(FaultInjector::Site::Write))
            << i;
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
    EXPECT_EQ(a.touches(FaultInjector::Site::Write), 200u);

    // nth mode is exact and one-shot.
    FaultInjector c(7);
    c.armNth(FaultInjector::Site::Rename, 3);
    EXPECT_FALSE(c.shouldFail(FaultInjector::Site::Rename));
    EXPECT_FALSE(c.shouldFail(FaultInjector::Site::Rename));
    EXPECT_TRUE(c.shouldFail(FaultInjector::Site::Rename));
    EXPECT_FALSE(c.shouldFail(FaultInjector::Site::Rename));
}

// ------------------------------------------- session hibernate/resurrect

Program
doublerProgram()
{
    Assembler a;
    a.data(layout::DataBase);
    a.label("x");
    a.quad(3);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "x");
    a.lda(t1, 0, zero);
    a.label("loop");
    a.stmt(1);
    a.ldq(t0, 0, s0);
    a.addq(t0, t0, t0);
    a.label("the_store");
    a.stq(t0, 0, s0);
    a.addq(t1, 1, t1);
    a.cmplt(t1, 5, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    return a.finish("main");
}

SessionOptions
sessionOptions(BackendKind kind)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 16;
    return o;
}

bool
resurrectAll(DebugSession &s, const SessionImage &img, std::string *err)
{
    bool done = false;
    if (!s.resurrectBegin(img, done, err))
        return false;
    while (!done)
        if (!s.resurrectStep(0, done, err))
            return false;
    return true;
}

TEST(SessionResurrect, RoundTripEveryBackend)
{
    for (BackendKind kind :
         {BackendKind::Dise, BackendKind::SingleStep,
          BackendKind::VirtualMemory, BackendKind::HardwareReg,
          BackendKind::Rewrite}) {
        SCOPED_TRACE(backendName(kind));
        Program prog = doublerProgram();
        Addr scratch = prog.symbol("x") + 32;

        DebugSession live(prog, sessionOptions(kind));
        live.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
        StopInfo hit = live.cont();
        ASSERT_EQ(hit.reason, StopReason::Event);
        live.stepi(3);
        // A logged mid-run intervention: resurrection must replay it.
        ASSERT_TRUE(live.writeMemory(scratch, 8, 0x77));
        live.stepi(2);

        SessionImage img;
        std::string err;
        img.id = 5;
        img.workload = "doubler";
        ASSERT_TRUE(live.exportImage(img, &err)) << err;
        EXPECT_EQ(img.backend, kind);
        EXPECT_TRUE(img.attached);
        EXPECT_TRUE(img.hasTravel);
        EXPECT_EQ(img.digest, live.digest());

        // Byte round-trip through the serialized form, like the store
        // would do.
        std::vector<uint8_t> bytes = persist::encodeImage(img);
        SessionImage loaded;
        ASSERT_EQ(persist::decodeImage(bytes, loaded), ImageErr::None);

        DebugSession res(prog, sessionOptions(kind));
        ASSERT_TRUE(resurrectAll(res, loaded, &err)) << err;

        // Bit-identical: position, digest, poked memory, spec set.
        EXPECT_EQ(res.stats().time, live.stats().time);
        EXPECT_EQ(res.stats().appInsts, live.stats().appInsts);
        EXPECT_EQ(res.digest(), live.digest());
        EXPECT_EQ(res.readMemory(scratch, 1)[0], 0x77);

        // And it keeps living: both sessions agree on the future.
        StopInfo a = live.cont();
        StopInfo b = res.cont();
        EXPECT_EQ(a.reason, b.reason);
        EXPECT_EQ(a.time, b.time);
        EXPECT_EQ(live.digest(), res.digest());
    }
}

TEST(SessionResurrect, ToolStateSurvivesHibernationBitIdentically)
{
    // Satellite of the debug-tool subsystem: enable asan + coverage,
    // run to a position with findings on the books, hibernate through
    // the serialized form, resurrect, and demand bit-identical tool
    // state — the per-tool digests in the image are the proof
    // obligation the seek replay must discharge.
    Program prog = buildToolDemo();
    DebugSession live(prog, sessionOptions(BackendKind::Dise));
    std::string err;
    ASSERT_TRUE(live.toolEnable("asan", {{"redzone", "16"}}, &err))
        << err;
    ASSERT_TRUE(live.toolEnable("coverage", {}, &err)) << err;

    // Step until asan has caught the seeded out-of-bounds store (but
    // before the run ends, so resurrection really replays).
    const tools::ToolSet &liveTools =
        live.debugger().backend().tools();
    for (int i = 0; i < 100 && liveTools.findings().empty(); ++i) {
        StopInfo s = live.stepi(25);
        ASSERT_EQ(s.reason, StopReason::Step);
    }
    ASSERT_FALSE(liveTools.findings().empty());

    SessionImage img;
    img.id = 9;
    img.workload = "tooldemo";
    ASSERT_TRUE(live.exportImage(img, &err)) << err;
    ASSERT_EQ(img.toolDigests.size(), 2u);
    for (const persist::ToolDigest &td : img.toolDigests)
        EXPECT_NE(td.digest, 0u) << td.name;

    // Through the bytes, like the store would ship them.
    std::vector<uint8_t> bytes = persist::encodeImage(img);
    SessionImage loaded;
    ASSERT_EQ(persist::decodeImage(bytes, loaded), ImageErr::None);
    EXPECT_EQ(loaded.toolDigests, img.toolDigests);

    DebugSession res(prog, sessionOptions(BackendKind::Dise));
    ASSERT_TRUE(resurrectAll(res, loaded, &err)) << err;

    const tools::ToolSet &resTools = res.debugger().backend().tools();
    EXPECT_EQ(resTools.digest("asan"), liveTools.digest("asan"));
    EXPECT_EQ(resTools.digest("coverage"),
              liveTools.digest("coverage"));
    ASSERT_EQ(resTools.findings().size(), liveTools.findings().size());
    for (size_t i = 0; i < resTools.findings().size(); ++i) {
        EXPECT_EQ(resTools.findings()[i].kind,
                  liveTools.findings()[i].kind);
        EXPECT_EQ(resTools.findings()[i].pc,
                  liveTools.findings()[i].pc);
        EXPECT_EQ(resTools.findings()[i].detail,
                  liveTools.findings()[i].detail);
    }
    std::string liveReport, resReport;
    uint64_t d0 = 0, d1 = 0;
    ASSERT_TRUE(live.toolReport("asan", &liveReport, &d0, &err)) << err;
    ASSERT_TRUE(res.toolReport("asan", &resReport, &d1, &err)) << err;
    EXPECT_EQ(liveReport, resReport);
    EXPECT_EQ(d0, d1);

    // Both sessions keep finding the same bugs in the same future.
    StopInfo a = live.runToEnd();
    StopInfo b = res.runToEnd();
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(live.digest(), res.digest());
    EXPECT_EQ(resTools.digest("asan"), liveTools.digest("asan"));
    EXPECT_EQ(resTools.findings().size(), liveTools.findings().size());

    // A tampered tool digest is caught, and the vessel is detached
    // rather than left holding unverified tool state.
    SessionImage bad = img;
    bad.toolDigests[0].digest ^= 1;
    DebugSession vessel(prog, sessionOptions(BackendKind::Dise));
    EXPECT_FALSE(resurrectAll(vessel, bad, &err));
    EXPECT_NE(err.find("tool"), std::string::npos) << err;
    EXPECT_FALSE(vessel.attached());
}

TEST(SessionResurrect, ConfigOnlyImageNeedsNoReplay)
{
    Program prog = doublerProgram();
    DebugSession live(prog, sessionOptions(BackendKind::Dise));
    live.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    ASSERT_TRUE(live.writeMemory(prog.symbol("x"), 8, 5)); // pre-attach

    SessionImage img;
    std::string err;
    ASSERT_TRUE(live.exportImage(img, &err)) << err;
    EXPECT_FALSE(img.attached);

    DebugSession res(prog, sessionOptions(BackendKind::Dise));
    ASSERT_TRUE(resurrectAll(res, img, &err)) << err;
    EXPECT_FALSE(res.attached());

    // Both configured-but-cold sessions run to the same first stop.
    StopInfo a = live.cont();
    StopInfo b = res.cont();
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(live.digest(), res.digest());
}

TEST(SessionResurrect, RefusalsAreTypedAndStateSafe)
{
    Program prog = doublerProgram();

    // A batch (cycle-level) run is outside the replayable timeline:
    // export must refuse, not emit a lying image.
    DebugSession batch(prog, sessionOptions(BackendKind::Dise));
    batch.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    ASSERT_TRUE(batch.attach());
    batch.runCycles();
    SessionImage img;
    std::string err;
    EXPECT_FALSE(batch.exportImage(img, &err));
    EXPECT_NE(err.find("batch"), std::string::npos) << err;

    // Resurrection demands a fresh vessel.
    DebugSession used(prog, sessionOptions(BackendKind::Dise));
    used.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    SessionImage cfg;
    DebugSession donor(prog, sessionOptions(BackendKind::Dise));
    ASSERT_TRUE(donor.exportImage(cfg, &err)) << err;
    bool done = false;
    EXPECT_FALSE(used.resurrectBegin(cfg, done, &err));
    EXPECT_NE(err.find("fresh"), std::string::npos) << err;

    // A tampered position anchor must be caught by verification and
    // leave the vessel detached, not silently divergent.
    DebugSession live(prog, sessionOptions(BackendKind::Dise));
    live.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit = live.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    live.stepi(4);
    SessionImage good;
    ASSERT_TRUE(live.exportImage(good, &err)) << err;
    SessionImage tampered = good;
    tampered.digest ^= 1;
    DebugSession vessel(prog, sessionOptions(BackendKind::Dise));
    EXPECT_FALSE(resurrectAll(vessel, tampered, &err));
    EXPECT_NE(err.find("digest"), std::string::npos) << err;
    EXPECT_FALSE(vessel.attached());

    // The untampered image still resurrects into another fresh vessel.
    DebugSession vessel2(prog, sessionOptions(BackendKind::Dise));
    ASSERT_TRUE(resurrectAll(vessel2, good, &err)) << err;
    EXPECT_EQ(vessel2.digest(), live.digest());
}

} // namespace
} // namespace dise
