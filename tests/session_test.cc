/**
 * @file
 * Session-layer tests: wire-encoding round-trips and rejection of
 * malformed lines, lazy attach (configure → first resume), the ordered
 * EventQueue (attach/watch/checkpoint/restore notices replacing the
 * pull-style event vectors), post-attach mute/unmute, pre-attach
 * pokes, parity between the typed verbs, the encoded wire path, and
 * the underlying Debugger/TimeTravel front end.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "session/debug_session.hh"

namespace dise {
namespace {

using namespace reg;

// ------------------------------------------------------ wire encoding

TEST(SessionProtocol, RequestRoundTripsEveryKind)
{
    Request req;
    req.kind = RequestKind::SetWatch;
    req.seq = 42;
    req.watch = WatchSpec::range("hot table", 0x20000, 64)
                    .withCondition(0xdeadbeef);
    Request back;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), back));
    EXPECT_EQ(back.kind, RequestKind::SetWatch);
    EXPECT_EQ(back.seq, 42u);
    EXPECT_EQ(back.watch.kind, WatchKind::Range);
    EXPECT_EQ(back.watch.name, "hot table"); // escaped space survives
    EXPECT_EQ(back.watch.addr, 0x20000u);
    EXPECT_EQ(back.watch.length, 64u);
    EXPECT_TRUE(back.watch.conditional);
    EXPECT_EQ(back.watch.predConst, 0xdeadbeefu);

    req = Request{};
    req.kind = RequestKind::SetBreak;
    req.brk.pc = 0x1000054;
    req.brk.conditional = true;
    req.brk.condAddr = 0x20008;
    req.brk.condSize = 4;
    req.brk.condConst = 7;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), back));
    EXPECT_EQ(back.brk.pc, 0x1000054u);
    EXPECT_TRUE(back.brk.conditional);
    EXPECT_EQ(back.brk.condAddr, 0x20008u);
    EXPECT_EQ(back.brk.condSize, 4u);
    EXPECT_EQ(back.brk.condConst, 7u);

    req = Request{};
    req.kind = RequestKind::SetWatch;
    req.watch = WatchSpec::scalar("tab\tand\nnewline", 0x10, 8);
    ASSERT_TRUE(decodeRequest(encodeRequest(req), back));
    EXPECT_EQ(back.watch.name, "tab\tand\nnewline");

    req = Request{};
    req.kind = RequestKind::WriteMemory;
    req.addr = 0x30010;
    req.size = 4;
    req.value = 0x99;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), back));
    EXPECT_EQ(back.addr, 0x30010u);
    EXPECT_EQ(back.size, 4u);
    EXPECT_EQ(back.value, 0x99u);

    for (RequestKind kind :
         {RequestKind::Ping, RequestKind::SelectBackend,
          RequestKind::Attach, RequestKind::Cont, RequestKind::Stepi,
          RequestKind::RunToEnd, RequestKind::ReverseContinue,
          RequestKind::ReverseStep, RequestKind::RunToEvent,
          RequestKind::ReadRegisters, RequestKind::Stats,
          RequestKind::Detach}) {
        req = Request{};
        req.kind = kind;
        req.backend = BackendKind::Rewrite;
        req.count = 17;
        ASSERT_TRUE(decodeRequest(encodeRequest(req), back))
            << requestKindName(kind);
        EXPECT_EQ(back.kind, kind);
        if (kind == RequestKind::SelectBackend)
            EXPECT_EQ(back.backend, BackendKind::Rewrite);
    }
}

TEST(SessionProtocol, ResponseRoundTrip)
{
    Response resp;
    resp.status = ResponseStatus::Ok;
    resp.seq = 7;
    resp.inReplyTo = RequestKind::Cont;
    resp.hasStop = true;
    resp.stop.reason = StopReason::Event;
    resp.stop.eventIndex = 3;
    resp.stop.mark.kind = EventKind::Watch;
    resp.stop.mark.index = 2;
    resp.stop.mark.pc = 0x100005c;
    resp.stop.time = 1234;
    resp.stop.appInsts = 567;
    resp.stop.pc = 0x1000060;
    Response back;
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    EXPECT_TRUE(back.ok());
    EXPECT_EQ(back.seq, 7u);
    EXPECT_EQ(back.inReplyTo, RequestKind::Cont);
    ASSERT_TRUE(back.hasStop);
    EXPECT_EQ(back.stop.reason, StopReason::Event);
    EXPECT_EQ(back.stop.eventIndex, 3);
    EXPECT_EQ(back.stop.mark.kind, EventKind::Watch);
    EXPECT_EQ(back.stop.mark.pc, 0x100005cu);
    EXPECT_EQ(back.stop.time, 1234u);
    EXPECT_EQ(back.stop.pc, 0x1000060u);

    resp = Response{};
    resp.inReplyTo = RequestKind::ReadRegisters;
    resp.regs = {0, 0xdeadbeef, ~0ull};
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    ASSERT_EQ(back.regs.size(), 3u);
    EXPECT_EQ(back.regs[1], 0xdeadbeefu);
    EXPECT_EQ(back.regs[2], ~0ull);

    resp = Response{};
    resp.inReplyTo = RequestKind::ReadMemory;
    resp.bytes = {0x00, 0xff, 0x7d, 0x24};
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    EXPECT_EQ(back.bytes, (std::vector<uint8_t>{0x00, 0xff, 0x7d, 0x24}));

    resp = Response{};
    resp.status = ResponseStatus::Unsupported;
    resp.inReplyTo = RequestKind::Attach;
    resp.error = "no experiment: INDIRECT under vm";
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    EXPECT_EQ(back.status, ResponseStatus::Unsupported);
    EXPECT_EQ(back.error, "no experiment: INDIRECT under vm");
}

TEST(SessionProtocol, ServerStatsHistogramsRoundTrip)
{
    Response resp;
    resp.status = ResponseStatus::Ok;
    resp.seq = 12;
    resp.inReplyTo = RequestKind::ServerStats;
    resp.server.activeSessions = 2;
    resp.server.dropped = 3;
    resp.server.quarantined = 4;
    resp.server.faultsInjected = 5;
    HistogramSnapshot verb;
    verb.name = "dise_verb_latency_us";
    verb.count = 7;
    verb.sum = 12345;
    verb.buckets = {1, 0, 2, 4}; // interior zero survives the wire
    HistogramSnapshot fsync;
    fsync.name = "dise_store_fsync_us";
    fsync.count = 1;
    fsync.sum = 9;
    fsync.buckets = {0, 1};
    HistogramSnapshot idle;
    idle.name = "dise_event_push_us"; // never observed: no buckets
    resp.server.hists = {verb, fsync, idle};

    Response back;
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    EXPECT_EQ(back.server.dropped, 3u);
    EXPECT_EQ(back.server.quarantined, 4u);
    EXPECT_EQ(back.server.faultsInjected, 5u);
    ASSERT_EQ(back.server.hists.size(), 3u);
    // The decoder iterates hist.* keys in lexicographic key order, so
    // match by name rather than position.
    for (const HistogramSnapshot &want : resp.server.hists) {
        bool found = false;
        for (const HistogramSnapshot &got : back.server.hists)
            if (got.name == want.name) {
                EXPECT_TRUE(got == want) << want.name;
                found = true;
            }
        EXPECT_TRUE(found) << want.name;
    }

    // The free-text payload (metrics exposition / trace chunks) must
    // survive escaping: newlines, quotes, percent signs.
    resp = Response{};
    resp.inReplyTo = RequestKind::Metrics;
    resp.text = "# TYPE x histogram\nx_bucket{le=\"+Inf\"} 3\nx 100%\n";
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), back));
    EXPECT_EQ(back.text, resp.text);

    // A mangled histogram value is a decode error, not silent zeros.
    Response bad;
    std::string err;
    EXPECT_FALSE(decodeResponse(
        "ok seq=1 re=server-stats hist.x=notanumber", bad, &err));
    EXPECT_NE(err.find("histogram"), std::string::npos) << err;
}

TEST(SessionProtocol, EventRoundTripAndDescribe)
{
    SessionEvent ev;
    ev.kind = SessionEventKind::Watch;
    ev.seq = 9;
    ev.time = 100;
    ev.appInsts = 42;
    ev.pc = 0x100005c;
    ev.index = 1;
    ev.addr = 0x20100;
    ev.oldValue = 0xd1;
    ev.newValue = 0x1234;
    SessionEvent back;
    ASSERT_TRUE(decodeEvent(encodeEvent(ev), back));
    EXPECT_EQ(back.kind, SessionEventKind::Watch);
    EXPECT_EQ(back.seq, 9u);
    EXPECT_EQ(back.addr, 0x20100u);
    EXPECT_EQ(back.newValue, 0x1234u);

    // describe() is for humans; just pin the load-bearing parts.
    std::string text = ev.describe();
    EXPECT_NE(text.find("watchpoint 1"), std::string::npos) << text;
    EXPECT_NE(text.find("0x20100"), std::string::npos) << text;
}

TEST(SessionProtocol, MalformedLinesRejected)
{
    Request req;
    Response resp;
    SessionEvent ev;
    std::string err;
    const char *bad[] = {
        "",                          // empty
        "warp-speed seq=1",          // unknown verb
        "set-watch seq=1",           // missing addr
        "set-watch addr=nope wkind=scalar", // bad number
        "set-watch addr=0x10 wkind=diagonal", // bad watch kind
        "select-backend backend=quantum",     // bad backend
        "cont =bare",                // malformed token
        "write-register seq=1",      // missing fields
    };
    for (const char *line : bad)
        EXPECT_FALSE(decodeRequest(line, req, &err)) << line;
    EXPECT_FALSE(decodeResponse("yes stop=1", resp, &err));
    EXPECT_FALSE(decodeEvent("ok kind=watch", ev, &err));
    EXPECT_FALSE(decodeEvent("event kind=mystery", ev, &err));
}

// ------------------------------------------------------- the session

/** x is doubled five times; every store is a watch hit. */
Program
doublerProgram()
{
    Assembler a;
    a.data(layout::DataBase);
    a.label("x");
    a.quad(3);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "x");
    a.lda(t1, 0, zero);
    a.label("loop");
    a.stmt(1);
    a.ldq(t0, 0, s0);
    a.addq(t0, t0, t0);
    a.label("the_store");
    a.stq(t0, 0, s0);
    a.addq(t1, 1, t1);
    a.cmplt(t1, 5, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    return a.finish("main");
}

SessionOptions
sessionOptions(BackendKind kind = BackendKind::Dise)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 16;
    return o;
}

TEST(DebugSession, LazyAttachAndEventQueue)
{
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    EXPECT_EQ(session.setWatch(
                  WatchSpec::scalar("x", prog.symbol("x"), 8)),
              0);
    EXPECT_FALSE(session.attached());

    // Pre-attach peeks read the loaded image without attaching.
    std::vector<uint8_t> x0 = session.readMemory(prog.symbol("x"), 8);
    EXPECT_EQ(x0[0], 3);
    EXPECT_FALSE(session.attached());

    // The first resume attaches, runs, and stops on the watch hit.
    StopInfo hit = session.cont();
    EXPECT_TRUE(session.attached());
    ASSERT_EQ(hit.reason, StopReason::Event) << hit;
    EXPECT_EQ(hit.mark.pc, prog.symbol("the_store"));

    // Queue order: attached first, then checkpoint(s)/watch events.
    std::vector<SessionEvent> events = session.events().drain();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events.front().kind, SessionEventKind::Attached);
    bool sawWatch = false;
    for (const auto &ev : events)
        if (ev.kind == SessionEventKind::Watch) {
            sawWatch = true;
            EXPECT_EQ(ev.addr, prog.symbol("x"));
            EXPECT_EQ(ev.oldValue, 3u);
            EXPECT_EQ(ev.newValue, 6u);
        }
    EXPECT_TRUE(sawWatch);

    // Run out: 4 more hits, then a halt notice.
    StopInfo end = session.runToEnd();
    EXPECT_EQ(end.reason, StopReason::Halted);
    events = session.events().drain();
    size_t watches = 0;
    bool sawHalt = false;
    for (const auto &ev : events) {
        watches += ev.kind == SessionEventKind::Watch;
        sawHalt |= ev.kind == SessionEventKind::Halted;
    }
    EXPECT_EQ(watches, 4u);
    EXPECT_TRUE(sawHalt);

    // Reverse travel announces a restore and re-crossed events.
    StopInfo back = session.reverseContinue();
    EXPECT_EQ(back.reason, StopReason::Event);
    events = session.events().drain();
    bool sawRestore = false;
    for (const auto &ev : events)
        sawRestore |= ev.kind == SessionEventKind::Restore;
    EXPECT_TRUE(sawRestore);
}

TEST(DebugSession, MuteAndUnmute)
{
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    int idx =
        session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);

    // Muted: the remaining 4 hits neither stop the session nor reach
    // the event queue.
    EXPECT_TRUE(session.removeWatch(idx));
    EXPECT_TRUE(session.watchMuted(idx));
    session.events().clear();
    StopInfo end = session.cont();
    EXPECT_EQ(end.reason, StopReason::Halted);
    for (const auto &ev : session.events().drain())
        EXPECT_NE(ev.kind, SessionEventKind::Watch) << ev.describe();

    // Re-adding the identical spec unmutes (gdb's insert cycle);
    // reverse-continue now stops on the last hit again.
    EXPECT_EQ(session.setWatch(
                  WatchSpec::scalar("x", prog.symbol("x"), 8)),
              idx);
    EXPECT_FALSE(session.watchMuted(idx));
    StopInfo back = session.reverseContinue();
    EXPECT_EQ(back.reason, StopReason::Event);
    EXPECT_EQ(back.mark.pc, prog.symbol("the_store"));

    // A brand-new spec post-attach rebuilds the machinery and replays
    // the timeline; it lands on a fresh index instead of a refusal.
    EXPECT_EQ(session.setWatch(WatchSpec::scalar("y", 0x99999, 8)), 1);
}

TEST(DebugSession, PostAttachWatchAdditionReplays)
{
    // gdb's `Z` after `c`: adding a spec the session has never seen
    // once machinery is installed must transparently rebuild + replay
    // instead of requiring a manual session rebuild.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit1 = session.cont();
    ASSERT_EQ(hit1.reason, StopReason::Event);
    session.events().clear();

    BreakSpec bp;
    bp.pc = prog.symbol("loop");
    int b = session.setBreak(bp);
    ASSERT_GE(b, 0);

    // The rebuild parked the session at the identical position...
    EXPECT_EQ(session.stats().appInsts, hit1.appInsts);
    // ...re-announcing the re-crossed history (attach, watch hit 1,
    // plus the new breakpoint's past hit that materialized).
    bool sawAttached = false, sawWatch = false, sawBreak = false;
    for (const auto &ev : session.events().drain()) {
        sawAttached |= ev.kind == SessionEventKind::Attached;
        sawBreak |= ev.kind == SessionEventKind::Break;
        if (ev.kind == SessionEventKind::Watch) {
            sawWatch = true;
            EXPECT_EQ(ev.oldValue, 3u);
            EXPECT_EQ(ev.newValue, 6u);
        }
    }
    EXPECT_TRUE(sawAttached);
    EXPECT_TRUE(sawWatch);
    EXPECT_TRUE(sawBreak); // iteration 1's `loop` precedes the store

    // The new breakpoint stops the very next resume (iteration 2).
    StopInfo hit2 = session.cont();
    ASSERT_EQ(hit2.reason, StopReason::Event) << hit2;
    EXPECT_EQ(hit2.mark.kind, EventKind::Break);
    EXPECT_EQ(hit2.pc, prog.symbol("loop"));

    // Reverse travel works on the rebuilt timeline: back across the
    // breakpoint to the original watch hit.
    StopInfo back = session.reverseContinue();
    ASSERT_EQ(back.reason, StopReason::Event) << back;
    EXPECT_EQ(back.mark.kind, EventKind::Watch);
    EXPECT_EQ(back.appInsts, hit1.appInsts);
}

TEST(DebugSession, PostAttachAdditionReplaysLoggedPokes)
{
    // A poke made mid-session is part of the timeline; the rebuild
    // must re-apply it at its recorded position or the replayed run
    // diverges from what the user saw.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit1 = session.cont();
    ASSERT_EQ(hit1.reason, StopReason::Event);
    // Step onto the next boundary (pokes are only valid between
    // instructions), then poke x to 100 so the next store sees 200.
    session.stepi(1);
    ASSERT_TRUE(session.writeMemory(prog.symbol("x"), 8, 100));

    BreakSpec bp;
    bp.pc = prog.symbol("loop");
    ASSERT_GE(session.setBreak(bp), 0);
    // The rebuilt target re-applied the poke.
    EXPECT_EQ(session.readMemory(prog.symbol("x"), 8)[0], 100);

    session.events().clear();
    StopInfo hit2 = session.cont(); // break at loop, iteration 2
    ASSERT_EQ(hit2.reason, StopReason::Event);
    EXPECT_EQ(hit2.mark.kind, EventKind::Break);
    StopInfo hit3 = session.cont(); // the store doubles the poked 100
    ASSERT_EQ(hit3.reason, StopReason::Event);
    bool saw = false;
    for (const auto &ev : session.events().drain())
        if (ev.kind == SessionEventKind::Watch) {
            // newValue 200 = 2 * the replayed poke; oldValue is the
            // watch's last *observed* value (shadows don't see pokes).
            EXPECT_EQ(ev.oldValue, 6u);
            EXPECT_EQ(ev.newValue, 200u);
            saw = true;
        }
    EXPECT_TRUE(saw);
}

TEST(DebugSession, PostAttachAdditionDisambiguatesSameInstructionEvents)
{
    // The added spec overlaps the park event's own instruction: the
    // store at the_store now fires TWO watch marks at the identical
    // (pc, appInsts). The replay must re-park on the ORIGINAL spec's
    // event, identified by session index + data address, not on
    // whichever mark shows up first.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    int a = session.setWatch(
        WatchSpec::scalar("x8", prog.symbol("x"), 8));
    StopInfo hit1 = session.cont();
    ASSERT_EQ(hit1.reason, StopReason::Event);
    ASSERT_EQ(hit1.mark.index, 0);

    // A 4-byte watch on the same cell: same store, same pc, same
    // instruction count — a second mark at the park position.
    int b = session.setWatch(
        WatchSpec::scalar("x4", prog.symbol("x"), 4));
    ASSERT_GE(b, 0);
    EXPECT_NE(a, b);

    // Position preserved, and the stop identity still belongs to the
    // original watch.
    EXPECT_EQ(session.stats().appInsts, hit1.appInsts);
    StopInfo next = session.cont();
    ASSERT_EQ(next.reason, StopReason::Event) << next;
    // The immediate next event: the second spec's mark at the same
    // store (it was re-discovered during replay just past the park).
    EXPECT_LE(next.appInsts, hit1.appInsts + 7);
}

TEST(DebugSession, PreResumePokesSurviveRebuild)
{
    // A poke made after attach but before the first resume is part of
    // the target's initial state; a rebuild triggered by a later spec
    // addition must not silently revert it.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    ASSERT_TRUE(session.attach());
    ASSERT_TRUE(session.writeMemory(prog.symbol("x"), 8, 0x42));
    ASSERT_GE(session.setWatch(
                  WatchSpec::scalar("x", prog.symbol("x"), 8)),
              0);
    EXPECT_EQ(session.readMemory(prog.symbol("x"), 8)[0], 0x42);

    // And the rebuilt run actually computes with the poked value.
    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    bool saw = false;
    for (const auto &ev : session.events().drain())
        if (ev.kind == SessionEventKind::Watch) {
            EXPECT_EQ(ev.oldValue, 0x42u);
            EXPECT_EQ(ev.newValue, 0x84u);
            saw = true;
        }
    EXPECT_TRUE(saw);
}

TEST(DebugSession, PostAttachAdditionRefusedAfterBatchRun)
{
    // A cycle-level batch run advances the target outside the
    // replayable timeline: the rebuild must refuse, not corrupt.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    ASSERT_TRUE(session.attach());
    session.runCycles();
    EXPECT_LT(session.setWatch(WatchSpec::scalar("y", 0x99999, 8)), 0);
}

TEST(DebugSession, BatchAnnouncementsCarryMarkPositions)
{
    // ROADMAP PR 3 follow-up: a runToEnd() crossing five hits must
    // deliver five *distinct* positions (each event's own mark), not
    // five copies of the halt position.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo end = session.runToEnd();
    ASSERT_EQ(end.reason, StopReason::Halted);

    std::vector<SessionEvent> watches;
    for (const auto &ev : session.events().drain())
        if (ev.kind == SessionEventKind::Watch)
            watches.push_back(ev);
    ASSERT_EQ(watches.size(), 5u);

    uint64_t prevTime = 0;
    for (const auto &ev : watches) {
        EXPECT_GT(ev.time, prevTime);       // strictly increasing
        EXPECT_LT(ev.time, end.time);       // before the halt
        EXPECT_LT(ev.appInsts, end.appInsts);
        prevTime = ev.time;
    }

    // Pin them against a reference that stops at every hit, where the
    // announcement position and the mark position coincide.
    DebugSession ref(prog, sessionOptions());
    ref.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    for (size_t i = 0; i < watches.size(); ++i) {
        StopInfo hit = ref.cont();
        ASSERT_EQ(hit.reason, StopReason::Event) << "hit " << i;
        EXPECT_EQ(watches[i].time, hit.time) << "hit " << i;
        EXPECT_EQ(watches[i].appInsts, hit.appInsts) << "hit " << i;
    }
}

TEST(DebugSession, ContSliceHonorsQuantum)
{
    // The scheduler's forward slicing primitive: cont() bounded to a quantum
    // returns Step when the quantum expires, and the next slice picks
    // up exactly where the previous one left off.
    Program prog = doublerProgram();
    DebugSession full(prog, sessionOptions());
    full.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo oneShot = full.cont();
    ASSERT_EQ(oneShot.reason, StopReason::Event);

    DebugSession sliced(prog, sessionOptions());
    sliced.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo stop;
    unsigned slices = 0;
    do {
        stop = sliced.contSlice(2);
        ++slices;
        ASSERT_LT(slices, 1000u);
    } while (stop.reason == StopReason::Step);
    EXPECT_EQ(stop.reason, StopReason::Event);
    EXPECT_EQ(stop.time, oneShot.time);
    EXPECT_EQ(stop.pc, oneShot.pc);
    EXPECT_GT(slices, 1u); // the quantum actually split the run
}

TEST(DebugSession, PreAttachRemovalKeepsIndicesStable)
{
    // Removal never erases: indices handed out earlier must stay
    // valid (an RSP client caches them in its Z/z map).
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    int a = session.setWatch(WatchSpec::scalar("a", prog.symbol("x"), 8));
    int b = session.setWatch(WatchSpec::scalar("b", 0x99999, 8));
    ASSERT_EQ(a, 0);
    ASSERT_EQ(b, 1);
    EXPECT_TRUE(session.removeWatch(a));
    // b's index still resolves, and re-adding b's spec re-arms slot 1.
    EXPECT_TRUE(session.removeWatch(b));
    EXPECT_EQ(session.setWatch(WatchSpec::scalar("b", 0x99999, 8)), b);
    EXPECT_TRUE(session.watchMuted(a));
    EXPECT_FALSE(session.watchMuted(b));

    // a stays muted across the attach: the run never stops on it.
    StopInfo end = session.runToEnd();
    EXPECT_EQ(end.reason, StopReason::Halted);
    for (const auto &ev : session.events().drain())
        EXPECT_NE(ev.kind, SessionEventKind::Watch) << ev.describe();
}

TEST(DebugSession, MutedSpecsAreNotInstalled)
{
    // gdb's 'delete' before the first continue: the hwreg backend
    // refuses breakpoints outright, so a deleted one must not be
    // installed — and must not make attach fail.
    Program prog = doublerProgram();
    DebugSession session(prog,
                         sessionOptions(BackendKind::HardwareReg));
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    BreakSpec bp;
    bp.pc = prog.symbol("the_store");
    int b = session.setBreak(bp);
    EXPECT_TRUE(session.removeBreak(b));

    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event) << hit;
    EXPECT_EQ(hit.mark.kind, EventKind::Watch);

    // The never-installed breakpoint cannot be re-armed post-attach.
    EXPECT_LT(session.setBreak(bp), 0);
}

TEST(DebugSession, PreAttachPokesBecomeInitialState)
{
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));

    // Poke x before anything is attached: the run sees 10 -> 20.
    EXPECT_TRUE(session.writeMemory(prog.symbol("x"), 8, 10));
    EXPECT_EQ(session.readMemory(prog.symbol("x"), 8)[0], 10);
    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);
    bool saw = false;
    for (const auto &ev : session.events().drain())
        if (ev.kind == SessionEventKind::Watch) {
            EXPECT_EQ(ev.oldValue, 10u);
            EXPECT_EQ(ev.newValue, 20u);
            saw = true;
        }
    EXPECT_TRUE(saw);
}

TEST(DebugSession, WireTranscriptMatchesTypedVerbs)
{
    Program prog = doublerProgram();

    // Typed reference.
    DebugSession ref(prog, sessionOptions());
    ref.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo refHit = ref.cont();

    // The same session driven entirely through encoded lines.
    DebugSession wire(prog, sessionOptions());
    Response resp;
    ASSERT_TRUE(decodeResponse(
        wire.handleEncoded("select-backend seq=1 backend=dise"), resp));
    EXPECT_TRUE(resp.ok());

    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("x", prog.symbol("x"), 8);
    ASSERT_TRUE(
        decodeResponse(wire.handleEncoded(encodeRequest(setw)), resp));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.index, 0);

    ASSERT_TRUE(decodeResponse(wire.handleEncoded("cont seq=3"), resp));
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp.hasStop);
    EXPECT_EQ(resp.stop.reason, StopReason::Event);
    EXPECT_EQ(resp.stop.pc, refHit.pc);
    EXPECT_EQ(resp.stop.time, refHit.time);

    ASSERT_TRUE(decodeResponse(
        wire.handleEncoded("read-registers seq=4"), resp));
    EXPECT_EQ(resp.regs, ref.readRegisters());

    ASSERT_TRUE(decodeResponse(wire.handleEncoded("stats seq=5"), resp));
    EXPECT_EQ(resp.stats.appInsts, refHit.appInsts);
    EXPECT_GE(resp.stats.events, 1u);

    // Unknown verbs come back as errors, not crashes.
    ASSERT_TRUE(decodeResponse(
        wire.handleEncoded("self-destruct seq=6"), resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);

    ASSERT_TRUE(
        decodeResponse(wire.handleEncoded("detach seq=7"), resp));
    EXPECT_TRUE(resp.ok());
    ASSERT_TRUE(decodeResponse(wire.handleEncoded("cont seq=8"), resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
}

TEST(DebugSession, UnsupportedBackendReportsCleanly)
{
    // INDIRECT under virtual memory is the paper's "no experiment"
    // cell: the session must answer Unsupported, not crash.
    Program prog = doublerProgram();
    DebugSession session(prog,
                         sessionOptions(BackendKind::VirtualMemory));
    session.setWatch(
        WatchSpec::indirect("*p", prog.symbol("x"), 8));
    Request cont;
    cont.kind = RequestKind::Cont;
    Response resp = session.handle(cont);
    EXPECT_EQ(resp.status, ResponseStatus::Unsupported);
    EXPECT_FALSE(session.attached());
}

TEST(DebugSession, CycleRunsStillWork)
{
    // The harness' cycle-level path through the session front end.
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    ASSERT_TRUE(session.attach());
    RunStats stats = session.runCycles();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.halt, HaltReason::Exited);
    size_t watches = 0;
    for (const auto &ev : session.events().drain())
        watches += ev.kind == SessionEventKind::Watch;
    EXPECT_EQ(watches, 5u);
}

TEST(DebugSession, PokeAtWatchStopWithoutStepping)
{
    // gdb writes memory at a watchpoint stop without stepping first —
    // the session is parked mid-expansion, which used to be refused
    // with "interventions are only valid between instructions".
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);

    Addr scratch = prog.symbol("x") + 32;
    ASSERT_TRUE(session.writeMemory(scratch, 8, 0xabcd));
    EXPECT_EQ(session.readMemory(scratch, 2)[0], 0xcd);

    // The same thing over the wire answers ok, not error.
    StopInfo hit2 = session.cont();
    ASSERT_EQ(hit2.reason, StopReason::Event);
    char line[96];
    std::snprintf(line, sizeof line,
                  "write-memory seq=9 addr=0x%llx size=8 value=0x99",
                  static_cast<unsigned long long>(scratch));
    Response resp;
    ASSERT_TRUE(decodeResponse(session.handleEncoded(line), resp));
    EXPECT_TRUE(resp.ok()) << resp.error;

    // The pokes are loggable interventions: travel back across them
    // and forward again reproduces the poked state.
    uint64_t d = session.digest();
    session.reverseStep(3);
    StopInfo back = session.runToEvent(hit2.eventIndex);
    EXPECT_EQ(back.time, hit2.time);
    EXPECT_EQ(session.digest(), d);
    EXPECT_EQ(session.readMemory(scratch, 1)[0], 0x99);

    // This timeline now holds a poke at an INTERIOR park (the first
    // hit's, run past long ago). A machinery rebuild used to refuse
    // it; now the replay navigates to the interior park by the parked
    // mark's (kind, pc, appInsts, owner, address) occurrence and
    // re-applies the poke there, so enlarging the spec set succeeds.
    int x4 =
        session.setWatch(WatchSpec::scalar("x4", prog.symbol("x"), 4));
    EXPECT_GE(x4, 0) << session.lastRefusal();
    EXPECT_TRUE(session.lastRefusal().empty());
    // Back at the second hit's position, both pokes replayed in order.
    EXPECT_EQ(session.stats().appInsts, hit2.appInsts);
    EXPECT_EQ(session.readMemory(scratch, 1)[0], 0x99);

    // The interior poke re-applied at its exact position: the first
    // boundary past the first hit sees 0xabcd (the interior poke,
    // before the later 0x99 overwrote it), and a boundary before the
    // watched store predates it.
    session.reverseStep(hit2.appInsts - hit.appInsts);
    EXPECT_LT(session.stats().appInsts, hit2.appInsts);
    EXPECT_EQ(session.readMemory(scratch, 1)[0], 0xcd);
    session.reverseStep(2);
    EXPECT_LT(session.stats().appInsts, hit.appInsts);
    EXPECT_EQ(session.readMemory(scratch, 1)[0], 0x00);

    // Enlarging again over the wire (another rebuild, now with a
    // boundary position) answers ok, not unsupported.
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 10;
    setw.watch = WatchSpec::scalar("x2", prog.symbol("x"), 2);
    Response rw;
    ASSERT_TRUE(
        decodeResponse(session.handleEncoded(encodeRequest(setw)), rw));
    EXPECT_TRUE(rw.ok()) << rw.error;
    EXPECT_EQ(session.readMemory(scratch, 1)[0], 0x00);

    // A session whose only park poke is at the CURRENT park rebuilds
    // fine: phase 3 re-applies it after re-finding the park.
    DebugSession fresh(prog, sessionOptions());
    fresh.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo fhit = fresh.cont();
    ASSERT_EQ(fhit.reason, StopReason::Event);
    ASSERT_TRUE(fresh.writeMemory(scratch, 8, 0x55));
    int idx = fresh.setWatch(
        WatchSpec::scalar("x4", prog.symbol("x"), 4));
    EXPECT_GE(idx, 0);
    EXPECT_EQ(fresh.readMemory(scratch, 1)[0], 0x55);
    EXPECT_EQ(fresh.stats().appInsts, fhit.appInsts);
}

TEST(DebugSession, PostAttachAdditionReplaysProductionMutations)
{
    // Satellite of the rebuild path: DISE-table interventions used to
    // refuse reattachAndReplay outright. Now the rebuild replays them
    // at their stamps — including a removal of a pre-session
    // (prepare-hook) production, re-targeted by its stable slot.
    Program prog = doublerProgram();
    SessionOptions so = sessionOptions();
    auto preId = std::make_shared<ProductionId>(0);
    so.prepare = [preId](DebugTarget &t) {
        Production p;
        p.name = "presession";
        p.pattern = Pattern::forPc(0x7fff0000); // inert: never matches
        p.replacement.push_back(TemplateInst::trigInst());
        *preId = t.engine.addProduction(p);
    };
    DebugSession session(prog, so);
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
    StopInfo hit = session.cont();
    ASSERT_EQ(hit.reason, StopReason::Event);

    TimeTravel &tt = session.timeTravel();
    session.stepi(1);
    Production q;
    q.name = "insession";
    q.pattern = Pattern::forPc(0x7fff1000);
    q.replacement.push_back(TemplateInst::trigInst());
    tt.addProduction(q);
    session.stepi(1);
    tt.removeProduction(*preId);
    session.stepi(1);
    uint64_t pos = session.stats().appInsts;

    // Post-attach addition with table mutations in the journal: no
    // longer refused.
    BreakSpec bp;
    bp.pc = prog.symbol("loop");
    int idx = session.setBreak(bp);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(session.stats().appInsts, pos);

    // The rebuilt timeline carries the mutations at their stamps:
    // stepping back across the removal resurrects the pre-session
    // production, and re-crossing removes it again.
    DiseEngine &eng = session.target().engine;
    size_t cAfter = eng.productionCount();
    uint64_t d1 = session.digest();
    session.reverseStep(2);
    EXPECT_EQ(eng.productionCount(), cAfter + 1);
    // (An intervention recorded at a position applies when execution
    // continues FROM it, so the removal lands during this step.)
    session.stepi(2);
    EXPECT_EQ(eng.productionCount(), cAfter);
    EXPECT_EQ(session.digest(), d1);

    // Interval-parallel reconstruction handles the production journal
    // too (pre-applied before an interval, applied in-loop within).
    IntervalReplay::Report rep = session.verifyReplay(2);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.finalDigest, session.digest());
}

TEST(DebugSession, SlicedRebuildMatchesOneShot)
{
    // The server drives post-attach spec changes as preemptible jobs:
    // begin + bounded rebuildStep() quanta must land exactly where the
    // one-shot setWatch() does.
    Program prog = doublerProgram();
    DebugSession a(prog, sessionOptions());
    DebugSession b(prog, sessionOptions());
    for (DebugSession *s : {&a, &b}) {
        s->setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
        StopInfo hit = s->cont();
        ASSERT_EQ(hit.reason, StopReason::Event);
    }
    WatchSpec w4 = WatchSpec::scalar("x4", prog.symbol("x"), 4);
    int refIdx = a.setWatch(w4);
    ASSERT_GE(refIdx, 0);

    bool done = false;
    int idx = b.setWatchBegin(w4, done);
    ASSERT_GE(idx, 0);
    unsigned steps = 0;
    while (!done) {
        done = b.rebuildStep(3); // tiny quanta
        ++steps;
    }
    EXPECT_EQ(idx, refIdx);
    EXPECT_GE(steps, 2u) << "rebuild should take several quanta";
    EXPECT_EQ(a.stats().appInsts, b.stats().appInsts);
    EXPECT_EQ(a.stats().time, b.stats().time);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(DebugSession, SlicedReverseMatchesOneShot)
{
    Program prog = doublerProgram();
    DebugSession a(prog, sessionOptions());
    DebugSession b(prog, sessionOptions());
    for (DebugSession *s : {&a, &b}) {
        s->setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));
        s->runToEnd();
    }
    StopInfo ref = a.reverseContinue();
    bool done = false;
    StopInfo got = b.reverseBegin(RequestKind::ReverseContinue, 0,
                                  done);
    while (!done)
        got = b.reverseSlice(2, done);
    EXPECT_EQ(got.reason, ref.reason);
    EXPECT_EQ(got.time, ref.time);
    EXPECT_EQ(got.eventIndex, ref.eventIndex);
    EXPECT_EQ(a.digest(), b.digest());

    // Muted events restart the travel inside the sliced form too.
    ASSERT_TRUE(a.removeWatch(0));
    ASSERT_TRUE(b.removeWatch(0));
    StopInfo refBack = a.reverseContinue(); // start-of-history
    got = b.reverseBegin(RequestKind::ReverseContinue, 0, done);
    while (!done)
        got = b.reverseSlice(2, done);
    EXPECT_EQ(got.reason, refBack.reason);
    EXPECT_EQ(got.time, refBack.time);
}

TEST(DebugSession, ReplayVerifyWireVerb)
{
    Program prog = doublerProgram();
    DebugSession session(prog, sessionOptions());
    session.setWatch(WatchSpec::scalar("x", prog.symbol("x"), 8));

    // Before any run there is nothing to reconstruct.
    Response resp;
    ASSERT_TRUE(decodeResponse(
        session.handleEncoded("replay-verify seq=1 count=2"), resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);

    session.cont();
    session.runToEnd();
    ASSERT_TRUE(decodeResponse(
        session.handleEncoded("replay-verify seq=2 count=2"), resp));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.value, session.digest());
    EXPECT_GT(resp.regs.size(), 1u); // per-interval digests
}

TEST(DebugSession, DescribePrintersAreReadable)
{
    StopInfo stop;
    stop.reason = StopReason::Event;
    stop.eventIndex = 3;
    stop.mark.kind = EventKind::Watch;
    stop.mark.index = 0;
    stop.pc = 0x100005c;
    stop.time = 1234;
    stop.appInsts = 567;
    std::string text = stop.describe();
    EXPECT_NE(text.find("event"), std::string::npos) << text;
    EXPECT_NE(text.find("0x100005c"), std::string::npos) << text;
    EXPECT_NE(text.find("1234"), std::string::npos) << text;

    Response resp;
    resp.status = ResponseStatus::Unsupported;
    resp.inReplyTo = RequestKind::Attach;
    resp.error = "no experiment";
    text = resp.describe();
    EXPECT_NE(text.find("unsupported"), std::string::npos) << text;
    EXPECT_NE(text.find("attach"), std::string::npos) << text;
    EXPECT_NE(text.find("no experiment"), std::string::npos) << text;
}

} // namespace
} // namespace dise
