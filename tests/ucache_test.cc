/**
 * @file
 * Correctness tests for the hot-path caches: the predecoded µop cache
 * (self-modifying-code invalidation through MainMemory's CodeWatcher
 * hook, match-outcome invalidation through the engine's generation
 * counter), the indexed production matcher (equivalence with the
 * linear reference scan), memoized expansions, and the fetchWord
 * fast path.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cpu/func_cpu.hh"
#include "cpu/loader.hh"
#include "debug/target.hh"
#include "dise/engine.hh"
#include "isa/encoding.hh"

namespace dise {
namespace {

using namespace reg;

Production
countStoresProduction()
{
    // Expand every store into {T.INST; addq dr0, 1, dr0}.
    Production p;
    p.name = "count-stores";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement = {
        TemplateInst::trigInst(),
        TemplateInst::opImm(Opcode::ADDQ_I, TRegField::reg(dr(0)), 1,
                            TRegField::reg(dr(0))),
    };
    return p;
}

// ----------------------------------------------------- self-modification

/**
 * A loop body instruction is executed (and therefore cached), then
 * overwritten in memory, then executed again: the new instruction must
 * take effect on the next pass.
 */
void
runSmcLoop(bool uopCache, uint64_t *markOut, size_t *cachedPages)
{
    // Iteration 1 runs "addq t0, 1, t0" at the patch site, then the
    // loop tail overwrites the site with "addq t0, 7, t0".
    uint32_t patched = encode(makeOpImm(Opcode::ADDQ_I, t0, 7, t0));

    Assembler a;
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    a.label("main");
    a.la(s0, "site");
    a.li(t2, patched);
    a.li(t0, 0);
    a.li(s1, 2); // two passes over the site
    a.label("again");
    a.label("site");
    a.addq(t0, 1, t0); // pass 1: +1; pass 2 (after patch): +7
    a.stl(t2, 0, s0);  // self-modify: overwrite the site
    a.subq(s1, 1, s1);
    a.bne(s1, "again");
    a.mov(t0, a0);
    a.syscall(SysMark);
    a.syscall(SysExit);

    DebugTarget target(a.finish("main"));
    target.load();
    StreamEnv env;
    env.sink = &target.sink;
    env.uopCache = uopCache;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);
    FuncResult r = cpu.run();
    ASSERT_EQ(r.halt, HaltReason::Exited);
    ASSERT_EQ(target.sink.marks.size(), 1u);
    *markOut = target.sink.marks[0];
    if (cachedPages)
        *cachedPages = cpu.stream().uopCachedPages();
}

TEST(UopCache, SelfModifyingCodeInvalidatesCachedDecode)
{
    uint64_t cached = 0, uncached = 0;
    size_t pages = 0;
    runSmcLoop(true, &cached, &pages);
    runSmcLoop(false, &uncached, nullptr);
    EXPECT_EQ(cached, 8u); // 1 (original) + 7 (patched)
    EXPECT_EQ(uncached, 8u);
    EXPECT_GE(pages, 1u); // the cache was actually in play
}

// --------------------------------------- production-table invalidation

/** Ten stores; the engine's production table mutates between runs. */
Program
tenStoreProgram()
{
    Assembler a;
    a.data(0x0200'0000);
    a.text(0x0100'0000);
    a.label("main");
    a.la(s0, "buf");
    for (int i = 0; i < 10; ++i)
        a.stq(t0, static_cast<int64_t>(8 * i), s0);
    a.syscall(SysExit);
    a.data(0x0200'0000);
    a.label("buf");
    a.space(96);
    return a.finish("main");
}

TEST(UopCache, AddingProductionInvalidatesCachedMatchOutcome)
{
    DebugTarget target(tenStoreProgram());
    target.load();
    StreamEnv env;
    env.sink = &target.sink;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    // Execute the program's prologue plus a few stores with no
    // productions installed: their no-match outcomes are now cached.
    FuncResult r1 = cpu.run(5);
    ASSERT_EQ(r1.halt, HaltReason::InstLimit);
    ASSERT_GE(r1.stores, 1u);
    EXPECT_EQ(target.arch.readDise(0), 0u);

    // Install mid-run: the remaining stores (re-running PCs whose
    // "no match" outcome was cached) must now expand.
    target.engine.addProduction(countStoresProduction());
    FuncResult r2 = cpu.run();
    EXPECT_EQ(r2.halt, HaltReason::Exited);
    EXPECT_EQ(target.arch.readDise(0), 10u - r1.stores);
}

TEST(UopCache, RemovingProductionInvalidatesCachedMatchOutcome)
{
    DebugTarget target(tenStoreProgram());
    target.load();
    ProductionId id = target.engine.addProduction(countStoresProduction());
    StreamEnv env;
    env.sink = &target.sink;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    // Run the prologue plus at least one expanded store.
    FuncResult r1 = cpu.run(5);
    ASSERT_EQ(r1.halt, HaltReason::InstLimit);
    ASSERT_GE(r1.stores, 1u);

    target.engine.removeProduction(id);
    FuncResult r2 = cpu.run();
    EXPECT_EQ(r2.halt, HaltReason::Exited);
    // Only stores executed while the production was installed counted
    // (an expansion in flight at the removal point still completes).
    EXPECT_EQ(target.arch.readDise(0), r1.stores);
}

TEST(UopCache, ClearInvalidatesCachedMatchOutcome)
{
    DebugTarget target(tenStoreProgram());
    target.load();
    target.engine.addProduction(countStoresProduction());
    StreamEnv env;
    env.sink = &target.sink;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    FuncResult r1 = cpu.run(5);
    ASSERT_EQ(r1.halt, HaltReason::InstLimit);
    ASSERT_GE(r1.stores, 1u);

    target.engine.clear();
    FuncResult r2 = cpu.run();
    EXPECT_EQ(r2.halt, HaltReason::Exited);
    EXPECT_EQ(target.arch.readDise(0), r1.stores);
}

TEST(UopCache, SlotReuseDuringInFlightExpansionIsSafe)
{
    // Stop the stream mid-expansion (the trigger copy executed, the
    // dr0 increment still pending), then remove the matched production
    // and reuse its slot with a *shorter* replacement. The in-flight
    // expansion must complete with its original sequence and flags.
    DebugTarget target(tenStoreProgram());
    target.load();
    ProductionId id = target.engine.addProduction(countStoresProduction());
    StreamEnv env;
    env.sink = &target.sink;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    FuncResult r1 = cpu.run(5);
    ASSERT_EQ(r1.halt, HaltReason::InstLimit);
    ASSERT_GE(r1.stores, 1u);

    target.engine.removeProduction(id);
    Production del;
    del.name = "delete-stores";
    del.pattern = Pattern::forClass(OpClass::Store);
    del.replacement = {}; // shorter than the in-flight DISEPC
    target.engine.addProduction(del); // reuses the freed slot

    FuncResult r2 = cpu.run();
    EXPECT_EQ(r2.halt, HaltReason::Exited);
    // Stores expanded while the counter production was installed (the
    // in-flight one included) counted; later stores were deleted.
    EXPECT_EQ(target.arch.readDise(0), r1.stores);
}

// -------------------------------------------------- memoized expansion

Production
triggerDependentProduction()
{
    // Uses every trigger-derived field: T.RS1 (rb), T.RD (ra), T.IMM.
    Production p;
    p.name = "trigger-dependent";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement = {
        TemplateInst::opImm(Opcode::ADDQ_I, TRegField::trigRb(), 8,
                            TRegField::reg(dr(0))),
        TemplateInst::mem(Opcode::LDQ, TRegField::trigRa(),
                          TImmField::trigImm(), TRegField::reg(dr(0))),
        TemplateInst::trigInst(),
    };
    return p;
}

TEST(ExpansionMemo, MemoizedEqualsFreshForTriggerDependentTemplates)
{
    DiseEngine engine;
    engine.addProduction(triggerDependentProduction());

    Inst trigA = makeMem(Opcode::STQ, t0, 16, sp);
    Inst trigB = makeMem(Opcode::STL, t3, -8, s2);

    int slot = engine.matchSlot(trigA, 0x1000);
    ASSERT_GE(slot, 0);
    const Production *prod = engine.slotProduction(slot);

    auto memoA = engine.expandCached(slot, trigA);
    auto memoB = engine.expandCached(slot, trigB);
    EXPECT_EQ(memoA->insts, engine.expand(*prod, trigA));
    EXPECT_EQ(memoB->insts, engine.expand(*prod, trigB));
    EXPECT_NE(memoA->insts, memoB->insts); // fields flow from the trigger
    EXPECT_EQ(memoA->triggerCopy,
              (std::vector<uint8_t>{0, 0, 1})); // T.INST position

    // Repeat hits share the instantiated sequence.
    EXPECT_EQ(engine.expandCached(slot, trigA).get(), memoA.get());
}

TEST(ExpansionMemo, TableMutationDropsMemoButSequencesSurvive)
{
    DiseEngine engine;
    engine.addProduction(triggerDependentProduction());
    Inst trig = makeMem(Opcode::STQ, t0, 16, sp);
    int slot = engine.matchSlot(trig, 0x1000);
    ASSERT_GE(slot, 0);
    auto before = engine.expandCached(slot, trig);
    uint64_t gen = engine.generation();

    ProductionId id =
        engine.addProduction(countStoresProduction());
    EXPECT_GT(engine.generation(), gen);
    engine.removeProduction(id);

    // The shared sequence we hold is still intact, and a fresh lookup
    // (new memo entry) produces identical contents.
    int slot2 = engine.matchSlot(trig, 0x1000);
    ASSERT_GE(slot2, 0);
    auto after = engine.expandCached(slot2, trig);
    EXPECT_EQ(before->insts, after->insts);
}

// ------------------------------------------- indexed-match equivalence

TEST(IndexedMatch, AgreesWithLinearScanAcrossPatternKinds)
{
    DiseEngine engine;
    auto ident = [](std::string name, Pattern pat) {
        Production p;
        p.name = std::move(name);
        p.pattern = pat;
        p.replacement = {TemplateInst::trigInst()};
        return p;
    };

    Pattern storeSp = Pattern::forClass(OpClass::Store);
    storeSp.baseReg = sp;
    Pattern loadAtPc = Pattern::forClass(OpClass::Load);
    loadAtPc.pc = 0x1010;
    Pattern onlyBase; // base-register-only: no indexable anchor
    onlyBase.baseReg = s0;

    engine.addProduction(ident("stores", Pattern::forClass(OpClass::Store)));
    engine.addProduction(ident("stores-sp", storeSp));
    engine.addProduction(ident("stq", Pattern::forOpcode(Opcode::STQ)));
    engine.addProduction(ident("pc", Pattern::forPc(0x1008)));
    engine.addProduction(ident("load-at-pc", loadAtPc));
    engine.addProduction(ident("cw7", Pattern::forCodeword(7)));
    engine.addProduction(ident("base-only", onlyBase));

    const Inst insts[] = {
        makeMem(Opcode::STQ, t0, 0, sp),   makeMem(Opcode::STL, t0, 8, t1),
        makeMem(Opcode::STQ, t0, 0, s0),   makeMem(Opcode::LDQ, t2, 16, s0),
        makeMem(Opcode::LDQ, t2, 16, sp),  makeSystem(Opcode::CODEWORD, 7),
        makeSystem(Opcode::CODEWORD, 8),   makeNullary(Opcode::NOP),
        makeOp(Opcode::ADDQ, t0, t1, t2),  makeBranch(Opcode::BEQ, t0, 4),
    };
    const Addr pcs[] = {0x1000, 0x1008, 0x1010};

    for (const Inst &inst : insts) {
        for (Addr pc : pcs) {
            engine.setIndexedMatch(true);
            int indexed = engine.matchSlot(inst, pc);
            engine.setIndexedMatch(false);
            int linear = engine.matchSlot(inst, pc);
            EXPECT_EQ(indexed, linear)
                << "inst op " << static_cast<int>(inst.op) << " pc 0x"
                << std::hex << pc;
        }
    }
}

TEST(IndexedMatch, TablesWiderThanMaskFallBackToLinearScan)
{
    DiseEngineConfig cfg;
    cfg.patternTableEntries = 128; // wider than the 64-bit slot mask
    DiseEngine engine(cfg);
    Production p;
    p.name = "stores";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement = {TemplateInst::trigInst()};
    ProductionId id = engine.addProduction(p);

    Inst store = makeMem(Opcode::STQ, t0, 0, sp);
    int slot = engine.matchSlot(store, 0x1000);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(engine.slotProduction(slot)->name, "stores");
    EXPECT_EQ(engine.productionCount(), 1u);
    engine.removeProduction(id);
    EXPECT_EQ(engine.matchSlot(store, 0x1000), -1);
}

// --------------------------------------------------- fetchWord fast path

TEST(FetchWord, MatchesGenericReadAndTracksWrites)
{
    MainMemory mem;
    mem.write(0x1000, 4, 0xdeadbeef);
    EXPECT_EQ(mem.fetchWord(0x1000), 0xdeadbeefu);
    EXPECT_EQ(mem.fetchWord(0x1000), mem.read(0x1000, 4));

    // Unmapped reads are zero; mapping the page afterwards must not be
    // masked by the one-entry page cache.
    EXPECT_EQ(mem.fetchWord(0x20000), 0u);
    mem.write(0x20000, 4, 0x12345678);
    EXPECT_EQ(mem.fetchWord(0x20000), 0x12345678u);

    // In-place updates show through the cached page pointer.
    mem.write(0x20000, 4, 0x87654321);
    EXPECT_EQ(mem.fetchWord(0x20000), 0x87654321u);

    // Page-straddling word.
    mem.write(PageBytes - 2, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.fetchWord(PageBytes - 2),
              static_cast<uint32_t>(mem.read(PageBytes - 2, 4)));
}

namespace {

struct RecordingWatcher : CodeWatcher
{
    std::vector<uint64_t> frames;
    void onCodeWrite(uint64_t frame) override { frames.push_back(frame); }
};

} // namespace

TEST(CodeWatch, MarkedPagesNotifyOnWriteThenUnmark)
{
    MainMemory mem;
    RecordingWatcher w;
    mem.addCodeWatcher(&w);

    mem.write(0x5000, 8, 1); // unmarked: silent
    EXPECT_TRUE(w.frames.empty());

    mem.markCodePage(0x5000);
    mem.write(0x5008, 8, 2);
    ASSERT_EQ(w.frames.size(), 1u);
    EXPECT_EQ(w.frames[0], 0x5000u / PageBytes);

    // The page unmarked itself; further writes are silent until
    // re-marked.
    mem.write(0x5010, 8, 3);
    EXPECT_EQ(w.frames.size(), 1u);
    mem.markCodePage(0x5000);
    mem.write(0x5018, 8, 4);
    EXPECT_EQ(w.frames.size(), 2u);

    mem.removeCodeWatcher(&w);
    mem.markCodePage(0x5000);
    mem.write(0x5020, 8, 5);
    EXPECT_EQ(w.frames.size(), 2u);
}

} // namespace
} // namespace dise
