/**
 * @file
 * Shard supervisor tests: session routing across forked worker
 * processes, fleet verb merging, disjoint id minting, live migration
 * with digest parity on every backend, crash respawn with store
 * recovery, queue-wait balancing, and migration under injected faults
 * (old-or-new, never corrupt).
 *
 * These tests fork real worker processes; the suite is deliberately
 * excluded from the TSan build (fork-without-exec from a threaded
 * parent is outside TSan's model).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "persist/fault_injector.hh"
#include "server/server.hh"
#include "server/supervisor.hh"
#include "server/wire_client.hh"
#include "session/protocol.hh"

namespace dise {
namespace {

using server::ShardSupervisor;
using server::ShardSupervisorOptions;
using server::WireClient;

SessionOptions
smallSessions()
{
    SessionOptions o;
    o.timeTravel.checkpointInterval = 512;
    return o;
}

/** Fresh scratch directory tree (shards add shard-<k> subdirs). */
std::string
storeScratch(const std::string &name)
{
    std::string dir = "shard_test_store_" + name + "_" +
                      std::to_string(static_cast<long>(::getpid()));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

void
scrub(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

ShardSupervisorOptions
fleetOptions(unsigned shards, const std::string &storeDir = "")
{
    ShardSupervisorOptions o;
    o.shards = shards;
    o.worker.maxSessions = 8;
    o.worker.slots = 1;
    o.worker.sliceInsts = 2000;
    o.worker.session = smallSessions();
    o.worker.storeDir = storeDir;
    return o;
}

Request
mk(RequestKind kind)
{
    Request req;
    req.kind = kind;
    return req;
}

/** Typed round trip; EXPECTs transport success, returns the response
 *  (callers check resp.ok()). */
Response
call(WireClient &wire, const Request &req)
{
    Response resp;
    std::string err;
    EXPECT_TRUE(wire.call(req, resp, &err)) << err;
    return resp;
}

uint64_t
createOn(WireClient &wire, int shard,
         BackendKind backend = BackendKind::Dise)
{
    Request req = mk(RequestKind::SessionCreate);
    req.name = "demo";
    req.backend = backend;
    req.shard = shard;
    Response resp = call(wire, req);
    EXPECT_TRUE(resp.ok()) << resp.error;
    return resp.value;
}

Response
stepi(WireClient &wire, uint64_t count)
{
    Request req = mk(RequestKind::Stepi);
    req.count = count;
    return call(wire, req);
}

Response
select(WireClient &wire, uint64_t id)
{
    Request req = mk(RequestKind::SessionSelect);
    req.session = id;
    return call(wire, req);
}

/** The migration digest probe: session-persist answers the state
 *  digest of the image it just wrote. */
uint64_t
persistDigest(WireClient &wire)
{
    Response resp = call(wire, mk(RequestKind::SessionPersist));
    EXPECT_TRUE(resp.ok()) << resp.error;
    return resp.value;
}

// --------------------------------------------------------- routing

TEST(ShardSupervisor, RoutesSessionsAcrossShardsAndMergesFleetVerbs)
{
    ShardSupervisor sup(fleetOptions(2));
    ASSERT_TRUE(sup.start());
    ASSERT_EQ(sup.shardCount(), 2u);

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(sup.port()));

    // Four sessions, least-loaded placement: both shards get work.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        ids.push_back(createOn(wire, /*shard=*/-1));
        Response resp = stepi(wire, 64); // drive the new selection
        EXPECT_TRUE(resp.ok()) << resp.error;
    }

    // Disjoint minting: no id collides, and both residue classes of
    // the 2-stride lattice appear (shard 0 mints odd ids, shard 1
    // even), proving the sessions actually spread across processes.
    std::set<uint64_t> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), 4u);
    bool sawOdd = false, sawEven = false;
    for (uint64_t id : ids)
        (id % 2 ? sawOdd : sawEven) = true;
    EXPECT_TRUE(sawOdd && sawEven) << "placement never spread shards";

    // session-list fans out to every shard and merges.
    Response resp = call(wire, mk(RequestKind::SessionList));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.regs.size(), 4u);

    // server-stats sums worker counters fleet-wide.
    resp = call(wire, mk(RequestKind::ServerStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.server.activeSessions, 4u);
    EXPECT_EQ(resp.server.created, 4u);
    EXPECT_EQ(resp.server.workers, 2u); // one slot per shard
    EXPECT_FALSE(resp.server.hists.empty());

    // shard-stats exposes per-worker rows with live pids.
    resp = call(wire, mk(RequestKind::ShardStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_EQ(resp.shards.size(), 2u);
    uint64_t total = 0;
    for (const ShardStatsRow &row : resp.shards) {
        EXPECT_NE(row.pid, 0u);
        EXPECT_GE(row.sessions, 1u);
        total += row.sessions;
    }
    EXPECT_EQ(total, 4u);

    // Cross-shard reselect: every session is reachable through the
    // one public port no matter which worker owns it, and the
    // supervisor transparently swaps the downstream leg.
    for (uint64_t id : ids) {
        resp = select(wire, id);
        ASSERT_TRUE(resp.ok()) << resp.error;
        resp = call(wire, mk(RequestKind::Stats));
        ASSERT_TRUE(resp.ok()) << resp.error;
        EXPECT_GE(resp.stats.appInsts, 64u);
    }
    sup.stop();
}

// ------------------------------------------------------- migration

class ShardMigration : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(ShardMigration, LiveMigrationIsDigestVerifiedBitIdentical)
{
    BackendKind backend = GetParam();
    std::string dir = storeScratch(backendToken(backend));
    ShardSupervisor sup(fleetOptions(2, dir));
    ASSERT_TRUE(sup.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(sup.port()));

    // Pin the session to shard 0 so the migration edge is forced.
    uint64_t id = createOn(wire, /*shard=*/0, backend);
    EXPECT_EQ(id % 2, 1u); // shard 0 mints the odd lattice

    Response resp = stepi(wire, 700);
    ASSERT_TRUE(resp.ok()) << resp.error;
    resp = call(wire, mk(RequestKind::Stats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    uint64_t posInsts = resp.stats.appInsts;
    uint64_t digest = persistDigest(wire);
    EXPECT_NE(digest, 0u);

    // Drop our selection: a connection-held session counts busy and
    // refuses to migrate out from under its client.
    ASSERT_TRUE(select(wire, 0).ok());

    Request mig = mk(RequestKind::SessionMigrate);
    mig.session = id;
    mig.shard = 1;
    resp = call(wire, mig);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.value, id);
    EXPECT_EQ(resp.index, 1); // now hosted by shard 1
    EXPECT_EQ(sup.migrations(), 1u);

    // Reselect through the supervisor: routed to shard 1; position
    // and state digest bit-identical after the adopt replay.
    resp = select(wire, id);
    ASSERT_TRUE(resp.ok()) << resp.error;
    resp = call(wire, mk(RequestKind::Stats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.stats.appInsts, posInsts);
    EXPECT_EQ(persistDigest(wire), digest)
        << "migration changed session state";

    // The migrated session still executes.
    resp = stepi(wire, 64);
    EXPECT_TRUE(resp.ok()) << resp.error;

    // Per-shard migration ledger.
    resp = call(wire, mk(RequestKind::ShardStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_EQ(resp.shards.size(), 2u);
    EXPECT_EQ(resp.shards[0].migratedOut, 1u);
    EXPECT_EQ(resp.shards[1].migratedIn, 1u);

    sup.stop();
    scrub(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ShardMigration,
    ::testing::Values(BackendKind::Dise, BackendKind::SingleStep,
                      BackendKind::VirtualMemory,
                      BackendKind::HardwareReg, BackendKind::Rewrite),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        std::string n = backendToken(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------- chaos

TEST(ShardSupervisor, MigrationUnderChaosIsOldOrNewNeverCorrupt)
{
    persist::FaultInjector inj;
    std::string dir = storeScratch("chaos");
    ShardSupervisorOptions o = fleetOptions(2, dir);
    o.faults = &inj;
    ShardSupervisor sup(o);
    ASSERT_TRUE(sup.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(sup.port()));

    uint64_t id = createOn(wire, /*shard=*/0);
    ASSERT_TRUE(stepi(wire, 600).ok());
    uint64_t digest = persistDigest(wire);
    ASSERT_TRUE(select(wire, 0).ok());

    Request mig = mk(RequestKind::SessionMigrate);
    mig.session = id;
    mig.shard = 1;

    auto verifyIntact = [&](uint64_t expectOut, uint64_t expectIn) {
        Response r = select(wire, id);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(persistDigest(wire), digest)
            << "chaos corrupted the session";
        ASSERT_TRUE(select(wire, 0).ok());
        r = call(wire, mk(RequestKind::ShardStats));
        ASSERT_TRUE(r.ok()) << r.error;
        ASSERT_EQ(r.shards.size(), 2u);
        EXPECT_EQ(r.shards[0].migratedOut, expectOut);
        EXPECT_EQ(r.shards[0].migratedIn, expectIn);
    };

    // Fault before the export: the session never leaves shard 0.
    inj.armNth(persist::FaultInjector::Site::MigrateExport, 1);
    Response resp = call(wire, mig);
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("migrate-export"), std::string::npos)
        << resp.error;
    verifyIntact(/*out=*/0, /*in=*/0);

    // Fault after the export: the supervisor re-adopts the image back
    // onto the source — old incarnation, bit-identical, and the shard
    // ledger shows the round trip (out once, back in once).
    inj.armNth(persist::FaultInjector::Site::MigrateAdopt, 1);
    resp = call(wire, mig);
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("migrate-adopt"), std::string::npos)
        << resp.error;
    EXPECT_NE(resp.error.find("restored"), std::string::npos)
        << resp.error;
    verifyIntact(/*out=*/1, /*in=*/1);

    // Faults disarmed: the same migration goes through clean.
    resp = call(wire, mig);
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_TRUE(select(wire, id).ok());
    EXPECT_EQ(persistDigest(wire), digest);
    EXPECT_GE(inj.injected(), 2u);

    sup.stop();
    scrub(dir);
}

// ----------------------------------------------- busy-session refusal

TEST(ShardSupervisor, MigrationRefusesConnectionBoundSessions)
{
    std::string dir = storeScratch("busy");
    ShardSupervisor sup(fleetOptions(2, dir));
    ASSERT_TRUE(sup.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(sup.port()));
    uint64_t id = createOn(wire, /*shard=*/0);
    ASSERT_TRUE(stepi(wire, 128).ok());

    // The creating connection still holds the selection: the export
    // must refuse rather than rip the session out from under it.
    Request mig = mk(RequestKind::SessionMigrate);
    mig.session = id;
    mig.shard = 1;
    Response resp = call(wire, mig);
    EXPECT_FALSE(resp.ok());
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(sup.migrations(), 0u);

    // Still alive and still on shard 0.
    resp = call(wire, mk(RequestKind::Stats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_GE(resp.stats.appInsts, 128u);
    resp = call(wire, mk(RequestKind::ShardStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.shards[0].migratedOut, 0u);

    // Deselect and the same migration proceeds.
    ASSERT_TRUE(select(wire, 0).ok());
    resp = call(wire, mig);
    EXPECT_TRUE(resp.ok()) << resp.error;

    sup.stop();
    scrub(dir);
}

// --------------------------------------------------- crash recovery

TEST(ShardSupervisor, CrashedShardRespawnsAndRecoversItsStoreSlice)
{
    std::string dir = storeScratch("crash");
    ShardSupervisor sup(fleetOptions(2, dir));
    ASSERT_TRUE(sup.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(sup.port()));
    uint64_t id = createOn(wire, /*shard=*/0);
    ASSERT_TRUE(stepi(wire, 500).ok());
    Response resp = call(wire, mk(RequestKind::Stats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    uint64_t posInsts = resp.stats.appInsts;
    uint64_t digest = persistDigest(wire);

    // kill -9 the worker. The monitor reaps it and forks a
    // replacement onto the same store slice.
    pid_t victim = sup.shardPid(0);
    ASSERT_GT(victim, 0);
    ASSERT_TRUE(sup.killShard(0));
    ASSERT_TRUE(sup.waitForRespawn(0));
    EXPECT_NE(sup.shardPid(0), victim);
    EXPECT_EQ(sup.shardRestarts(0), 1u);

    // A fresh client reaches the recovered session through the same
    // public port; resurrection is bit-identical to the last persist.
    WireClient wire2;
    ASSERT_TRUE(wire2.connectTo(sup.port()));
    resp = select(wire2, id);
    ASSERT_TRUE(resp.ok()) << resp.error;
    resp = call(wire2, mk(RequestKind::Stats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.stats.appInsts, posInsts);
    EXPECT_EQ(persistDigest(wire2), digest);

    // shard-stats reports the respawn.
    resp = call(wire2, mk(RequestKind::ShardStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_EQ(resp.shards.size(), 2u);
    EXPECT_EQ(resp.shards[0].restarts, 1u);

    sup.stop();
    scrub(dir);
}

// ------------------------------------------------------- balancing

TEST(ShardSupervisor, BalancerMigratesOffTheBackloggedShard)
{
    // Deterministic setup: pile sessions and contended work onto
    // shard 0 (two clients share its single execution slot, so every
    // requeued slice waits in line and the queue-wait histogram fills
    // with real samples), leave shard 1 idle, then one manual balance
    // pass with a zero noise floor must move a session across.
    std::string dir = storeScratch("balance");
    ShardSupervisorOptions o = fleetOptions(2, dir);
    o.balanceMinQueueWaitUs = 0;
    o.balanceRatio = 1.0;
    ShardSupervisor sup(o);
    ASSERT_TRUE(sup.start());

    WireClient a, b;
    ASSERT_TRUE(a.connectTo(sup.port()));
    ASSERT_TRUE(b.connectTo(sup.port()));
    uint64_t idA = createOn(a, /*shard=*/0);
    uint64_t idB = createOn(b, /*shard=*/0);
    ASSERT_NE(idA, idB);

    std::thread driveA([&] { stepi(a, 20000); });
    stepi(b, 20000);
    driveA.join();

    ASSERT_TRUE(select(a, 0).ok());
    ASSERT_TRUE(select(b, 0).ok());

    std::string err;
    EXPECT_TRUE(sup.balanceOnce(&err)) << err;
    EXPECT_GE(sup.migrations(), 1u);

    Response resp = call(a, mk(RequestKind::ShardStats));
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_EQ(resp.shards.size(), 2u);
    EXPECT_GE(resp.shards[1].sessions + resp.shards[1].hibernated, 1u);

    sup.stop();
    scrub(dir);
}

// ------------------------------------- in-process export/adopt cycle

TEST(ServerExportAdopt, WireExportAdoptRoundTripWithinOneServer)
{
    // The migration halves are plain wire verbs; they compose even
    // without a supervisor. Export rips the session out (digest in
    // value, image hex in text); adopt rebuilds it digest-verified.
    std::string dir = storeScratch("inproc");
    server::DebugServerOptions opts;
    opts.maxSessions = 4;
    opts.slots = 1;
    opts.sliceInsts = 2000;
    opts.session = smallSessions();
    opts.storeDir = dir;
    server::DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    uint64_t id = createOn(wire, /*shard=*/-1);
    ASSERT_TRUE(stepi(wire, 600).ok());
    uint64_t digest = persistDigest(wire);

    // Export answers the digest and removes the session...
    Request ex = mk(RequestKind::SessionExport);
    ex.session = id;
    Response resp = call(wire, ex);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.value, digest);
    std::string image = resp.text;
    EXPECT_FALSE(image.empty());
    Response gone = select(wire, id);
    EXPECT_FALSE(gone.ok());

    // ...and adopt brings back the identical session.
    Request ad = mk(RequestKind::SessionAdopt);
    ad.data = image;
    resp = call(wire, ad);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.value, id);
    ASSERT_TRUE(select(wire, id).ok());
    EXPECT_EQ(persistDigest(wire), digest);

    // Garbage images are rejected cleanly.
    ad.data = "zz-not-hex";
    resp = call(wire, ad);
    EXPECT_FALSE(resp.ok());

    srv.stop();
    scrub(dir);
}

TEST(ServerExportAdopt, WorkerFaultSitesInjectOnExportAndAdopt)
{
    // The worker-side handlers consult the server's own injector —
    // the in-process flavor of migration chaos.
    persist::FaultInjector inj;
    std::string dir = storeScratch("inprocchaos");
    server::DebugServerOptions opts;
    opts.maxSessions = 4;
    opts.slots = 1;
    opts.session = smallSessions();
    opts.storeDir = dir;
    opts.faults = &inj;
    server::DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    uint64_t id = createOn(wire, /*shard=*/-1);
    ASSERT_TRUE(stepi(wire, 300).ok());
    uint64_t digest = persistDigest(wire);

    inj.armNth(persist::FaultInjector::Site::MigrateExport, 1);
    Request ex = mk(RequestKind::SessionExport);
    ex.session = id;
    Response resp = call(wire, ex);
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("migrate-export"), std::string::npos);
    // Session untouched by the refused export.
    ASSERT_TRUE(select(wire, id).ok());
    EXPECT_EQ(persistDigest(wire), digest);
    ASSERT_TRUE(select(wire, 0).ok());

    // Clean export, then a faulted adopt: the image is simply not
    // admitted (the supervisor layer is what restores; the worker
    // verb alone reports the failure honestly).
    resp = call(wire, ex);
    ASSERT_TRUE(resp.ok()) << resp.error;
    std::string image = resp.text;
    inj.armNth(persist::FaultInjector::Site::MigrateAdopt, 1);
    Request ad = mk(RequestKind::SessionAdopt);
    ad.data = image;
    resp = call(wire, ad);
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("migrate-adopt"), std::string::npos);

    // Disarmed retry adopts the very same image bit-identically.
    resp = call(wire, ad);
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_TRUE(select(wire, id).ok());
    EXPECT_EQ(persistDigest(wire), digest);
    EXPECT_EQ(inj.injected(), 2u);

    srv.stop();
    scrub(dir);
}

} // namespace
} // namespace dise
