/**
 * @file
 * Harness tests: option parsing, baseline caching, slowdown
 * computation, unsupported-cell reporting, and the frequency /
 * functional-summary measurement paths the table benches use.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace dise {
namespace {

TEST(HarnessArgs, Defaults)
{
    const char *argv[] = {"bench"};
    HarnessOptions o = parseHarnessArgs(1, const_cast<char **>(argv));
    EXPECT_EQ(o.scale, 1u);
    EXPECT_EQ(o.transitionCost, 100000u);
    EXPECT_FALSE(o.csv);
}

TEST(HarnessArgs, ParsesEverything)
{
    const char *argv[] = {"bench", "--scale", "3", "--transition-cost",
                          "250000", "--csv", "--seed", "99"};
    HarnessOptions o = parseHarnessArgs(8, const_cast<char **>(argv));
    EXPECT_EQ(o.scale, 3u);
    EXPECT_EQ(o.transitionCost, 250000u);
    EXPECT_EQ(o.seed, 99u);
    EXPECT_TRUE(o.csv);
}

TEST(HarnessArgs, UnknownOptionFatal)
{
    const char *argv[] = {"bench", "--bogus"};
    EXPECT_THROW(parseHarnessArgs(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(HarnessArgs, MissingValueFatal)
{
    const char *argv[] = {"bench", "--scale"};
    EXPECT_THROW(parseHarnessArgs(2, const_cast<char **>(argv)),
                 FatalError);
}

TEST(Runner, BaselineIsCachedAndStable)
{
    ExperimentRunner run;
    const RunStats &a = run.baseline("crafty");
    const RunStats &b = run.baseline("crafty");
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.cycles, 0u);
    EXPECT_EQ(a.halt, HaltReason::Exited);
}

TEST(Runner, UndebuggedSlowdownIsUnity)
{
    // Attaching a DISE debugger with no watchpoints and no breakpoints
    // adds no productions: slowdown must be exactly 1.
    ExperimentRunner run;
    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    RunOutcome out = run.debugged("crafty", {}, o);
    ASSERT_TRUE(out.supported);
    EXPECT_NEAR(out.slowdown, 1.0, 1e-9);
}

TEST(Runner, UnsupportedCellsReported)
{
    ExperimentRunner run;
    DebuggerOptions vm;
    vm.backend = BackendKind::VirtualMemory;
    RunOutcome out = run.debugged(
        "bzip2", {run.workload("bzip2").watch(WatchSel::INDIRECT)}, vm);
    EXPECT_FALSE(out.supported);
    EXPECT_EQ(slowdownCell(out), "n/a");
}

TEST(Runner, StandardWatchConditionalNeverMatches)
{
    ExperimentRunner run;
    WatchSpec plain = run.standardWatch("twolf", WatchSel::HOT, false);
    WatchSpec cond = run.standardWatch("twolf", WatchSel::HOT, true);
    EXPECT_FALSE(plain.conditional);
    EXPECT_TRUE(cond.conditional);
    EXPECT_EQ(plain.addr, cond.addr);

    // The Figure 4 predicate truly never matches: zero user events.
    DebuggerOptions dd;
    dd.backend = BackendKind::Dise;
    RunOutcome out = run.debugged("twolf", {cond}, dd);
    ASSERT_TRUE(out.supported);
    EXPECT_EQ(out.watchEvents, 0u);
}

TEST(Runner, TransitionCostScalesSpuriousRuns)
{
    HarnessOptions cheap;
    cheap.transitionCost = 1000;
    HarnessOptions dear;
    dear.transitionCost = 100000;
    ExperimentRunner rc(cheap), rd(dear);
    DebuggerOptions hw;
    hw.backend = BackendKind::HardwareReg;
    // HOT/crafty is dominated by spurious value transitions.
    auto spec = rc.workload("crafty").watch(WatchSel::HOT);
    double sc = rc.debugged("crafty", {spec}, hw).slowdown;
    double sd = rd.debugged("crafty", {spec}, hw).slowdown;
    EXPECT_GT(sd, sc * 20);
}

TEST(Runner, FunctionalSummaryConsistent)
{
    ExperimentRunner run;
    auto sum = run.functionalSummary("bzip2");
    EXPECT_GT(sum.appInsts, 0u);
    EXPECT_NEAR(sum.storeDensity,
                static_cast<double>(sum.stores) / sum.appInsts, 1e-12);
    // Timing and functional app-instruction counts agree exactly.
    EXPECT_EQ(sum.appInsts, run.baseline("bzip2").appInsts);
}

TEST(Runner, FrequenciesSumSanely)
{
    ExperimentRunner run;
    auto rows = run.measureFrequencies("crafty");
    for (const auto &[sel, row] : rows) {
        EXPECT_GE(row.per100k, 0.0);
        EXPECT_LE(row.per100k, 100000.0);
        EXPECT_GE(row.silentPct, 0.0);
        EXPECT_LE(row.silentPct, 100.0);
    }
}

TEST(Runner, EventsCountedInOutcome)
{
    ExperimentRunner run;
    DebuggerOptions dd;
    dd.backend = BackendKind::Dise;
    auto spec = run.workload("crafty").watch(WatchSel::WARM1);
    RunOutcome out = run.debugged("crafty", {spec}, dd);
    ASSERT_TRUE(out.supported);
    EXPECT_GT(out.watchEvents, 0u);
}

TEST(Runner, SeedChangesWorkloadData)
{
    HarnessOptions a, b;
    b.seed = 777;
    ExperimentRunner ra(a), rb(b);
    // Different seeds produce different dynamic store streams for the
    // LCG-driven kernels (same structure, different data).
    auto fa = ra.measureFrequencies("twolf");
    auto fb = rb.measureFrequencies("twolf");
    EXPECT_NE(fa[WatchSel::HOT].per100k, fb[WatchSel::HOT].per100k);
}

} // namespace
} // namespace dise
