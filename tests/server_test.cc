/**
 * @file
 * Multi-session server tests: the SessionManager's admission cap and
 * stat rollups, the JobScheduler's slicing/round-robin/teardown-mid-run
 * behavior, and the one-port TCP front end serving concurrent RSP and
 * typed-wire clients on distinct targets with isolated, cross-checked
 * stop locations — including a seeded-random multi-client soak.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "common/stats.hh"
#include "persist/fault_injector.hh"
#include "persist/store.hh"
#include "persist/vfs.hh"
#include "rsp/client.hh"
#include "server/server.hh"
#include "workloads/workload.hh"

namespace dise {
namespace {

using namespace server;
using rsp::RspClient;
using rsp::stopReplyPc;

SessionOptions
smallSessions()
{
    SessionOptions o;
    o.timeTravel.checkpointInterval = 512;
    return o;
}

/** Minimal line-oriented wire client for the typed protocol. */
class WireClient
{
  public:
    ~WireClient() { close(); }

    bool
    connectTo(uint16_t port, unsigned timeoutSeconds = 20)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        timeval tv{};
        tv.tv_sec = timeoutSeconds;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            close();
            return false;
        }
        return true;
    }

    /** One request line out, one response line back (decoded).
     *  Server-initiated `event` lines arriving in between are decoded
     *  into events(). */
    bool
    roundTrip(const std::string &line, Response &resp)
    {
        std::string out = line + "\n";
        if (::write(fd_, out.data(), out.size()) !=
            static_cast<ssize_t>(out.size()))
            return false;
        for (;;) {
            size_t nl;
            while ((nl = buf_.find('\n')) == std::string::npos) {
                char chunk[4096];
                ssize_t n = ::read(fd_, chunk, sizeof chunk);
                if (n <= 0)
                    return false;
                buf_.append(chunk, static_cast<size_t>(n));
            }
            std::string reply = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (reply.rfind("event ", 0) == 0 || reply == "event") {
                SessionEvent ev;
                if (decodeEvent(reply, ev))
                    events_.push_back(ev);
                continue;
            }
            return decodeResponse(reply, resp);
        }
    }

    /** Events pushed by the server so far (drained). */
    std::vector<SessionEvent>
    takeEvents()
    {
        std::vector<SessionEvent> out;
        out.swap(events_);
        return out;
    }

    bool
    roundTripOk(const std::string &line, Response &resp)
    {
        return roundTrip(line, resp) && resp.ok();
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
    std::vector<SessionEvent> events_;
};

// ------------------------------------------------------ SessionManager

TEST(SessionManager, AdmissionCapAndLifecycle)
{
    SessionManager mgr({2, smallSessions()});
    std::string err;
    ManagedSessionPtr a = mgr.create("demo", BackendKind::Dise);
    ManagedSessionPtr b = mgr.create("mcf", BackendKind::Dise);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(mgr.count(), 2u);

    ManagedSessionPtr c =
        mgr.create("demo", BackendKind::Dise, false, &err);
    EXPECT_EQ(c, nullptr);
    EXPECT_NE(err.find("cap"), std::string::npos) << err;
    EXPECT_EQ(mgr.stats().rejected, 1u);

    // Destroying one frees a slot.
    EXPECT_TRUE(mgr.destroy(a->id));
    EXPECT_TRUE(a->closing.load());
    EXPECT_FALSE(mgr.destroy(a->id)); // already gone
    ManagedSessionPtr d = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(d);
    EXPECT_EQ(mgr.count(), 2u);
    EXPECT_EQ(mgr.stats().peakSessions, 2u);
    EXPECT_EQ(mgr.stats().created, 3u);

    // Unknown workloads are rejected, not fatal.
    EXPECT_EQ(mgr.create("not-a-workload", BackendKind::Dise, false,
                         &err),
              nullptr);
    EXPECT_NE(err.find("unknown workload"), std::string::npos);

    // Exclusive (per-connection) sessions never resolve via select.
    EXPECT_TRUE(mgr.destroy(b->id));
    ManagedSessionPtr e =
        mgr.create("demo", BackendKind::Dise, /*exclusive=*/true);
    ASSERT_TRUE(e);
    EXPECT_EQ(mgr.find(e->id, /*forSelect=*/true), nullptr);
    EXPECT_EQ(mgr.find(e->id), e);
}

TEST(SessionManager, StatsRollAcrossDestroy)
{
    SessionManager mgr({4, smallSessions()});
    JobScheduler queue({2, 2000});
    ManagedSessionPtr ms = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(ms);
    StopInfo stop;
    std::string err;
    ASSERT_TRUE(
        queue.drive(*ms, RequestKind::RunToEnd, 0, stop, &err))
        << err;
    EXPECT_EQ(stop.reason, StopReason::Halted);

    ServerStats live = mgr.stats();
    EXPECT_GT(live.totalAppInsts, 0u);
    EXPECT_GT(live.totalUops, 0u);

    // The totals survive the session's destruction (retired rollup).
    EXPECT_TRUE(mgr.destroy(ms->id));
    ServerStats after = mgr.stats();
    EXPECT_EQ(after.activeSessions, 0u);
    EXPECT_EQ(after.destroyed, 1u);
    EXPECT_EQ(after.totalAppInsts, live.totalAppInsts);
}

// ------------------------------------------------------------ JobScheduler

TEST(JobScheduler, BoundedSlicesMatchUnboundedExecution)
{
    // A watch-hit cont driven through 1-slot, small-slice scheduling
    // stops at the identical location as a direct session.
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    DebugSession ref(prog, smallSessions());
    ref.setWatch(WatchSpec::scalar("directory", watchAddr, 8));
    StopInfo refHit = ref.cont();
    ASSERT_EQ(refHit.reason, StopReason::Event);

    SessionManager mgr({1, smallSessions()});
    JobScheduler queue({1, 500});
    ManagedSessionPtr ms = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(ms);
    ms->session.setWatch(
        WatchSpec::scalar("directory", watchAddr, 8));

    StopInfo stop;
    std::string err;
    ASSERT_TRUE(queue.drive(*ms, RequestKind::Cont, 0, stop, &err))
        << err;
    EXPECT_EQ(stop.reason, StopReason::Event);
    EXPECT_EQ(stop.pc, refHit.pc);
    EXPECT_EQ(stop.time, refHit.time);
    EXPECT_EQ(stop.appInsts, refHit.appInsts);

    // Run-to-end from here takes many bounded slices, not one.
    uint64_t before = queue.slicesRun();
    ASSERT_TRUE(
        queue.drive(*ms, RequestKind::RunToEnd, 0, stop, &err));
    EXPECT_EQ(stop.reason, StopReason::Halted);
    EXPECT_GT(queue.slicesRun() - before, 3u);

    // Reverse works through the queue too.
    ASSERT_TRUE(queue.drive(*ms, RequestKind::ReverseContinue, 0,
                            stop, &err));
    EXPECT_EQ(stop.reason, StopReason::Event);

    // Non-resume verbs are refused.
    EXPECT_FALSE(
        queue.drive(*ms, RequestKind::ReadRegisters, 0, stop, &err));
}

TEST(JobScheduler, TeardownMidRunAbortsAtSliceBoundary)
{
    SessionManager mgr({1, smallSessions()});
    JobScheduler queue({1, 1000});
    ManagedSessionPtr ms = mgr.create("mcf", BackendKind::Dise);
    ASSERT_TRUE(ms);

    std::atomic<bool> failed{false};
    std::string err;
    std::thread driver([&] {
        StopInfo stop;
        failed = !queue.drive(*ms, RequestKind::RunToEnd, 0, stop,
                              &err);
    });
    // Let it make some progress, then tear the session down under it.
    while (ms->slices.load() < 2)
        std::this_thread::yield();
    EXPECT_TRUE(mgr.destroy(ms->id));
    driver.join();
    EXPECT_TRUE(failed.load());
    EXPECT_NE(err.find("destroyed"), std::string::npos) << err;
    EXPECT_EQ(mgr.count(), 0u);
}

TEST(JobScheduler, UnsupportedBackendFailsCleanly)
{
    SessionManager mgr({1, smallSessions()});
    JobScheduler queue({1, 1000});
    ManagedSessionPtr ms =
        mgr.create("demo", BackendKind::VirtualMemory);
    ASSERT_TRUE(ms);
    Program prog = buildHeisenbugDemo();
    ms->session.setWatch(WatchSpec::indirect(
        "*p", prog.symbol("directory"), 8));
    StopInfo stop;
    std::string err;
    EXPECT_FALSE(
        queue.drive(*ms, RequestKind::Cont, 0, stop, &err));
    EXPECT_NE(err.find("cannot implement"), std::string::npos) << err;
}

TEST(JobScheduler, ReverseReplayDoesNotStarveForwardSessions)
{
    // The acceptance scenario: ONE worker slot, two sessions. R runs a
    // long replay-family verb (run-to-event discovery across the whole
    // trace); F steps forward in small jobs. Because every job yields
    // at bounded µop-slice boundaries and the ready queue round-robins,
    // F must complete all its steps while R is still replaying — and R
    // must advance between each of F's steps.
    SessionManagerOptions mopts;
    mopts.maxSessions = 2;
    mopts.session.timeTravel.checkpointInterval = 1u << 20;
    SessionManager mgr(mopts);
    JobScheduler sched({1, 1000});

    ManagedSessionPtr r = mgr.create("mcf", BackendKind::Dise);
    ManagedSessionPtr f = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(r && f);

    // R: a run-to-event hunt for an event number that never fires —
    // a bounded O(trace) sliced replay ending in Halted.
    std::atomic<bool> rDone{false};
    std::atomic<bool> rOk{false};
    std::thread rDriver([&] {
        StopInfo stop;
        std::string err;
        bool ok = sched.drive(*r, RequestKind::RunToEvent, 999999,
                              stop, &err);
        rOk = ok && stop.reason == StopReason::Halted;
        rDone = true;
    });
    while (r->slices.load() < 1)
        std::this_thread::yield();

    // F: ten small forward steps, each its own job.
    uint64_t lastRSlices = r->slices.load();
    int progressed = 0, beforeRDone = 0;
    for (int i = 0; i < 10; ++i) {
        StopInfo stop;
        std::string err;
        ASSERT_TRUE(
            sched.drive(*f, RequestKind::Stepi, 200, stop, &err))
            << err;
        beforeRDone += !rDone.load();
        uint64_t now = r->slices.load();
        progressed += now > lastRSlices;
        lastRSlices = now;
    }
    // Forward progress between replay slices, both directions: F was
    // never starved behind R's replay (all 10 steps landed while R was
    // still running), and R kept replaying between F's steps.
    EXPECT_EQ(beforeRDone, 10)
        << "the forward session was starved behind a replay";
    EXPECT_GE(progressed, 9)
        << "the replay made no progress between forward steps";

    rDriver.join();
    EXPECT_TRUE(rOk.load());
    EXPECT_GT(r->slices.load(), 50u) << "replay should take many slices";
}

TEST(JobScheduler, InterruptedJobLandsAtSliceBoundaryAndResumes)
{
    // A gdb Ctrl-C: cancel() finalizes the job between slices; the
    // session sits at a valid intermediate position and keeps working.
    SessionManagerOptions mopts;
    mopts.session.timeTravel.checkpointInterval = 1u << 20;
    SessionManager mgr(mopts);
    JobScheduler sched({1, 500});
    ManagedSessionPtr ms = mgr.create("mcf", BackendKind::Dise);
    ASSERT_TRUE(ms);

    std::atomic<bool> landed{false};
    std::atomic<bool> wasInterrupted{false};
    StopInfo landing;
    std::mutex mu;
    JobScheduler::TicketPtr t = sched.driveAsync(
        ms, RequestKind::RunToEnd, 0,
        [&](bool ok, bool interrupted, const StopInfo &stop,
            const std::string &err) {
            std::lock_guard<std::mutex> lk(mu);
            landing = stop;
            wasInterrupted = interrupted;
            landed = ok;
        });
    ASSERT_TRUE(t);
    while (ms->slices.load() < 3)
        std::this_thread::yield();
    sched.cancel(t);
    std::string err;
    EXPECT_FALSE(sched.wait(t, &err)); // result: interrupted
    EXPECT_EQ(err, "interrupted");
    while (!landed.load())
        std::this_thread::yield();
    EXPECT_TRUE(wasInterrupted.load());
    {
        std::lock_guard<std::mutex> lk(mu);
        EXPECT_GT(landing.appInsts, 0u);
        EXPECT_LT(landing.appInsts,
                  1000000u); // mid-run, not at the end
    }

    // The session resumes from the interrupted position to completion.
    StopInfo stop;
    ASSERT_TRUE(
        sched.drive(*ms, RequestKind::RunToEnd, 0, stop, &err))
        << err;
    EXPECT_EQ(stop.reason, StopReason::Halted);
    EXPECT_GE(ms->jobs.load(), 2u);
}

// --------------------------------------------- concurrency, in-process

TEST(ServerConcurrency, DistinctSessionsCrossCheckedInParallel)
{
    // N threads, each driving its own session through a
    // watch/continue/reverse cycle; every stop location must equal
    // the single-threaded reference for that session's workload.
    struct Scenario
    {
        std::string workload;
        Addr watchAddr;
        StopInfo refHit1, refHit2, refBack;
    };
    std::vector<Scenario> scenarios;
    for (const std::string &w : {"demo", "mcf", "bzip2", "twolf"}) {
        Scenario sc;
        sc.workload = w;
        Program prog;
        if (w == "demo") {
            prog = buildHeisenbugDemo();
            sc.watchAddr = prog.symbol("directory");
        } else {
            Workload wl = buildWorkload(w, {});
            sc.watchAddr = wl.hotAddr;
            prog = std::move(wl.program);
        }
        DebugSession ref(prog, smallSessions());
        ref.setWatch(WatchSpec::scalar("w", sc.watchAddr, 8));
        sc.refHit1 = ref.cont();
        sc.refHit2 = ref.cont(); // may be Halted (single-hit watches)
        sc.refBack = ref.reverseContinue();
        ASSERT_EQ(sc.refHit1.reason, StopReason::Event) << w;
        scenarios.push_back(sc);
    }

    SessionManager mgr(
        {static_cast<unsigned>(scenarios.size()), smallSessions()});
    JobScheduler queue({2, 2000}); // fewer slots than sessions: contention
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (const Scenario &sc : scenarios) {
        threads.emplace_back([&, sc] {
            ManagedSessionPtr ms =
                mgr.create(sc.workload, BackendKind::Dise);
            if (!ms) {
                ++mismatches;
                return;
            }
            ms->session.setWatch(
                WatchSpec::scalar("w", sc.watchAddr, 8));
            StopInfo h1, h2, back;
            std::string err;
            bool ok =
                queue.drive(*ms, RequestKind::Cont, 0, h1, &err) &&
                queue.drive(*ms, RequestKind::Cont, 0, h2, &err) &&
                queue.drive(*ms, RequestKind::ReverseContinue, 0,
                            back, &err);
            if (!ok || h1.reason != sc.refHit1.reason ||
                h1.pc != sc.refHit1.pc ||
                h1.time != sc.refHit1.time ||
                h2.reason != sc.refHit2.reason ||
                h2.pc != sc.refHit2.pc ||
                h2.time != sc.refHit2.time ||
                back.reason != sc.refBack.reason ||
                back.time != sc.refBack.time)
                ++mismatches;
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_GT(queue.slicesRun(), scenarios.size());
}

// ------------------------------------------------------- TCP front end

TEST(DebugServerTcp, TwoRspClientsPlusWireClientOnDistinctTargets)
{
    // The acceptance scenario: one daemon, two simultaneous
    // gdb-style clients (each its own demo target) plus a typed-wire
    // client on a different workload, all with correct isolated
    // stops.
    Program demo = buildHeisenbugDemo();
    Addr demoWatch = demo.symbol("directory");
    DebugSession demoRef(demo, smallSessions());
    demoRef.setWatch(WatchSpec::scalar("w", demoWatch, 8));
    StopInfo demoHit1 = demoRef.cont();
    StopInfo demoHit2 = demoRef.cont();
    ASSERT_EQ(demoHit1.reason, StopReason::Event);

    Workload mcf = buildWorkload("mcf", {});
    DebugSession mcfRef(mcf.program, smallSessions());
    mcfRef.setWatch(WatchSpec::scalar("HOT", mcf.hotAddr, 8));
    StopInfo mcfHit = mcfRef.cont();
    ASSERT_EQ(mcfHit.reason, StopReason::Event);

    DebugServerOptions opts;
    opts.maxSessions = 8;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    std::atomic<int> failures{0};
    auto rspClient = [&] {
        RspClient client;
        if (!client.connectTo(srv.port())) {
            ++failures;
            return;
        }
        char z2[64];
        std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                      static_cast<unsigned long long>(demoWatch));
        if (client.exchange("qSupported").find("ReverseContinue+") ==
            std::string::npos)
            ++failures;
        if (client.exchange(z2) != "OK")
            ++failures;
        uint64_t pc1 = 0, pc2 = 0, pcBack = 0;
        std::string h1 = client.exchange("c");
        std::string h2 = client.exchange("c");
        std::string back = client.exchange("bc");
        if (!stopReplyPc(h1, pc1) || pc1 != demoHit1.pc)
            ++failures;
        if (!stopReplyPc(h2, pc2) || pc2 != demoHit2.pc)
            ++failures;
        if (!stopReplyPc(back, pcBack) || pcBack != demoHit1.pc)
            ++failures;
        if (client.exchange("D") != "OK")
            ++failures;
    };

    std::thread rsp1(rspClient), rsp2(rspClient);
    // Wire client rides along on its own target.
    {
        WireClient wire;
        ASSERT_TRUE(wire.connectTo(srv.port()));
        Response resp;
        ASSERT_TRUE(wire.roundTripOk(
            "session-create seq=1 name=mcf backend=dise", resp));
        uint64_t sessionId = resp.value;
        EXPECT_GT(sessionId, 0u);

        Request setw;
        setw.kind = RequestKind::SetWatch;
        setw.seq = 2;
        setw.watch = WatchSpec::scalar("HOT", mcf.hotAddr, 8);
        ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));

        ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));
        ASSERT_TRUE(resp.hasStop);
        EXPECT_EQ(resp.stop.reason, StopReason::Event);
        EXPECT_EQ(resp.stop.pc, mcfHit.pc);
        EXPECT_EQ(resp.stop.time, mcfHit.time);

        ASSERT_TRUE(wire.roundTripOk("server-stats seq=4", resp));
        EXPECT_GE(resp.server.created, 1u);
        EXPECT_GE(resp.server.activeSessions, 1u);
        EXPECT_EQ(resp.server.maxSessions, 8u);
        EXPECT_GT(resp.server.totalAppInsts, 0u);

        char destroy[64];
        std::snprintf(destroy, sizeof destroy,
                      "session-destroy seq=5 session=%llu",
                      static_cast<unsigned long long>(sessionId));
        ASSERT_TRUE(wire.roundTripOk(destroy, resp));
    }
    rsp1.join();
    rsp2.join();
    EXPECT_EQ(failures.load(), 0);

    // Per-connection teardown completes shortly after the detach
    // reply reaches the client; poll rather than race it.
    ServerStats st;
    for (int spin = 0; spin < 200; ++spin) {
        st = srv.stats();
        if (st.activeSessions == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(st.created, 3u);
    EXPECT_EQ(st.activeSessions, 0u); // all torn down
    EXPECT_GE(st.slices, 1u);
    EXPECT_GE(srv.connectionsServed(), 3u);
    srv.stop();
}

TEST(DebugServerTcp, AdmissionCapRejectsExcessRspClients)
{
    DebugServerOptions opts;
    opts.maxSessions = 1;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    RspClient first;
    ASSERT_TRUE(first.connectTo(srv.port()));
    // Holding a live session...
    EXPECT_NE(first.exchange("qSupported").find("PacketSize"),
              std::string::npos);

    // ...the second client is admitted at TCP level but gets no
    // session: the server hangs up before any reply.
    RspClient second;
    ASSERT_TRUE(second.connectTo(srv.port(), 5));
    std::string reply = second.exchange("qSupported");
    EXPECT_EQ(reply, "<timeout-or-eof>") << reply;
    EXPECT_GE(srv.stats().rejected, 1u);

    // A wire client is told why.
    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(
        wire.roundTrip("session-create seq=1 name=demo", resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_NE(resp.error.find("cap"), std::string::npos);

    EXPECT_EQ(first.exchange("D"), "OK");
    srv.stop();
}

TEST(DebugServerTcp, SeededRandomMultiClientSoak)
{
    // Three concurrent RSP clients fire seeded-random command mixes
    // at one daemon while a wire client polls server-stats; nothing
    // may wedge, crash, or bleed between sessions.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");

    DebugServerOptions opts;
    opts.maxSessions = 8;
    opts.sliceInsts = 2000;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    std::atomic<int> failures{0};
    auto soakClient = [&](uint32_t seed) {
        std::mt19937 rng(seed);
        RspClient client;
        if (!client.connectTo(srv.port(), 30)) {
            ++failures;
            return;
        }
        char z2[64];
        std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                      static_cast<unsigned long long>(watchAddr));
        if (client.exchange(z2) != "OK")
            ++failures;
        char m[64];
        std::snprintf(m, sizeof m, "m%llx,8",
                      static_cast<unsigned long long>(watchAddr));
        for (int op = 0; op < 30; ++op) {
            std::string reply;
            switch (rng() % 6) {
              case 0:
                reply = client.exchange("c");
                break;
              case 1:
                reply = client.exchange("s");
                break;
              case 2:
                reply = client.exchange("bc");
                break;
              case 3:
                reply = client.exchange("bs");
                break;
              case 4:
                reply = client.exchange(m);
                break;
              case 5:
                reply = client.exchange("g");
                break;
            }
            if (reply == "<timeout-or-eof>" ||
                reply == "<write-error>") {
                ++failures;
                return;
            }
        }
        if (client.exchange("D") != "OK")
            ++failures;
    };

    std::vector<std::thread> clients;
    for (uint32_t i = 0; i < 3; ++i)
        clients.emplace_back(soakClient, 1234u + i);
    std::thread wirePoll([&] {
        WireClient wire;
        if (!wire.connectTo(srv.port())) {
            ++failures;
            return;
        }
        for (int i = 0; i < 10; ++i) {
            Response resp;
            if (!wire.roundTripOk("server-stats seq=1", resp)) {
                ++failures;
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });
    for (auto &t : clients)
        t.join();
    wirePoll.join();
    EXPECT_EQ(failures.load(), 0);

    // The daemon is still healthy afterwards.
    RspClient post;
    ASSERT_TRUE(post.connectTo(srv.port()));
    EXPECT_NE(post.exchange("qSupported").find("PacketSize"),
              std::string::npos);
    EXPECT_EQ(post.exchange("D"), "OK");
    srv.stop();
}

TEST(DebugServerTcp, WireDetachKeepsRetiredTotals)
{
    // server-stats totals are "all sessions ever": a wire detach must
    // fold the session's final counters into the retired rollup, not
    // wipe them with the post-detach zeros.
    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    ASSERT_TRUE(wire.roundTripOk("run-to-end seq=2", resp));
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=3", resp));
    uint64_t uopsBefore = resp.server.totalUops;
    EXPECT_GT(uopsBefore, 0u);

    ASSERT_TRUE(wire.roundTripOk("detach seq=4", resp));
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=5", resp));
    EXPECT_EQ(resp.server.activeSessions, 0u);
    EXPECT_GE(resp.server.totalUops, uopsBefore);
    srv.stop();
}

TEST(DebugServerTcp, SubscribePushesEventsWithoutPolling)
{
    // After `subscribe`, the server pushes every queued session event
    // as an `event` line at job-slice and verb boundaries — no
    // stats-polling needed. Order follows the queue's delivery seq.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");

    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    opts.sliceInsts = 500;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("w", watchAddr, 8);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
    ASSERT_TRUE(wire.roundTripOk("subscribe seq=3", resp));

    ASSERT_TRUE(wire.roundTripOk("cont seq=4", resp));
    ASSERT_TRUE(resp.hasStop);
    ASSERT_EQ(resp.stop.reason, StopReason::Event);
    std::vector<SessionEvent> events = wire.takeEvents();
    ASSERT_FALSE(events.empty());
    bool sawAttach = false, sawWatch = false;
    uint64_t lastSeq = 0;
    bool first = true;
    for (const SessionEvent &ev : events) {
        if (!first)
            EXPECT_GT(ev.seq, lastSeq); // queue order preserved
        first = false;
        lastSeq = ev.seq;
        sawAttach |= ev.kind == SessionEventKind::Attached;
        if (ev.kind == SessionEventKind::Watch) {
            sawWatch = true;
            EXPECT_EQ(ev.addr, watchAddr);
        }
    }
    EXPECT_TRUE(sawAttach);
    EXPECT_TRUE(sawWatch);

    // server-stats counts the delivery; unsubscribe stops the flow.
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=5", resp));
    EXPECT_GE(resp.server.eventsPushed, events.size());
    EXPECT_EQ(resp.server.subscribers, 1u);
    ASSERT_TRUE(wire.roundTripOk("unsubscribe seq=6", resp));
    ASSERT_TRUE(wire.roundTripOk("run-to-end seq=7", resp));
    EXPECT_TRUE(wire.takeEvents().empty());
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=8", resp));
    EXPECT_EQ(resp.server.subscribers, 0u);
    srv.stop();
}

TEST(DebugServerTcp, ReplayVerifyRunsAsSiblingJobs)
{
    // replay-verify over the wire: the timeline is reconstructed as
    // one preemptible job per checkpoint interval, stitched digests
    // must equal the session's — and an identical in-process session
    // produces the identical digest.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    DebugSession ref(demo, smallSessions());
    ref.setWatch(WatchSpec::scalar("w", watchAddr, 8));
    ref.cont();
    ref.runToEnd();
    IntervalReplay::Report refRep = ref.verifyReplay(2);
    ASSERT_TRUE(refRep.ok) << refRep.error;

    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.slots = 2;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("w", watchAddr, 8);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
    ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));
    ASSERT_TRUE(wire.roundTripOk("run-to-end seq=4", resp));

    uint64_t jobsBefore = srv.stats().jobs;
    ASSERT_TRUE(wire.roundTripOk("replay-verify seq=5 count=4", resp));
    EXPECT_EQ(resp.value, refRep.finalDigest);
    // Chunk boundaries may differ between the two runs (stealing cuts
    // by thread timing) but both cover the same timeline and agree on
    // the stitched digest above.
    EXPECT_GE(resp.regs.size(), 2u);
    // One sibling pool job per scheduler worker was scheduled, each
    // draining checkpoint ranges until the pool ran dry.
    EXPECT_GE(srv.stats().jobs - jobsBefore, 2u);
    srv.stop();
}

TEST(DebugServerTcp, PostAttachWatchAdditionRunsAsRebuildJob)
{
    // A Z-style post-attach spec addition over the wire rides the
    // scheduler as a preemptible rebuild-replay job and preserves the
    // session's position.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");

    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    opts.sliceInsts = 300;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("w", watchAddr, 8);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
    ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));
    ASSERT_TRUE(resp.hasStop);
    uint64_t posInsts = resp.stop.appInsts;

    Request setw2;
    setw2.kind = RequestKind::SetWatch;
    setw2.seq = 4;
    setw2.watch = WatchSpec::scalar("w4", watchAddr, 4);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw2), resp));
    EXPECT_EQ(resp.index, 1);

    ASSERT_TRUE(wire.roundTripOk("stats seq=5", resp));
    EXPECT_EQ(resp.stats.appInsts, posInsts); // position preserved
    srv.stop();
}

TEST(DebugServerTcp, WireSelectSharesAndDestroyInforms)
{
    DebugServerOptions opts;
    opts.maxSessions = 4;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient a, b;
    ASSERT_TRUE(a.connectTo(srv.port()));
    ASSERT_TRUE(b.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(a.roundTripOk("session-create seq=1 name=demo", resp));
    uint64_t id = resp.value;

    // b can see and select a's session; both observe the same target.
    ASSERT_TRUE(b.roundTripOk("session-list seq=1", resp));
    ASSERT_EQ(resp.regs.size(), 1u);
    EXPECT_EQ(resp.regs[0], id);
    char sel[64];
    std::snprintf(sel, sizeof sel, "session-select seq=2 session=%llu",
                  static_cast<unsigned long long>(id));
    ASSERT_TRUE(b.roundTripOk(sel, resp));
    ASSERT_TRUE(a.roundTripOk("read-registers seq=3", resp));
    std::vector<uint64_t> regsA = resp.regs;
    ASSERT_TRUE(b.roundTripOk("read-registers seq=4", resp));
    EXPECT_EQ(resp.regs, regsA);

    // Destroy via b; a's next request reports the loss.
    char destroy[64];
    std::snprintf(destroy, sizeof destroy,
                  "session-destroy seq=5 session=%llu",
                  static_cast<unsigned long long>(id));
    ASSERT_TRUE(b.roundTripOk(destroy, resp));
    ASSERT_TRUE(a.roundTrip("read-registers seq=6", resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_NE(resp.error.find("destroyed"), std::string::npos)
        << resp.error;
    srv.stop();
}

// ------------------------------------------------------ durable sessions

/** Fresh per-test store directory under the build tree (ctest cwd). */
std::string
storeScratch(const std::string &name)
{
    std::string dir = "server_test_store_" + name + "_" +
                      std::to_string(static_cast<long>(::getpid()));
    persist::RealVfs vfs;
    std::vector<std::string> names;
    if (vfs.list(dir, names))
        for (const std::string &n : names)
            vfs.remove(dir + "/" + n);
    return dir;
}

TEST(SessionManagerDurable, CapEvictsLruIdleAndResurrects)
{
    std::string dir = storeScratch("lru");
    persist::RealVfs vfs;
    persist::SessionStore store(dir, vfs);
    ASSERT_TRUE(store.open().ok);

    SessionManager mgr({2, smallSessions()});
    mgr.adoptStore(&store);
    uint64_t aId = mgr.create("demo", BackendKind::Dise)->id;
    uint64_t bId = mgr.create("mcf", BackendKind::Dise)->id;
    EXPECT_EQ(mgr.count(), 2u);

    // At the cap, creating hibernates the LRU idle session (a — it was
    // touched first and nothing holds it) instead of rejecting.
    uint64_t cId = mgr.create("demo", BackendKind::Dise)->id;
    EXPECT_EQ(mgr.count(), 2u);
    ServerStats s = mgr.stats();
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.hibernated, 1u);
    EXPECT_TRUE(store.contains(aId));
    // ids() spans live AND hibernated sessions.
    EXPECT_EQ(mgr.ids().size(), 3u);

    // find() on the hibernated id transparently resurrects it, which
    // at the cap evicts the next LRU idle victim (b).
    std::string err;
    ManagedSessionPtr a = mgr.find(aId, false, &err);
    ASSERT_TRUE(a) << err;
    EXPECT_EQ(a->id, aId);
    EXPECT_EQ(a->workload, "demo");
    s = mgr.stats();
    EXPECT_EQ(s.resurrections, 1u);
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.hibernated, 1u);
    EXPECT_TRUE(store.contains(bId));
    // a's image stays on disk as a crash-recovery anchor until it is
    // superseded by a later hibernate/persist or the session dies.
    EXPECT_TRUE(store.contains(aId));

    // Busy sessions (held by this test) are never victims: with both
    // remaining slots pinned, admission genuinely rejects.
    ManagedSessionPtr c = mgr.find(cId);
    ASSERT_TRUE(c);
    EXPECT_EQ(mgr.create("demo", BackendKind::Dise, false, &err),
              nullptr);
    EXPECT_NE(err.find("no idle session"), std::string::npos) << err;
    EXPECT_EQ(mgr.stats().rejected, 1u);

    // Destroying a hibernated session erases its image.
    EXPECT_TRUE(mgr.destroy(bId));
    EXPECT_FALSE(store.contains(bId));
    EXPECT_EQ(mgr.stats().hibernated, 0u);
    EXPECT_EQ(mgr.find(bId, false, &err), nullptr);
}

TEST(SessionManagerDurable, HibernateRefusalsKeepSessionIntact)
{
    std::string dir = storeScratch("refuse");
    persist::RealVfs vfs;
    persist::SessionStore store(dir, vfs);
    ASSERT_TRUE(store.open().ok);

    SessionManager mgr({4, smallSessions()});
    std::string err;
    // No store adopted yet: typed refusal.
    ManagedSessionPtr ms = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(ms);
    EXPECT_FALSE(mgr.hibernate(ms->id, &err));
    EXPECT_NE(err.find("store"), std::string::npos) << err;

    mgr.adoptStore(&store);
    // Held by this test: busy, refused, still live.
    EXPECT_FALSE(mgr.hibernate(ms->id, &err));
    EXPECT_NE(err.find("busy"), std::string::npos) << err;
    EXPECT_EQ(mgr.count(), 1u);

    uint64_t id = ms->id;
    ms.reset();
    EXPECT_TRUE(mgr.hibernate(id, &err)) << err;
    EXPECT_FALSE(mgr.hibernate(id, &err)); // already on disk
    EXPECT_NE(err.find("already"), std::string::npos) << err;
}

TEST(SessionManagerDurable, DroppedSubscriberGetsFarewell)
{
    class FlakySink : public EventSink
    {
      public:
        int deliveries = 0;
        std::vector<SessionEvent> farewells;
        bool
        deliver(const SessionEvent &) override
        {
            return deliveries++ < 1; // accept one event, then wedge
        }
        void
        farewell(const SessionEvent &ev) override
        {
            farewells.push_back(ev);
        }
    };

    SessionManager mgr({4, smallSessions()});
    ManagedSessionPtr ms = mgr.create("demo", BackendKind::Dise);
    ASSERT_TRUE(ms);
    auto sink = std::make_shared<FlakySink>();
    ms->addSink(sink);
    EXPECT_EQ(ms->subscriberCount(), 1u);

    Program demo = buildHeisenbugDemo();
    ms->session.setWatch(
        WatchSpec::scalar("w", demo.symbol("directory"), 8));
    ms->session.cont(); // queues attach + checkpoint/watch events
    ms->pushEvents();

    // The wedged sink was dropped gracefully: exactly one farewell
    // line of the dedicated kind, unsubscribe bookkeeping done, and
    // the drop is counted at session and server level.
    ASSERT_EQ(sink->farewells.size(), 1u);
    EXPECT_EQ(sink->farewells[0].kind,
              SessionEventKind::SubscriberDropped);
    EXPECT_EQ(ms->subscriberCount(), 0u);
    EXPECT_EQ(ms->droppedSinks.load(), 1u);
    EXPECT_EQ(mgr.stats().dropped, 1u);

    // The counter survives the session's destruction (retired fold).
    uint64_t id = ms->id;
    ms.reset();
    EXPECT_TRUE(mgr.destroy(id));
    EXPECT_EQ(mgr.stats().dropped, 1u);
}

TEST(DebugServerTcp, HibernateResurrectOverWireWithDigestMatch)
{
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    std::string dir = storeScratch("wire");

    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    opts.storeDir = dir;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    uint64_t id = resp.value;
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("w", watchAddr, 8);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
    ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));
    ASSERT_TRUE(resp.hasStop);
    uint64_t posInsts = resp.stop.appInsts;

    // A crash-consistent image without eviction; its digest is the
    // session's state digest.
    ASSERT_TRUE(wire.roundTripOk("session-persist seq=4", resp));
    uint64_t digest = resp.value;
    EXPECT_NE(digest, 0u);
    ASSERT_TRUE(wire.roundTripOk("store-stats seq=5", resp));
    EXPECT_EQ(resp.store.images, 1u);
    EXPECT_GE(resp.store.puts, 1u);
    EXPECT_GT(resp.store.bytes, 0u);

    // Hibernate the selected session (the handler drops its own
    // reference first), then resurrect it by selecting it again.
    ASSERT_TRUE(wire.roundTripOk("session-hibernate seq=6", resp));
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=7", resp));
    EXPECT_EQ(resp.server.hibernated, 1u);
    EXPECT_EQ(resp.server.evictions, 1u);
    EXPECT_EQ(resp.server.activeSessions, 0u);

    char sel[64];
    std::snprintf(sel, sizeof sel, "session-select seq=8 session=%llu",
                  static_cast<unsigned long long>(id));
    ASSERT_TRUE(wire.roundTripOk(sel, resp));
    ASSERT_TRUE(wire.roundTripOk("stats seq=9", resp));
    EXPECT_EQ(resp.stats.appInsts, posInsts); // position restored

    // Bit-identical state: a fresh image of the resurrected session
    // carries the same digest, and replay-verify still stitches clean.
    ASSERT_TRUE(wire.roundTripOk("session-persist seq=10", resp));
    EXPECT_EQ(resp.value, digest);
    ASSERT_TRUE(wire.roundTripOk("replay-verify seq=11 count=2", resp));
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=12", resp));
    EXPECT_EQ(resp.server.resurrections, 1u);
    EXPECT_EQ(resp.server.hibernated, 0u);
    srv.stop();
}

TEST(DebugServerTcp, CreateBeyondCapHibernatesIdleSessions)
{
    std::string dir = storeScratch("cap");
    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    opts.storeDir = dir;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    uint64_t id1 = resp.value;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=2 name=mcf",
                                 resp));
    uint64_t id2 = resp.value;
    // The third create succeeds by hibernating the LRU idle session
    // (the first one — this connection moved its selection off it).
    ASSERT_TRUE(wire.roundTripOk("session-create seq=3 name=demo",
                                 resp));
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=4", resp));
    EXPECT_EQ(resp.server.activeSessions, 2u);
    EXPECT_EQ(resp.server.hibernated, 1u);
    EXPECT_EQ(resp.server.evictions, 1u);
    EXPECT_EQ(resp.server.rejected, 0u);
    ASSERT_TRUE(wire.roundTripOk("session-list seq=5", resp));
    EXPECT_EQ(resp.regs.size(), 3u);

    // Rejection only when nothing is evictable: a second client pins
    // the other live session (id2 — id1 went to disk above), this
    // connection pins its own, so a fourth create has no victim.
    WireClient pinner;
    ASSERT_TRUE(pinner.connectTo(srv.port()));
    Response r;
    char line[64];
    std::snprintf(line, sizeof line, "session-select seq=6 session=%llu",
                  static_cast<unsigned long long>(id2));
    ASSERT_TRUE(pinner.roundTripOk(line, r));
    (void)id1;
    Response rej;
    ASSERT_TRUE(wire.roundTrip("session-create seq=8 name=demo", rej));
    EXPECT_EQ(rej.status, ResponseStatus::Error);
    EXPECT_NE(rej.error.find("no idle session"), std::string::npos)
        << rej.error;
    srv.stop();
}

TEST(DebugServerTcp, RestartRecoversPersistedSessions)
{
    // The in-process crash-recovery e2e: server 1 persists a session
    // and dies without any orderly hibernation; server 2 on the same
    // store directory re-admits and resurrects it, digest-identical.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    std::string dir = storeScratch("restart");

    uint64_t id = 0, digest = 0, posInsts = 0;
    {
        DebugServerOptions opts;
        opts.maxSessions = 4;
        opts.session = smallSessions();
        opts.storeDir = dir;
        DebugServer srv(opts);
        ASSERT_TRUE(srv.start());
        WireClient wire;
        ASSERT_TRUE(wire.connectTo(srv.port()));
        Response resp;
        ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                     resp));
        id = resp.value;
        Request setw;
        setw.kind = RequestKind::SetWatch;
        setw.seq = 2;
        setw.watch = WatchSpec::scalar("w", watchAddr, 8);
        ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
        ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));
        posInsts = resp.stop.appInsts;
        ASSERT_TRUE(wire.roundTripOk("session-persist seq=4", resp));
        digest = resp.value;
        srv.stop(); // hard stop: nothing else written to the store
    }

    DebugServerOptions opts;
    opts.maxSessions = 4;
    opts.session = smallSessions();
    opts.storeDir = dir;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());
    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=1", resp));
    EXPECT_EQ(resp.server.hibernated, 1u);
    char sel[64];
    std::snprintf(sel, sizeof sel, "session-select seq=2 session=%llu",
                  static_cast<unsigned long long>(id));
    ASSERT_TRUE(wire.roundTripOk(sel, resp));
    ASSERT_TRUE(wire.roundTripOk("stats seq=3", resp));
    EXPECT_EQ(resp.stats.appInsts, posInsts);
    ASSERT_TRUE(wire.roundTripOk("session-persist seq=4", resp));
    EXPECT_EQ(resp.value, digest); // bit-identical resurrection
    srv.stop();
}

// ------------------------------------------------------ observability

TEST(Histogram, ConcurrentObserversAgree)
{
    // The TSan build runs this test: concurrent observe() against
    // concurrent snapshot() must be race-free, and the final totals
    // exact once the writers join.
    Histogram h;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 50000;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed))
            (void)h.snapshot("concurrent");
    });
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t)
        writers.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.observe(t * 1000 + (i % 7));
        });
    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(h.count(), kThreads * kPerThread);
    uint64_t expectedSum = 0, bucketTotal = 0;
    for (unsigned t = 0; t < kThreads; ++t)
        for (uint64_t i = 0; i < kPerThread; ++i)
            expectedSum += t * 1000 + (i % 7);
    EXPECT_EQ(h.sum(), expectedSum);
    for (size_t i = 0; i < Histogram::kBuckets; ++i)
        bucketTotal += h.bucketCount(i);
    EXPECT_EQ(bucketTotal, h.count());
}

TEST(DebugServerTcp, DurabilityCountersTravelTheWire)
{
    // sv.dropped / sv.quarantined / sv.faults, driven for real and
    // read back through the typed wire — not just struct-to-struct.
    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    std::string dir = storeScratch("counters");
    persist::FaultInjector faults;

    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    opts.storeDir = dir;
    opts.faults = &faults;
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("session-create seq=1 name=demo",
                                 resp));
    uint64_t id = resp.value;
    Request setw;
    setw.kind = RequestKind::SetWatch;
    setw.seq = 2;
    setw.watch = WatchSpec::scalar("w", watchAddr, 8);
    ASSERT_TRUE(wire.roundTripOk(encodeRequest(setw), resp));
    ASSERT_TRUE(wire.roundTripOk("cont seq=3", resp));

    // A sink that never drains: the first push drops it (sv.dropped).
    class WedgedSink : public EventSink
    {
        bool deliver(const SessionEvent &) override { return false; }
        void farewell(const SessionEvent &) override {}
    };
    {
        ManagedSessionPtr ms = srv.sessions().find(id);
        ASSERT_TRUE(ms);
        ms->addSink(std::make_shared<WedgedSink>());
        ms->pushEvents(); // events queued by the cont above
        EXPECT_EQ(ms->subscriberCount(), 0u);
    }

    // One injected fsync fault: the persist fails cleanly (sv.faults).
    faults.armNth(persist::FaultInjector::Site::Fsync, 1);
    ASSERT_TRUE(wire.roundTrip("session-persist seq=4", resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    faults.disarm();
    EXPECT_GE(faults.injected(), 1u);

    // Hibernate for real, then corrupt every image on disk so the
    // resurrection quarantines it (sv.quarantined).
    ASSERT_TRUE(wire.roundTripOk("session-persist seq=5", resp));
    ASSERT_TRUE(wire.roundTripOk("session-hibernate seq=6", resp));
    persist::RealVfs vfs;
    std::vector<std::string> names;
    ASSERT_TRUE(vfs.list(dir, names));
    unsigned corrupted = 0;
    for (const std::string &n : names) {
        if (n.size() < 4 || n.compare(n.size() - 4, 4, ".img") != 0)
            continue;
        std::vector<uint8_t> bytes;
        ASSERT_TRUE(vfs.readFile(dir + "/" + n, bytes, nullptr));
        ASSERT_FALSE(bytes.empty());
        bytes[bytes.size() / 2] ^= 0xff;
        ASSERT_TRUE(vfs.writeFile(dir + "/" + n, bytes.data(),
                                  bytes.size(), nullptr));
        ++corrupted;
    }
    ASSERT_GE(corrupted, 1u);
    char sel[64];
    std::snprintf(sel, sizeof sel, "session-select seq=7 session=%llu",
                  static_cast<unsigned long long>(id));
    ASSERT_TRUE(wire.roundTrip(sel, resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_NE(resp.error.find("bad-checksum"), std::string::npos)
        << resp.error;

    // dropped and faults arrive wire-decoded, alongside the latency
    // histograms this connection's own verbs populated.
    ASSERT_TRUE(wire.roundTripOk("server-stats seq=8", resp));
    EXPECT_EQ(resp.server.dropped, 1u);
    EXPECT_GE(resp.server.faultsInjected, 1u);
    EXPECT_GE(resp.server.hists.size(), 5u);
    bool sawVerbLatency = false;
    for (const HistogramSnapshot &h : resp.server.hists)
        if (h.name == "dise_verb_latency_us") {
            sawVerbLatency = true;
            EXPECT_GT(h.count, 0u);
            uint64_t total = 0;
            for (uint64_t b : h.buckets)
                total += b;
            EXPECT_EQ(total, h.count);
        }
    EXPECT_TRUE(sawVerbLatency);
    srv.stop();

    // The open-time scan is what quarantines the corrupt image (the
    // mid-run load failure above reported but did not classify): a
    // second server on the same store counts it in sv.quarantined.
    DebugServer srv2(opts);
    ASSERT_TRUE(srv2.start());
    WireClient wire2;
    ASSERT_TRUE(wire2.connectTo(srv2.port()));
    ASSERT_TRUE(wire2.roundTripOk("server-stats seq=1", resp));
    EXPECT_GE(resp.server.quarantined, 1u);
    EXPECT_EQ(resp.server.hibernated, 0u); // the corrupt image is out
    srv2.stop();
}

TEST(DebugServerTcp, TraceVerbsAndMetricsExposition)
{
    DebugServerOptions opts;
    opts.maxSessions = 2;
    opts.session = smallSessions();
    DebugServer srv(opts);
    ASSERT_TRUE(srv.start());

    WireClient wire;
    ASSERT_TRUE(wire.connectTo(srv.port()));
    Response resp;
    ASSERT_TRUE(wire.roundTripOk("trace-start seq=1 count=64", resp));
    // Dumping mid-flight is refused: the rings are being written.
    ASSERT_TRUE(wire.roundTrip("trace-dump seq=2", resp));
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_NE(resp.error.find("armed"), std::string::npos)
        << resp.error;

    ASSERT_TRUE(wire.roundTripOk("session-create seq=3 name=demo",
                                 resp));
    ASSERT_TRUE(wire.roundTripOk("stepi seq=4 count=2000", resp));
    // A session-dispatched verb (exec verbs go straight to the
    // scheduler) so the dump carries session-layer spans too.
    ASSERT_TRUE(wire.roundTripOk("stats seq=90", resp));
    ASSERT_TRUE(wire.roundTripOk("trace-stop seq=5", resp));
    EXPECT_GT(resp.value, 0u); // records captured

    // Tiny chunks force several round trips; the reassembly must be
    // byte-exact against the advertised total.
    std::string dump;
    uint64_t total = 0;
    unsigned chunks = 0;
    do {
        char line[96];
        std::snprintf(line, sizeof line,
                      "trace-dump seq=%u count=2048 value=%llu",
                      6 + chunks,
                      static_cast<unsigned long long>(dump.size()));
        ASSERT_TRUE(wire.roundTripOk(line, resp));
        total = resp.value;
        if (resp.text.empty())
            break;
        dump += resp.text;
        ++chunks;
    } while (dump.size() < total);
    EXPECT_EQ(dump.size(), total);
    EXPECT_GE(chunks, 2u);
    EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(dump.find("\"cat\":\"sched\""), std::string::npos);
    EXPECT_NE(dump.find("\"cat\":\"session\""), std::string::npos);
    EXPECT_NE(dump.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(dump.find("\"ph\":\"E\""), std::string::npos);

    // The Prometheus surface, over the same connection.
    ASSERT_TRUE(wire.roundTripOk("metrics seq=100", resp));
    EXPECT_NE(resp.text.find("# TYPE dise_verb_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(resp.text.find("dise_verb_latency_us_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(resp.text.find("# TYPE dise_sched_queue_wait_us histogram"),
              std::string::npos);
    EXPECT_NE(resp.text.find("dise_slice_duration_us_count"),
              std::string::npos);
    srv.stop();
}

} // namespace
} // namespace dise
