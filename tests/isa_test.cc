/**
 * @file
 * ISA tests: opcode metadata consistency, encode/decode round-trips
 * (including a randomized property sweep), source/destination register
 * extraction, and the disassembler.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "isa/inst.hh"

namespace dise {
namespace {

TEST(Opcodes, MetadataConsistent)
{
    for (unsigned i = 0; i < NumOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        EXPECT_NE(info.name, nullptr);
        if (info.cls == OpClass::Load || info.cls == OpClass::Store) {
            if (op != Opcode::LDA && op != Opcode::LDAH)
                EXPECT_GT(info.memBytes, 0u) << info.name;
        } else {
            EXPECT_EQ(info.memBytes, 0u) << info.name;
        }
    }
}

TEST(Opcodes, ClassPredicates)
{
    EXPECT_TRUE(isLoad(Opcode::LDQ));
    EXPECT_FALSE(isLoad(Opcode::LDA)); // address computation, not load
    EXPECT_TRUE(isStore(Opcode::STB));
    EXPECT_TRUE(isCondBranch(Opcode::BEQ));
    EXPECT_FALSE(isCondBranch(Opcode::BR));
    EXPECT_TRUE(isControl(Opcode::JSR));
    EXPECT_FALSE(isControl(Opcode::ADDQ));
}

TEST(Registers, FlatIndexing)
{
    EXPECT_EQ(ir(0).flat(), 0u);
    EXPECT_EQ(ir(31).flat(), 31u);
    EXPECT_EQ(dr(0).flat(), 32u);
    EXPECT_EQ(dr(7).flat(), 39u);
    EXPECT_TRUE(reg::zero.isZero());
    EXPECT_FALSE(reg::sp.isZero());
    EXPECT_FALSE(dr(7).isZero());
}

TEST(Registers, Names)
{
    EXPECT_EQ(regName(reg::sp), "sp");
    EXPECT_EQ(regName(reg::zero), "zero");
    EXPECT_EQ(regName(ir(5)), "r5");
    EXPECT_EQ(regName(dr(3)), "dr3");
    EXPECT_EQ(regName(RegId{}), "-");
}

TEST(Encoding, RoundTripOperate)
{
    Inst inst = makeOp(Opcode::ADDQ, reg::t0, reg::t1, reg::t2);
    auto dec = decode(encode(inst));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, inst);
}

TEST(Encoding, RoundTripMemoryNegativeDisp)
{
    Inst inst = makeMem(Opcode::STQ, reg::t3, -8192, reg::sp);
    auto dec = decode(encode(inst));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, inst);
}

TEST(Encoding, RoundTripBranch)
{
    Inst inst = makeBranch(Opcode::BNE, reg::t4, -100);
    auto dec = decode(encode(inst));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, inst);
}

TEST(Encoding, RoundTripDiseMove)
{
    Inst inst = makeDiseMove(Opcode::D_MFR, reg::t0, dr(5));
    auto dec = decode(encode(inst));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, inst);
}

TEST(Encoding, DiseOnlyOpcodesNotEncodable)
{
    EXPECT_FALSE(encodable(makeDiseBranch(Opcode::D_BNE, dr(1), 1)));
    EXPECT_FALSE(encodable(makeDiseCall(dr(2), dr(5))));
    // But d_ret is ordinary handler code.
    EXPECT_TRUE(encodable(makeNullary(Opcode::D_RET)));
}

TEST(Encoding, DiseRegisterOperandsNotEncodable)
{
    Inst inst = makeOp(Opcode::ADDQ, dr(1), reg::t0, reg::t1);
    EXPECT_FALSE(encodable(inst));
}

TEST(Encoding, OutOfRangeFields)
{
    Inst inst = makeMem(Opcode::LDQ, reg::t0, 8192, reg::sp);
    EXPECT_FALSE(encodable(inst)); // disp14 max is 8191
    Inst b = makeBranch(Opcode::BR, reg::zero, 1 << 20);
    EXPECT_FALSE(encodable(b));
}

TEST(Encoding, GarbageWordsDecodeToNullopt)
{
    EXPECT_FALSE(decode(0xffffffff).has_value());
    // An opcode byte beyond the table.
    EXPECT_FALSE(decode(0xf0000000).has_value());
}

/** Property: random encodable instructions round-trip exactly. */
TEST(Encoding, PropertyRandomRoundTrip)
{
    Rng rng(1234);
    int tested = 0;
    for (int iter = 0; iter < 5000; ++iter) {
        Inst inst;
        inst.op = static_cast<Opcode>(rng.below(NumOpcodes));
        const OpInfo &info = inst.info();
        if (!info.encodable)
            continue;
        switch (info.fmt) {
          case Format::Operate:
            inst = makeOp(inst.op, ir(rng.below(32)), ir(rng.below(32)),
                          ir(rng.below(32)));
            break;
          case Format::OperateImm:
            inst = makeOpImm(inst.op, ir(rng.below(32)),
                             static_cast<uint8_t>(rng.below(256)),
                             ir(rng.below(32)));
            break;
          case Format::Memory:
            inst = makeMem(inst.op, ir(rng.below(32)),
                           static_cast<int64_t>(rng.below(16384)) - 8192,
                           ir(rng.below(32)));
            break;
          case Format::Branch:
            inst = makeBranch(inst.op, ir(rng.below(32)),
                              static_cast<int64_t>(rng.below(1 << 19)) -
                                  (1 << 18));
            break;
          case Format::Jump:
            inst = makeJump(inst.op, ir(rng.below(32)),
                            ir(rng.below(32)));
            break;
          case Format::System:
            inst = makeSystem(inst.op,
                              static_cast<int64_t>(rng.below(1 << 24)));
            break;
          case Format::Ctrap:
            inst = makeCtrap(ir(rng.below(32)),
                             static_cast<int64_t>(rng.below(1 << 19)));
            break;
          case Format::DiseMove:
            inst = makeDiseMove(inst.op, ir(rng.below(32)),
                                dr(rng.below(8)));
            break;
          case Format::Nullary:
            inst = makeNullary(inst.op);
            break;
          default:
            continue;
        }
        auto dec = decode(encode(inst));
        ASSERT_TRUE(dec.has_value()) << disasm(inst);
        EXPECT_EQ(*dec, inst) << disasm(inst);
        ++tested;
    }
    EXPECT_GT(tested, 3000);
}

TEST(SrcDst, StoreReadsBothRegs)
{
    Inst st = makeMem(Opcode::STQ, reg::t0, 8, reg::t1);
    SrcRegs s = srcRegs(st);
    EXPECT_EQ(s.r[0], reg::t0);
    EXPECT_EQ(s.r[1], reg::t1);
    EXPECT_FALSE(dstReg(st).valid());
}

TEST(SrcDst, LoadWritesRa)
{
    Inst ld = makeMem(Opcode::LDQ, reg::t0, 8, reg::t1);
    SrcRegs s = srcRegs(ld);
    EXPECT_EQ(s.r[0], reg::t1);
    EXPECT_FALSE(s.r[1].valid());
    EXPECT_EQ(dstReg(ld), reg::t0);
}

TEST(SrcDst, BsrLinks)
{
    Inst bsr = makeBranch(Opcode::BSR, reg::ra, 10);
    EXPECT_EQ(dstReg(bsr), reg::ra);
    Inst br = makeBranch(Opcode::BR, reg::zero, 10);
    EXPECT_FALSE(dstReg(br).valid());
}

TEST(SrcDst, DiseMoveDirections)
{
    Inst mfr = makeDiseMove(Opcode::D_MFR, reg::t0, dr(4));
    EXPECT_EQ(dstReg(mfr), reg::t0);
    EXPECT_EQ(srcRegs(mfr).r[0], dr(4));
    Inst mtr = makeDiseMove(Opcode::D_MTR, reg::t0, dr(4));
    EXPECT_EQ(dstReg(mtr), dr(4));
    EXPECT_EQ(srcRegs(mtr).r[0], reg::t0);
}

TEST(SrcDst, DiseCcallReadsCondAndTarget)
{
    Inst c = makeDiseCall(dr(2), dr(5));
    EXPECT_EQ(c.op, Opcode::D_CCALL);
    SrcRegs s = srcRegs(c);
    EXPECT_EQ(s.r[0], dr(5));
    EXPECT_EQ(s.r[1], dr(2));
}

TEST(Disasm, PaperSyntax)
{
    // The paper's example: addq sp, 8, dr0.
    Inst inst = makeOp(Opcode::ADDQ, reg::sp, ir(8), dr(0));
    EXPECT_EQ(disasm(inst), "addq sp, r8, dr0");
    Inst mem = makeMem(Opcode::LDQ, ir(4), 32, reg::sp);
    EXPECT_EQ(disasm(mem), "ldq r4, 32(sp)");
}

TEST(Disasm, BranchWithPc)
{
    Inst b = makeBranch(Opcode::BEQ, reg::t0, 2);
    std::string s = disasm(b, 0x1000);
    EXPECT_NE(s.find("0x100c"), std::string::npos) << s;
}

} // namespace
} // namespace dise
