/**
 * @file
 * Integration tests: cross-backend event-sequence parity on the real
 * kernels (the strongest end-to-end correctness property we have) and
 * the qualitative performance orderings every figure in the paper
 * depends on, checked at reduced scale so ctest stays fast.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace dise {
namespace {

/** Event value-sequence under a backend, capped for speed. */
std::vector<std::pair<uint64_t, uint64_t>>
eventsFor(const Workload &w, WatchSpec spec, BackendKind kind,
          uint64_t cap)
{
    DebugTarget t(w.program);
    DebuggerOptions o;
    o.backend = kind;
    Debugger dbg(t, o);
    dbg.watch(spec);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    if (!dbg.attach())
        return {{~0ull, ~0ull}}; // unsupported sentinel
    dbg.runFunctional(cap);
    for (const auto &e : dbg.watchEvents())
        out.emplace_back(e.oldValue, e.newValue);
    return out;
}

class ParityTest : public ::testing::TestWithParam<
                       std::tuple<std::string, WatchSel>>
{
};

TEST_P(ParityTest, BackendsAgreeOnEvents)
{
    auto [name, sel] = GetParam();
    Workload w = buildWorkload(name, {});
    WatchSpec spec = w.watch(sel);
    const uint64_t cap = 120000;

    auto dise = eventsFor(w, spec, BackendKind::Dise, cap);
    auto sstep = eventsFor(w, spec, BackendKind::SingleStep, cap);
    EXPECT_EQ(dise, sstep) << name << "/" << watchSelName(sel);

    auto vm = eventsFor(w, spec, BackendKind::VirtualMemory, cap);
    if (!(vm.size() == 1 && vm[0].first == ~0ull))
        EXPECT_EQ(dise, vm) << name << "/" << watchSelName(sel);

    auto hw = eventsFor(w, spec, BackendKind::HardwareReg, cap);
    if (!(hw.size() == 1 && hw[0].first == ~0ull))
        EXPECT_EQ(dise, hw) << name << "/" << watchSelName(sel);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParityTest,
    ::testing::Combine(::testing::Values("bzip2", "crafty", "mcf",
                                         "twolf"),
                       ::testing::Values(WatchSel::HOT, WatchSel::WARM1,
                                         WatchSel::INDIRECT,
                                         WatchSel::RANGE)));

// ------------------------------------------------ shape propositions

struct ShapeFixture : ::testing::Test
{
    static ExperimentRunner &
    runner()
    {
        static ExperimentRunner run;
        return run;
    }

    static double
    slowdown(const std::string &name, WatchSel sel, BackendKind kind,
             bool conditional = false, bool mt = false)
    {
        DebuggerOptions o;
        o.backend = kind;
        RunOutcome out = runner().debugged(
            name, {runner().standardWatch(name, sel, conditional)}, o,
            mt);
        EXPECT_TRUE(out.supported);
        return out.slowdown;
    }
};

TEST_F(ShapeFixture, SingleSteppingIsCatastrophic)
{
    // Paper: slowdowns of 6,000-40,000x.
    double s = slowdown("twolf", WatchSel::COLD, BackendKind::SingleStep);
    EXPECT_GT(s, 3000);
}

TEST_F(ShapeFixture, DiseStaysComfortablyLow)
{
    // Paper: "typically limits debugging overhead to 25% or less",
    // with hot outliers; COLD must be tight everywhere.
    for (const auto &name : workloadNames()) {
        double s = slowdown(name, WatchSel::COLD, BackendKind::Dise);
        EXPECT_LT(s, 1.6) << name;
        EXPECT_GE(s, 0.99) << name;
    }
}

TEST_F(ShapeFixture, DiseBeatsSingleSteppingByOrdersOfMagnitude)
{
    double dise = slowdown("bzip2", WatchSel::HOT, BackendKind::Dise);
    double sstep =
        slowdown("bzip2", WatchSel::HOT, BackendKind::SingleStep);
    EXPECT_GT(sstep / dise, 1000);
}

TEST_F(ShapeFixture, VmSufferssOnSharedPages)
{
    // WARM1/bzip2 shares its page with the hot output buffer.
    double vm =
        slowdown("bzip2", WatchSel::WARM1, BackendKind::VirtualMemory);
    double dise = slowdown("bzip2", WatchSel::WARM1, BackendKind::Dise);
    EXPECT_GT(vm, 100 * dise);
    // COLD/bzip2 sits on a quiet page: VM is essentially free.
    double vmCold =
        slowdown("bzip2", WatchSel::COLD, BackendKind::VirtualMemory);
    EXPECT_LT(vmCold, 1.1);
}

TEST_F(ShapeFixture, SilentStoresHurtHardwareRegisters)
{
    // HOT/crafty is mostly silent stores: hardware registers take a
    // spurious value transition per silent store, DISE prunes them.
    double hw =
        slowdown("crafty", WatchSel::HOT, BackendKind::HardwareReg);
    double dise = slowdown("crafty", WatchSel::HOT, BackendKind::Dise);
    EXPECT_GT(hw, 20 * dise);
    // bzip2's HOT has no silent stores: hardware is free there.
    double hwBzip =
        slowdown("bzip2", WatchSel::HOT, BackendKind::HardwareReg);
    EXPECT_LT(hwBzip, 1.1);
}

TEST_F(ShapeFixture, ConditionalsFavorDise)
{
    // Under a never-true predicate every value change becomes a
    // spurious predicate transition for hardware registers.
    double hw = slowdown("bzip2", WatchSel::HOT,
                         BackendKind::HardwareReg, true);
    double dise =
        slowdown("bzip2", WatchSel::HOT, BackendKind::Dise, true);
    EXPECT_GT(hw, 100 * dise);
}

TEST_F(ShapeFixture, ConditionalColdFavorsHardwareSlightly)
{
    // Paper Section 5.2: for watchpoints written less than about once
    // per 100K stores the trap-based implementations win.
    double hw = slowdown("gcc", WatchSel::COLD,
                         BackendKind::HardwareReg, true);
    double dise =
        slowdown("gcc", WatchSel::COLD, BackendKind::Dise, true);
    EXPECT_LT(hw, dise * 1.6);
}

TEST_F(ShapeFixture, MemoryBoundnessMasksDise)
{
    // HOT/mcf: overhead is hidden under the memory latency.
    double s = slowdown("mcf", WatchSel::HOT, BackendKind::Dise);
    EXPECT_LT(s, 1.2);
}

TEST_F(ShapeFixture, MultithreadingHelpsHotWatchpoints)
{
    double off = slowdown("bzip2", WatchSel::HOT, BackendKind::Dise,
                          false, false);
    double on = slowdown("bzip2", WatchSel::HOT, BackendKind::Dise,
                         false, true);
    EXPECT_LT(on, off * 0.8);
    // COLD barely changes.
    double offCold = slowdown("bzip2", WatchSel::COLD,
                              BackendKind::Dise, false, false);
    double onCold = slowdown("bzip2", WatchSel::COLD, BackendKind::Dise,
                             false, true);
    EXPECT_NEAR(onCold, offCold, 0.05);
}

TEST_F(ShapeFixture, HardwareCollapsesPastFourWatchpoints)
{
    const Workload &w = runner().workload("crafty");
    DebuggerOptions hw;
    hw.backend = BackendKind::HardwareReg;
    RunOutcome four = runner().debugged("crafty", w.multiWatch(4), hw);
    RunOutcome five = runner().debugged("crafty", w.multiWatch(5), hw);
    ASSERT_TRUE(four.supported && five.supported);
    EXPECT_GT(five.slowdown, four.slowdown * 2);

    // DISE stays flat across the same step.
    DebuggerOptions dd;
    dd.backend = BackendKind::Dise;
    dd.dise.strategy = MultiMatch::BloomByte;
    RunOutcome dfour = runner().debugged("crafty", w.multiWatch(4), dd);
    RunOutcome dfive = runner().debugged("crafty", w.multiWatch(5), dd);
    EXPECT_LT(dfive.slowdown, dfour.slowdown * 1.25);
}

TEST_F(ShapeFixture, SerialGrowsBloomsStayFlat)
{
    const Workload &w = runner().workload("gcc");
    auto dise = [&](MultiMatch s, unsigned n) {
        DebuggerOptions dd;
        dd.backend = BackendKind::Dise;
        dd.dise.strategy = s;
        return runner().debugged("gcc", w.multiWatch(n), dd).slowdown;
    };
    double serial2 = dise(MultiMatch::Serial, 2);
    double serial16 = dise(MultiMatch::Serial, 16);
    double bloom2 = dise(MultiMatch::BloomByte, 2);
    double bloom16 = dise(MultiMatch::BloomByte, 16);
    EXPECT_GT(serial16, serial2 * 1.5); // linear growth
    EXPECT_LT(bloom16, bloom2 * 1.3);   // constant-length sequence
    EXPECT_LT(bloom16, serial16);
}

TEST_F(ShapeFixture, RewritingWorseForLargeFootprints)
{
    DebuggerOptions rw;
    rw.backend = BackendKind::Rewrite;
    DebuggerOptions dd;
    dd.backend = BackendKind::Dise;
    auto spec = [&](const std::string &n) {
        return runner().standardWatch(n, WatchSel::COLD, false);
    };
    RunOutcome gccRw = runner().debugged("gcc", {spec("gcc")}, rw);
    RunOutcome gccDise = runner().debugged("gcc", {spec("gcc")}, dd);
    EXPECT_GT(gccRw.slowdown, gccDise.slowdown * 1.5);
}

TEST_F(ShapeFixture, ProtectionCostIsModest)
{
    DebuggerOptions plain;
    plain.backend = BackendKind::Dise;
    DebuggerOptions prot = plain;
    prot.dise.protectDebuggerData = true;
    for (const std::string name : {"gcc", "twolf"}) {
        auto spec = runner().standardWatch(name, WatchSel::COLD, false);
        double p = runner().debugged(name, {spec}, plain).slowdown;
        double q = runner().debugged(name, {spec}, prot).slowdown;
        EXPECT_LT(q, p + 0.35) << name;
        EXPECT_GE(q, p * 0.99) << name;
    }
}

TEST_F(ShapeFixture, CtrapAvoidsCommonCaseFlushes)
{
    DebuggerOptions with;
    with.backend = BackendKind::Dise;
    DebuggerOptions without = with;
    without.dise.condCallTrap = false;
    auto spec = runner().standardWatch("twolf", WatchSel::COLD, false);
    double w = runner().debugged("twolf", {spec}, with).slowdown;
    double wo = runner().debugged("twolf", {spec}, without).slowdown;
    EXPECT_GT(wo, w * 1.3);
}

TEST_F(ShapeFixture, DiseEventsMatchAcrossStrategies)
{
    const Workload &w = runner().workload("crafty");
    auto events = [&](MultiMatch s) {
        DebuggerOptions dd;
        dd.backend = BackendKind::Dise;
        dd.dise.strategy = s;
        return runner()
            .debugged("crafty", w.multiWatch(8), dd)
            .watchEvents;
    };
    size_t serial = events(MultiMatch::Serial);
    size_t bbyte = events(MultiMatch::BloomByte);
    size_t bbit = events(MultiMatch::BloomBit);
    EXPECT_EQ(serial, bbyte);
    EXPECT_EQ(serial, bbit);
}

} // namespace
} // namespace dise
