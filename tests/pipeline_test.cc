/**
 * @file
 * Pipeline configuration sweeps: the timing model must respond sanely
 * and monotonically to its structural parameters (width, window sizes,
 * cache geometry, front-end depth, transition cost), and the DISE
 * mechanisms must interact with them the way the paper's analysis
 * assumes (flush costs scale with depth, bandwidth costs with width).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/experiment.hh"

namespace dise {
namespace {

RunStats
runCrafty(TimingConfig cfg)
{
    Workload w = buildCrafty({});
    DebugTarget t(w.program);
    t.load();
    StreamEnv env;
    env.sink = &t.sink;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
    return cpu.run({});
}

TEST(ConfigSweep, WiderIsNotSlower)
{
    TimingConfig narrow;
    narrow.width = 2;
    narrow.intAlus = 2;
    TimingConfig wide;
    wide.width = 8;
    wide.intAlus = 8;
    RunStats n = runCrafty(narrow);
    RunStats w = runCrafty(wide);
    EXPECT_LT(w.cycles, n.cycles);
    EXPECT_EQ(n.appInsts, w.appInsts); // same work
}

TEST(ConfigSweep, RobCursorsAreCycleExact)
{
    // The cursor-accelerated issue/disambiguation scans are a pure
    // host-side optimization: cycle counts and every flush/transition
    // statistic must match the legacy linear scans bit for bit.
    TimingConfig linear;
    linear.robCursors = false;
    TimingConfig cursors;
    cursors.robCursors = true;
    RunStats a = runCrafty(linear);
    RunStats b = runCrafty(cursors);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.appInsts, b.appInsts);
    EXPECT_EQ(a.microOps, b.microOps);
    EXPECT_EQ(a.mispredictFlushes, b.mispredictFlushes);
    EXPECT_EQ(a.diseFlushes, b.diseFlushes);
    EXPECT_EQ(a.serializeFlushes, b.serializeFlushes);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
}

TEST(ConfigSweep, DeeperFrontEndCostsMore)
{
    TimingConfig shallow;
    shallow.frontDepth = 4;
    TimingConfig deep;
    deep.frontDepth = 24;
    // twolf mispredicts a lot; deeper redirects must hurt.
    Workload w = buildTwolf({});
    auto run = [&](TimingConfig cfg) {
        DebugTarget t(w.program);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
        return cpu.run({});
    };
    EXPECT_LT(run(shallow).cycles, run(deep).cycles);
}

TEST(ConfigSweep, SmallerRobIsNotFaster)
{
    TimingConfig small;
    small.robSize = 16;
    small.rsSize = 8;
    TimingConfig big;
    RunStats s = runCrafty(small);
    RunStats b = runCrafty(big);
    EXPECT_LE(b.cycles, s.cycles);
}

TEST(ConfigSweep, MemoryLatencyGovernsSerialChains)
{
    // A single dependent pointer chase has no memory-level parallelism
    // for the window to mine, so its cycle count must track the DRAM
    // latency. (mcf itself runs four chains and becomes bus-bandwidth
    // bound instead — see BusBandwidthGovernsMcf.)
    using namespace reg;
    Assembler a;
    a.data(0x0200'0000);
    a.label("nodes");
    {
        constexpr unsigned N = 4096; // 256KB of 64B nodes
        std::vector<uint8_t> net(N * 64);
        for (unsigned j = 0; j < N; ++j) {
            uint64_t ptr = 0x0200'0000 + ((j + 1537) % N) * 64;
            for (int b = 0; b < 8; ++b)
                net[j * 64 + b] = (ptr >> (8 * b)) & 0xff;
        }
        a.blob(std::move(net));
    }
    a.text(0x0100'0000);
    a.label("main");
    a.la(t0, "nodes");
    a.li(t9, 2000);
    a.lda(t8, 0, zero);
    a.label("loop");
    a.ldq(t0, 0, t0);
    a.addq(t8, 1, t8);
    a.cmplt(t8, t9, t1);
    a.bne(t1, "loop");
    a.syscall(SysExit);
    Program prog = a.finish("main");

    auto run = [&](unsigned lat) {
        TimingConfig cfg;
        cfg.mem.memLatency = lat;
        cfg.mem.l1d.sizeBytes = 4096; // force misses
        cfg.mem.l2.sizeBytes = 64 * 1024;
        DebugTarget t(prog);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
        return cpu.run({});
    };
    RunStats fast = run(20);
    RunStats slow = run(300);
    EXPECT_GT(static_cast<double>(slow.cycles) / fast.cycles, 1.8);
}

TEST(ConfigSweep, BusBandwidthGovernsMcf)
{
    // mcf's four chains expose enough memory-level parallelism that the
    // 32-byte bus, not raw latency, sets its throughput.
    Workload w = buildMcf({});
    auto run = [&](unsigned busCycles) {
        TimingConfig cfg;
        cfg.mem.busCyclesPerLine = busCycles;
        DebugTarget t(w.program);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
        return cpu.run({});
    };
    RunStats fast = run(2);
    RunStats slow = run(24);
    EXPECT_GT(static_cast<double>(slow.cycles) / fast.cycles, 1.3);
}

TEST(ConfigSweep, TinyICacheHurtsGcc)
{
    Workload w = buildGcc({});
    auto run = [&](uint64_t icacheBytes) {
        TimingConfig cfg;
        cfg.mem.l1i.sizeBytes = icacheBytes;
        DebugTarget t(w.program);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
        return cpu.run({});
    };
    RunStats big = run(64 * 1024);
    RunStats tiny = run(2 * 1024);
    EXPECT_GT(tiny.cycles, big.cycles * 11 / 10);
}

/** Parameterized: every (width, robSize) combination completes with
 *  identical architectural results. */
class GeometryGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(GeometryGrid, SameArchitecturalOutcome)
{
    auto [width, rob] = GetParam();
    TimingConfig cfg;
    cfg.width = width;
    cfg.intAlus = width;
    cfg.robSize = rob;
    cfg.rsSize = rob > 16 ? rob / 2 : rob;

    Workload w = buildCrafty({});
    DebugTarget t(w.program);
    t.load();
    StreamEnv env;
    env.sink = &t.sink;
    TimingCpu cpu(t.arch, t.mem, &t.engine, env, cfg);
    RunStats s = cpu.run({});
    EXPECT_EQ(s.halt, HaltReason::Exited);
    // Architectural results are timing-independent.
    ASSERT_EQ(t.sink.marks.size(), 1u);
    static uint64_t expected = 0;
    if (!expected)
        expected = t.sink.marks[0];
    EXPECT_EQ(t.sink.marks[0], expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometryGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(16u, 64u, 128u, 256u)));

/** DISE overhead must shrink as the machine gets wider (bandwidth
 *  slack absorbs the inserted instructions). */
TEST(ConfigSweep, WidthAbsorbsDiseOverhead)
{
    auto overhead = [&](unsigned width) {
        Workload w = buildBzip2({});
        TimingConfig cfg;
        cfg.width = width;
        cfg.intAlus = width;

        DebugTarget base(w.program);
        base.load();
        StreamEnv envB;
        envB.sink = &base.sink;
        TimingCpu cpuB(base.arch, base.mem, &base.engine, envB, cfg);
        uint64_t baseCycles = cpuB.run({}).cycles;

        DebugTarget t(w.program);
        DebuggerOptions o;
        o.backend = BackendKind::Dise;
        Debugger dbg(t, o);
        dbg.watch(w.watch(WatchSel::COLD));
        EXPECT_TRUE(dbg.attach());
        uint64_t dbgCycles = dbg.run(cfg, {}).cycles;
        return static_cast<double>(dbgCycles) / baseCycles;
    };
    double narrow = overhead(2);
    double wide = overhead(8);
    EXPECT_LT(wide, narrow);
}

/** Replacement-table pressure: an engine with a tiny replacement table
 *  still executes correctly (stalls, not wrong answers). */
TEST(ConfigSweep, TinyReplacementTableStillCorrect)
{
    Workload w = buildCrafty({});
    DebugTarget t(w.program);
    DiseEngineConfig ecfg;
    ecfg.replacementTableInsts = 8;
    ecfg.replacementLineInsts = 8;
    ecfg.replacementTableAssoc = 1;
    // Rebuild the engine in-place with the tiny table.
    t.engine.~DiseEngine();
    new (&t.engine) DiseEngine(ecfg);

    DebuggerOptions o;
    o.backend = BackendKind::Dise;
    Debugger dbg(t, o);
    dbg.watch(w.watch(WatchSel::WARM1));
    ASSERT_TRUE(dbg.attach());
    FuncResult r = dbg.runFunctional(100000);
    EXPECT_NE(r.halt, HaltReason::Fault);
    EXPECT_GT(dbg.watchEvents().size(), 0u);
}

} // namespace
} // namespace dise
