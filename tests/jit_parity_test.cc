/**
 * @file
 * Trace-JIT / interpreter parity harness.
 *
 * The determinism contract (jit/trace.hh) says record mode is
 * bit-identical with the trace cache on or off: same stop positions,
 * same µop timestamps, same state digests, same tool state, same
 * interval-replay verification. This harness drives one eventful
 * session script — forward runs, slices, steps, reverse travel, a
 * mid-run tool enable, and a full replay-verify — under every backend
 * three times: cache off, cache on, and cache flipped between verbs.
 * Any divergence in the recorded stop log is a failure.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "cpu/loader.hh"
#include "jit/trace_cache.hh"
#include "session/debug_session.hh"

namespace dise {
namespace {

using namespace reg;

/**
 * A register-only inner loop, hot enough to get traced, under an outer
 * loop that stores to "mark" once per lap — long JIT-friendly
 * stretches punctuated by watch hits.
 */
Program
hotLoopProgram()
{
    Assembler a;
    a.data(layout::DataBase);
    a.label("mark");
    a.quad(0);
    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "mark");
    a.lda(t1, 0, zero);
    a.lda(t3, 0, zero);
    a.label("outer");
    a.stmt(1);
    a.lda(t2, 0, zero);
    a.label("inner");
    a.addq(t3, t2, t3);
    a.addq(t2, 1, t2);
    a.cmplt(t2, 60, t4);
    a.bne(t4, "inner");
    a.label("the_store");
    a.stq(t3, 0, s0);
    a.addq(t1, 1, t1);
    a.cmplt(t1, 6, t4);
    a.bne(t4, "outer");
    a.syscall(SysExit);
    return a.finish("main");
}

enum class JitMode { Off, On, Flip };

/**
 * Run the fixed verb script and record every observable: stop reason,
 * position (µop time, app insts, pc), event identity, and the session
 * digest after each verb; then the tool-state digest and the
 * interval-replay verification. Returns the log for cross-mode diff.
 */
std::vector<std::string>
runScenario(BackendKind kind, JitMode mode, uint64_t *tracedUops)
{
    Program prog = hotLoopProgram();
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 64;
    DebugSession session(prog, o);
    EXPECT_GE(session.setWatch(
                  WatchSpec::scalar("mark", prog.symbol("mark"), 8)),
              0);
    EXPECT_TRUE(session.attach()) << backendName(kind);
    auto jitCfg = [&]() -> TraceJitConfig & {
        return session.target().jit()->config();
    };
    if (mode == JitMode::Off)
        jitCfg().enabled = false;
    auto flip = [&]() {
        if (mode == JitMode::Flip)
            jitCfg().enabled = !jitCfg().enabled;
    };

    std::vector<std::string> log;
    auto rec = [&](const char *verb, const StopInfo &s) {
        std::ostringstream os;
        os << verb << " reason=" << static_cast<int>(s.reason)
           << " time=" << s.time << " insts=" << s.appInsts
           << " pc=" << std::hex << s.pc << " markpc=" << s.mark.pc
           << std::dec << " events=" << session.eventCount()
           << " digest=" << std::hex << session.digest();
        log.push_back(os.str());
    };

    rec("cont1", session.cont());
    flip();
    rec("stepi", session.stepi(7));
    flip();
    rec("cont2", session.cont());
    flip();
    rec("rstep", session.reverseStep(40));
    flip();
    rec("slice", session.contSlice(123));
    flip();
    rec("cont3", session.cont());
    flip();
    std::string err;
    EXPECT_TRUE(session.toolEnable("coverage", {}, &err)) << err;
    rec("cont4", session.cont());
    flip();
    rec("end", session.runToEnd());
    flip();
    rec("rcont", session.reverseContinue());

    std::string report;
    uint64_t toolDigest = 0;
    EXPECT_TRUE(session.toolReport("coverage", &report, &toolDigest,
                                   &err))
        << err;
    {
        std::ostringstream os;
        os << "tool digest=" << std::hex << toolDigest;
        log.push_back(os.str());
    }

    IntervalReplay::Report vr = session.verifyReplay(2);
    EXPECT_TRUE(vr.ok) << backendName(kind) << ": " << vr.error;
    {
        std::ostringstream os;
        os << "verify final=" << std::hex << vr.finalDigest
           << " live=" << vr.liveDigest << " digest=" << session.digest()
           << std::dec << " marks=" << vr.marksVerified;
        log.push_back(os.str());
    }

    if (tracedUops)
        *tracedUops = session.target().jit()->stats().tracedUops;
    return log;
}

class JitParity : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(JitParity, TraceOnOffAndFlipConverge)
{
    BackendKind kind = GetParam();
    uint64_t traced = 0;
    std::vector<std::string> off = runScenario(kind, JitMode::Off,
                                               nullptr);
    std::vector<std::string> on = runScenario(kind, JitMode::On,
                                              &traced);
    std::vector<std::string> flip = runScenario(kind, JitMode::Flip,
                                                nullptr);
    ASSERT_EQ(off.size(), on.size());
    ASSERT_EQ(off.size(), flip.size());
    for (size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i], on[i])
            << backendName(kind) << " diverged (trace on) at step " << i;
        EXPECT_EQ(off[i], flip[i])
            << backendName(kind) << " diverged (flip) at step " << i;
    }
    // The on-leg must actually have exercised the trace cache, or the
    // parity above proves nothing.
    EXPECT_GT(traced, 0u) << backendName(kind);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, JitParity,
                         ::testing::Values(BackendKind::Dise,
                                           BackendKind::SingleStep,
                                           BackendKind::VirtualMemory,
                                           BackendKind::HardwareReg,
                                           BackendKind::Rewrite));

} // namespace
} // namespace dise
