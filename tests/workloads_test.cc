/**
 * @file
 * Workload tests: every kernel runs to completion deterministically,
 * its Table 1/Table 2 calibration lands in band, and the metadata the
 * experiments rely on (watchpoint addresses, multi-watch sets, page
 * co-location) is sound. Bands are deliberately generous: the paper's
 * conclusions depend on ordering and magnitude classes, not third
 * digits.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace dise {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
  protected:
    ExperimentRunner runner_;
};

TEST_P(WorkloadTest, RunsToCompletion)
{
    auto sum = runner_.functionalSummary(GetParam());
    EXPECT_GT(sum.appInsts, 50000u);
    EXPECT_GT(sum.stores, 1000u);
}

TEST_P(WorkloadTest, Deterministic)
{
    const Workload &w = runner_.workload(GetParam());
    DebugTarget t1(w.program), t2(w.program);
    t1.load();
    t2.load();
    StreamEnv e1, e2;
    e1.sink = &t1.sink;
    e2.sink = &t2.sink;
    FuncCpu c1(t1.arch, t1.mem, &t1.engine, e1);
    FuncCpu c2(t2.arch, t2.mem, &t2.engine, e2);
    FuncResult r1 = c1.run();
    FuncResult r2 = c2.run();
    EXPECT_EQ(r1.appInsts, r2.appInsts);
    EXPECT_EQ(t1.sink.marks, t2.sink.marks);
}

TEST_P(WorkloadTest, WatchAddressesResolved)
{
    const Workload &w = runner_.workload(GetParam());
    EXPECT_NE(w.hotAddr, 0u);
    EXPECT_NE(w.warm1Addr, 0u);
    EXPECT_NE(w.warm2Addr, 0u);
    EXPECT_NE(w.coldAddr, 0u);
    EXPECT_NE(w.ptrAddr, 0u);
    EXPECT_NE(w.rangeBase, 0u);
    EXPECT_GE(w.rangeLen, 64u);
    // The INDIRECT pointer aliases HOT's storage (Table 2 note).
    DebugTarget t(w.program);
    t.load();
    EXPECT_EQ(t.mem.read(w.ptrAddr, 8), w.hotAddr);
}

TEST_P(WorkloadTest, FrequencyOrderingHolds)
{
    auto rows = runner_.measureFrequencies(GetParam());
    // HOT is the hottest scalar; WARM1 >= WARM2 >= COLD.
    EXPECT_GT(rows[WatchSel::HOT].per100k,
              rows[WatchSel::WARM1].per100k);
    EXPECT_GE(rows[WatchSel::WARM1].per100k,
              rows[WatchSel::WARM2].per100k);
    EXPECT_GE(rows[WatchSel::WARM2].per100k,
              rows[WatchSel::COLD].per100k);
    // INDIRECT refers to the same storage as HOT.
    EXPECT_DOUBLE_EQ(rows[WatchSel::INDIRECT].per100k,
                     rows[WatchSel::HOT].per100k);
}

TEST_P(WorkloadTest, ScaleGrowsWork)
{
    HarnessOptions big;
    big.scale = 2;
    ExperimentRunner bigger(big);
    auto s1 = runner_.functionalSummary(GetParam());
    auto s2 = bigger.functionalSummary(GetParam());
    EXPECT_GT(s2.appInsts, s1.appInsts + s1.appInsts / 2);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()));

// ---------------------------------------------- per-benchmark bands

TEST(Calibration, StoreDensities)
{
    ExperimentRunner run;
    auto band = [&](const std::string &name, double lo, double hi) {
        double d = run.functionalSummary(name).storeDensity * 100.0;
        EXPECT_GE(d, lo) << name;
        EXPECT_LE(d, hi) << name;
    };
    // Paper: 19.8 / 10.8 / 9.68 / 16.2 / 13.7 / 17.6.
    band("bzip2", 14, 26);
    band("crafty", 6, 15);
    band("gcc", 5, 13);
    band("mcf", 11, 24);
    band("twolf", 5, 18);
    band("vortex", 6, 22);
}

TEST(Calibration, IpcClasses)
{
    ExperimentRunner run;
    double bzip2 = run.baseline("bzip2").ipc();
    double crafty = run.baseline("crafty").ipc();
    double gcc = run.baseline("gcc").ipc();
    double mcf = run.baseline("mcf").ipc();
    double twolf = run.baseline("twolf").ipc();
    double vortex = run.baseline("vortex").ipc();
    // mcf is the memory-bound outlier (paper: 0.33).
    EXPECT_LT(mcf, 1.0);
    EXPECT_LT(mcf, twolf);
    EXPECT_LT(mcf, gcc);
    // The ALU-dense kernels run near machine width.
    EXPECT_GT(bzip2, 2.0);
    EXPECT_GT(crafty, 2.0);
    EXPECT_GT(vortex, 1.5);
    // The branchy/footprint kernels sit in the middle.
    EXPECT_GT(gcc, 0.9);
    EXPECT_LT(gcc, bzip2);
    EXPECT_GT(twolf, 0.7);
    EXPECT_LT(twolf, crafty);
}

TEST(Calibration, HotSilentStoreFractions)
{
    ExperimentRunner run;
    auto silent = [&](const std::string &name) {
        return run.measureFrequencies(name)[WatchSel::HOT].silentPct;
    };
    // Paper Section 5.1: >=50% silent for all HOT benchmarks save
    // bzip2.
    EXPECT_LT(silent("bzip2"), 10);
    EXPECT_GE(silent("crafty"), 45);
    EXPECT_GE(silent("mcf"), 50);
    EXPECT_GE(silent("twolf"), 50);
    EXPECT_GE(silent("vortex"), 50);
}

TEST(Calibration, CodeFootprints)
{
    ExperimentRunner run;
    auto kb = [&](const std::string &name) {
        return run.workload(name).program.textWords() * 4.0 / 1024.0;
    };
    // gcc carries the large static footprint (Figure 5's worst case);
    // bzip2/crafty/mcf stay small.
    EXPECT_GT(kb("gcc"), 12.0);
    EXPECT_LT(kb("bzip2"), 4.0);
    EXPECT_LT(kb("crafty"), 4.0);
    EXPECT_LT(kb("mcf"), 4.0);
    EXPECT_GT(kb("gcc"), kb("twolf"));
}

TEST(Calibration, MultiWatchSetsAvailable)
{
    ExperimentRunner run;
    for (const std::string name : {"crafty", "gcc", "vortex"}) {
        const Workload &w = run.workload(name);
        auto specs = w.multiWatch(16);
        ASSERT_EQ(specs.size(), 16u) << name;
        // All scalars, all distinct quads (hardware-register friendly).
        std::set<Addr> quads;
        for (const auto &s : specs) {
            EXPECT_EQ(s.kind, WatchKind::Scalar);
            quads.insert(s.addr & ~7ull);
        }
        EXPECT_EQ(quads.size(), 16u) << name;
    }
}

TEST(Calibration, RangeWatchpointFrequencies)
{
    ExperimentRunner run;
    auto rows = run.measureFrequencies("gcc");
    // gcc's RANGE (the cost array) is by far its hottest watchpoint.
    EXPECT_GT(rows[WatchSel::RANGE].per100k, 1000);
    auto mcfRows = run.measureFrequencies("mcf");
    EXPECT_DOUBLE_EQ(mcfRows[WatchSel::RANGE].per100k, 0.0);
}

} // namespace
} // namespace dise
