/**
 * @file
 * Crash-recovery smoke: the durable-store CI job.
 *
 * Forks a real rsp_server with --store-dir, drives one session per
 * watchpoint backend over TCP (watch, cont to the hit, a few steps,
 * session-persist), then SIGKILLs the daemon while a cont job is in
 * flight — no orderly shutdown, no flush. A second daemon started on
 * the same store directory must recover every persisted session:
 * session-select resurrects each one by rebuild-replay, and the smoke
 * verifies position and state digest are bit-identical to what the
 * dead server reported. Exits non-zero on any mismatch or on a server
 * that fails to come back.
 *
 * Build & run:  ./build/crash_recovery_smoke [--server ./rsp_server]
 */

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "persist/vfs.hh"
#include "session/debug_session.hh"
#include "session/protocol.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

int failures = 0;

#define CHECK(cond, ...)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
            std::fprintf(stderr, __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                 \
            ++failures;                                                 \
        }                                                               \
    } while (0)

/** Line-oriented typed-wire client (same protocol as the tests). */
class Wire
{
  public:
    ~Wire() { close(); }

    bool
    connectTo(uint16_t port, unsigned attempts = 100)
    {
        for (unsigned i = 0; i < attempts; ++i) {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd_ < 0)
                return false;
            timeval tv{};
            tv.tv_sec = 30;
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(port);
            if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                return true;
            close();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        return false;
    }

    bool
    roundTrip(const std::string &line, Response &resp)
    {
        if (!sendLine(line))
            return false;
        for (;;) {
            size_t nl;
            while ((nl = buf_.find('\n')) == std::string::npos) {
                char chunk[4096];
                ssize_t n = ::read(fd_, chunk, sizeof chunk);
                if (n <= 0)
                    return false;
                buf_.append(chunk, static_cast<size_t>(n));
            }
            std::string reply = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (reply.rfind("event", 0) == 0)
                continue; // async pushes are not interesting here
            return decodeResponse(reply, resp);
        }
    }

    bool
    roundTripOk(const std::string &line, Response &resp)
    {
        return roundTrip(line, resp) && resp.ok();
    }

    /** Fire a request without waiting for its response — used to put
     *  a job in flight right before the SIGKILL. */
    bool
    sendLine(const std::string &line)
    {
        std::string out = line + "\n";
        return ::write(fd_, out.data(), out.size()) ==
               static_cast<ssize_t>(out.size());
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

pid_t
spawnServer(const std::string &exe, uint16_t port,
            const std::string &storeDir)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::string portStr = std::to_string(port);
    ::execl(exe.c_str(), exe.c_str(), "--port", portStr.c_str(),
            "--store-dir", storeDir.c_str(), "--max-sessions", "8",
            static_cast<char *>(nullptr));
    std::fprintf(stderr, "cannot exec %s\n", exe.c_str());
    ::_exit(127);
}

struct Persisted
{
    const char *backend;
    uint64_t id = 0;
    uint64_t appInsts = 0;
    uint64_t digest = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string exe = "./rsp_server";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--server" && i + 1 < argc)
            exe = argv[++i];
    }
    uint16_t port = static_cast<uint16_t>(
        30000 + (::getpid() % 10000) * 2);
    std::string storeDir = "crash_smoke_store_" +
                           std::to_string(static_cast<long>(::getpid()));

    Program demo = buildHeisenbugDemo();
    Addr watchAddr = demo.symbol("directory");
    const char *backends[] = {"dise", "single-step", "vm", "hwreg",
                              "rewrite"};

    // ---- phase 1: populate the store through a live daemon --------
    pid_t first = spawnServer(exe, port, storeDir);
    CHECK(first > 0, "fork failed");

    std::vector<Persisted> sessions;
    Wire wire;
    CHECK(wire.connectTo(port), "first server never came up");
    unsigned seq = 1;
    for (const char *backend : backends) {
        Persisted p;
        p.backend = backend;
        Response resp;
        char line[128];
        std::snprintf(line, sizeof line,
                      "session-create seq=%u name=demo backend=%s",
                      seq++, backend);
        CHECK(wire.roundTripOk(line, resp), "%s: create failed: %s",
              backend, resp.error.c_str());
        p.id = resp.value;

        Request setw;
        setw.kind = RequestKind::SetWatch;
        setw.seq = seq++;
        setw.watch = WatchSpec::scalar("w", watchAddr, 8);
        CHECK(wire.roundTripOk(encodeRequest(setw), resp),
              "%s: set-watch failed: %s", backend, resp.error.c_str());

        std::snprintf(line, sizeof line, "cont seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp), "%s: cont failed: %s",
              backend, resp.error.c_str());
        CHECK(resp.hasStop, "%s: cont returned no stop", backend);
        std::snprintf(line, sizeof line, "stepi seq=%u count=3",
                      seq++);
        CHECK(wire.roundTripOk(line, resp), "%s: stepi failed: %s",
              backend, resp.error.c_str());

        // Crash-consistent image of the watch-hit+3 position.
        std::snprintf(line, sizeof line, "session-persist seq=%u",
                      seq++);
        CHECK(wire.roundTripOk(line, resp),
              "%s: session-persist failed: %s", backend,
              resp.error.c_str());
        p.digest = resp.value;
        std::snprintf(line, sizeof line, "stats seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp), "%s: stats failed",
              backend);
        p.appInsts = resp.stats.appInsts;
        std::printf("persisted %-12s session %llu @ %llu insts "
                    "(digest %016llx)\n",
                    backend, static_cast<unsigned long long>(p.id),
                    static_cast<unsigned long long>(p.appInsts),
                    static_cast<unsigned long long>(p.digest));
        sessions.push_back(p);
    }

    // ---- phase 2: SIGKILL with a job in flight --------------------
    // The last-created session is still selected; launch a cont and
    // kill the daemon before it can finish. Nothing after the persist
    // images reaches the store — recovery must cope with a store that
    // is simply *older* than the moment of death.
    char contLine[32];
    std::snprintf(contLine, sizeof contLine, "cont seq=%u", seq++);
    CHECK(wire.sendLine(contLine), "in-flight cont send failed");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    CHECK(::kill(first, SIGKILL) == 0, "SIGKILL failed");
    int status = 0;
    ::waitpid(first, &status, 0);
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "first server did not die from SIGKILL");
    wire.close();
    std::printf("killed pid %ld mid-run; restarting on the same "
                "store\n", static_cast<long>(first));

    // ---- phase 3: restart on the same store, verify resurrection --
    uint16_t port2 = static_cast<uint16_t>(port + 1);
    pid_t second = spawnServer(exe, port2, storeDir);
    CHECK(second > 0, "second fork failed");
    Wire wire2;
    CHECK(wire2.connectTo(port2), "second server never came up");

    Response resp;
    CHECK(wire2.roundTripOk("server-stats seq=1", resp),
          "server-stats failed");
    CHECK(resp.server.hibernated == sessions.size(),
          "recovered %llu sessions, expected %zu",
          static_cast<unsigned long long>(resp.server.hibernated),
          sessions.size());

    seq = 2;
    for (const Persisted &p : sessions) {
        char line[128];
        std::snprintf(line, sizeof line,
                      "session-select seq=%u session=%llu", seq++,
                      static_cast<unsigned long long>(p.id));
        CHECK(wire2.roundTripOk(line, resp),
              "%s: resurrection failed: %s", p.backend,
              resp.error.c_str());
        std::snprintf(line, sizeof line, "stats seq=%u", seq++);
        CHECK(wire2.roundTripOk(line, resp), "%s: stats failed",
              p.backend);
        CHECK(resp.stats.appInsts == p.appInsts,
              "%s: position drifted (%llu != %llu)", p.backend,
              static_cast<unsigned long long>(resp.stats.appInsts),
              static_cast<unsigned long long>(p.appInsts));
        std::snprintf(line, sizeof line, "session-persist seq=%u",
                      seq++);
        CHECK(wire2.roundTripOk(line, resp),
              "%s: re-persist failed: %s", p.backend,
              resp.error.c_str());
        CHECK(resp.value == p.digest,
              "%s: digest mismatch after resurrection "
              "(%016llx != %016llx)",
              p.backend, static_cast<unsigned long long>(resp.value),
              static_cast<unsigned long long>(p.digest));
        std::snprintf(line, sizeof line, "replay-verify seq=%u count=2",
                      seq++);
        CHECK(wire2.roundTripOk(line, resp),
              "%s: replay-verify failed: %s", p.backend,
              resp.error.c_str());
        std::printf("resurrected %-12s session %llu @ %llu insts — "
                    "digest matches\n",
                    p.backend, static_cast<unsigned long long>(p.id),
                    static_cast<unsigned long long>(p.appInsts));
    }
    wire2.close();
    ::kill(second, SIGTERM);
    ::waitpid(second, &status, 0);

    // Scratch-store cleanup (best effort).
    persist::RealVfs vfs;
    std::vector<std::string> names;
    if (vfs.list(storeDir, names))
        for (const std::string &n : names)
            vfs.remove(storeDir + "/" + n);

    if (failures) {
        std::fprintf(stderr, "crash-recovery smoke: %d FAILURE(S)\n",
                     failures);
        return 1;
    }
    std::printf("crash-recovery smoke: PASS (%zu backends, "
                "kill -9 mid-run, bit-identical resurrection)\n",
                sessions.size());
    return 0;
}
