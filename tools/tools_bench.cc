/**
 * @file
 * Debug-tool overhead benchmark: what does "leaving the sanitizer on"
 * actually cost?
 *
 * Runs one workload to completion under a plain session (the
 * baseline), then once per debug tool, then with all five tools
 * armed, measuring wall time each way (best-of-N reps so scheduler
 * noise does not masquerade as tool cost). Overhead is reported per
 * tool as a percentage over the baseline run. memtrace is measured
 * twice — suppress=1 and suppress=0 — to put a number on the
 * same-address redundancy suppression: the suppressed run must both
 * elide accesses (suppressed counter > 0) and be cheaper than the
 * full-trace run.
 *
 * Emits BENCH_tools.json:
 *   ./build/tools_bench --out BENCH_tools.json
 *   ./build/tools_bench --quick        # CI smoke (small work items)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "session/debug_session.hh"
#include "tools/toolset.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

using ToolSpec = std::pair<std::string, tools::ToolSet::Config>;

struct RunResult
{
    std::string config;      ///< row label in the JSON
    double wallMs = 0;       ///< best-of-reps wall time
    double toolMs = 0;       ///< best-of-reps time inside tool bodies
    double overheadPct = 0;  ///< vs the baseline row
    uint64_t appInsts = 0;
    uint64_t uopsSeen = 0;   ///< armed µops observed by the tools
    uint64_t checks = 0;
    uint64_t suppressed = 0;
    uint64_t findings = 0;
};

/** Drive @p workload to completion with @p armed tools enabled,
 *  @p reps times; keep the fastest wall time and the (identical
 *  across reps — the tools are deterministic) counters of the last. */
RunResult
runConfig(const std::string &label, const Program &prog,
          BackendKind backend, const std::vector<ToolSpec> &armed,
          unsigned reps)
{
    RunResult r;
    r.config = label;
    r.wallMs = 1e30;
    r.toolMs = armed.empty() ? 0 : 1e30;
    for (unsigned rep = 0; rep < reps; ++rep) {
        SessionOptions opts;
        opts.debugger.backend = backend;
        opts.timeTravel.checkpointInterval = 1u << 20;
        DebugSession session(prog, opts);
        DISE_ASSERT(session.attach(), "bench attach failed");
        for (const ToolSpec &t : armed) {
            std::string err;
            DISE_ASSERT(session.toolEnable(t.first, t.second, &err),
                        "bench enable ", t.first, " failed: ", err);
        }
        double t0 = nowMs();
        StopInfo stop = session.runToEnd();
        double t1 = nowMs();
        DISE_ASSERT(stop.reason == StopReason::Halted,
                    "bench run did not halt (reason ",
                    static_cast<int>(stop.reason), ")");
        r.wallMs = std::min(r.wallMs, t1 - t0);
        if (!armed.empty())
            r.toolMs = std::min(
                r.toolMs,
                session.debugger().backend().tools().toolNs() / 1e6);
        r.appInsts = session.stats().appInsts;
        r.uopsSeen = 0;
        r.checks = 0;
        r.suppressed = 0;
        r.findings = 0;
        for (const tools::ToolStatsRow &row :
             session.debugger().backend().tools().statsRows()) {
            r.uopsSeen = std::max(r.uopsSeen, row.uopsSeen);
            r.checks += row.checks;
            r.suppressed += row.suppressed;
            r.findings += row.findings;
        }
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out = "BENCH_tools.json";
    // bzip2 re-touches the same granules heavily (~65% of accesses),
    // which is the regime memtrace's suppression exists for.
    std::string workload = "bzip2";
    BackendKind backend = BackendKind::Dise;
    unsigned reps = 0;
    unsigned scale = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out")
            out = next();
        else if (arg == "--workload")
            workload = next();
        else if (arg == "--reps")
            reps = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--scale")
            scale = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--backend") {
            if (!parseBackendToken(next(), backend))
                fatal("unknown backend");
        } else {
            fatal("unknown option '", arg, "'");
        }
    }
    if (!reps)
        reps = quick ? 2 : 5;
    if (!scale)
        scale = quick ? 1 : 4;

    Program prog = buildWorkload(workload, {scale}).program;
    std::printf("tool overhead bench: workload=%s backend=%s scale=%u "
                "reps=%u (best-of)\n",
                workload.c_str(), backendName(backend), scale, reps);

    const std::vector<std::pair<std::string, std::vector<ToolSpec>>>
        configs = {
            {"baseline", {}},
            {"asan", {{"asan", {}}}},
            {"leakcheck", {{"leakcheck", {}}}},
            {"coverage", {{"coverage", {}}}},
            {"memtrace", {{"memtrace", {{"suppress", "1"}}}}},
            {"memtrace-nosuppress",
             {{"memtrace", {{"suppress", "0"}}}}},
            {"addrleak", {{"addrleak", {}}}},
            {"all",
             {{"asan", {}},
              {"leakcheck", {}},
              {"coverage", {}},
              {"memtrace", {{"suppress", "1"}}},
              {"addrleak", {}}}},
        };

    std::vector<RunResult> results;
    try {
        for (const auto &cfg : configs) {
            RunResult r = runConfig(cfg.first, prog, backend,
                                    cfg.second, reps);
            if (!results.empty() && results.front().wallMs > 0)
                r.overheadPct = (r.wallMs / results.front().wallMs -
                                 1.0) * 100.0;
            results.push_back(r);
            std::printf("  %-20s %8.2f ms  %+6.1f%%  tool %7.2f ms  "
                        "checks=%llu suppressed=%llu findings=%llu\n",
                        r.config.c_str(), r.wallMs, r.overheadPct,
                        r.toolMs,
                        static_cast<unsigned long long>(r.checks),
                        static_cast<unsigned long long>(r.suppressed),
                        static_cast<unsigned long long>(r.findings));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench failed: %s\n", e.what());
        return 1;
    }

    const RunResult *mtOn = nullptr, *mtOff = nullptr;
    for (const RunResult &r : results) {
        if (r.config == "memtrace")
            mtOn = &r;
        if (r.config == "memtrace-nosuppress")
            mtOff = &r;
    }
    // Compared on time *inside the tool bodies* (ToolSet::toolNs):
    // end-to-end wall is dominated by µop interpretation, whose
    // run-to-run noise swamps the digest-and-ring work suppression
    // elides. The body clock isolates exactly the work that differs.
    bool suppressionWins = mtOn->toolMs <= mtOff->toolMs;
    std::printf("  memtrace suppression: %llu of %llu accesses elided, "
                "%s (tool body %.2f vs %.2f ms)\n",
                static_cast<unsigned long long>(mtOn->suppressed),
                static_cast<unsigned long long>(mtOn->checks),
                suppressionWins ? "cheaper than full trace"
                                : "NOT cheaper this run",
                mtOn->toolMs, mtOff->toolMs);
    if (mtOn->suppressed == 0) {
        std::fprintf(stderr, "bench failed: memtrace suppression "
                             "elided nothing\n");
        return 1;
    }

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f)
        fatal("cannot write ", out);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"tools\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n", workload.c_str());
    std::fprintf(f, "  \"backend\": \"%s\",\n", backendName(backend));
    std::fprintf(f, "  \"scale\": %u,\n", scale);
    std::fprintf(f, "  \"reps\": %u,\n", reps);
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::fprintf(
            f,
            "    {\"config\": \"%s\", \"wall_ms\": %g, "
            "\"tool_ms\": %g, "
            "\"overhead_pct\": %g, \"app_insts\": %llu, "
            "\"uops_seen\": %llu, \"checks\": %llu, "
            "\"suppressed\": %llu, \"findings\": %llu}%s\n",
            r.config.c_str(), r.wallMs, r.toolMs, r.overheadPct,
            static_cast<unsigned long long>(r.appInsts),
            static_cast<unsigned long long>(r.uopsSeen),
            static_cast<unsigned long long>(r.checks),
            static_cast<unsigned long long>(r.suppressed),
            static_cast<unsigned long long>(r.findings),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"memtrace_suppression\": {\"suppressed\": %llu, "
        "\"checks\": %llu, \"tool_ms_on\": %g, \"tool_ms_off\": %g, "
        "\"wall_ms_on\": %g, \"wall_ms_off\": %g, "
        "\"suppression_wins\": %s}\n",
        static_cast<unsigned long long>(mtOn->suppressed),
        static_cast<unsigned long long>(mtOn->checks), mtOn->toolMs,
        mtOff->toolMs, mtOn->wallMs, mtOff->wallMs,
        suppressionWins ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
