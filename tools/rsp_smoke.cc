/**
 * @file
 * Scripted GDB-RSP client: the CI smoke job.
 *
 * For each of the five watchpoint backends, starts an RspServer on a
 * loopback port, connects over real TCP, and drives one debugging
 * session — qSupported handshake, Z2 watchpoint insert, `c` to the
 * first two hits, `bc` back across the second, `bs`, a
 * `vCont?`/`vCont;s`/`vCont;c` round-trip, a `qXfer:features:read`
 * target description fetch, `m`, detach — verifying every stop
 * location against an in-process DebugSession running the identical
 * scenario. Exits non-zero on any mismatch;
 * every socket read carries a timeout so a hung server fails the job
 * instead of wedging it.
 *
 * Build & run:  ./build/rsp_smoke
 */

#include <cstdio>
#include <thread>

#include "rsp/client.hh"
#include "rsp/server.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

using namespace dise;
using namespace dise::rsp;

namespace {

int failures = 0;

#define CHECK(cond, ...)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
            std::fprintf(stderr, __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                 \
            ++failures;                                                 \
        }                                                               \
    } while (0)

SessionOptions
optionsFor(BackendKind kind)
{
    SessionOptions o;
    o.debugger.backend = kind;
    o.timeTravel.checkpointInterval = 500;
    return o;
}

void
driveBackend(BackendKind kind)
{
    const char *name = backendName(kind);
    Program prog = buildHeisenbugDemo();
    Addr watchAddr = prog.symbol("directory");

    // In-process reference session: identical scenario, typed verbs.
    DebugSession ref(prog, optionsFor(kind));
    ref.setWatch(WatchSpec::scalar("directory", watchAddr, 8));
    if (!ref.attach()) {
        std::printf("%-16s n/a (backend cannot attach)\n", name);
        return;
    }
    StopInfo refHit1 = ref.cont();
    StopInfo refHit2 = ref.cont();
    StopInfo refBack = ref.reverseContinue();
    StopInfo refStep = ref.reverseStep(1);
    CHECK(refHit1.reason == StopReason::Event, "%s: no first hit", name);
    CHECK(refHit2.reason == StopReason::Event, "%s: no second hit",
          name);
    CHECK(refBack.time == refHit1.time,
          "%s: reference bc missed the first hit", name);

    // Wire session: a second, independent target driven over TCP.
    DebugSession session(prog, optionsFor(kind));
    RspServer server(session);
    if (!server.start()) {
        CHECK(false, "%s: server start failed", name);
        return;
    }
    std::thread serving([&] { server.serveOne(); });
    RspClient client;
    if (!client.connectTo(server.port())) {
        CHECK(false, "%s: connect failed", name);
        server.stop(); // unblocks accept() so the join cannot hang
        serving.join();
        return;
    }

    std::string supported = client.exchange("qSupported:hwbreak+");
    CHECK(supported.find("ReverseContinue+") != std::string::npos,
          "%s: qSupported lacks reverse: '%s'", name, supported.c_str());
    CHECK(client.exchange("?") == "S05", "%s: bad initial ?", name);

    char z2[64];
    std::snprintf(z2, sizeof z2, "Z2,%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    CHECK(client.exchange(z2) == "OK", "%s: Z2 rejected", name);

    uint64_t pc1 = 0, pc2 = 0, pcBack = 0, pcStep = 0;
    std::string hit1 = client.exchange("c");
    CHECK(hit1.find("watch:") != std::string::npos,
          "%s: c reply lacks watch: '%s'", name, hit1.c_str());
    CHECK(stopReplyPc(hit1, pc1) && pc1 == refHit1.pc,
          "%s: first hit pc %llx != reference %llx", name,
          static_cast<unsigned long long>(pc1),
          static_cast<unsigned long long>(refHit1.pc));

    std::string hit2 = client.exchange("c");
    CHECK(stopReplyPc(hit2, pc2) && pc2 == refHit2.pc,
          "%s: second hit diverged: '%s'", name, hit2.c_str());

    std::string back = client.exchange("bc");
    CHECK(back.find("watch:") != std::string::npos,
          "%s: bc reply lacks watch: '%s'", name, back.c_str());
    CHECK(stopReplyPc(back, pcBack) && pcBack == refBack.pc,
          "%s: bc pc %llx != reference %llx", name,
          static_cast<unsigned long long>(pcBack),
          static_cast<unsigned long long>(refBack.pc));

    std::string step = client.exchange("bs");
    CHECK(stopReplyPc(step, pcStep) && pcStep == refStep.pc,
          "%s: bs diverged: '%s'", name, step.c_str());

    // vCont round-trip: the action form of the same verbs.
    std::string vq = client.exchange("vCont?");
    CHECK(vq == "vCont;c;C;s;S", "%s: vCont? said '%s'", name,
          vq.c_str());
    StopInfo refVs = ref.stepi(1);
    uint64_t pcVs = 0;
    std::string vs = client.exchange("vCont;s");
    CHECK(stopReplyPc(vs, pcVs) && pcVs == refVs.pc,
          "%s: vCont;s diverged: '%s'", name, vs.c_str());
    StopInfo refVc = ref.cont();
    std::string vc = client.exchange("vCont;c");
    if (refVc.reason == StopReason::Event) {
        uint64_t pcVc = 0;
        CHECK(stopReplyPc(vc, pcVc) && pcVc == refVc.pc,
              "%s: vCont;c diverged: '%s'", name, vc.c_str());
    } else {
        CHECK(vc == "W00", "%s: vCont;c at end said '%s'", name,
              vc.c_str());
    }

    // Target description: gdb must not have to guess the registers.
    std::string xml =
        client.exchange("qXfer:features:read:target.xml:0,1000");
    CHECK(!xml.empty() && (xml[0] == 'l' || xml[0] == 'm') &&
              xml.find("<target") != std::string::npos &&
              xml.find("org.dise.sim.core") != std::string::npos,
          "%s: bad target.xml reply: '%.60s'", name, xml.c_str());

    // Memory read-back of the watched cell at matched positions.
    char m[64];
    std::snprintf(m, sizeof m, "m%llx,8",
                  static_cast<unsigned long long>(watchAddr));
    std::string mem = client.exchange(m);
    std::vector<uint8_t> refBytes = ref.readMemory(watchAddr, 8);
    CHECK(mem == toHex(refBytes), "%s: memory diverged: %s vs %s", name,
          mem.c_str(), toHex(refBytes).c_str());

    CHECK(client.exchange("D") == "OK", "%s: detach failed", name);
    serving.join();
    server.stop();

    std::printf("%-16s ok: c@0x%llx c@0x%llx bc@0x%llx bs@0x%llx\n",
                name, static_cast<unsigned long long>(pc1),
                static_cast<unsigned long long>(pc2),
                static_cast<unsigned long long>(pcBack),
                static_cast<unsigned long long>(pcStep));
}

} // namespace

int
main()
{
    std::printf("RSP smoke: attach over TCP, Z2, c, bc on every "
                "backend\n");
    for (BackendKind kind :
         {BackendKind::Dise, BackendKind::SingleStep,
          BackendKind::VirtualMemory, BackendKind::HardwareReg,
          BackendKind::Rewrite})
        driveBackend(kind);
    if (failures) {
        std::fprintf(stderr, "rsp_smoke: %d failure(s)\n", failures);
        return 1;
    }
    std::printf("rsp_smoke: all backends agree with the in-process "
                "session\n");
    return 0;
}
