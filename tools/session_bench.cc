/**
 * @file
 * Multi-session scaling benchmark: aggregate simulated MIPS as a
 * function of concurrent session count.
 *
 * For N in {1, 2, 4, 8}, hosts N independent instrumented sessions
 * (each its own workload instance with a watched variable under the
 * chosen backend) in one SessionManager, drives them all to
 * completion through the JobScheduler from N client threads, and reports
 * total application instructions / wall time. Sessions are
 * share-nothing, so aggregate throughput should scale with
 * min(sessions, slots, cores) — the "many concurrent users" claim,
 * measured.
 *
 * Emits BENCH_sessions.json:
 *   ./build/session_bench --out BENCH_sessions.json
 *   ./build/session_bench --quick        # CI smoke (small work items)
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "persist/store.hh"
#include "persist/vfs.hh"
#include "server/job_scheduler.hh"
#include "server/session_manager.hh"
#include "server/supervisor.hh"
#include "server/wire_client.hh"
#include "workloads/workload.hh"

using namespace dise;
using namespace dise::server;

namespace {

struct RunResult
{
    unsigned sessions = 0;
    uint64_t totalInsts = 0;
    uint64_t totalUops = 0;
    uint64_t totalEvents = 0;
    uint64_t slices = 0;
    double wallMs = 0;
    double mips = 0;
};

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Drive N sessions of @p workload to completion on one scheduler. */
RunResult
runScale(unsigned n, const std::string &workload, BackendKind backend,
         unsigned scale, unsigned slots)
{
    Workload proto = buildWorkload(workload, {scale});
    Addr watchAddr = proto.warm1Addr;

    SessionManagerOptions mopts;
    mopts.maxSessions = n;
    mopts.session.timeTravel.checkpointInterval = 1u << 20;
    SessionManager manager(
        mopts, [&](const std::string &, Program &out) {
            out = buildWorkload(workload, {scale}).program;
            return true;
        });
    JobScheduler queue({slots, 50000});

    std::vector<ManagedSessionPtr> sessions;
    for (unsigned i = 0; i < n; ++i) {
        ManagedSessionPtr ms = manager.create(workload, backend);
        DISE_ASSERT(ms, "admission failed in bench");
        ms->session.setWatch(
            WatchSpec::scalar("WARM1", watchAddr, 8));
        sessions.push_back(std::move(ms));
    }

    uint64_t slices0 = queue.slicesRun();
    double t0 = nowMs();
    std::vector<std::thread> drivers;
    for (auto &ms : sessions)
        drivers.emplace_back([&queue, ms] {
            StopInfo stop;
            std::string err;
            bool ok = queue.drive(*ms, RequestKind::RunToEnd, 0, stop,
                                  &err);
            DISE_ASSERT(ok, "bench session failed: ", err);
        });
    for (auto &t : drivers)
        t.join();
    double t1 = nowMs();

    RunResult r;
    r.sessions = n;
    r.wallMs = t1 - t0;
    r.slices = queue.slicesRun() - slices0;
    for (auto &ms : sessions) {
        r.totalInsts += ms->appInsts.load();
        r.totalUops += ms->uops.load();
        r.totalEvents += ms->events.load();
    }
    r.mips = r.wallMs > 0 ? r.totalInsts / (r.wallMs * 1000.0) : 0;
    return r;
}

struct ShardRunResult
{
    unsigned procs = 0;
    unsigned sessions = 0;
    uint64_t totalInsts = 0;
    double wallMs = 0;
    double mips = 0;
    std::vector<ShardStatsRow> perShard;
};

/** Drive @p nSessions sessions to completion over the wire against a
 *  @p procs-shard fleet (one worker slot per shard, so the knob under
 *  test is process count, not thread count). */
ShardRunResult
runShardScale(unsigned procs, unsigned nSessions,
              const std::string &workload, BackendKind backend,
              unsigned scale)
{
    Workload proto = buildWorkload(workload, {scale});
    Addr watchAddr = proto.warm1Addr;

    ShardSupervisorOptions sopts;
    sopts.shards = procs;
    sopts.worker.maxSessions = nSessions;
    sopts.worker.slots = 1;
    sopts.worker.sliceInsts = 50000;
    sopts.worker.session.timeTravel.checkpointInterval = 1u << 20;
    sopts.factory = [workload, scale](const std::string &,
                                      Program &out) {
        out = buildWorkload(workload, {scale}).program;
        return true;
    };
    ShardSupervisor fleet(sopts);
    DISE_ASSERT(fleet.start(), "bench fleet start failed");

    // One wire connection per session; least-loaded placement spreads
    // them evenly across the shards.
    std::vector<std::unique_ptr<WireClient>> clients;
    for (unsigned i = 0; i < nSessions; ++i) {
        auto c = std::make_unique<WireClient>();
        std::string err;
        DISE_ASSERT(c->connectTo(fleet.port(), &err),
                    "bench fleet connect failed: ", err);
        Request create;
        create.kind = RequestKind::SessionCreate;
        create.name = workload;
        create.backend = backend;
        Response resp;
        DISE_ASSERT(c->call(create, resp) && resp.ok(),
                    "bench session-create failed: ", resp.error);
        Request watch;
        watch.kind = RequestKind::SetWatch;
        watch.watch = WatchSpec::scalar("WARM1", watchAddr, 8);
        DISE_ASSERT(c->call(watch, resp) && resp.ok(),
                    "bench set-watch failed: ", resp.error);
        clients.push_back(std::move(c));
    }

    double t0 = nowMs();
    std::vector<std::thread> drivers;
    for (auto &c : clients)
        drivers.emplace_back([&c] {
            Request run;
            run.kind = RequestKind::RunToEnd;
            run.count = 0;
            Response resp;
            DISE_ASSERT(c->call(run, resp) && resp.ok(),
                        "bench run-to-end failed: ", resp.error);
        });
    for (auto &t : drivers)
        t.join();
    double t1 = nowMs();

    ShardRunResult r;
    r.procs = procs;
    r.sessions = nSessions;
    r.wallMs = t1 - t0;
    r.perShard = fleet.shardStats();
    for (const ShardStatsRow &row : r.perShard)
        r.totalInsts += row.appInsts;
    r.mips = r.wallMs > 0 ? r.totalInsts / (r.wallMs * 1000.0) : 0;
    for (auto &c : clients)
        c->close();
    fleet.stop();
    return r;
}

struct DurableResult
{
    unsigned iters = 0;
    uint64_t appInsts = 0;
    uint64_t imageBytes = 0;
    double hibernateMs = 0; ///< mean export + crash-consistent put
    double resurrectMs = 0; ///< mean load + rebuild-replay + verify
};

/** Unique scratch store directory under $TMPDIR (default /tmp),
 *  emptied and removed on destruction — which also runs when a bench
 *  assertion unwinds, so failed runs leave nothing behind. */
struct ScratchDir
{
    std::string path;
    persist::RealVfs vfs;

    ScratchDir()
    {
        const char *tmp = std::getenv("TMPDIR");
        std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") +
                           "/session_bench_store_XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!::mkdtemp(buf.data()))
            fatal("cannot create scratch dir ", tmpl);
        path = buf.data();
    }

    ~ScratchDir()
    {
        std::vector<std::string> names;
        if (vfs.list(path, names))
            for (const std::string &n : names)
                vfs.remove(path + "/" + n);
        ::rmdir(path.c_str());
    }
};

/** Hibernate/resurrect round-trip latency at a mid-run position. */
DurableResult
runDurable(const std::string &workload, BackendKind backend,
           unsigned scale, unsigned iters)
{
    ScratchDir scratch;
    const std::string &dir = scratch.path;
    persist::RealVfs &vfs = scratch.vfs;
    persist::SessionStore store(dir, vfs);
    DISE_ASSERT(store.open().ok, "bench store open failed");

    Workload proto = buildWorkload(workload, {scale});
    SessionManagerOptions mopts;
    mopts.maxSessions = 2;
    SessionManager manager(
        mopts, [&](const std::string &, Program &out) {
            out = buildWorkload(workload, {scale}).program;
            return true;
        });
    manager.adoptStore(&store);
    JobScheduler queue({1, 50000});

    ManagedSessionPtr ms = manager.create(workload, backend);
    DISE_ASSERT(ms, "bench admission failed");
    ms->session.setWatch(
        WatchSpec::scalar("WARM1", proto.warm1Addr, 8));
    StopInfo stop;
    std::string err;
    DISE_ASSERT(queue.drive(*ms, RequestKind::Cont, 0, stop, &err),
                "bench cont failed: ", err);

    DurableResult r;
    r.iters = iters;
    r.appInsts = ms->appInsts.load();
    uint64_t id = ms->id;
    ms.reset();
    for (unsigned i = 0; i < iters; ++i) {
        double t0 = nowMs();
        DISE_ASSERT(manager.hibernate(id, &err),
                    "bench hibernate failed: ", err);
        double t1 = nowMs();
        ms = manager.find(id, false, &err);
        DISE_ASSERT(ms, "bench resurrect failed: ", err);
        double t2 = nowMs();
        ms.reset();
        r.hibernateMs += t1 - t0;
        r.resurrectMs += t2 - t1;
    }
    r.hibernateMs /= iters;
    r.resurrectMs /= iters;
    r.imageBytes = store.counters().bytes;

    manager.destroy(id);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out = "BENCH_sessions.json";
    std::string workload = "mcf";
    BackendKind backend = BackendKind::Dise;
    unsigned slots = 0;    // hardware concurrency
    unsigned maxProcs = 4; // shard-mode sweep cap (0 = skip)

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out")
            out = next();
        else if (arg == "--workload")
            workload = next();
        else if (arg == "--workers")
            slots = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--procs")
            maxProcs = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--backend") {
            if (!parseBackendToken(next(), backend))
                fatal("unknown backend");
        } else {
            fatal("unknown option '", arg, "'");
        }
    }

    unsigned scale = quick ? 1 : 4;
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("session scaling bench: workload=%s backend=%s "
                "scale=%u cores=%u slots=%s\n",
                workload.c_str(), backendName(backend), scale, hw,
                slots ? std::to_string(slots).c_str() : "hw");

    std::vector<RunResult> results;
    std::vector<ShardRunResult> shardResults;
    DurableResult d;
    // Catch bench assertions (they throw) so ScratchDir unwinds and
    // early failures never leak a scratch store into the filesystem.
    try {
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            RunResult r = runScale(n, workload, backend, scale, slots);
            results.push_back(r);
            std::printf(
                "  %u session(s): %8.1f ms, %llu insts, %llu slices, "
                "aggregate %.2f MIPS (%.2fx vs 1)\n",
                n, r.wallMs,
                static_cast<unsigned long long>(r.totalInsts),
                static_cast<unsigned long long>(r.slices), r.mips,
                results.front().mips > 0
                    ? r.mips / results.front().mips
                    : 0);
        }

        // Process sharding: same 8 sessions, N worker processes of
        // one slot each behind the supervisor port.
        for (unsigned procs = 1; procs <= maxProcs; procs *= 2) {
            ShardRunResult r =
                runShardScale(procs, 8, workload, backend, scale);
            shardResults.push_back(r);
            std::printf(
                "  %u shard proc(s), %u sessions: %8.1f ms, %llu "
                "insts, aggregate %.2f MIPS (%.2fx vs 1 proc)\n",
                r.procs, r.sessions, r.wallMs,
                static_cast<unsigned long long>(r.totalInsts), r.mips,
                shardResults.front().mips > 0
                    ? r.mips / shardResults.front().mips
                    : 0);
            for (const ShardStatsRow &row : r.perShard)
                std::printf("      shard %llu (pid %llu): %llu insts, "
                            "%.2f MIPS\n",
                            static_cast<unsigned long long>(row.index),
                            static_cast<unsigned long long>(row.pid),
                            static_cast<unsigned long long>(
                                row.appInsts),
                            r.wallMs > 0
                                ? row.appInsts / (r.wallMs * 1000.0)
                                : 0);
        }

        d = runDurable(workload, backend, scale, quick ? 3 : 10);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench failed: %s\n", e.what());
        return 1;
    }
    std::printf("  durable round-trip @ %llu insts: hibernate %.2f ms, "
                "resurrect %.2f ms, image %llu bytes (%u iters)\n",
                static_cast<unsigned long long>(d.appInsts),
                d.hibernateMs, d.resurrectMs,
                static_cast<unsigned long long>(d.imageBytes),
                d.iters);

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f)
        fatal("cannot write ", out);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"sessions\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n", workload.c_str());
    std::fprintf(f, "  \"backend\": \"%s\",\n", backendName(backend));
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"slots\": %u,\n",
                 slots ? slots : std::max(2u, hw));
    std::fprintf(f, "  \"slice_insts\": 50000,\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::fprintf(
            f,
            "    {\"sessions\": %u, \"total_app_insts\": %llu, "
            "\"total_uops\": %llu, \"events\": %llu, \"slices\": %llu, "
            "\"wall_ms\": %g, \"aggregate_mips\": %g, "
            "\"scaling_vs_1\": %g}%s\n",
            r.sessions, static_cast<unsigned long long>(r.totalInsts),
            static_cast<unsigned long long>(r.totalUops),
            static_cast<unsigned long long>(r.totalEvents),
            static_cast<unsigned long long>(r.slices), r.wallMs,
            r.mips,
            results.front().mips > 0 ? r.mips / results.front().mips
                                     : 0,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"shard_runs\": [\n");
    for (size_t i = 0; i < shardResults.size(); ++i) {
        const ShardRunResult &r = shardResults[i];
        std::fprintf(
            f,
            "    {\"procs\": %u, \"sessions\": %u, "
            "\"slots_per_shard\": 1, \"total_app_insts\": %llu, "
            "\"wall_ms\": %g, \"aggregate_mips\": %g, "
            "\"scaling_vs_1proc\": %g, \"per_shard\": [",
            r.procs, r.sessions,
            static_cast<unsigned long long>(r.totalInsts), r.wallMs,
            r.mips,
            shardResults.front().mips > 0
                ? r.mips / shardResults.front().mips
                : 0);
        for (size_t k = 0; k < r.perShard.size(); ++k) {
            const ShardStatsRow &row = r.perShard[k];
            std::fprintf(
                f,
                "%s{\"shard\": %llu, \"pid\": %llu, "
                "\"app_insts\": %llu, \"uops\": %llu, \"mips\": %g}",
                k ? ", " : "",
                static_cast<unsigned long long>(row.index),
                static_cast<unsigned long long>(row.pid),
                static_cast<unsigned long long>(row.appInsts),
                static_cast<unsigned long long>(row.totalUops),
                r.wallMs > 0 ? row.appInsts / (r.wallMs * 1000.0)
                             : 0);
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < shardResults.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"durable\": {\"iterations\": %u, \"app_insts\": %llu, "
        "\"image_bytes\": %llu, \"hibernate_ms\": %g, "
        "\"resurrect_ms\": %g}\n",
        d.iters, static_cast<unsigned long long>(d.appInsts),
        static_cast<unsigned long long>(d.imageBytes), d.hibernateMs,
        d.resurrectMs);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
