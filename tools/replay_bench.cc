/**
 * @file
 * Replay-latency benchmark: what reverse execution costs, and what
 * interval-parallel reconstruction buys back.
 *
 * One instrumented session records a workload to completion, then:
 *
 *  - reverse-continue latency: travel back to the last recorded event
 *    (restore + bounded replay — the interactive "go back" a gdb user
 *    feels);
 *  - deep re-travel: reverse to the start of history and replay the
 *    whole explored timeline forward again (the O(trace) case the job
 *    scheduler slices);
 *  - interval-parallel reconstruction: replay every checkpoint
 *    interval on share-nothing replicas with 1 / 2 / 4 workers,
 *    verifying the stitched digests are bit-identical to the live
 *    session (serial 1-worker is the baseline the parallel runs are
 *    compared against).
 *
 * Emits BENCH_replay.json:
 *   ./build/replay_bench --out BENCH_replay.json
 *   ./build/replay_bench --quick        # CI smoke (small work items)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

struct ParallelResult
{
    unsigned workers = 0;
    double wallMs = 0;
    uint64_t digest = 0;
    size_t intervals = 0;
    uint64_t uopsReplayed = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out = "BENCH_replay.json";
    std::string workload = "mcf";
    BackendKind backend = BackendKind::Dise;
    uint64_t cpInterval = 2048;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out")
            out = next();
        else if (arg == "--workload")
            workload = next();
        else if (arg == "--checkpoint-interval")
            cpInterval = static_cast<uint64_t>(std::atoll(next()));
        else if (arg == "--backend") {
            if (!parseBackendToken(next(), backend))
                fatal("unknown backend");
        } else {
            fatal("unknown option '", arg, "'");
        }
    }

    unsigned scale = quick ? 1 : 4;
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("replay bench: workload=%s backend=%s scale=%u "
                "checkpoint-interval=%llu cores=%u\n",
                workload.c_str(), backendName(backend), scale,
                static_cast<unsigned long long>(cpInterval), hw);

    Workload w = buildWorkload(workload, {scale});
    SessionOptions so;
    so.debugger.backend = backend;
    so.timeTravel.checkpointInterval = cpInterval;
    DebugSession s(w.program, so);
    s.setWatch(WatchSpec::scalar("HOT", w.hotAddr, 8));

    // Record the full timeline.
    double t0 = nowMs();
    StopInfo end = s.runToEnd();
    double recordMs = nowMs() - t0;
    DISE_ASSERT(end.reason == StopReason::Halted,
                "workload did not run to completion: ",
                end.describe());
    SessionStats st = s.stats();
    std::printf("  record: %8.1f ms, %llu insts, %zu events, %zu "
                "checkpoints\n",
                recordMs, static_cast<unsigned long long>(st.appInsts),
                st.events, st.checkpoints);

    // Reverse-continue latency: back to the last recorded event (or
    // the start of history when the workload fired none).
    t0 = nowMs();
    StopInfo back = s.reverseContinue();
    double reverseContinueMs = nowMs() - t0;
    std::printf("  reverse-continue: %.3f ms (%s)\n", reverseContinueMs,
                stopReasonName(back.reason));

    // Deep re-travel: to the start of history and forward to the end
    // again — the O(trace) replay the scheduler slices for fairness.
    t0 = nowMs();
    s.reverseStep(st.appInsts);
    double reverseToStartMs = nowMs() - t0;
    t0 = nowMs();
    StopInfo end2 = s.runToEnd();
    double retravelMs = nowMs() - t0;
    DISE_ASSERT(end2.time == end.time, "re-travel missed the end");
    std::printf("  reverse-to-start: %.1f ms; forward re-travel: %.1f "
                "ms\n",
                reverseToStartMs, retravelMs);

    // Interval-parallel reconstruction, 1 / 2 / 4 workers.
    std::vector<ParallelResult> runs;
    for (unsigned workers : {1u, 2u, 4u}) {
        t0 = nowMs();
        IntervalReplay::Report rep = s.verifyReplay(workers);
        double wall = nowMs() - t0;
        DISE_ASSERT(rep.ok, "interval replay failed: ", rep.error);
        DISE_ASSERT(rep.finalDigest == s.digest(),
                    "stitched digest diverged from the live session");
        ParallelResult r;
        r.workers = workers;
        r.wallMs = wall;
        r.digest = rep.finalDigest;
        r.intervals = rep.intervals.size();
        r.uopsReplayed = rep.uopsReplayed;
        runs.push_back(r);
        std::printf("  interval replay x%u: %8.1f ms over %zu "
                    "intervals (%.2fx vs serial)\n",
                    workers, wall, r.intervals,
                    runs.front().wallMs > 0
                        ? runs.front().wallMs / wall
                        : 0);
    }

    // Static partition vs work-stealing at the same worker count: a
    // fixed 4-piece cut (each worker married to one contiguous
    // quarter) against a finer 16-piece cut with in-flight stealing,
    // where a worker that drains its range splits the largest
    // remaining one instead of idling.
    double t1 = nowMs();
    IntervalReplay::Report statRep =
        s.verifyReplay(4, /*pieces=*/4, /*steal=*/false);
    double staticMs = nowMs() - t1;
    DISE_ASSERT(statRep.ok, "static replay failed: ", statRep.error);
    DISE_ASSERT(statRep.finalDigest == s.digest(),
                "static stitched digest diverged");
    t1 = nowMs();
    IntervalReplay::Report stealRep =
        s.verifyReplay(4, /*pieces=*/16, /*steal=*/true);
    double stealMs = nowMs() - t1;
    DISE_ASSERT(stealRep.ok, "stealing replay failed: ",
                stealRep.error);
    DISE_ASSERT(stealRep.finalDigest == s.digest(),
                "stealing stitched digest diverged");
    std::printf("  4-worker partition: static x4 %8.1f ms; stealing "
                "x16 %8.1f ms (%.2fx, %llu steals)\n",
                staticMs, stealMs,
                stealMs > 0 ? staticMs / stealMs : 0,
                static_cast<unsigned long long>(stealRep.steals));

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f)
        fatal("cannot write ", out);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"replay\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n", workload.c_str());
    std::fprintf(f, "  \"backend\": \"%s\",\n", backendName(backend));
    std::fprintf(f, "  \"checkpoint_interval\": %llu,\n",
                 static_cast<unsigned long long>(cpInterval));
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(f, "  \"app_insts\": %llu,\n",
                 static_cast<unsigned long long>(st.appInsts));
    std::fprintf(f, "  \"events\": %zu,\n", st.events);
    std::fprintf(f, "  \"checkpoints\": %zu,\n", st.checkpoints);
    std::fprintf(f, "  \"record_ms\": %g,\n", recordMs);
    std::fprintf(f, "  \"reverse_continue_ms\": %g,\n",
                 reverseContinueMs);
    std::fprintf(f, "  \"reverse_to_start_ms\": %g,\n",
                 reverseToStartMs);
    std::fprintf(f, "  \"forward_retravel_ms\": %g,\n", retravelMs);
    std::fprintf(f, "  \"interval_replay\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const ParallelResult &r = runs[i];
        std::fprintf(
            f,
            "    {\"workers\": %u, \"wall_ms\": %g, \"intervals\": "
            "%zu, \"uops_replayed\": %llu, \"digest\": \"0x%llx\", "
            "\"speedup_vs_serial\": %g}%s\n",
            r.workers, r.wallMs, r.intervals,
            static_cast<unsigned long long>(r.uopsReplayed),
            static_cast<unsigned long long>(r.digest),
            runs.front().wallMs > 0 ? runs.front().wallMs / r.wallMs
                                    : 0,
            i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"work_stealing\": {\"workers\": 4, \"static_pieces\": 4, "
        "\"static_wall_ms\": %g, \"steal_pieces\": %zu, "
        "\"steal_wall_ms\": %g, \"steals\": %llu, "
        "\"speedup_vs_static\": %g}\n",
        staticMs, stealRep.intervals.size(), stealMs,
        static_cast<unsigned long long>(stealRep.steals),
        stealMs > 0 ? staticMs / stealMs : 0);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
