/**
 * @file
 * Debug-tools smoke: the tools CI job.
 *
 * Forks a real rsp_server and, for every watchpoint backend, drives a
 * `tooldemo` session over TCP: enable all five debug tools
 * (tool-enable), run to completion, and fetch every tool's report and
 * state digest (tool-report). The tooldemo workload seeds one of each
 * bug class, so the smoke asserts each tool actually caught its prey —
 * and that reports and digests are bit-identical across all five
 * backends (tools observe retired application instructions only, so
 * the backend must not show through). Also covers:
 *
 *  - server-stats tool.* rollup rows (counters aggregated across
 *    live sessions);
 *  - tool-enable aimed at a *hibernated* session transparently
 *    resurrecting it (no explicit session-select);
 *  - the RSP monitor passthrough: `qRcmd,<hex(tool-list)>` from a
 *    plain GDB-remote connection.
 *
 * Exits non-zero on any mismatch; every socket read carries a timeout
 * so a hung server fails the job instead of wedging it.
 *
 * Build & run:  ./build/tools_smoke [--server ./rsp_server]
 */

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "persist/vfs.hh"
#include "rsp/client.hh"
#include "rsp/packet.hh"
#include "session/protocol.hh"

using namespace dise;

namespace {

int failures = 0;

#define CHECK(cond, ...)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
            std::fprintf(stderr, __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                 \
            ++failures;                                                 \
        }                                                               \
    } while (0)

/** Line-oriented typed-wire client (same protocol as the tests). */
class Wire
{
  public:
    ~Wire() { close(); }

    bool
    connectTo(uint16_t port, unsigned attempts = 100)
    {
        for (unsigned i = 0; i < attempts; ++i) {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd_ < 0)
                return false;
            timeval tv{};
            tv.tv_sec = 30;
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(port);
            if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                return true;
            close();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        return false;
    }

    bool
    roundTrip(const std::string &line, Response &resp)
    {
        std::string out = line + "\n";
        if (::write(fd_, out.data(), out.size()) !=
            static_cast<ssize_t>(out.size()))
            return false;
        for (;;) {
            size_t nl;
            while ((nl = buf_.find('\n')) == std::string::npos) {
                char chunk[4096];
                ssize_t n = ::read(fd_, chunk, sizeof chunk);
                if (n <= 0)
                    return false;
                buf_.append(chunk, static_cast<size_t>(n));
            }
            std::string reply = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (reply.rfind("event", 0) == 0)
                continue; // async pushes are not interesting here
            return decodeResponse(reply, resp);
        }
    }

    bool
    roundTripOk(const std::string &line, Response &resp)
    {
        bool got = roundTrip(line, resp);
        return got && resp.ok();
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

pid_t
spawnServer(const std::string &exe, uint16_t port,
            const std::string &storeDir)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::string portStr = std::to_string(port);
    ::execl(exe.c_str(), exe.c_str(), "--port", portStr.c_str(),
            "--store-dir", storeDir.c_str(), "--max-sessions", "8",
            static_cast<char *>(nullptr));
    std::fprintf(stderr, "cannot exec %s\n", exe.c_str());
    ::_exit(127);
}

const char *kBackends[] = {"dise", "single-step", "vm", "hwreg",
                           "rewrite"};
const char *kTools[] = {"asan", "leakcheck", "coverage", "memtrace",
                        "addrleak"};

/** Per-backend record of what every tool reported. */
struct ToolResult
{
    std::string report;
    uint64_t digest = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string exe = "./rsp_server";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--server" && i + 1 < argc)
            exe = argv[++i];
    }
    uint16_t port = static_cast<uint16_t>(
        31000 + (::getpid() % 10000) * 2);
    std::string storeDir = "tools_smoke_store_" +
                           std::to_string(static_cast<long>(::getpid()));

    pid_t server = spawnServer(exe, port, storeDir);
    CHECK(server > 0, "fork failed");
    Wire wire;
    CHECK(wire.connectTo(port), "server never came up");
    unsigned seq = 1;
    Response resp;

    // ---- every tool x every backend, reports compared pairwise ----
    std::map<std::string, ToolResult> reference; // from the first backend
    for (const char *backend : kBackends) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "session-create seq=%u name=tooldemo backend=%s",
                      seq++, backend);
        CHECK(wire.roundTripOk(line, resp), "%s: create failed: %s",
              backend, resp.error.c_str());

        for (const char *tool : kTools) {
            // memtrace runs with suppression on, as the README advises.
            std::snprintf(line, sizeof line,
                          "tool-enable seq=%u name=%s%s", seq++, tool,
                          std::strcmp(tool, "memtrace") == 0
                              ? " cfg.suppress=1"
                              : "");
            CHECK(wire.roundTripOk(line, resp),
                  "%s: enable %s failed: %s", backend, tool,
                  resp.error.c_str());
        }
        std::snprintf(line, sizeof line, "tool-list seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp), "%s: tool-list failed",
              backend);
        for (const char *tool : kTools)
            CHECK(resp.text.find(std::string(tool) + "*") !=
                      std::string::npos,
                  "%s: tool-list does not mark %s enabled: '%s'",
                  backend, tool, resp.text.c_str());

        std::snprintf(line, sizeof line, "run-to-end seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp), "%s: run failed: %s",
              backend, resp.error.c_str());
        CHECK(resp.hasStop, "%s: run-to-end returned no stop", backend);

        for (const char *tool : kTools) {
            std::snprintf(line, sizeof line,
                          "tool-report seq=%u name=%s", seq++, tool);
            CHECK(wire.roundTripOk(line, resp),
                  "%s: report %s failed: %s", backend, tool,
                  resp.error.c_str());
            CHECK(!resp.text.empty() && resp.value != 0,
                  "%s: %s report empty or digest zero", backend, tool);
            auto it = reference.find(tool);
            if (it == reference.end()) {
                reference[tool] = {resp.text, resp.value};
            } else {
                CHECK(it->second.digest == resp.value,
                      "%s: %s digest %016llx != %s on %s", backend,
                      tool,
                      static_cast<unsigned long long>(resp.value),
                      tool, kBackends[0]);
                CHECK(it->second.report == resp.text,
                      "%s: %s report text diverged from %s", backend,
                      tool, kBackends[0]);
            }
        }
        std::printf("%-12s all five tools enabled, run, reported\n",
                    backend);
    }

    // The seeded bugs, as the first backend saw them (all backends
    // already proved identical above).
    // heap-oob + use-after-free + invalid-free
    CHECK(reference["asan"].report.find("3 findings") !=
              std::string::npos,
          "asan missed a seeded bug: %s",
          reference["asan"].report.c_str());
    CHECK(reference["leakcheck"].report.find("1 live blocks") !=
              std::string::npos,
          "leakcheck leak count wrong: %s",
          reference["leakcheck"].report.c_str());
    CHECK(reference["addrleak"].report.find("1 leaks") !=
              std::string::npos,
          "addrleak sink count wrong: %s",
          reference["addrleak"].report.c_str());
    CHECK(reference["memtrace"].report.find("suppress=1") !=
              std::string::npos,
          "memtrace lost its config: %s",
          reference["memtrace"].report.c_str());

    // ---- server-stats rollup: tool.* rows across live sessions ----
    {
        char line[64];
        std::snprintf(line, sizeof line, "server-stats seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp), "server-stats failed");
        const size_t nBackends =
            sizeof kBackends / sizeof kBackends[0];
        std::map<std::string, tools::ToolStatsRow> rows;
        for (const tools::ToolStatsRow &r : resp.server.tools)
            rows[r.name] = r;
        for (const char *tool : kTools) {
            CHECK(rows.count(tool), "no tool.%s row in server-stats",
                  tool);
            CHECK(rows[tool].uopsSeen > 0, "tool.%s saw no uops", tool);
        }
        // Three asan findings per session (heap-oob, use-after-free,
        // invalid-free).
        CHECK(rows["asan"].findings == 3 * nBackends,
              "asan rollup findings %llu != %zu",
              static_cast<unsigned long long>(rows["asan"].findings),
              3 * nBackends);
        CHECK(rows["memtrace"].suppressed > 0,
              "memtrace rollup shows no suppression");
    }

    // ---- tool-enable on a hibernated session resurrects it --------
    {
        char line[160];
        std::snprintf(line, sizeof line,
                      "session-create seq=%u name=tooldemo backend=dise",
                      seq++);
        CHECK(wire.roundTripOk(line, resp), "6th create failed: %s",
              resp.error.c_str());
        uint64_t id = resp.value;
        std::snprintf(line, sizeof line, "stepi seq=%u count=50",
                      seq++);
        CHECK(wire.roundTripOk(line, resp), "stepi failed: %s",
              resp.error.c_str());
        std::snprintf(line, sizeof line, "session-hibernate seq=%u",
                      seq++);
        CHECK(wire.roundTripOk(line, resp), "hibernate failed: %s",
              resp.error.c_str());
        std::snprintf(line, sizeof line, "server-stats seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp) &&
                  resp.server.hibernated == 1,
              "expected exactly one hibernated session");

        // No session-select: the tool verb itself names the sleeper.
        std::snprintf(line, sizeof line,
                      "tool-enable seq=%u session=%llu name=asan",
                      seq++, static_cast<unsigned long long>(id));
        CHECK(wire.roundTripOk(line, resp),
              "tool-enable on hibernated session failed: %s",
              resp.error.c_str());
        std::snprintf(line, sizeof line, "server-stats seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp) &&
                  resp.server.hibernated == 0,
              "tool-enable did not resurrect the sleeper");
        std::snprintf(line, sizeof line, "run-to-end seq=%u", seq++);
        CHECK(wire.roundTripOk(line, resp),
              "resurrected run failed: %s", resp.error.c_str());
        // The digest differs from the straight-through runs by design
        // (asan armed at inst 50 misses the early allocs) — what must
        // hold is that the resurrected session reports at all.
        std::snprintf(line, sizeof line,
                      "tool-report seq=%u session=%llu name=asan",
                      seq++, static_cast<unsigned long long>(id));
        CHECK(wire.roundTripOk(line, resp) && resp.value != 0 &&
                  resp.text.find("asan:") != std::string::npos,
              "resurrected session's asan report missing");
        std::printf("hibernated session %llu resurrected by "
                    "tool-enable; asan armed and reporting\n",
                    static_cast<unsigned long long>(id));
    }

    // ---- RSP monitor passthrough: qRcmd from a GDB connection -----
    {
        rsp::RspClient gdb;
        CHECK(gdb.connectTo(port), "RSP connect failed");
        std::string cmd = "tool-list";
        std::string hex =
            rsp::toHex(std::vector<uint8_t>(cmd.begin(), cmd.end()));
        std::string reply = gdb.exchange("qRcmd," + hex);
        std::vector<uint8_t> bytes;
        CHECK(rsp::fromHex(reply, bytes),
              "qRcmd reply is not hex: '%s'", reply.c_str());
        std::string text(bytes.begin(), bytes.end());
        CHECK(text.find("asan") != std::string::npos &&
                  text.find("memtrace") != std::string::npos,
              "monitor tool-list incomplete: '%s'", text.c_str());
        gdb.exchange("D");
        gdb.close();
        std::printf("qRcmd monitor passthrough: %s",
                    text.c_str()); // text ends with \n
    }

    wire.close();
    ::kill(server, SIGTERM);
    int status = 0;
    ::waitpid(server, &status, 0);

    // Scratch-store cleanup (best effort).
    persist::RealVfs vfs;
    std::vector<std::string> names;
    if (vfs.list(storeDir, names))
        for (const std::string &n : names)
            vfs.remove(storeDir + "/" + n);
    ::rmdir(storeDir.c_str());

    if (failures) {
        std::fprintf(stderr, "tools smoke: %d FAILURE(S)\n", failures);
        return 1;
    }
    std::printf("tools smoke: PASS (5 tools x 5 backends over the "
                "wire, identical findings everywhere)\n");
    return 0;
}
