/**
 * @file
 * The multi-session debug daemon: one TCP port serving many
 * concurrent targets.
 *
 * Every connecting GDB (or any RSP client) gets its own
 * per-connection session — two gdbs against one daemon debug two
 * independent targets — while typed-wire clients manage shared
 * sessions with the session-* verbs (session-create, session-select,
 * session-destroy, session-list, server-stats). Admission is capped
 * by --max-sessions; execution is round-robined in bounded µop slices
 * across --workers slots.
 *
 *   ./build/rsp_server                          # demo scenario, port 7777
 *   ./build/rsp_server --port 9999 --backend single-step
 *   ./build/rsp_server --workload twolf --max-sessions 32 --workers 8
 *
 * Then, from any number of gdbs:
 *   (gdb) target remote 127.0.0.1:7777
 * or from a wire client (one request per line):
 *   session-create seq=1 name=mcf backend=dise
 *   cont seq=2
 *   server-stats seq=3
 *
 * Observability: --trace-out arms the flight recorder at startup and
 * writes the Chrome trace_event JSON (open it in Perfetto) on clean
 * shutdown (SIGINT/SIGTERM); clients can also drive trace-start /
 * trace-stop / trace-dump and scrape `metrics` over the wire at any
 * time.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "server/server.hh"
#include "server/supervisor.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

/** Self-pipe written by the signal handler: main blocks on the read
 *  end instead of srv.wait(), so a SIGINT/SIGTERM unwinds through the
 *  normal shutdown path (stop, dump trace, exit) instead of killing
 *  the process mid-write. */
int shutdownPipe[2] = {-1, -1};

void
onShutdownSignal(int)
{
    char byte = 1;
    // Best effort; a full pipe means a shutdown is already pending.
    [[maybe_unused]] ssize_t n = ::write(shutdownPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    server::DebugServerOptions opts;
    opts.port = 7777;
    opts.session.timeTravel.checkpointInterval = 1024;
    std::string traceOut;
    uint64_t traceBufferKb = 0;
    unsigned shards = 0;
    unsigned balanceMs = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = static_cast<uint16_t>(std::atoi(next()));
        } else if (arg == "--backend") {
            if (!parseBackendToken(next(), opts.defaultBackend))
                fatal("unknown backend (dise, single-step, vm, hwreg, "
                      "rewrite)");
        } else if (arg == "--workload") {
            opts.defaultWorkload = next();
        } else if (arg == "--max-sessions") {
            opts.maxSessions =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--workers") {
            opts.slots = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--slice") {
            opts.sliceInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--store-dir") {
            opts.storeDir = next();
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--balance-ms") {
            balanceMs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--trace-buffer-kb") {
            traceBufferKb =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--log-level") {
            LogLevel level = LogLevel::Info;
            if (!parseLogLevel(next(), level))
                fatal("unknown log level (error, warn, info, debug)");
            setLogLevel(level);
        } else if (arg == "--chaos-seed") {
            // Probability-armed fault injection across every store
            // primitive and scheduler slice boundary — the daemon's
            // chaos mode (crash-recovery CI uses it).
            static persist::FaultInjector chaos(
                static_cast<uint64_t>(std::atoll(next())));
            for (auto site : {persist::FaultInjector::Site::Open,
                              persist::FaultInjector::Site::Write,
                              persist::FaultInjector::Site::Fsync,
                              persist::FaultInjector::Site::Rename})
                chaos.armProbability(site, 1, 64);
            chaos.armProbability(persist::FaultInjector::Site::Slice,
                                 1, 256);
            opts.faults = &chaos;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --port N          TCP port (default 7777)\n"
                "  --backend NAME    dise | single-step | vm | hwreg | "
                "rewrite (RSP default)\n"
                "  --workload NAME   target for RSP connections "
                "(default: the heisenbug demo)\n"
                "  --max-sessions N  admission cap, 0 = unlimited "
                "(default 8)\n"
                "  --workers N       concurrent execution slots "
                "(default: hardware)\n"
                "  --slice N         app instructions per slice "
                "(default 50000)\n"
                "  --store-dir DIR   durable session store: crash "
                "recovery on start,\n"
                "                    LRU hibernation at the cap\n"
                "  --shards N        fork N worker shard processes "
                "behind the port\n"
                "                    (live migration, crash respawn; "
                "0 = single process)\n"
                "  --balance-ms N    shard load balancer period "
                "(default: off)\n"
                "  --trace-out FILE  arm the flight recorder now; "
                "write Chrome trace\n"
                "                    JSON (Perfetto) on SIGINT/SIGTERM\n"
                "  --trace-buffer-kb N  per-thread trace ring size "
                "(default 256)\n"
                "  --log-level L     error | warn | info | debug "
                "(also: DISE_LOG env)\n"
                "  --chaos-seed N    seeded fault injection on store + "
                "scheduler paths\n"
                "  --verbose         log packets and connections\n");
            return 0;
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }

    // Print the watch candidate for the default target so a gdb user
    // knows where to aim.
    if (opts.defaultWorkload.empty() || opts.defaultWorkload == "demo") {
        Program demo = buildHeisenbugDemo();
        std::printf("RSP sessions serve the heisenbug demo (watch "
                    "candidate: directory @ 0x%llx)\n",
                    static_cast<unsigned long long>(
                        demo.symbol("directory")));
    } else {
        Workload w = buildWorkload(opts.defaultWorkload, {});
        std::printf("RSP sessions serve workload '%s' (HOT variable @ "
                    "0x%llx)\n",
                    opts.defaultWorkload.c_str(),
                    static_cast<unsigned long long>(w.hotAddr));
    }

    // Sharded mode: fork the workers (before any threads exist in
    // this process), then route. The supervisor owns the public port.
    if (shards) {
        server::ShardSupervisorOptions sup;
        sup.port = opts.port;
        sup.shards = shards;
        sup.worker = opts;
        sup.verbose = opts.verbose;
        sup.balanceIntervalMs = balanceMs;
        server::ShardSupervisor fleet(sup);
        if (!fleet.start()) {
            std::fprintf(stderr, "cannot start %u-shard fleet on "
                         "127.0.0.1:%u\n", shards, opts.port);
            return 1;
        }
        std::printf(
            "sharded daemon on 127.0.0.1:%u — %u worker processes "
            "(pids", fleet.port(), fleet.shardCount());
        for (unsigned k = 0; k < fleet.shardCount(); ++k)
            std::printf(" %d", static_cast<int>(fleet.shardPid(k)));
        std::printf(")\n"
                    "  session-migrate session=<id> shard=<k> moves a "
                    "live session between workers\n");
        if (::pipe(shutdownPipe) != 0)
            fatal("cannot create shutdown pipe");
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onShutdownSignal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        char byte;
        while (::read(shutdownPipe[0], &byte, 1) < 0 &&
               errno == EINTR) {
        }
        fleet.stop();
        return 0;
    }

    server::DebugServer srv(opts);
    if (!srv.start()) {
        std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", opts.port);
        return 1;
    }
    std::printf(
        "multi-session daemon on 127.0.0.1:%u — %s backend, cap %u "
        "sessions, %u scheduler workers\n"
        "  gdb -ex 'target remote 127.0.0.1:%u'   (each gdb gets its "
        "own target)\n",
        srv.port(), backendName(opts.defaultBackend), opts.maxSessions,
        srv.scheduler().workers(), srv.port());
    if (!opts.storeDir.empty())
        std::printf("  durable store: %s (%llu hibernated session(s) "
                    "recovered)\n",
                    opts.storeDir.c_str(),
                    static_cast<unsigned long long>(
                        srv.stats().hibernated));

    if (traceOut.empty()) {
        srv.wait();
        return 0;
    }

    // Flight-recorder mode: arm now, block on the self-pipe instead of
    // srv.wait(), and render the dump during orderly shutdown.
    obs::Tracer::instance().arm(
        static_cast<size_t>(traceBufferKb) * 1024);
    std::printf("  flight recorder armed -> %s (%llu KiB/thread)\n",
                traceOut.c_str(),
                static_cast<unsigned long long>(
                    traceBufferKb ? traceBufferKb : 256));
    if (::pipe(shutdownPipe) != 0)
        fatal("cannot create shutdown pipe");
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onShutdownSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    char byte;
    while (::read(shutdownPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::printf("shutting down; writing trace to %s\n",
                traceOut.c_str());
    srv.stop();
    obs::Tracer::instance().disarm();
    std::string json = obs::Tracer::instance().dumpJson();
    std::FILE *f = std::fopen(traceOut.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", traceOut.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %llu bytes of trace (open in "
                "https://ui.perfetto.dev)\n",
                static_cast<unsigned long long>(json.size()));
    return 0;
}
