/**
 * @file
 * Standalone GDB-RSP server: serve a debug session over TCP so a stock
 * gdb (or any RSP client) can attach with `target remote`, set
 * watchpoints, continue, and step backwards through the checkpointed
 * timeline with reverse-continue / reverse-stepi.
 *
 * By default it serves the heisenbug-hunt demo scenario (an
 * out-of-bounds store occasionally tramples directory[0]); --workload
 * serves one of the synthetic SPEC2000-calibrated workloads instead.
 *
 *   ./build/rsp_server                        # demo scenario, port 7777
 *   ./build/rsp_server --port 9999 --backend single-step
 *   ./build/rsp_server --workload twolf --backend dise
 *
 * Then, from gdb:   (gdb) target remote 127.0.0.1:7777
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "rsp/server.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

} // namespace

int
main(int argc, char **argv)
{
    uint16_t port = 7777;
    BackendKind backend = BackendKind::Dise;
    std::string workloadName;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--port") {
            port = static_cast<uint16_t>(std::atoi(next()));
        } else if (arg == "--backend") {
            if (!parseBackendToken(next(), backend))
                fatal("unknown backend (dise, single-step, vm, hwreg, "
                      "rewrite)");
        } else if (arg == "--workload") {
            workloadName = next();
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --port N          TCP port (default 7777)\n"
                "  --backend NAME    dise | single-step | vm | hwreg | "
                "rewrite\n"
                "  --workload NAME   serve a synthetic workload instead "
                "of the demo\n"
                "  --verbose         log every packet\n");
            return 0;
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }

    Program prog;
    Addr suggestedWatch = 0;
    if (workloadName.empty()) {
        prog = buildHeisenbugDemo();
        suggestedWatch = prog.symbol("directory");
        std::printf("serving the heisenbug demo (watch candidate: "
                    "directory @ 0x%llx)\n",
                    static_cast<unsigned long long>(suggestedWatch));
    } else {
        Workload w = buildWorkload(workloadName, {});
        suggestedWatch = w.hotAddr;
        prog = std::move(w.program);
        std::printf("serving workload '%s' (HOT variable @ 0x%llx)\n",
                    workloadName.c_str(),
                    static_cast<unsigned long long>(suggestedWatch));
    }

    SessionOptions opts;
    opts.debugger.backend = backend;
    opts.timeTravel.checkpointInterval = 1024;
    DebugSession session(std::move(prog), opts);

    rsp::RspServerOptions sopts;
    sopts.port = port;
    sopts.verbose = verbose;
    rsp::RspServer server(session, sopts);
    if (!server.start()) {
        std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", port);
        return 1;
    }
    std::printf("%s backend ready; attach with:\n"
                "  gdb -ex 'target remote 127.0.0.1:%u'\n",
                backendName(backend), server.port());
    server.serveOne();
    std::printf("client detached; session stats: %s events\n",
                std::to_string(session.eventCount()).c_str());
    return 0;
}
