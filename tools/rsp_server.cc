/**
 * @file
 * The multi-session debug daemon: one TCP port serving many
 * concurrent targets.
 *
 * Every connecting GDB (or any RSP client) gets its own
 * per-connection session — two gdbs against one daemon debug two
 * independent targets — while typed-wire clients manage shared
 * sessions with the session-* verbs (session-create, session-select,
 * session-destroy, session-list, server-stats). Admission is capped
 * by --max-sessions; execution is round-robined in bounded µop slices
 * across --workers slots.
 *
 *   ./build/rsp_server                          # demo scenario, port 7777
 *   ./build/rsp_server --port 9999 --backend single-step
 *   ./build/rsp_server --workload twolf --max-sessions 32 --workers 8
 *
 * Then, from any number of gdbs:
 *   (gdb) target remote 127.0.0.1:7777
 * or from a wire client (one request per line):
 *   session-create seq=1 name=mcf backend=dise
 *   cont seq=2
 *   server-stats seq=3
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "server/server.hh"
#include "workloads/workload.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    server::DebugServerOptions opts;
    opts.port = 7777;
    opts.session.timeTravel.checkpointInterval = 1024;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = static_cast<uint16_t>(std::atoi(next()));
        } else if (arg == "--backend") {
            if (!parseBackendToken(next(), opts.defaultBackend))
                fatal("unknown backend (dise, single-step, vm, hwreg, "
                      "rewrite)");
        } else if (arg == "--workload") {
            opts.defaultWorkload = next();
        } else if (arg == "--max-sessions") {
            opts.maxSessions =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--workers") {
            opts.slots = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--slice") {
            opts.sliceInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--store-dir") {
            opts.storeDir = next();
        } else if (arg == "--chaos-seed") {
            // Probability-armed fault injection across every store
            // primitive and scheduler slice boundary — the daemon's
            // chaos mode (crash-recovery CI uses it).
            static persist::FaultInjector chaos(
                static_cast<uint64_t>(std::atoll(next())));
            for (auto site : {persist::FaultInjector::Site::Open,
                              persist::FaultInjector::Site::Write,
                              persist::FaultInjector::Site::Fsync,
                              persist::FaultInjector::Site::Rename})
                chaos.armProbability(site, 1, 64);
            chaos.armProbability(persist::FaultInjector::Site::Slice,
                                 1, 256);
            opts.faults = &chaos;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --port N          TCP port (default 7777)\n"
                "  --backend NAME    dise | single-step | vm | hwreg | "
                "rewrite (RSP default)\n"
                "  --workload NAME   target for RSP connections "
                "(default: the heisenbug demo)\n"
                "  --max-sessions N  admission cap, 0 = unlimited "
                "(default 8)\n"
                "  --workers N       concurrent execution slots "
                "(default: hardware)\n"
                "  --slice N         app instructions per slice "
                "(default 50000)\n"
                "  --store-dir DIR   durable session store: crash "
                "recovery on start,\n"
                "                    LRU hibernation at the cap\n"
                "  --chaos-seed N    seeded fault injection on store + "
                "scheduler paths\n"
                "  --verbose         log packets and connections\n");
            return 0;
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }

    // Print the watch candidate for the default target so a gdb user
    // knows where to aim.
    if (opts.defaultWorkload.empty() || opts.defaultWorkload == "demo") {
        Program demo = buildHeisenbugDemo();
        std::printf("RSP sessions serve the heisenbug demo (watch "
                    "candidate: directory @ 0x%llx)\n",
                    static_cast<unsigned long long>(
                        demo.symbol("directory")));
    } else {
        Workload w = buildWorkload(opts.defaultWorkload, {});
        std::printf("RSP sessions serve workload '%s' (HOT variable @ "
                    "0x%llx)\n",
                    opts.defaultWorkload.c_str(),
                    static_cast<unsigned long long>(w.hotAddr));
    }

    server::DebugServer srv(opts);
    if (!srv.start()) {
        std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", opts.port);
        return 1;
    }
    std::printf(
        "multi-session daemon on 127.0.0.1:%u — %s backend, cap %u "
        "sessions, %u scheduler workers\n"
        "  gdb -ex 'target remote 127.0.0.1:%u'   (each gdb gets its "
        "own target)\n",
        srv.port(), backendName(opts.defaultBackend), opts.maxSessions,
        srv.scheduler().workers(), srv.port());
    if (!opts.storeDir.empty())
        std::printf("  durable store: %s (%llu hibernated session(s) "
                    "recovered)\n",
                    opts.storeDir.c_str(),
                    static_cast<unsigned long long>(
                        srv.stats().hibernated));
    srv.wait();
    return 0;
}
