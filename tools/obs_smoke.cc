/**
 * @file
 * Observability smoke: the flight recorder, metrics surface, and
 * trace verbs validated end to end on a real traced multi-session
 * run.
 *
 * Starts an in-process DebugServer (loopback TCP, durable store in a
 * scratch dir), arms the tracer over the wire (trace-start), drives
 * two concurrent sessions through the layers the tracer instruments —
 * scheduler slices, session verbs, reverse travel, interval-parallel
 * replay, store persist/hibernate/resurrect, event push — then
 * trace-stops, reassembles the chunked trace-dump, and checks:
 *
 *  - the dump parses as JSON (full recursive validation, not a grep);
 *  - it contains Chrome trace_event spans from the scheduler,
 *    session, travel, replay, and store layers;
 *  - the `metrics` verb emits Prometheus text exposition with every
 *    mandatory histogram family, and the counts moved.
 *
 * CI artifacts: --trace-out FILE and --metrics-out FILE write the
 * reassembled dump and the exposition for external validation
 * (python3 -m json.tool, grep).
 *
 *   ./build/obs_smoke --trace-out /tmp/trace.json --metrics-out /tmp/m.txt
 */

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "server/server.hh"
#include "session/protocol.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

int failures = 0;

#define CHECK(cond, ...)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
            std::fprintf(stderr, __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                 \
            ++failures;                                                 \
        }                                                               \
    } while (0)

/** Line-oriented typed-wire client (same protocol as the tests). */
class Wire
{
  public:
    ~Wire() { close(); }

    bool
    connectTo(uint16_t port, unsigned attempts = 100)
    {
        for (unsigned i = 0; i < attempts; ++i) {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd_ < 0)
                return false;
            timeval tv{};
            tv.tv_sec = 60;
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(port);
            if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                return true;
            close();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        return false;
    }

    bool
    roundTrip(const std::string &line, Response &resp)
    {
        std::string out = line + "\n";
        if (::write(fd_, out.data(), out.size()) !=
            static_cast<ssize_t>(out.size()))
            return false;
        for (;;) {
            size_t nl;
            while ((nl = buf_.find('\n')) == std::string::npos) {
                char chunk[65536];
                ssize_t n = ::read(fd_, chunk, sizeof chunk);
                if (n <= 0)
                    return false;
                buf_.append(chunk, static_cast<size_t>(n));
            }
            std::string reply = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (reply.rfind("event", 0) == 0)
                continue; // async pushes: drained, not matched
            return decodeResponse(reply, resp);
        }
    }

    bool
    roundTripOk(const std::string &line, Response &resp)
    {
        bool got = roundTrip(line, resp);
        if (!got)
            std::fprintf(stderr, "  (no response to: %s)\n",
                         line.c_str());
        else if (!resp.ok())
            std::fprintf(stderr, "  (error to '%s': %s)\n",
                         line.c_str(), resp.error.c_str());
        return got && resp.ok();
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

// ------------------------------------------------------ JSON validator

/** Minimal recursive-descent JSON parser: validity only, no DOM. The
 *  trace dump must be real JSON, not JSON-shaped — so parse it all. */
class JsonCheck
{
  public:
    explicit JsonCheck(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

    size_t errorAt() const { return pos_; }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

bool
writeFileOrWarn(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string traceOut, metricsOut;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace-out" && i + 1 < argc)
            traceOut = argv[++i];
        else if (arg == "--metrics-out" && i + 1 < argc)
            metricsOut = argv[++i];
    }

    // Scratch store so persist-layer spans show up in the trace.
    char dirTmpl[] = "/tmp/obs_smoke_store_XXXXXX";
    CHECK(::mkdtemp(dirTmpl) != nullptr, "mkdtemp failed");

    server::DebugServerOptions opts;
    opts.port = 0; // ephemeral
    opts.maxSessions = 8;
    opts.slots = 2;
    opts.sliceInsts = 20000;
    opts.storeDir = dirTmpl;
    opts.session.timeTravel.checkpointInterval = 4096;
    server::DebugServer srv(opts);
    CHECK(srv.start(), "server failed to start");

    Program demo = buildHeisenbugDemo();
    char watchAddr[32];
    std::snprintf(watchAddr, sizeof watchAddr, "0x%llx",
                  static_cast<unsigned long long>(
                      demo.symbol("directory")));

    Wire a, b;
    CHECK(a.connectTo(srv.port()), "client A cannot connect");
    CHECK(b.connectTo(srv.port()), "client B cannot connect");

    Response resp;
    unsigned seq = 1;
    auto req = [&](const std::string &verb) {
        return verb + " seq=" + std::to_string(seq++);
    };

    // ---- arm, then drive a real two-session run -------------------
    CHECK(a.roundTripOk(req("trace-start") + " count=512", resp),
          "trace-start failed");

    CHECK(a.roundTripOk(req("session-create") +
                            " name=demo backend=dise",
                        resp),
          "A: session-create failed");
    uint64_t idA = resp.value;
    CHECK(b.roundTripOk(req("session-create") +
                            " name=demo backend=single-step",
                        resp),
          "B: session-create failed");

    // Subscriber: event-push spans + the event_push histogram.
    CHECK(a.roundTripOk(req("subscribe"), resp), "A: subscribe failed");

    // Both sessions in parallel: watch, run to the hit, travel back,
    // verify the timeline with interval-parallel replay.
    auto drive = [&](Wire &w, const char *who) {
        Response r;
        CHECK(w.roundTripOk(req("set-watch") +
                                " wkind=scalar name=directory addr=" +
                                watchAddr + " size=8",
                            r),
              "%s: set-watch failed", who);
        CHECK(w.roundTripOk(req("cont"), r), "%s: cont failed", who);
        CHECK(w.roundTripOk(req("stepi") + " count=2000", r),
              "%s: stepi failed", who);
        CHECK(w.roundTripOk(req("reverse-step") + " count=500", r),
              "%s: reverse-step failed", who);
        CHECK(w.roundTripOk(req("replay-verify") + " count=2", r),
              "%s: replay-verify failed", who);
    };
    drive(a, "A");
    drive(b, "B");

    // Durable round-trip: persist + hibernate + resurrect-by-select
    // exercises store put/load and the resurrection replay. The event
    // subscription must end first — subscribed sessions refuse to
    // hibernate.
    CHECK(a.roundTripOk(req("unsubscribe"), resp),
          "A: unsubscribe failed");
    CHECK(a.roundTripOk(req("session-persist"), resp),
          "A: session-persist failed");
    CHECK(a.roundTripOk(req("session-hibernate"), resp),
          "A: session-hibernate failed");
    CHECK(a.roundTripOk(req("session-select") + " session=" +
                            std::to_string(idA),
                        resp),
          "A: resurrecting session-select failed");

    // ---- stop, dump (chunked), validate ---------------------------
    CHECK(a.roundTripOk(req("trace-stop"), resp), "trace-stop failed");
    uint64_t recorded = resp.value;
    CHECK(recorded > 0, "tracer recorded nothing");

    std::string dump;
    uint64_t total = 0;
    do {
        CHECK(a.roundTripOk(req("trace-dump") + " count=32768 value=" +
                                std::to_string(dump.size()),
                            resp),
              "trace-dump chunk @%zu failed", dump.size());
        if (!resp.ok())
            break;
        total = resp.value;
        if (resp.text.empty())
            break;
        dump += resp.text;
    } while (dump.size() < total);
    CHECK(dump.size() == total,
          "chunked dump reassembly mismatch: %zu of %llu bytes",
          dump.size(),
          static_cast<unsigned long long>(total));

    JsonCheck json(dump);
    CHECK(json.valid(), "trace dump is not valid JSON (at byte %zu)",
          json.errorAt());
    CHECK(dump.find("\"traceEvents\"") != std::string::npos,
          "dump has no traceEvents array");
    CHECK(dump.find("\"ph\":\"B\"") != std::string::npos &&
              dump.find("\"ph\":\"E\"") != std::string::npos,
          "dump has no begin/end span pairs");
    for (const char *layer :
         {"\"cat\":\"sched\"", "\"cat\":\"session\"",
          "\"cat\":\"travel\"", "\"cat\":\"replay\"",
          "\"cat\":\"store\""})
        CHECK(dump.find(layer) != std::string::npos,
              "dump is missing %s spans", layer);

    // Re-arming must reset the recorder (generation bump invalidates
    // the server's render cache), and dumping while armed must error.
    CHECK(a.roundTripOk(req("trace-start"), resp), "re-arm failed");
    CHECK(a.roundTrip(req("trace-dump"), resp) && !resp.ok(),
          "trace-dump while armed should error");
    CHECK(a.roundTripOk(req("trace-stop"), resp),
          "second trace-stop failed");

    // ---- metrics exposition ---------------------------------------
    CHECK(b.roundTripOk(req("metrics"), resp), "metrics verb failed");
    const std::string expo = resp.text; // resp is reused below
    for (const char *family :
         {"dise_verb_latency_us", "dise_sched_queue_wait_us",
          "dise_slice_duration_us", "dise_store_fsync_us",
          "dise_resurrect_replay_us", "dise_event_push_us"}) {
        CHECK(expo.find(std::string("# TYPE ") + family +
                        " histogram") != std::string::npos,
              "metrics is missing family %s", family);
        CHECK(expo.find(std::string(family) + "_bucket{le=\"+Inf\"}") !=
                  std::string::npos,
              "family %s has no +Inf bucket", family);
    }
    // The run above must actually have moved the core latencies.
    for (const char *mustMove :
         {"dise_verb_latency_us", "dise_sched_queue_wait_us",
          "dise_slice_duration_us", "dise_store_fsync_us",
          "dise_resurrect_replay_us"}) {
        std::string key = std::string(mustMove) + "_count 0\n";
        CHECK(expo.find(key) == std::string::npos,
              "family %s never observed anything", mustMove);
    }

    // Wire-decoded ServerStats must carry the same distributions.
    CHECK(b.roundTripOk(req("server-stats"), resp),
          "server-stats failed");
    CHECK(resp.server.hists.size() >= 5,
          "server-stats carried %zu histogram(s)",
          resp.server.hists.size());
    for (const HistogramSnapshot &h : resp.server.hists)
        if (h.name == "dise_verb_latency_us")
            CHECK(h.count > 0, "verb latency histogram is empty");

    if (!traceOut.empty())
        CHECK(writeFileOrWarn(traceOut, dump), "--trace-out failed");
    if (!metricsOut.empty())
        CHECK(writeFileOrWarn(metricsOut, expo),
              "--metrics-out failed");

    a.close();
    b.close();
    srv.stop();

    // Scratch-store cleanup (best effort).
    std::string rmCmd = std::string("rm -rf ") + dirTmpl;
    [[maybe_unused]] int rc = std::system(rmCmd.c_str());

    if (failures) {
        std::fprintf(stderr, "obs_smoke: %d failure(s)\n", failures);
        return 1;
    }
    std::printf("obs_smoke: OK — %llu spans recorded, %zu-byte trace "
                "validated, all %d metric families present\n",
                static_cast<unsigned long long>(recorded), dump.size(),
                6);
    return 0;
}
