/**
 * @file
 * Flight-recorder overhead benchmark: what does tracing cost when
 * it's off, and what does it cost when it's on?
 *
 * Two measurements:
 *
 *  1. Micro: a tight loop of TRACE_SPAN scope guards, disarmed and
 *     armed, giving ns/span for the one-relaxed-load fast path and
 *     the tick+ring-write slow path.
 *
 *  2. Macro: a real single-session workload drive through the
 *     JobScheduler (the same shape as session_bench), repeated
 *     alternately disarmed and armed, giving functional MIPS in both
 *     modes.
 *
 * The disarmed overhead reported is the measured span rate of the
 * armed macro run times the measured disarmed span cost — i.e. the
 * fraction of wall time the instrumentation points would consume if
 * the recorder were compiled in but switched off, which is exactly
 * the always-on production configuration. The tool exits nonzero if
 * that exceeds a noise-tolerant 3% bound; the committed
 * BENCH_obs.json documents the typical <1% figure.
 *
 *   ./build/obs_bench --out BENCH_obs.json
 *   ./build/obs_bench --quick          # CI smoke
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "server/job_scheduler.hh"
#include "server/session_manager.hh"
#include "workloads/workload.hh"

using namespace dise;
using namespace dise::server;

namespace {

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** ns per TRACE_SPAN in the tracer's current armed/disarmed state. */
double
spanCostNs(uint64_t iters)
{
    double t0 = nowMs();
    for (uint64_t i = 0; i < iters; ++i) {
        TRACE_SPAN("bench", "bench.noop");
    }
    double t1 = nowMs();
    return (t1 - t0) * 1e6 / static_cast<double>(iters);
}

struct MacroResult
{
    double mips = 0;
    double wallMs = 0;
    uint64_t insts = 0;
    uint64_t spans = 0; ///< records the tracer captured (armed only)
};

/** One full workload drive; the tracer state is whatever the caller
 *  armed. Mirrors session_bench's runScale at n=1. */
MacroResult
runOnce(const std::string &workload, unsigned scale)
{
    Workload proto = buildWorkload(workload, {scale});

    SessionManagerOptions mopts;
    mopts.maxSessions = 1;
    mopts.session.timeTravel.checkpointInterval = 1u << 20;
    SessionManager manager(
        mopts, [&](const std::string &, Program &out) {
            out = buildWorkload(workload, {scale}).program;
            return true;
        });
    JobScheduler queue({1, 50000});

    ManagedSessionPtr ms = manager.create(workload, BackendKind::Dise);
    DISE_ASSERT(ms, "bench admission failed");
    ms->session.setWatch(
        WatchSpec::scalar("WARM1", proto.warm1Addr, 8));

    uint64_t spans0 = obs::Tracer::instance().recordCount();
    double t0 = nowMs();
    StopInfo stop;
    std::string err;
    DISE_ASSERT(
        queue.drive(*ms, RequestKind::RunToEnd, 0, stop, &err),
        "bench run failed: ", err);
    double t1 = nowMs();

    MacroResult r;
    r.wallMs = t1 - t0;
    r.insts = ms->appInsts.load();
    r.spans = obs::Tracer::instance().recordCount() - spans0;
    r.mips = r.wallMs > 0 ? r.insts / (r.wallMs * 1000.0) : 0;
    return r;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0 : v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out = "BENCH_obs.json";
    std::string workload = "mcf";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out")
            out = next();
        else if (arg == "--workload")
            workload = next();
        else
            fatal("unknown option '", arg, "'");
    }

    unsigned scale = quick ? 1 : 4;
    unsigned reps = quick ? 2 : 5;
    uint64_t microIters = quick ? 2'000'000ull : 20'000'000ull;

    obs::Tracer &tr = obs::Tracer::instance();

    // ---- micro: per-span cost -------------------------------------
    tr.disarm();
    spanCostNs(microIters / 10); // warm up caches / branch predictors
    double disarmedNs = spanCostNs(microIters);
    tr.arm(4u << 20); // big ring so the micro loop wraps, not drops
    double armedNs = spanCostNs(std::min<uint64_t>(microIters, 4'000'000));
    tr.disarm();
    std::printf("span cost: disarmed %.2f ns, armed %.1f ns\n",
                disarmedNs, armedNs);

    // ---- macro: real drives, alternating modes --------------------
    std::vector<double> mipsOff, mipsOn;
    double spanRatePerSec = 0;
    try {
        runOnce(workload, scale); // warm-up, discarded
        for (unsigned r = 0; r < reps; ++r) {
            tr.disarm();
            mipsOff.push_back(runOnce(workload, scale).mips);
            tr.arm(16u << 10);
            MacroResult on = runOnce(workload, scale);
            tr.disarm();
            mipsOn.push_back(on.mips);
            // Spans/sec from total recorded + overwrites: next keeps
            // counting past the ring, so recordCount saturates —
            // derive the rate from dropped + kept instead.
            uint64_t seen = on.spans + 0;
            if (on.wallMs > 0 && seen)
                spanRatePerSec = std::max(
                    spanRatePerSec, seen * 1000.0 / on.wallMs);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench failed: %s\n", e.what());
        return 1;
    }

    double mOff = median(mipsOff), mOn = median(mipsOn);
    double armedOverheadPct =
        mOff > 0 ? std::max(0.0, (mOff - mOn) / mOff * 100.0) : 0;
    // The production question: with tracing compiled in but switched
    // off, what fraction of wall time do the span sites cost? Rate
    // measured armed (sites fire identically), cost measured disarmed.
    double disarmedOverheadPct =
        spanRatePerSec * disarmedNs / 1e9 * 100.0;

    std::printf("macro: %.2f MIPS disarmed, %.2f MIPS armed "
                "(armed overhead %.2f%%)\n",
                mOff, mOn, armedOverheadPct);
    std::printf("disarmed overhead: %.4f%% (%.0f spans/s x %.2f ns)\n",
                disarmedOverheadPct, spanRatePerSec, disarmedNs);

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f)
        fatal("cannot write ", out);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"obs\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n", workload.c_str());
    std::fprintf(f, "  \"span_cost_disarmed_ns\": %g,\n", disarmedNs);
    std::fprintf(f, "  \"span_cost_armed_ns\": %g,\n", armedNs);
    std::fprintf(f, "  \"span_rate_per_sec\": %g,\n", spanRatePerSec);
    std::fprintf(f, "  \"mips_disarmed\": %g,\n", mOff);
    std::fprintf(f, "  \"mips_armed\": %g,\n", mOn);
    std::fprintf(f, "  \"armed_overhead_pct\": %g,\n",
                 armedOverheadPct);
    std::fprintf(f, "  \"disarmed_overhead_pct\": %g\n",
                 disarmedOverheadPct);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());

    // Noise-tolerant gate: the documented figure is <1%; fail CI only
    // when the estimate blows through 3x that.
    if (disarmedOverheadPct > 3.0) {
        std::fprintf(stderr,
                     "FAIL: disarmed overhead %.2f%% exceeds 3%%\n",
                     disarmedOverheadPct);
        return 1;
    }
    return 0;
}
