/**
 * @file
 * google-benchmark microbenchmarks for the simulator's components:
 * decoder throughput, DISE pattern match + expansion, cache access,
 * branch-predictor lookup/update, and end-to-end simulated MIPS.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "cpu/func_cpu.hh"
#include "cpu/timing_cpu.hh"
#include "debug/target.hh"
#include "dise/engine.hh"
#include "isa/encoding.hh"
#include "mem/cache.hh"
#include "workloads/workload.hh"

using namespace dise;

static void
BM_Decode(benchmark::State &state)
{
    std::vector<uint32_t> words;
    for (unsigned i = 0; i < 1024; ++i) {
        Inst inst = makeOp(Opcode::ADDQ, ir(i % 31), ir((i * 7) % 31),
                           ir((i * 13) % 31));
        words.push_back(encode(inst));
    }
    size_t i = 0;
    for (auto _ : state) {
        auto dec = decode(words[i++ & 1023]);
        benchmark::DoNotOptimize(dec);
    }
}
BENCHMARK(BM_Decode);

static void
BM_DiseMatchExpand(benchmark::State &state)
{
    DiseEngine engine;
    Production p;
    p.name = "bench";
    p.pattern = Pattern::forClass(OpClass::Store);
    p.replacement = {
        TemplateInst::trigInst(),
        TemplateInst::mem(Opcode::LDA, TRegField::reg(dr(1)),
                          TImmField::trigImm(), TRegField::trigRb()),
        TemplateInst::opImm(Opcode::BIC_I, TRegField::reg(dr(1)), 7,
                            TRegField::reg(dr(1))),
        TemplateInst::op3(Opcode::CMPEQ, TRegField::reg(dr(1)),
                          TRegField::reg(dr(3)), TRegField::reg(dr(2))),
    };
    engine.addProduction(p);
    Inst store = makeMem(Opcode::STQ, reg::t0, 16, reg::sp);
    for (auto _ : state) {
        const Production *prod = engine.matchFunctional(store, 0x1000);
        auto seq = engine.expand(*prod, store);
        benchmark::DoNotOptimize(seq);
    }
}
BENCHMARK(BM_DiseMatchExpand);

static void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bench", 32 * 1024, 2, 64, 1});
    uint64_t addr = 0;
    for (auto _ : state) {
        auto r = cache.access(addr, false);
        benchmark::DoNotOptimize(r);
        addr += 64 * 9; // stride through sets
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_PredictorUpdate(benchmark::State &state)
{
    BranchPredictor bp;
    Addr pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        bool pred = bp.predictDirection(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, taken, pc + 64, true);
        taken = !taken;
        pc += 4;
        if (pc > 0x9000)
            pc = 0x1000;
    }
}
BENCHMARK(BM_PredictorUpdate);

static void
BM_FunctionalSim(benchmark::State &state)
{
    Workload w = buildBzip2({});
    for (auto _ : state) {
        DebugTarget t(w.program);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        FuncCpu cpu(t.arch, t.mem, &t.engine, env);
        FuncResult r = cpu.run(100000);
        benchmark::DoNotOptimize(r);
        state.SetItemsProcessed(state.items_processed() + r.appInsts);
    }
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

static void
BM_TimingSim(benchmark::State &state)
{
    Workload w = buildBzip2({});
    for (auto _ : state) {
        DebugTarget t(w.program);
        t.load();
        StreamEnv env;
        env.sink = &t.sink;
        TimingCpu cpu(t.arch, t.mem, &t.engine, env, {});
        RunStats r = cpu.run({100000, 0});
        benchmark::DoNotOptimize(r);
        state.SetItemsProcessed(state.items_processed() + r.appInsts);
    }
}
BENCHMARK(BM_TimingSim)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
