/**
 * @file
 * Figure 5: DISE vs static binary rewriting on a COLD watchpoint.
 * Both prune spurious transitions in-application; the difference is
 * static code bloat. Expected shape: comparable overhead for the small
 * instruction-footprint kernels (bzip2, crafty, mcf), rewriting
 * considerably worse for the larger ones (gcc — the paper's 2.83x bar
 * — twolf, vortex) due to instruction-cache pressure.
 */

#include <cstdio>

#include "debug/rewrite_backend.hh"
#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);

    std::printf("== Figure 5: DISE vs binary rewriting "
                "(COLD watchpoint) ==\n");
    TextTable table;
    table.setHeader({"benchmark", "DISE", "Binary Rewriting",
                     "static bloat"});
    for (const auto &name : workloadNames()) {
        WatchSpec spec = run.standardWatch(name, WatchSel::COLD, false);

        DebuggerOptions dise;
        dise.backend = BackendKind::Dise;
        RunOutcome d = run.debugged(name, {spec}, dise);

        DebuggerOptions rw;
        rw.backend = BackendKind::Rewrite;
        // Measure the bloat factor on a side instance.
        const Workload &w = run.workload(name);
        DebugTarget probe(w.program);
        RewriteBackend backend;
        backend.install(probe, {spec}, {});
        RunOutcome r = run.debugged(name, {spec}, rw);

        table.addRow({name, slowdownCell(d), slowdownCell(r),
                      fmtDouble(backend.bloatFactor(), 2) + "x"});
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
