/**
 * @file
 * Extension: sensitivity of the Figure 4 crossover to the debugger
 * round-trip cost. The paper models 100K cycles and measures 290K
 * (gdb/Linux) and 513K (Visual Studio/WinXP) on real systems; this
 * sweep shows the DISE-vs-hardware crossover point moving with it
 * (Section 5.2's back-of-envelope: hardware wins only below one write
 * per 'cost' stores).
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);

    std::printf("== Extension: transition-cost sensitivity "
                "(conditional WARM1 watchpoint) ==\n");
    TextTable table;
    table.setHeader({"benchmark", "cost", "Hardware", "DISE"});
    for (uint64_t cost : {10000ull, 100000ull, 290000ull, 513000ull}) {
        HarnessOptions sub = opts;
        sub.transitionCost = cost;
        ExperimentRunner run(sub);
        for (const std::string name : {"bzip2", "twolf"}) {
            WatchSpec spec = run.standardWatch(name, WatchSel::WARM1,
                                               true);
            DebuggerOptions hw;
            hw.backend = BackendKind::HardwareReg;
            DebuggerOptions dd;
            dd.backend = BackendKind::Dise;
            table.addRow({name, std::to_string(cost),
                          slowdownCell(run.debugged(name, {spec}, hw)),
                          slowdownCell(run.debugged(name, {spec}, dd))});
        }
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
