/**
 * @file
 * Figure 9: the cost of protecting the debugger's embedded data
 * structures with the Figure 2f production (every store expansion
 * additionally checks the address against the dseg region). Measured
 * on COLD watchpoints to expose the maximum relative cost; the paper
 * finds it modest.
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);

    std::printf("== Figure 9: protecting debugger structures "
                "(COLD watchpoint) ==\n");
    TextTable table;
    table.setHeader({"benchmark", "not protected", "protected"});
    for (const auto &name : workloadNames()) {
        WatchSpec spec = run.standardWatch(name, WatchSel::COLD, false);
        DebuggerOptions plain;
        plain.backend = BackendKind::Dise;
        DebuggerOptions prot = plain;
        prot.dise.protectDebuggerData = true;
        table.addRow({name,
                      slowdownCell(run.debugged(name, {spec}, plain)),
                      slowdownCell(run.debugged(name, {spec}, prot))});
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
