/**
 * @file
 * Simulator-throughput benchmark: simulated MIPS of the functional
 * hot path (fetch -> decode -> DISE match -> execute) across the
 * Figure 3/4 workloads under three instrumentation configurations:
 *
 *   off     - empty pattern table (undebugged baseline)
 *   uncond  - every store expanded with an unconditional watchpoint
 *             check (Figure 3 methodology)
 *   cond    - every store expanded with a conditional (value-predicate)
 *             watchpoint check (Figure 4 methodology)
 *
 * Each cell is measured twice: with the optimized hot path (predecoded
 * µop cache, indexed production matching, memoized expansions) and
 * with the legacy fallback (per-fetch memory read + decode, linear
 * 32-slot pattern scan, per-trigger expansion instantiation), giving
 * the host-side speedup every future PR is measured against. Results
 * are emitted as BENCH_throughput.json.
 *
 * A second, cycle-level section measures the timing model's simulated
 * MIPS with the ROB scan cursors (TimingConfig::robCursors) on vs the
 * legacy per-cycle linear window walks — the remaining hot-path
 * candidate named in ROADMAP.md.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "cpu/func_cpu.hh"
#include "cpu/timing_cpu.hh"
#include "debug/target.hh"
#include "dise/engine.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

enum class Config { Off, Uncond, Cond };

const char *
configName(Config c)
{
    switch (c) {
      case Config::Off: return "off";
      case Config::Uncond: return "uncond";
      case Config::Cond: return "cond";
    }
    return "?";
}

struct Options
{
    bool quick = false;
    bool noUcache = false;
    bool noIndex = false;
    bool noMemo = false;
    bool noPagecache = false;
    unsigned reps = 2;
    uint64_t maxAppInsts = 0; ///< 0 = run workloads to completion
    uint64_t timingInsts = 300000; ///< app-inst cap for timing cells
    bool noTiming = false;
    std::string out = "BENCH_throughput.json";
};

struct Measurement
{
    std::string workload;
    Config config = Config::Off;
    bool optimized = true;
    uint64_t appInsts = 0;
    uint64_t microOps = 0;
    double seconds = 0.0;

    double mips() const { return seconds > 0 ? appInsts / seconds / 1e6 : 0; }
    double
    microMips() const
    {
        return seconds > 0 ? microOps / seconds / 1e6 : 0;
    }
};

/** Figure 2a-style inline watchpoint check appended to every store. */
Production
storeCheckProduction(bool conditional)
{
    auto R = [](RegId r) { return TRegField::reg(r); };
    Production p;
    p.name = conditional ? "watch-cond" : "watch-uncond";
    p.pattern = Pattern::forClass(OpClass::Store);

    std::vector<TemplateInst> seq;
    seq.push_back(TemplateInst::trigInst());
    // Reconstruct the store address into dr1.
    seq.push_back(TemplateInst::mem(Opcode::LDA, R(dr(1)),
                                    TImmField::trigImm(),
                                    TRegField::trigRb()));
    // Address match against the watched location in dr3.
    seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(dr(1)), R(dr(3)),
                                    R(dr(2))));
    if (!conditional) {
        // Unconditional: trap whenever the watched address is written.
        TemplateInst t;
        t.op = Opcode::CTRAP;
        t.ra = R(dr(2));
        t.imm = TImmField::imm(1);
        seq.push_back(t);
    } else {
        // Conditional: on an address match, load the new value and
        // trap only when it equals the predicate constant in dr4.
        TemplateInst skip;
        skip.op = Opcode::D_BEQ;
        skip.ra = R(dr(2));
        skip.imm = TImmField::imm(3);
        seq.push_back(skip);
        seq.push_back(TemplateInst::mem(Opcode::LDQ, R(dr(0)),
                                        TImmField::imm(0), R(dr(1))));
        seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(dr(0)), R(dr(4)),
                                        R(dr(0))));
        TemplateInst t;
        t.op = Opcode::CTRAP;
        t.ra = R(dr(0));
        t.imm = TImmField::imm(1);
        seq.push_back(t);
    }
    p.replacement = std::move(seq);
    return p;
}

Measurement
measureOnce(const Workload &w, Config config, bool optimized,
            const Options &opts)
{
    DebugTarget target(w.program);
    if (config != Config::Off) {
        target.engine.addProduction(
            storeCheckProduction(config == Config::Cond));
        target.arch.writeDise(3, w.hotAddr);
        // Figure 4 predicate: a constant the watched value never takes.
        target.arch.writeDise(4, 0xdeadbeefcafeull);
    }
    target.load();

    // The fallback leg reproduces the pre-overhaul hot path: per-fetch
    // memory read + decode, linear pattern scan, per-trigger expansion
    // instantiation, and uncached page lookups.
    bool ucache = optimized && !opts.noUcache;
    target.engine.setIndexedMatch(optimized && !opts.noIndex);
    target.engine.setExpansionMemo(optimized && !opts.noMemo);
    target.mem.setPageCacheEnabled(optimized && !opts.noPagecache);

    StreamEnv env;
    env.sink = &target.sink;
    env.uopCache = ucache;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    auto t0 = std::chrono::steady_clock::now();
    FuncResult r = cpu.run(opts.maxAppInsts);
    auto t1 = std::chrono::steady_clock::now();
    if (r.halt == HaltReason::Fault)
        fatal("throughput run of '", w.name, "' faulted: ",
              r.faultMessage);

    Measurement m;
    m.workload = w.name;
    m.config = config;
    m.optimized = optimized;
    m.appInsts = r.appInsts;
    m.microOps = r.microOps;
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    return m;
}

Measurement
measure(const Workload &w, Config config, bool optimized,
        const Options &opts)
{
    // Best of N: the container's wall clock is noisy.
    Measurement best;
    for (unsigned i = 0; i < opts.reps; ++i) {
        Measurement m = measureOnce(w, config, optimized, opts);
        if (i == 0 || m.mips() > best.mips())
            best = m;
    }
    return best;
}

/**
 * One trace-JIT run: the fully-optimized interpreter with the target's
 * trace cache wired in (or not), same workload and instrumentation.
 * The jit-off leg leaves env.jit null, so it pays zero cache overhead —
 * it is exactly the interpreter the `runs` section measures.
 */
Measurement
measureJitOnce(const Workload &w, Config config, bool jitOn,
               const Options &opts)
{
    DebugTarget target(w.program);
    if (config != Config::Off) {
        target.engine.addProduction(
            storeCheckProduction(config == Config::Cond));
        target.arch.writeDise(3, w.hotAddr);
        target.arch.writeDise(4, 0xdeadbeefcafeull);
    }
    target.load();

    StreamEnv env;
    env.sink = &target.sink;
    env.uopCache = true;
    if (jitOn)
        env.jit = target.jit();
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);

    auto t0 = std::chrono::steady_clock::now();
    FuncResult r = cpu.run(opts.maxAppInsts);
    auto t1 = std::chrono::steady_clock::now();
    if (r.halt == HaltReason::Fault)
        fatal("jit throughput run of '", w.name, "' faulted: ",
              r.faultMessage);

    Measurement m;
    m.workload = w.name;
    m.config = config;
    m.optimized = jitOn;
    m.appInsts = r.appInsts;
    m.microOps = r.microOps;
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    return m;
}

Measurement
measureJit(const Workload &w, Config config, bool jitOn,
           const Options &opts)
{
    Measurement best;
    for (unsigned i = 0; i < opts.reps; ++i) {
        Measurement m = measureJitOnce(w, config, jitOn, opts);
        if (i == 0 || m.mips() > best.mips())
            best = m;
    }
    return best;
}

/** One cycle-level run: simulated MIPS of the timing model itself. */
struct TimingMeasurement
{
    std::string workload;
    Config config = Config::Off;
    bool cursors = true;
    bool opRefs = true;
    uint64_t appInsts = 0;
    uint64_t cycles = 0;
    double seconds = 0.0;

    double mips() const { return seconds > 0 ? appInsts / seconds / 1e6 : 0; }
};

TimingMeasurement
measureTimingOnce(const Workload &w, Config config, bool cursors,
                  bool opRefs, const Options &opts)
{
    DebugTarget target(w.program);
    if (config != Config::Off) {
        target.engine.addProduction(
            storeCheckProduction(config == Config::Cond));
        target.arch.writeDise(3, w.hotAddr);
        target.arch.writeDise(4, 0xdeadbeefcafeull);
    }
    target.load();

    StreamEnv env;
    env.sink = &target.sink;
    TimingConfig cfg;
    cfg.robCursors = cursors;
    cfg.opRefs = opRefs;
    TimingCpu cpu(target.arch, target.mem, &target.engine, env, cfg);
    RunLimits lim;
    lim.maxAppInsts = opts.timingInsts;

    auto t0 = std::chrono::steady_clock::now();
    RunStats r = cpu.run(lim);
    auto t1 = std::chrono::steady_clock::now();
    if (r.halt == HaltReason::Fault)
        fatal("timing throughput run of '", w.name, "' faulted: ",
              r.faultMessage);

    TimingMeasurement m;
    m.workload = w.name;
    m.config = config;
    m.cursors = cursors;
    m.opRefs = opRefs;
    m.appInsts = r.appInsts;
    m.cycles = r.cycles;
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    return m;
}

TimingMeasurement
measureTiming(const Workload &w, Config config, bool cursors,
              bool opRefs, const Options &opts)
{
    TimingMeasurement best;
    for (unsigned i = 0; i < opts.reps; ++i) {
        TimingMeasurement m =
            measureTimingOnce(w, config, cursors, opRefs, opts);
        if (i == 0 || m.mips() > best.mips())
            best = m;
    }
    return best;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.quick = true;
            opts.reps = 1;
            opts.maxAppInsts = 50000;
            opts.timingInsts = 30000;
        } else if (arg == "--no-timing") {
            opts.noTiming = true;
        } else if (arg == "--timing-insts") {
            opts.timingInsts = static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--no-ucache") {
            opts.noUcache = true;
        } else if (arg == "--no-index") {
            opts.noIndex = true;
        } else if (arg == "--no-memo") {
            opts.noMemo = true;
        } else if (arg == "--no-pagecache") {
            opts.noPagecache = true;
        } else if (arg == "--reps") {
            opts.reps = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--insts") {
            opts.maxAppInsts = static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--out") {
            opts.out = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --quick       one workload, capped instructions (CI)\n"
                "  --no-ucache   disable the predecoded µop cache\n"
                "  --no-index    disable indexed production matching\n"
                "  --no-memo     disable expansion memoization\n"
                "  --no-pagecache disable the memory page-pointer "
                "caches\n"
                "  --reps N      repetitions per cell (best-of, default 2)\n"
                "  --insts N     cap application instructions per run\n"
                "  --timing-insts N  app-inst cap for the timing cells\n"
                "  --no-timing   skip the cycle-level ROB-cursor section\n"
                "  --out FILE    JSON output path "
                "(default BENCH_throughput.json)\n");
            std::exit(0);
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);

    std::vector<std::string> names =
        opts.quick ? std::vector<std::string>{"bzip2"} : workloadNames();
    const Config configs[] = {Config::Off, Config::Uncond, Config::Cond};

    std::vector<Measurement> results;
    TextTable table;
    table.setHeader({"workload", "config", "optimized MIPS",
                     "fallback MIPS", "speedup"});

    double uncondSpeedupMin = 0.0;
    bool first = true;
    for (const auto &name : names) {
        WorkloadParams params;
        Workload w = buildWorkload(name, params);
        for (Config config : configs) {
            Measurement opt = measure(w, config, true, opts);
            Measurement fall = measure(w, config, false, opts);
            results.push_back(opt);
            results.push_back(fall);
            double speedup =
                fall.mips() > 0 ? opt.mips() / fall.mips() : 0.0;
            if (config == Config::Uncond) {
                if (first || speedup < uncondSpeedupMin)
                    uncondSpeedupMin = speedup;
                first = false;
            }
            char optBuf[32], fallBuf[32], spBuf[32];
            std::snprintf(optBuf, sizeof optBuf, "%.2f", opt.mips());
            std::snprintf(fallBuf, sizeof fallBuf, "%.2f", fall.mips());
            std::snprintf(spBuf, sizeof spBuf, "%.2fx", speedup);
            table.addRow({name, configName(config), optBuf, fallBuf, spBuf});
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("min unconditional-instrumentation speedup: %.2fx\n",
                uncondSpeedupMin);

    // Trace-JIT section: the optimized interpreter with the trace
    // cache on vs off. µop MIPS is the honest metric here — the JIT's
    // job is retiring expansion µops cheaply.
    std::vector<Measurement> jitResults;
    double jitSpeedupMin = 0.0;
    {
        TextTable jtable;
        jtable.setHeader({"workload", "config", "jit µMIPS",
                          "interp µMIPS", "speedup"});
        bool jfirst = true;
        for (const auto &name : names) {
            WorkloadParams params;
            Workload w = buildWorkload(name, params);
            for (Config config : configs) {
                Measurement on = measureJit(w, config, true, opts);
                Measurement off = measureJit(w, config, false, opts);
                if (on.appInsts != off.appInsts ||
                    on.microOps != off.microOps)
                    fatal("trace JIT changed retirement counts on '",
                          name, "/", configName(config), "': ",
                          on.appInsts, "/", on.microOps, " vs ",
                          off.appInsts, "/", off.microOps);
                jitResults.push_back(on);
                jitResults.push_back(off);
                double sp = off.microMips() > 0
                                ? on.microMips() / off.microMips()
                                : 0.0;
                if (config == Config::Uncond) {
                    if (jfirst || sp < jitSpeedupMin)
                        jitSpeedupMin = sp;
                    jfirst = false;
                }
                char onBuf[32], offBuf[32], spBuf[32];
                std::snprintf(onBuf, sizeof onBuf, "%.2f",
                              on.microMips());
                std::snprintf(offBuf, sizeof offBuf, "%.2f",
                              off.microMips());
                std::snprintf(spBuf, sizeof spBuf, "%.2fx", sp);
                jtable.addRow(
                    {name, configName(config), onBuf, offBuf, spBuf});
            }
        }
        std::printf("\ntrace JIT (cache on vs off, µop MIPS):\n");
        std::fputs(jtable.render().c_str(), stdout);
        std::printf(
            "min unconditional-instrumentation JIT speedup: %.2fx\n",
            jitSpeedupMin);
    }

    // Cycle-level section: simulated MIPS of the timing model with ROB
    // scan cursors vs the legacy linear window walks.
    std::vector<TimingMeasurement> timingResults;
    if (!opts.noTiming) {
        TextTable ttable;
        ttable.setHeader({"workload", "config", "cursors MIPS",
                          "linear MIPS", "speedup"});
        TextTable otable;
        otable.setHeader({"workload", "config", "refs MIPS",
                          "copy MIPS", "speedup"});
        std::vector<std::string> tnames =
            opts.quick ? std::vector<std::string>{"bzip2"}
                       : std::vector<std::string>{"bzip2", "mcf"};
        for (const auto &name : tnames) {
            WorkloadParams params;
            Workload w = buildWorkload(name, params);
            for (Config config : {Config::Off, Config::Uncond}) {
                TimingMeasurement cur =
                    measureTiming(w, config, true, true, opts);
                TimingMeasurement lin =
                    measureTiming(w, config, false, true, opts);
                TimingMeasurement cpy =
                    measureTiming(w, config, true, false, opts);
                if (cur.cycles != lin.cycles)
                    fatal("ROB cursors changed simulated cycles on '",
                          name, "': ", cur.cycles, " vs ", lin.cycles);
                if (cur.cycles != cpy.cycles)
                    fatal("µop references changed simulated cycles on '",
                          name, "': ", cur.cycles, " vs ", cpy.cycles);
                timingResults.push_back(cur);
                timingResults.push_back(lin);
                timingResults.push_back(cpy);
                double sp = lin.mips() > 0 ? cur.mips() / lin.mips() : 0;
                char curBuf[32], linBuf[32], spBuf[32];
                std::snprintf(curBuf, sizeof curBuf, "%.2f", cur.mips());
                std::snprintf(linBuf, sizeof linBuf, "%.2f", lin.mips());
                std::snprintf(spBuf, sizeof spBuf, "%.2fx", sp);
                ttable.addRow(
                    {name, configName(config), curBuf, linBuf, spBuf});
                double osp = cpy.mips() > 0 ? cur.mips() / cpy.mips() : 0;
                char cpyBuf[32], ospBuf[32];
                std::snprintf(cpyBuf, sizeof cpyBuf, "%.2f", cpy.mips());
                std::snprintf(ospBuf, sizeof ospBuf, "%.2fx", osp);
                otable.addRow(
                    {name, configName(config), curBuf, cpyBuf, ospBuf});
            }
        }
        std::printf("\ntiming model (ROB cursors vs linear scans):\n");
        std::fputs(ttable.render().c_str(), stdout);
        std::printf("\ntiming model (µop references vs copies):\n");
        std::fputs(otable.render().c_str(), stdout);
    }

    std::ofstream os(opts.out);
    if (!os)
        fatal("cannot write ", opts.out);
    os << "{\n  \"bench\": \"throughput\",\n";
    os << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    os << "  \"uncond_speedup_min\": " << uncondSpeedupMin << ",\n";
    os << "  \"jit_uncond_speedup_min\": " << jitSpeedupMin << ",\n";
    os << "  \"runs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        os << "    {\"workload\": \"" << m.workload << "\", \"config\": \""
           << configName(m.config) << "\", \"mode\": \""
           << (m.optimized ? "optimized" : "fallback")
           << "\", \"app_insts\": " << m.appInsts
           << ", \"micro_ops\": " << m.microOps
           << ", \"seconds\": " << m.seconds << ", \"mips\": " << m.mips()
           << ", \"micro_mips\": " << m.microMips() << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"jit_runs\": [\n";
    for (size_t i = 0; i < jitResults.size(); ++i) {
        const Measurement &m = jitResults[i];
        os << "    {\"workload\": \"" << m.workload << "\", \"config\": \""
           << configName(m.config) << "\", \"jit\": \""
           << (m.optimized ? "on" : "off")
           << "\", \"app_insts\": " << m.appInsts
           << ", \"micro_ops\": " << m.microOps
           << ", \"seconds\": " << m.seconds << ", \"mips\": " << m.mips()
           << ", \"micro_mips\": " << m.microMips() << "}"
           << (i + 1 < jitResults.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"timing_runs\": [\n";
    for (size_t i = 0; i < timingResults.size(); ++i) {
        const TimingMeasurement &m = timingResults[i];
        os << "    {\"workload\": \"" << m.workload << "\", \"config\": \""
           << configName(m.config) << "\", \"rob_scan\": \""
           << (m.cursors ? "cursors" : "linear")
           << "\", \"op_mode\": \"" << (m.opRefs ? "refs" : "copy")
           << "\", \"app_insts\": " << m.appInsts
           << ", \"cycles\": " << m.cycles << ", \"seconds\": " << m.seconds
           << ", \"mips\": " << m.mips() << "}"
           << (i + 1 < timingResults.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", opts.out.c_str());
    return 0;
}
