/**
 * @file
 * Checkpoint-subsystem benchmark (BENCH_checkpoint.json).
 *
 * Two questions, two JSON sections:
 *
 *  1. cow.dirty_sweep / cow.footprint_sweep — does snapshot cost scale
 *     with the pages dirtied per checkpoint interval rather than with
 *     total memory size? The copy-on-write undo log captures one
 *     pre-image per dirtied page per interval, so the per-interval
 *     cost must track the dirty-page count and stay flat as the
 *     resident footprint grows.
 *
 *  2. timetravel[] — end-to-end cost of checkpointed execution over a
 *     real workload and backend at two checkpoint intervals: forward
 *     slowdown vs a plain functional run (the record overhead),
 *     checkpoint counts, pages copied per checkpoint,
 *     reverse-continue latency (restore + replay-distance trade-off),
 *     and whether reverse-continue lands on the final event with a
 *     bit-identical replay.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "cpu/func_cpu.hh"
#include "debug/debugger.hh"
#include "harness/experiment.hh"
#include "replay/time_travel.hh"
#include "workloads/workload.hh"

using namespace dise;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

struct Options
{
    bool quick = false;
    std::string out = "BENCH_checkpoint.json";
};

// --------------------------------------------------- COW microbench

struct CowPoint
{
    uint64_t footprintPages = 0;
    uint64_t dirtyPages = 0;
    double usPerInterval = 0.0;
    double pagesPerInterval = 0.0;
};

/**
 * Populate @p footprint pages, then run @p intervals checkpoint
 * intervals each dirtying @p dirty distinct pages several times, and
 * report the average seal cost and captured-page count.
 */
CowPoint
measureCow(uint64_t footprint, uint64_t dirty, unsigned intervals)
{
    MainMemory mem;
    const Addr base = 0x100000;
    for (uint64_t p = 0; p < footprint; ++p)
        mem.write(base + p * PageBytes, 8, p ^ 0x5a5a);

    mem.beginUndoLog();
    uint64_t captured = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned iv = 0; iv < intervals; ++iv) {
        // Several writes per page: only the first captures a pre-image.
        for (int rep = 0; rep < 4; ++rep)
            for (uint64_t p = 0; p < dirty; ++p)
                mem.write(base + p * PageBytes + 8 * rep, 8, iv + rep);
        captured += mem.sealUndoInterval().size();
    }
    double secs = secondsSince(t0);
    mem.endUndoLog();

    CowPoint pt;
    pt.footprintPages = footprint;
    pt.dirtyPages = dirty;
    pt.usPerInterval = secs / intervals * 1e6;
    pt.pagesPerInterval = static_cast<double>(captured) / intervals;
    return pt;
}

// ---------------------------------------------- end-to-end timetravel

struct TtPoint
{
    std::string workload;
    std::string backend;
    uint64_t interval = 0;
    uint64_t appInsts = 0;
    size_t events = 0;
    uint64_t checkpoints = 0;
    uint64_t pagesCopied = 0;
    double pagesPerCheckpoint = 0.0;
    double forwardMips = 0.0; ///< checkpointed+logged forward run
    double plainMips = 0.0;   ///< plain functional run, same backend
    double recordSlowdown = 0.0;
    double reverseContinueMs = 0.0;
    uint64_t replayedUops = 0;
    bool reverseLanded = false;
    bool replayExact = false;
};

TtPoint
measureTimeTravel(ExperimentRunner &runner, const std::string &name,
                  BackendKind kind, uint64_t interval, uint64_t maxInsts)
{
    const Workload &w = runner.workload(name);
    WatchSpec watch = w.watch(WatchSel::HOT);

    TtPoint pt;
    pt.workload = name;
    pt.backend = backendName(kind);
    pt.interval = interval;

    // Plain functional baseline over the same backend machinery.
    {
        DebugTarget target(w.program);
        DebuggerOptions o;
        o.backend = kind;
        Debugger dbg(target, o);
        dbg.watch(watch);
        if (!dbg.attach())
            fatal("attach failed for ", name);
        auto t0 = std::chrono::steady_clock::now();
        FuncResult r = dbg.runFunctional(maxInsts);
        double secs = secondsSince(t0);
        if (r.halt == HaltReason::Fault)
            fatal("baseline faulted: ", r.faultMessage);
        pt.plainMips = r.appInsts / secs / 1e6;
    }

    // Checkpointed, logged, event-pinned forward run plus one reverse
    // round trip, with exactness verification — all via the harness.
    DebuggerOptions o;
    o.backend = kind;
    auto outcome =
        runner.checkpointedRun(name, {watch}, o, interval, maxInsts);
    if (!outcome.supported)
        fatal("attach failed for ", name);
    pt.appInsts = outcome.appInsts;
    pt.events = outcome.events;
    pt.checkpoints = outcome.checkpoints;
    pt.pagesCopied = outcome.pagesCopied;
    pt.pagesPerCheckpoint =
        pt.checkpoints ? static_cast<double>(pt.pagesCopied) /
                             static_cast<double>(pt.checkpoints)
                       : 0.0;
    pt.forwardMips = outcome.forwardSeconds > 0
                         ? outcome.appInsts / outcome.forwardSeconds / 1e6
                         : 0.0;
    pt.recordSlowdown =
        pt.forwardMips > 0 ? pt.plainMips / pt.forwardMips : 0.0;
    pt.reverseContinueMs = outcome.reverseContinueSeconds * 1e3;
    pt.replayedUops = outcome.replayedUops;
    pt.reverseLanded = outcome.reverseLanded;
    pt.replayExact = outcome.replayExact;
    return pt;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--out") {
            opts.out = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("options:\n"
                        "  --quick     smaller sweeps (CI)\n"
                        "  --out FILE  JSON output path "
                        "(default BENCH_checkpoint.json)\n");
            std::exit(0);
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    const unsigned intervals = opts.quick ? 50 : 400;

    // 1. Dirty-page sweep at fixed footprint: cost must grow with the
    //    dirty count...
    std::vector<CowPoint> dirtySweep;
    const uint64_t fixedFootprint = opts.quick ? 512 : 2048;
    for (uint64_t d : {1, 4, 16, 64, 256})
        dirtySweep.push_back(measureCow(fixedFootprint, d, intervals));

    // 2. ...and the footprint sweep at fixed dirty count: cost must
    //    stay flat as resident memory grows.
    std::vector<CowPoint> footSweep;
    for (uint64_t f : {256, 1024, 4096})
        footSweep.push_back(measureCow(f, 16, intervals));

    TextTable cow;
    cow.setHeader({"footprint pages", "dirty pages", "us/interval",
                   "pages/interval"});
    auto addCow = [&](const CowPoint &p) {
        char a[32], b[32], c[32], d[32];
        std::snprintf(a, sizeof a, "%llu",
                      static_cast<unsigned long long>(p.footprintPages));
        std::snprintf(b, sizeof b, "%llu",
                      static_cast<unsigned long long>(p.dirtyPages));
        std::snprintf(c, sizeof c, "%.2f", p.usPerInterval);
        std::snprintf(d, sizeof d, "%.1f", p.pagesPerInterval);
        cow.addRow({a, b, c, d});
    };
    for (const auto &p : dirtySweep)
        addCow(p);
    for (const auto &p : footSweep)
        addCow(p);
    std::printf("copy-on-write snapshot cost:\n");
    std::fputs(cow.render().c_str(), stdout);

    // Sanity: snapshot cost is per dirtied page, not per resident page.
    if (footSweep.front().pagesPerInterval !=
        footSweep.back().pagesPerInterval)
        fatal("COW captured a footprint-dependent page count");

    // 3. End-to-end time travel across backends and intervals.
    const uint64_t maxInsts = opts.quick ? 60000 : 400000;
    ExperimentRunner runner;
    std::vector<TtPoint> tts;
    std::vector<BackendKind> kinds = {BackendKind::Dise,
                                      BackendKind::VirtualMemory};
    for (BackendKind kind : kinds)
        for (uint64_t interval : {2048, 16384})
            tts.push_back(measureTimeTravel(runner, "bzip2", kind,
                                            interval, maxInsts));

    TextTable tt;
    tt.setHeader({"backend", "interval", "ckpts", "pages/ckpt",
                  "record slowdown", "rev-cont ms", "exact"});
    for (const auto &p : tts) {
        char a[32], b[32], c[32], d[32], e[32];
        std::snprintf(a, sizeof a, "%llu",
                      static_cast<unsigned long long>(p.interval));
        std::snprintf(b, sizeof b, "%llu",
                      static_cast<unsigned long long>(p.checkpoints));
        std::snprintf(c, sizeof c, "%.1f", p.pagesPerCheckpoint);
        std::snprintf(d, sizeof d, "%.2fx", p.recordSlowdown);
        std::snprintf(e, sizeof e, "%.2f", p.reverseContinueMs);
        tt.addRow({p.backend, a, b, c, d, e,
                   p.reverseLanded && p.replayExact ? "yes" : "NO"});
    }
    std::printf("\ntime-travel end-to-end (bzip2, HOT watch):\n");
    std::fputs(tt.render().c_str(), stdout);

    for (const auto &p : tts)
        if (p.events > 0 && (!p.reverseLanded || !p.replayExact))
            fatal("reverse-continue/replay was not exact under ",
                  p.backend);

    std::ofstream os(opts.out);
    if (!os)
        fatal("cannot write ", opts.out);
    os << "{\n  \"bench\": \"checkpoint\",\n";
    os << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    os << "  \"cow\": {\n    \"dirty_sweep\": [\n";
    auto emitCow = [&os](const std::vector<CowPoint> &v) {
        for (size_t i = 0; i < v.size(); ++i) {
            const CowPoint &p = v[i];
            os << "      {\"footprint_pages\": " << p.footprintPages
               << ", \"dirty_pages\": " << p.dirtyPages
               << ", \"us_per_interval\": " << p.usPerInterval
               << ", \"pages_per_interval\": " << p.pagesPerInterval
               << "}" << (i + 1 < v.size() ? "," : "") << "\n";
        }
    };
    emitCow(dirtySweep);
    os << "    ],\n    \"footprint_sweep\": [\n";
    emitCow(footSweep);
    os << "    ]\n  },\n  \"timetravel\": [\n";
    for (size_t i = 0; i < tts.size(); ++i) {
        const TtPoint &p = tts[i];
        os << "    {\"workload\": \"" << p.workload
           << "\", \"backend\": \"" << p.backend
           << "\", \"checkpoint_interval\": " << p.interval
           << ", \"app_insts\": " << p.appInsts
           << ", \"events\": " << p.events
           << ", \"checkpoints\": " << p.checkpoints
           << ", \"pages_copied\": " << p.pagesCopied
           << ", \"pages_per_checkpoint\": " << p.pagesPerCheckpoint
           << ", \"forward_mips\": " << p.forwardMips
           << ", \"plain_mips\": " << p.plainMips
           << ", \"record_slowdown\": " << p.recordSlowdown
           << ", \"reverse_continue_ms\": " << p.reverseContinueMs
           << ", \"replayed_uops\": " << p.replayedUops
           << ", \"reverse_landed\": "
           << (p.reverseLanded ? "true" : "false")
           << ", \"replay_exact\": " << (p.replayExact ? "true" : "false")
           << "}" << (i + 1 < tts.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", opts.out.c_str());
    return 0;
}
