/**
 * @file
 * Figure 3: comparison of four unconditional watchpoint
 * implementations — execution time normalized to the undebugged
 * baseline (the paper plots this on a log scale up to 1e5).
 *
 * Expected shape: single-stepping is 1e3-1e5x everywhere; virtual
 * memory is erratic (near 1x on quiet pages, up to single-stepping
 * territory when watched data shares a page with hot stores); hardware
 * registers are near 1x except under silent stores (HOT on all but
 * bzip2); DISE stays within ~1.0-1.5x and is the only implementation
 * with INDIRECT and RANGE bars everywhere.
 */

#include "fig_common.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);
    std::printf("== Figure 3: unconditional watchpoints "
                "(slowdown vs baseline) ==\n");
    runComparisonGrid(run, false);
    return 0;
}
