/**
 * @file
 * Figure 7: six DISE replacement-sequence organizations on bzip2, mcf,
 * and twolf — {with, without} the conditional call/trap ISA extension,
 * crossed with {Match-Address/Evaluate-Expression (Fig. 2d),
 * Evaluate-Expression inline (Fig. 2b), Match-Address-Value inline}.
 *
 * Expected shape: without ctrap/d_ccall every store incurs a pipeline
 * flush, raising overhead several-fold ("intra-replacement-sequence
 * control transfers should be avoided even at the expense of executing
 * more instructions"); with them, Match-Address-Value is usually
 * cheapest (no loads, no calls), and Evaluate-Expression beats
 * Match-Address for very hot watchpoints (the paper's HOT/bzip2 4.62x
 * case) by avoiding handler calls.
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);
    const WatchSel sels[] = {WatchSel::HOT, WatchSel::WARM1,
                             WatchSel::WARM2, WatchSel::COLD};

    std::printf("== Figure 7: alternate DISE implementations ==\n");
    for (bool cc : {true, false}) {
        std::printf("-- %s conditional call/trap --\n",
                    cc ? "with" : "without");
        TextTable table;
        table.setHeader({"benchmark", "watchpoint",
                         "Match-Addr/Eval-Expr", "Eval-Expr/-",
                         "Match-Addr-Value/-"});
        for (const std::string name : {"bzip2", "mcf", "twolf"}) {
            for (WatchSel sel : sels) {
                std::vector<std::string> row = {name,
                                                watchSelName(sel)};
                WatchSpec spec = run.standardWatch(name, sel, false);
                for (DiseVariant variant :
                     {DiseVariant::MatchAddrEvalExpr,
                      DiseVariant::EvalExpr,
                      DiseVariant::MatchAddrValue}) {
                    DebuggerOptions dd;
                    dd.backend = BackendKind::Dise;
                    dd.dise.variant = variant;
                    dd.dise.condCallTrap = cc;
                    row.push_back(
                        slowdownCell(run.debugged(name, {spec}, dd)));
                }
                table.addRow(std::move(row));
            }
        }
        std::fputs((opts.csv ? table.renderCsv() : table.render())
                       .c_str(),
                   stdout);
    }
    return 0;
}
