/**
 * @file
 * Figure 6: impact of the number of watchpoints (1,2,3,4,5,8,16) on
 * crafty, gcc, and vortex for four implementations: the hardware-
 * register mechanism with VM fallback past four registers, and three
 * DISE replacement-sequence strategies (serial address match, bytewise
 * Bloom filter, bitwise Bloom filter).
 *
 * Expected shape: hardware wins slightly up to 4 watchpoints, then
 * collapses by orders of magnitude once VM protection kicks in (the
 * fifth watchpoint shares a page with hot data in all three kernels);
 * serial matching grows linearly with the count; the Bloom variants
 * stay flat; bytewise generally beats bitwise except where false
 * positives dominate.
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);
    const unsigned counts[] = {1, 2, 3, 4, 5, 8, 16};

    std::printf("== Figure 6: number of watchpoints ==\n");
    for (const std::string name : {"crafty", "gcc", "vortex"}) {
        std::printf("-- %s --\n", name.c_str());
        TextTable table;
        table.setHeader({"watchpoints", "Hardware/VM", "Serial (DISE)",
                         "Bytewise-Bloom (DISE)", "Bitwise-Bloom (DISE)"});
        for (unsigned n : counts) {
            const Workload &w = run.workload(name);
            std::vector<WatchSpec> specs = w.multiWatch(n);
            std::vector<std::string> row = {std::to_string(n)};

            DebuggerOptions hw;
            hw.backend = BackendKind::HardwareReg;
            row.push_back(slowdownCell(run.debugged(name, specs, hw)));

            for (MultiMatch strategy :
                 {MultiMatch::Serial, MultiMatch::BloomByte,
                  MultiMatch::BloomBit}) {
                DebuggerOptions dd;
                dd.backend = BackendKind::Dise;
                dd.dise.strategy = strategy;
                row.push_back(
                    slowdownCell(run.debugged(name, specs, dd)));
            }
            table.addRow(std::move(row));
        }
        std::fputs((opts.csv ? table.renderCsv() : table.render())
                       .c_str(),
                   stdout);
    }
    return 0;
}
