/**
 * @file
 * Table 2: watchpoint write frequency per 100K stores, plus the
 * silent-store fraction of HOT (the paper quotes ">=50% for all HOT
 * benchmarks save bzip2" in Section 5.1).
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);

    std::printf("== Table 2: watchpoint write frequency "
                "(per 100K stores) ==\n");
    TextTable table;
    table.setHeader({"benchmark", "HOT", "WARM1", "WARM2", "COLD",
                     "INDIRECT", "RANGE", "HOT silent"});
    for (const auto &name : workloadNames()) {
        auto rows = run.measureFrequencies(name);
        table.addRow({
            name,
            fmtDouble(rows[WatchSel::HOT].per100k, 1),
            fmtDouble(rows[WatchSel::WARM1].per100k, 1),
            fmtDouble(rows[WatchSel::WARM2].per100k, 1),
            fmtDouble(rows[WatchSel::COLD].per100k, 1),
            fmtDouble(rows[WatchSel::INDIRECT].per100k, 1),
            fmtDouble(rows[WatchSel::RANGE].per100k, 1),
            fmtDouble(rows[WatchSel::HOT].silentPct, 0) + "%",
        });
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
