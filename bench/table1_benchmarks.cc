/**
 * @file
 * Table 1: benchmark summary — profiled function, dynamic instruction
 * count, baseline IPC, and store density for each kernel.
 *
 * Paper reference values (SPEC2000 on the authors' Alpha setup):
 *   bzip2/generateMTFValues 1.83e9 insts, IPC 2.45, 19.8% stores
 *   crafty/InitializeAttackBoards 1.85e7, 2.39, 10.8%
 *   gcc/regclass 1.80e7, 1.90, 9.68%
 *   mcf/write_circs 1.85e6, 0.33, 16.2%
 *   twolf/uloop 2.34e6, 1.87, 13.7%
 *   vortex/BMT_TraverseSets 2.06e8, 2.25, 17.6%
 * Our kernels are scaled down (see DESIGN.md); IPC class ordering and
 * store densities are the calibrated properties.
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);

    std::printf("== Table 1: benchmark summary ==\n");
    TextTable table;
    table.setHeader({"benchmark", "function", "instructions", "IPC",
                     "store density"});
    for (const auto &name : workloadNames()) {
        const Workload &w = run.workload(name);
        const RunStats &base = run.baseline(name);
        auto sum = run.functionalSummary(name);
        table.addRow({name, w.function, std::to_string(sum.appInsts),
                      fmtDouble(base.ipc(), 2),
                      fmtDouble(100.0 * sum.storeDensity, 2) + "%"});
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
