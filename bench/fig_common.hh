/**
 * @file
 * Shared helpers for the Figure 3/4 style comparison grids.
 */

#ifndef DISE_BENCH_FIG_COMMON_HH
#define DISE_BENCH_FIG_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace dise {

/** The four implementations the paper's Figures 3 and 4 compare. */
inline const std::vector<BackendKind> &
figureBackends()
{
    static const std::vector<BackendKind> kinds = {
        BackendKind::SingleStep,
        BackendKind::VirtualMemory,
        BackendKind::HardwareReg,
        BackendKind::Dise,
    };
    return kinds;
}

/** Run the 6-benchmark x 6-watchpoint x 4-implementation grid. */
inline void
runComparisonGrid(ExperimentRunner &run, bool conditional)
{
    const WatchSel sels[] = {WatchSel::HOT,  WatchSel::WARM1,
                             WatchSel::WARM2, WatchSel::COLD,
                             WatchSel::INDIRECT, WatchSel::RANGE};
    for (WatchSel sel : sels) {
        std::printf("-- watchpoint %s --\n", watchSelName(sel));
        TextTable table;
        table.setHeader({"benchmark", "Single-Stepping", "Virtual Memory",
                         "Hardware", "DISE"});
        for (const auto &name : workloadNames()) {
            std::vector<std::string> row = {name};
            WatchSpec spec = run.standardWatch(name, sel, conditional);
            for (BackendKind kind : figureBackends()) {
                DebuggerOptions dopts;
                dopts.backend = kind;
                RunOutcome outcome = run.debugged(name, {spec}, dopts);
                row.push_back(slowdownCell(outcome));
            }
            table.addRow(std::move(row));
        }
        std::fputs((run.options().csv ? table.renderCsv()
                                      : table.render())
                       .c_str(),
                   stdout);
    }
}

} // namespace dise

#endif // DISE_BENCH_FIG_COMMON_HH
