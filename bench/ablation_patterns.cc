/**
 * @file
 * Extension: the Section 4.2 pattern-matching optimization — a more
 * specific production (store with base register sp, expanding to just
 * T.INST) exempts stack stores from watchpoint instrumentation when
 * all watched data lives in the static data segment or heap.
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);

    std::printf("== Extension: stack-store pattern exclusion "
                "(heap HOT watchpoint) ==\n");
    TextTable table;
    table.setHeader({"benchmark", "all stores expanded",
                     "stack stores exempt"});
    for (const auto &name : workloadNames()) {
        WatchSpec spec = run.standardWatch(name, WatchSel::HOT, false);
        DebuggerOptions all;
        all.backend = BackendKind::Dise;
        DebuggerOptions skip = all;
        skip.dise.excludeStackStores = true;
        table.addRow({name,
                      slowdownCell(run.debugged(name, {spec}, all)),
                      slowdownCell(run.debugged(name, {spec}, skip))});
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
