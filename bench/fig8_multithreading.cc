/**
 * @file
 * Figure 8: DISE overhead with and without the multithreaded handler
 * optimization (running DISE-called functions on a second context,
 * eliminating the call/return pipeline flushes).
 *
 * Expected shape: watchpoints with few address matches (WARM2, COLD)
 * barely change; HOT watchpoints with frequent handler calls improve
 * substantially (the paper sees nearly 2x on bzip2).
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);
    const WatchSel sels[] = {WatchSel::HOT, WatchSel::WARM1,
                             WatchSel::WARM2, WatchSel::COLD};

    std::printf("== Figure 8: multithreaded DISE handler calls ==\n");
    TextTable table;
    table.setHeader({"benchmark", "watchpoint", "without MT", "with MT"});
    for (const auto &name : workloadNames()) {
        for (WatchSel sel : sels) {
            WatchSpec spec = run.standardWatch(name, sel, false);
            DebuggerOptions dd;
            dd.backend = BackendKind::Dise;
            RunOutcome off = run.debugged(name, {spec}, dd, false);
            RunOutcome on = run.debugged(name, {spec}, dd, true);
            table.addRow({name, watchSelName(sel), slowdownCell(off),
                          slowdownCell(on)});
        }
    }
    std::fputs((opts.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    return 0;
}
