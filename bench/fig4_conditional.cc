/**
 * @file
 * Figure 4: the same grid as Figure 3 with conditional watchpoints.
 * The predicate compares the watched expression to a constant it never
 * matches, so every value change becomes a spurious predicate
 * transition for the trap-based implementations; only DISE (which
 * evaluates the predicate inside the application) keeps its constant
 * low overhead. Expected crossover (paper Section 5.2): hardware/VM
 * win only when the watched address is written less than ~once per
 * 100K stores.
 */

#include "fig_common.hh"

using namespace dise;

int
main(int argc, char **argv)
{
    HarnessOptions opts = parseHarnessArgs(argc, argv);
    ExperimentRunner run(opts);
    std::printf("== Figure 4: conditional watchpoints "
                "(slowdown vs baseline) ==\n");
    runComparisonGrid(run, true);
    return 0;
}
