/**
 * @file
 * The ordered asynchronous-event channel of a debug session.
 *
 * Replaces the pull-style event vectors of the pre-session Debugger
 * front end: instead of callers indexing into backend watchEvents()
 * lists after the fact, the session pushes every user-visible
 * occurrence (watch hit, break hit, protection fault,
 * checkpoint/restore notice, attach/halt) into one totally-ordered
 * queue, stamped with a monotonically increasing delivery sequence.
 * Clients poll or drain; remote transports forward encoded events.
 */

#ifndef DISE_SESSION_EVENT_QUEUE_HH
#define DISE_SESSION_EVENT_QUEUE_HH

#include <deque>
#include <vector>

#include "session/protocol.hh"

namespace dise {

class EventQueue
{
  public:
    /** Append @p ev, stamping its delivery sequence number. */
    void
    push(SessionEvent ev)
    {
        ev.seq = nextSeq_++;
        q_.push_back(ev);
    }

    /** Pop the oldest pending event. Returns false when empty. */
    bool
    poll(SessionEvent &ev)
    {
        if (q_.empty())
            return false;
        ev = q_.front();
        q_.pop_front();
        return true;
    }

    /** Pop everything pending, in delivery order. */
    std::vector<SessionEvent>
    drain()
    {
        std::vector<SessionEvent> out(q_.begin(), q_.end());
        q_.clear();
        return out;
    }

    void clear() { q_.clear(); }
    bool empty() const { return q_.empty(); }
    size_t size() const { return q_.size(); }
    /** Events ever delivered into the queue (drained or not). */
    uint64_t totalPushed() const { return nextSeq_; }

  private:
    std::deque<SessionEvent> q_;
    uint64_t nextSeq_ = 0;
};

} // namespace dise

#endif // DISE_SESSION_EVENT_QUEUE_HH
