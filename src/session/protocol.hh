/**
 * @file
 * The session-oriented debug protocol: every debugger capability
 * (watch/break registration, backend selection, forward and reverse
 * execution, register/memory peek-poke, statistics) expressed as typed
 * Request/Response structs with a stable, line-oriented wire encoding,
 * plus the asynchronous SessionEvent records an ordered EventQueue
 * delivers (watch hits, break hits, protection faults,
 * checkpoint/restore notices).
 *
 * The wire format is one request or response per line:
 *
 *     <verb> key=value key=value ...
 *
 * Verbs are kebab-case request names (responses use "ok" / "error" /
 * "unsupported"); integer values are decimal or 0x-hex; string values
 * are %XX-escaped (space, '%', '=', newline). Unknown keys are ignored
 * on decode, so the encoding can grow fields without breaking older
 * peers. Both the in-process DebugSession and the GDB-RSP bridge
 * (src/rsp/) speak this protocol; a remote client gets byte-identical
 * semantics to a linked-in caller.
 */

#ifndef DISE_SESSION_PROTOCOL_HH
#define DISE_SESSION_PROTOCOL_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "debug/backend.hh"
#include "debug/debugger.hh"
#include "replay/time_travel.hh"

namespace dise {

/** Every operation a debug session can be asked to perform. */
enum class RequestKind : uint8_t {
    Ping,          ///< liveness / protocol check
    SelectBackend, ///< choose the watchpoint technique (pre-attach)
    SetWatch,      ///< register (or unmute) a watchpoint
    SetBreak,      ///< register (or unmute) a breakpoint
    RemoveWatch,   ///< mute delivery (indices stay stable)
    RemoveBreak,   ///< mute delivery (indices stay stable)
    Attach,        ///< install machinery + load (otherwise lazy)
    Cont,          ///< run to the next unmuted user-visible event
    Stepi,         ///< execute count application instructions
    RunToEnd,      ///< run to halt/fault/limit
    ReverseContinue, ///< travel back to the previous unmuted event
    ReverseStep,     ///< travel back count application instructions
    RunToEvent,      ///< position just after timeline event #count
    ReadRegisters,   ///< all integer registers + pc
    WriteRegister,   ///< poke one register (logged intervention)
    ReadMemory,      ///< peek bytes
    WriteMemory,     ///< poke bytes (logged intervention)
    Stats,           ///< session statistics snapshot
    Detach,          ///< end the session
    ReplayVerify,    ///< interval-parallel timeline reconstruction
                     ///< (count = worker hint); value = state digest

    // Multi-session verbs, handled by the server front end
    // (src/server/), never by a DebugSession itself.
    SessionCreate,  ///< create a target (name= workload, backend=)
    SessionSelect,  ///< bind this connection to session id=
    SessionDestroy, ///< tear a session down (even mid-run)
    SessionList,    ///< ids of every live session
    ServerStats,    ///< server-level aggregate statistics
    Subscribe,      ///< push this session's events to the connection
    Unsubscribe,    ///< stop pushing

    // Durable-session verbs (require a server started with a store).
    SessionHibernate, ///< evict session id= (default: selected) to disk
    SessionPersist,   ///< write a crash-consistent image, keep it live
    StoreStats,       ///< on-disk store statistics

    // Observability verbs, handled by the server front end.
    TraceStart, ///< arm the flight recorder (count = ring KiB/thread)
    TraceStop,  ///< disarm; recorded spans stay dumpable
    TraceDump,  ///< fetch Chrome trace JSON chunk at offset value=,
                ///< up to count= bytes; response value = total bytes
    Metrics,    ///< Prometheus text exposition of latency histograms

    // Debug-tool verbs (src/tools/): name= selects the tool; enable
    // accepts cfg.<key>=<value> pairs. With session=, the server
    // front end resolves (and if needed resurrects) that session.
    ToolEnable,  ///< arm a tool (logged intervention)
    ToolDisable, ///< disarm a tool (logged intervention)
    ToolList,    ///< registered tools, enabled ones marked
    ToolReport,  ///< tool findings/report text + state digest

    // Sharded-server verbs. session-export / session-adopt are the
    // supervisor↔worker migration halves (a worker serializes an idle
    // session out of its table / adopts a wire-carried image,
    // digest-verified); session-migrate and shard-stats are the
    // client-facing verbs the supervisor itself answers.
    SessionMigrate, ///< move session= to shard= (supervisor only)
    ShardStats,     ///< per-shard load/session rows (supervisor only)
    SessionExport,  ///< extract session= as a hex image (worker side)
    SessionAdopt,   ///< adopt the hex image in data= (worker side)
};

const char *requestKindName(RequestKind kind);

/** Wire token for a backend ("dise", "single-step", "vm", "hwreg",
 *  "rewrite") and its parse — shared by the protocol decoder and the
 *  CLI tools so the two can never drift. */
const char *backendToken(BackendKind kind);
bool parseBackendToken(const std::string &token, BackendKind &kind);

/** One debug-session request. Which payload fields are meaningful
 *  depends on kind (see each kind's comment). */
struct Request
{
    RequestKind kind = RequestKind::Ping;
    /** Client-chosen id echoed in the response. */
    uint64_t seq = 0;

    BackendKind backend = BackendKind::Dise; ///< SelectBackend
    WatchSpec watch;                         ///< SetWatch
    BreakSpec brk;                           ///< SetBreak
    int index = -1;      ///< RemoveWatch / RemoveBreak
    uint64_t count = 1;  ///< Stepi / ReverseStep / RunToEvent
    Addr addr = 0;       ///< Read/WriteMemory
    unsigned size = 8;   ///< Read/WriteMemory byte count
    uint64_t value = 0;  ///< WriteMemory / WriteRegister
    unsigned reg = 0;    ///< WriteRegister flat index (32 = pc)
    uint64_t session = 0;  ///< SessionSelect / SessionDestroy id
    int64_t shard = -1;    ///< SessionMigrate / SessionCreate target
                           ///< shard (-1 = let the balancer pick)
    std::string name;      ///< SessionCreate: workload ("demo", ...);
                           ///< Tool*: tool name
    std::string data;      ///< SessionAdopt: hex-encoded SessionImage
    /** ToolEnable configuration, wire-encoded cfg.<key>=<value>. */
    std::vector<std::pair<std::string, std::string>> toolConfig;

    std::string describe() const;
};

enum class ResponseStatus : uint8_t {
    Ok,
    Error,       ///< malformed or invalid in the current state
    Unsupported, ///< the chosen technique cannot implement it
};

/** Session cost/position counters (Stats request). */
struct SessionStats
{
    uint64_t time = 0;     ///< stream position (µops)
    uint64_t appInsts = 0;
    size_t events = 0;       ///< timeline events discovered
    size_t checkpoints = 0;
    uint64_t pagesCopied = 0;
    uint64_t restores = 0;
    uint64_t replayedUops = 0;
};

/** Server-level aggregates (ServerStats request): per-session stats
 *  rolled up across every live session plus totals retired by
 *  destroyed ones, and the scheduler / admission counters. */
struct ServerStats
{
    uint64_t activeSessions = 0;
    uint64_t peakSessions = 0;
    uint64_t created = 0;
    uint64_t destroyed = 0;
    uint64_t rejected = 0;    ///< admission-cap rejections
    uint64_t maxSessions = 0; ///< admission cap (0 = unlimited)
    uint64_t workers = 0;     ///< scheduler worker threads
    uint64_t slices = 0;      ///< bounded execution slices run
    uint64_t jobs = 0;        ///< preemptible jobs completed
    uint64_t totalUops = 0;   ///< µops executed, all sessions ever
    uint64_t totalAppInsts = 0;
    uint64_t totalEvents = 0;
    uint64_t eventsPushed = 0; ///< events delivered to subscribers
    uint64_t subscribers = 0;  ///< live event subscriptions

    // Durable-session counters (a server with no store reports 0s).
    uint64_t dropped = 0;       ///< subscribers dropped (wedged peers)
    uint64_t hibernated = 0;    ///< sessions currently on disk only
    uint64_t evictions = 0;     ///< LRU hibernations at the cap
    uint64_t resurrections = 0; ///< sessions rebuilt from the store
    uint64_t quarantined = 0;   ///< corrupt artifacts set aside
    uint64_t faultsInjected = 0; ///< injected-fault hits (chaos runs)

    // Live-migration counters (sharded servers; 0 elsewhere).
    uint64_t migratedIn = 0;  ///< sessions adopted from another shard
    uint64_t migratedOut = 0; ///< sessions exported to another shard

    /** Latency distributions (src/obs/metrics.hh families). Encoded
     *  one per key: hist.<family>=<count>:<sum>:<b0>,<b1>,... */
    std::vector<HistogramSnapshot> hists;

    /** Per-tool counters rolled up across live sessions. Encoded one
     *  per key: tool.<name>=<uops>:<checks>:<suppressed>:<findings>. */
    std::vector<tools::ToolStatsRow> tools;
};

/** On-disk store aggregates (StoreStats request). */
struct StoreStats
{
    uint64_t images = 0; ///< live entries in the store
    uint64_t bytes = 0;  ///< bytes across live entries
    uint64_t puts = 0;
    uint64_t loads = 0;
    uint64_t erases = 0;
    uint64_t quarantined = 0;
    uint64_t orphansRemoved = 0;
};

/** One worker shard's load row (ShardStats request). Encoded one per
 *  key: shard.<index>=<pid>:<sessions>:<hibernated>:<jobs>:<uops>:
 *  <appInsts>:<queueWaitMeanUs>:<restarts>:<migratedIn>:
 *  <migratedOut>. */
struct ShardStatsRow
{
    uint64_t index = 0;
    uint64_t pid = 0;         ///< worker process id
    uint64_t sessions = 0;    ///< live sessions on the shard
    uint64_t hibernated = 0;  ///< on-disk-only sessions
    uint64_t jobs = 0;        ///< preemptible jobs completed
    uint64_t totalUops = 0;   ///< µops executed on the shard, ever
    uint64_t appInsts = 0;    ///< app insts retired on the shard, ever
    uint64_t queueWaitMeanUs = 0; ///< mean scheduler queue wait
    uint64_t restarts = 0;    ///< supervisor respawns after crashes
    uint64_t migratedIn = 0;
    uint64_t migratedOut = 0;

    bool
    operator==(const ShardStatsRow &o) const
    {
        return index == o.index && pid == o.pid &&
               sessions == o.sessions && hibernated == o.hibernated &&
               jobs == o.jobs && totalUops == o.totalUops &&
               appInsts == o.appInsts &&
               queueWaitMeanUs == o.queueWaitMeanUs &&
               restarts == o.restarts && migratedIn == o.migratedIn &&
               migratedOut == o.migratedOut;
    }
};

/** One debug-session response. */
struct Response
{
    ResponseStatus status = ResponseStatus::Ok;
    uint64_t seq = 0;                     ///< echoed request seq
    RequestKind inReplyTo = RequestKind::Ping;
    std::string error;                    ///< Error/Unsupported detail

    int index = -1;  ///< SetWatch/SetBreak: watch/break index
    bool hasStop = false;
    StopInfo stop;   ///< execution verbs: where and why we stopped
    std::vector<uint64_t> regs;  ///< ReadRegisters
    std::vector<uint8_t> bytes;  ///< ReadMemory
    uint64_t value = 0;          ///< scalar result (peek / session id)
    std::string text;            ///< bulk text payload (TraceDump chunk,
                                 ///< Metrics exposition)
    SessionStats stats;          ///< Stats
    ServerStats server;          ///< ServerStats
    StoreStats store;            ///< StoreStats
    std::vector<ShardStatsRow> shards; ///< ShardStats

    bool ok() const { return status == ResponseStatus::Ok; }
    std::string describe() const;
};

std::ostream &operator<<(std::ostream &os, const Response &resp);

/** Kinds of records the session event queue carries. */
enum class SessionEventKind : uint8_t {
    Watch,      ///< watchpoint hit
    Break,      ///< breakpoint hit
    Protection, ///< debugger-data protection fault
    Checkpoint, ///< checkpoint(s) taken (value = how many this op)
    Restore,    ///< timeline restore (value = pages rolled back)
    Attached,   ///< backend installed and target loaded
    Halted,     ///< target exited / halted / faulted
    SubscriberDropped, ///< farewell line: this subscription is being
                       ///< dropped (the peer stopped draining)
    ToolFinding,       ///< a debug tool detected something (tool=,
                       ///< detail=; addr/pc/value carry the specifics)
};

const char *sessionEventKindName(SessionEventKind kind);

/**
 * One asynchronous session event. Events are delivered in queue order
 * (seq); re-traveling across a region of the timeline re-announces its
 * events, so the queue reflects the debugger's traversal, not a
 * deduplicated history.
 */
struct SessionEvent
{
    SessionEventKind kind = SessionEventKind::Watch;
    uint64_t seq = 0;      ///< queue order, assigned by the queue
    /** Stream position; when no time-travel session is active (batch
     *  runCycles/runFunctional), the backend detection sequence. */
    uint64_t time = 0;
    uint64_t appInsts = 0;
    Addr pc = 0;
    int index = -1;        ///< watch/break index
    Addr addr = 0;         ///< watch: changed location
    uint64_t oldValue = 0;
    uint64_t newValue = 0;
    uint64_t value = 0;    ///< checkpoint/restore payload
    std::string tool;      ///< ToolFinding: emitting tool name
    std::string detail;    ///< ToolFinding: "<kind>: <free text>"

    std::string describe() const;
};

std::ostream &operator<<(std::ostream &os, const SessionEvent &ev);

/** @name Wire encoding
 * Stable one-line encodings with lossless round-trip. Decoders return
 * false (and fill @p err when given) on malformed input rather than
 * asserting: wire input is untrusted.
 */
///@{
std::string encodeRequest(const Request &req);
bool decodeRequest(const std::string &line, Request &req,
                   std::string *err = nullptr);
std::string encodeResponse(const Response &resp);
bool decodeResponse(const std::string &line, Response &resp,
                    std::string *err = nullptr);
std::string encodeEvent(const SessionEvent &ev);
bool decodeEvent(const std::string &line, SessionEvent &ev,
                 std::string *err = nullptr);
///@}

} // namespace dise

#endif // DISE_SESSION_PROTOCOL_HH
