/**
 * @file
 * The session-oriented debugger front end.
 *
 * A DebugSession owns one debugged target — the Program, the
 * DebugTarget it is loaded into, the Debugger (backend machinery), and
 * the TimeTravel controller — and exposes every capability through the
 * typed Request/Response protocol (session/protocol.hh), so the same
 * session can be driven by linked-in C++ (examples, harness), by a
 * wire peer via handleEncoded(), or by a stock GDB through the RSP
 * bridge (src/rsp/).
 *
 * Lifecycle: watchpoints, breakpoints, and the backend choice are
 * collected while the session is in its configuring phase; the backend
 * installs its machinery at the first resume request (or an explicit
 * Attach), honoring the install-before-load contract every technique
 * in the paper requires, while still letting a remote client connect,
 * inspect registers/memory, and place watchpoints before anything
 * runs. Post-attach watch/break removal mutes delivery (the machinery
 * stays installed); re-adding an identical spec unmutes it, which is
 * exactly the insert/remove cycle stock GDB performs around every
 * continue.
 *
 * All user-visible occurrences are delivered through the ordered
 * EventQueue (watch hits, break hits, protection faults,
 * checkpoint/restore notices, attach/halt), replacing the pull-style
 * event vectors of the pre-session front end. Re-traveling across a
 * stretch of the timeline re-announces its events: the queue narrates
 * the debugger's traversal.
 */

#ifndef DISE_SESSION_DEBUG_SESSION_HH
#define DISE_SESSION_DEBUG_SESSION_HH

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "debug/debugger.hh"
#include "debug/target.hh"
#include "persist/image.hh"
#include "replay/interval_replay.hh"
#include "session/event_queue.hh"
#include "session/protocol.hh"

namespace dise {

struct SessionOptions
{
    DebuggerOptions debugger{};
    TimeTravelConfig timeTravel{};
    /**
     * Called on the fresh DebugTarget before the backend installs and
     * the program loads — the hook point for non-debugging DISE use
     * (custom instrumentation productions, engine configuration).
     */
    std::function<void(DebugTarget &)> prepare;
};

class DebugSession
{
  public:
    explicit DebugSession(Program program, SessionOptions opts = {});
    ~DebugSession();

    DebugSession(const DebugSession &) = delete;
    DebugSession &operator=(const DebugSession &) = delete;

    /** @name Wire entry points */
    ///@{
    /** Execute one request; never throws on bad input. */
    Response handle(const Request &req);
    /** Decode, handle, and re-encode (one line in, one line out). */
    std::string handleEncoded(const std::string &line);
    ///@}

    /** @name Configuration (typed) */
    ///@{
    bool selectBackend(BackendKind kind);
    /** Register a new spec or re-arm a muted identical one. Before
     *  attach the spec is simply collected; after attach a *new* spec
     *  rebuilds the machinery from the initial state and replays the
     *  timeline (logged pokes included) back to the current position,
     *  so a gdb `Z` packet after `c` just works. Returns the watch
     *  index, or -1 when the backend cannot implement the enlarged set
     *  (the original session is left untouched) or the target advanced
     *  through a non-replayable batch run. */
    int setWatch(const WatchSpec &spec);
    int setBreak(const BreakSpec &spec);
    /** Mute delivery (stops and queue events). Indices stay stable;
     *  re-adding the identical spec re-arms the same slot. */
    bool removeWatch(int index);
    bool removeBreak(int index);
    bool watchMuted(int index) const;
    ///@}

    /** @name Attachment */
    ///@{
    /** Install the backend and load the target (idempotent). Returns
     *  false when the technique cannot implement the request. */
    bool attach();
    bool attached() const { return target_ != nullptr; }
    bool attachFailed() const { return attachFailed_; }
    ///@}

    /** @name Execution (checkpointed functional session) */
    ///@{
    StopInfo cont();
    /** cont() bounded to @p maxInsts application instructions: stops
     *  with reason Step when the quantum expires before any unmuted
     *  event. The job scheduler's forward slicing primitive. */
    StopInfo contSlice(uint64_t maxInsts);
    StopInfo stepi(uint64_t n = 1);
    StopInfo runToEnd();
    StopInfo reverseContinue();
    StopInfo reverseStep(uint64_t n = 1);
    StopInfo runToEvent(uint64_t n);
    ///@}

    /** @name Sliced reverse execution (job-scheduler primitives)
     * A reverse verb as a preemptible job: reverseBegin() performs the
     * cheap restore; reverseSlice() replays bounded quanta until done.
     * Mute filtering matches the one-shot verbs (a muted event restarts
     * the travel transparently). The one-shot verbs above are
     * begin + slice(0) loops. */
    ///@{
    StopInfo reverseBegin(RequestKind kind, uint64_t count, bool &done);
    StopInfo reverseSlice(uint64_t maxInsts, bool &done);
    ///@}

    /** @name Sliced post-attach spec addition (rebuild-replay job)
     * setWatchBegin/setBreakBegin validate, rebuild the machinery with
     * the enlarged set, and prepare the deterministic replay back to
     * the current position; rebuildStep() advances that replay in
     * bounded quanta. Returns the spec index (or -1: refused, session
     * untouched); when @p done comes back false, drive rebuildStep()
     * to completion before issuing other verbs. setWatch()/setBreak()
     * are begin + step(0) loops. */
    ///@{
    int setWatchBegin(const WatchSpec &spec, bool &done);
    int setBreakBegin(const BreakSpec &spec, bool &done);
    bool rebuildStep(uint64_t maxInsts);
    bool rebuildActive() const { return rebuild_.active; }
    ///@}

    /**
     * Interval-parallel reconstruction of the explored timeline on
     * share-nothing replicas (replay/interval_replay.hh): every
     * checkpoint interval is replayed independently and the results
     * are stitched by digest. The returned report's finalDigest must
     * equal digest() bit-for-bit — the determinism proof a client can
     * ask for over the wire (replay-verify).
     */
    IntervalReplay::Report verifyReplay(unsigned workers,
                                        unsigned pieces = 0,
                                        bool steal = true);
    /** The underlying plan, for callers that schedule the interval
     *  workers themselves (the server fans them out as sibling jobs
     *  over a shared work-stealing pool). pieces = 0 keeps the default
     *  seed cut. Null when there is no replayable timeline. */
    std::unique_ptr<IntervalReplay> beginIntervalReplay(
        unsigned pieces = 0, bool steal = true);

    /** Position-only stop record for the current state (reports an
     *  interrupted job's landing point). */
    StopInfo currentStop();

    /** @name Durable sessions (hibernation / resurrection)
     * exportImage() captures everything persist::SessionImage records —
     * the spec set and the replay log, not memory pages. A fresh
     * session resurrects from such an image by re-attaching identical
     * machinery, injecting the recorded log, and seek-replaying from
     * time zero to the persisted µop position (checkpoints re-taken,
     * marks re-verified on the way); resurrectBegin/resurrectStep is
     * the sliced form of that replay. Completion verifies the landing
     * position, the state digest, and the checkpoint-chain positions
     * against the image — any mismatch detaches the session and
     * reports a typed error rather than admitting divergent state. */
    ///@{
    /** Fill @p img from the live session (id/workload left to the
     *  caller). Refuses — with a reason in @p err — while a rebuild,
     *  resurrection, or sliced travel is in flight, or after a
     *  non-replayable batch run. */
    bool exportImage(persist::SessionImage &img,
                     std::string *err = nullptr);
    /** Start resurrecting this (freshly constructed) session from
     *  @p img. On true with @p done unset, drive resurrectStep(). */
    bool resurrectBegin(const persist::SessionImage &img, bool &done,
                        std::string *err = nullptr);
    bool resurrectStep(uint64_t maxInsts, bool &done,
                       std::string *err = nullptr);
    bool resurrectActive() const { return resurrect_.active; }
    ///@}

    /** Why the last refused verb (setWatch/setBreak rebuild) was
     *  refused — a typed, actionable message naming the offending
     *  journal entry when a rebuild has no instrumentation-invariant
     *  replay. Empty when nothing was refused. */
    const std::string &lastRefusal() const { return refusal_; }

    /** @name One-shot batch runs (no time-travel session)
     * The harness' cycle-level measurement path. Mutually exclusive
     * with the checkpointed verbs above: once a TimeTravel session
     * exists the target may only advance through it. */
    ///@{
    RunStats runCycles(TimingConfig cfg = {}, RunLimits limits = {});
    FuncResult runFunctional(uint64_t maxAppInsts = 0);
    ///@}

    /** @name Debug tools (src/tools/)
     * Enable/disable are logged interventions: replay re-arms the tool
     * at the same stream position, reverse travel unwinds it, and a
     * resurrected session re-derives identical tool state. */
    ///@{
    bool toolEnable(const std::string &name,
                    const std::vector<std::pair<std::string,
                                                std::string>> &cfg,
                    std::string *err = nullptr);
    bool toolDisable(const std::string &name, std::string *err = nullptr);
    /** Registered tools, comma-joined; enabled ones carry a '*'. */
    std::string toolList() const;
    /** Report text + serialized-state digest of an enabled tool. */
    bool toolReport(const std::string &name, std::string *out,
                    uint64_t *digest, std::string *err = nullptr);
    ///@}

    /** @name State access
     * Reads work before attach (against a loaded preview of the
     * unmodified image); writes before attach are recorded and
     * re-applied when the real target comes up. Register index 32
     * addresses the PC. */
    ///@{
    std::vector<uint64_t> readRegisters();
    uint64_t readRegister(unsigned index);
    bool writeRegister(unsigned index, uint64_t value);
    std::vector<uint8_t> readMemory(Addr addr, size_t len);
    bool writeMemory(Addr addr, unsigned size, uint64_t value);
    ///@}

    /** Number of registers a session exposes (32 integer + pc). */
    static constexpr unsigned NumSessionRegs = NumIntRegs + 1;
    static constexpr unsigned PcRegIndex = NumIntRegs;

    /** @name Introspection */
    ///@{
    SessionStats stats() const;
    EventQueue &events() { return events_; }
    const Program &program() const { return program_; }
    BackendKind backendKind() const { return opts_.debugger.backend; }
    bool detached() const { return detached_; }
    /** Digest of the user-visible state (parity tests). */
    uint64_t digest();
    /** Timeline events discovered so far. */
    size_t eventCount() const;
    const TimeTravel::Stats *travelStats() const;
    ///@}

    /** @name Escape hatches (in-process callers only) */
    ///@{
    DebugTarget &target();
    Debugger &debugger();
    TimeTravel &timeTravel();
    ///@}

    bool detach();

  private:
    struct PendingPoke
    {
        bool isReg = false;
        unsigned reg = 0;
        Addr addr = 0;
        unsigned size = 8;
        uint64_t value = 0;
    };

    /** Freshly built (not yet committed) machinery for one attach. */
    struct Machinery
    {
        std::unique_ptr<DebugTarget> target;
        std::unique_ptr<Debugger> debugger;
        std::vector<int> watchInstalled;
        std::vector<int> breakInstalled;
        std::vector<int> installedWatchOwner;
        std::vector<int> installedBreakOwner;
    };

    /** An event park the rebuild-replay must re-find on the rebuilt
     *  timeline: the parked-on mark's instrumentation-invariant
     *  identity (kind, pc, appInsts, owner, address) plus its absolute
     *  occurrence index among identical marks of the old timeline.
     *  `seen`/`reached` are replay-side scan state. */
    struct ParkGoal
    {
        EventMark mark{};
        int sessIdx = -1;
        Addr addr = 0;
        int occurrence = 0;
        int seen = 0;
        bool reached = false;
    };

    /** Resumable state of a post-attach rebuild-replay. */
    struct RebuildPlan
    {
        bool active = false;
        bool hadTravel = false;
        bool parkedAtEvent = false;
        bool parkedAtHalt = false;
        uint64_t targetInsts = 0;
        /** The current (outermost) park, when parkedAtEvent. */
        ParkGoal finalPark{};
        /** Interior event parks holding journal entries, time order. */
        std::vector<ParkGoal> parks;
        std::vector<Intervention> journal;
        /** Journal-parallel: index into parks of the interior park the
         *  entry was recorded at, or -1 (boundary / final park). */
        std::vector<int> journalPark;
        size_t nextJournal = 0;
        /** Mark scan cursor over the rebuilt timeline; every scanned
         *  mark feeds every goal's occurrence count, so goals sharing
         *  an identity stay consistent. */
        size_t scanned = 0;
    };

    /** Position/digest anchors of an in-flight resurrection replay. */
    struct ResurrectPlan
    {
        bool active = false;
        uint64_t time = 0;
        uint64_t appInsts = 0;
        uint64_t digest = 0;
        std::vector<persist::CheckpointMeta> checkpoints;
        /** Per-tool state digests the replay must reproduce. */
        std::vector<std::pair<std::string, uint64_t>> toolDigests;
    };

    DebugTarget &ensurePeekTarget();
    bool resurrectFinish(std::string *err);
    bool ensureAttached();
    TimeTravel &ensureTravel();
    bool buildMachinery(Machinery &m);
    void commitMachinery(Machinery &m);
    bool reattachAndReplay();
    bool rebuildBegin();
    void applyJournalEntry(const Intervention &iv);
    void markDetail(const EventMark &mk, int &sessIdx, Addr &addr) const;
    StopInfo restartMutedReverse(StopInfo stop, bool &done);
    void pumpEvents();
    const EventMark *findMark(EventKind kind, int index);
    bool stopIsMuted(const StopInfo &stop) const;
    Response dispatch(const Request &req);

    Program program_;
    SessionOptions opts_;

    // Configuring-phase state.
    std::vector<WatchSpec> pendingWatches_;
    std::vector<BreakSpec> pendingBreaks_;
    std::vector<PendingPoke> pendingPokes_;

    // Live-phase state.
    std::unique_ptr<DebugTarget> target_;
    std::unique_ptr<Debugger> debugger_;
    /** Loaded-but-undebugged image for pre-attach peeks. */
    std::unique_ptr<DebugTarget> preview_;
    bool attachFailed_ = false;
    bool detached_ = false;
    /** A cycle-level / functional batch run advanced the target
     *  outside the replayable timeline: no post-attach rebuild. */
    bool batchRan_ = false;

    std::set<int> mutedWatches_;
    std::set<int> mutedBreaks_;
    /** Specs muted before attach are never installed; these maps
     *  translate between stable session indices and the backend's
     *  installed indices (-1 = not installed). */
    std::vector<int> watchInstalled_;
    std::vector<int> breakInstalled_;
    std::vector<int> installedWatchOwner_;
    std::vector<int> installedBreakOwner_;

    RebuildPlan rebuild_;
    ResurrectPlan resurrect_;
    /** See lastRefusal(). */
    std::string refusal_;
    /** Verb of the in-flight sliced reverse (mute-restart policy). */
    RequestKind sliceVerb_ = RequestKind::Ping;

    EventQueue events_;
    /** Circular-scan hint into the replay log's mark list (used to
     *  stamp announced events with their mark positions). */
    size_t markCursor_ = 0;
    // Backend event-list positions already announced on the queue.
    size_t announcedWatch_ = 0;
    size_t announcedBreak_ = 0;
    size_t announcedProt_ = 0;
    size_t announcedToolFindings_ = 0;
    uint64_t announcedCheckpoints_ = 0;
    uint64_t announcedRestores_ = 0;
    uint64_t announcedPagesRestored_ = 0;
    bool announcedHalt_ = false;
};

} // namespace dise

#endif // DISE_SESSION_DEBUG_SESSION_HH
