#include "session/protocol.hh"

#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>

#include "common/hex.hh"

namespace dise {

namespace {

// ------------------------------------------------------------- tokens

struct KindToken
{
    RequestKind kind;
    const char *name;
};

constexpr KindToken kRequestTokens[] = {
    {RequestKind::Ping, "ping"},
    {RequestKind::SelectBackend, "select-backend"},
    {RequestKind::SetWatch, "set-watch"},
    {RequestKind::SetBreak, "set-break"},
    {RequestKind::RemoveWatch, "remove-watch"},
    {RequestKind::RemoveBreak, "remove-break"},
    {RequestKind::Attach, "attach"},
    {RequestKind::Cont, "cont"},
    {RequestKind::Stepi, "stepi"},
    {RequestKind::RunToEnd, "run-to-end"},
    {RequestKind::ReverseContinue, "reverse-continue"},
    {RequestKind::ReverseStep, "reverse-step"},
    {RequestKind::RunToEvent, "run-to-event"},
    {RequestKind::ReadRegisters, "read-registers"},
    {RequestKind::WriteRegister, "write-register"},
    {RequestKind::ReadMemory, "read-memory"},
    {RequestKind::WriteMemory, "write-memory"},
    {RequestKind::Stats, "stats"},
    {RequestKind::Detach, "detach"},
    {RequestKind::ReplayVerify, "replay-verify"},
    {RequestKind::SessionCreate, "session-create"},
    {RequestKind::SessionSelect, "session-select"},
    {RequestKind::SessionDestroy, "session-destroy"},
    {RequestKind::SessionList, "session-list"},
    {RequestKind::ServerStats, "server-stats"},
    {RequestKind::Subscribe, "subscribe"},
    {RequestKind::Unsubscribe, "unsubscribe"},
    {RequestKind::SessionHibernate, "session-hibernate"},
    {RequestKind::SessionPersist, "session-persist"},
    {RequestKind::StoreStats, "store-stats"},
    {RequestKind::TraceStart, "trace-start"},
    {RequestKind::TraceStop, "trace-stop"},
    {RequestKind::TraceDump, "trace-dump"},
    {RequestKind::Metrics, "metrics"},
    {RequestKind::ToolEnable, "tool-enable"},
    {RequestKind::ToolDisable, "tool-disable"},
    {RequestKind::ToolList, "tool-list"},
    {RequestKind::ToolReport, "tool-report"},
    {RequestKind::SessionMigrate, "session-migrate"},
    {RequestKind::ShardStats, "shard-stats"},
    {RequestKind::SessionExport, "session-export"},
    {RequestKind::SessionAdopt, "session-adopt"},
};

struct BackendToken
{
    BackendKind kind;
    const char *name;
};

constexpr BackendToken kBackendTokens[] = {
    {BackendKind::Dise, "dise"},
    {BackendKind::SingleStep, "single-step"},
    {BackendKind::VirtualMemory, "vm"},
    {BackendKind::HardwareReg, "hwreg"},
    {BackendKind::Rewrite, "rewrite"},
};

const char *
watchKindToken(WatchKind kind)
{
    switch (kind) {
      case WatchKind::Scalar: return "scalar";
      case WatchKind::Indirect: return "indirect";
      case WatchKind::Range: return "range";
    }
    return "?";
}

bool
parseWatchKind(const std::string &tok, WatchKind &kind)
{
    for (WatchKind k : {WatchKind::Scalar, WatchKind::Indirect,
                        WatchKind::Range}) {
        if (tok == watchKindToken(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

const char *
stopReasonToken(StopReason reason)
{
    switch (reason) {
      case StopReason::Start: return "start";
      case StopReason::Event: return "event";
      case StopReason::Step: return "step";
      case StopReason::Halted: return "halted";
      case StopReason::Fault: return "fault";
      case StopReason::InstLimit: return "inst-limit";
    }
    return "?";
}

bool
parseStopReason(const std::string &tok, StopReason &reason)
{
    for (StopReason r :
         {StopReason::Start, StopReason::Event, StopReason::Step,
          StopReason::Halted, StopReason::Fault, StopReason::InstLimit}) {
        if (tok == stopReasonToken(r)) {
            reason = r;
            return true;
        }
    }
    return false;
}

const char *
eventKindToken(EventKind kind)
{
    switch (kind) {
      case EventKind::Watch: return "watch";
      case EventKind::Break: return "break";
      case EventKind::Protection: return "protection";
    }
    return "?";
}

bool
parseEventKind(const std::string &tok, EventKind &kind)
{
    for (EventKind k :
         {EventKind::Watch, EventKind::Break, EventKind::Protection}) {
        if (tok == eventKindToken(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------- string escaping

bool
needsEscape(char c)
{
    // Everything the tokenizer treats as whitespace must be escaped,
    // or encode/decode would not round-trip.
    return c == ' ' || c == '%' || c == '=' || c == '\n' ||
           c == '\r' || c == '\t' || c == '\v' || c == '\f';
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (needsEscape(c)) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

bool
unescape(const std::string &s, std::string &out)
{
    out.clear();
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        int hi = hexNibble(s[i + 1]), lo = hexNibble(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return true;
}

// -------------------------------------------------- line (de)tokenizer

/** Emits "key=value" tokens onto a line. */
class LineWriter
{
  public:
    explicit LineWriter(std::string verb) : line_(std::move(verb)) {}

    void
    num(const char *key, uint64_t v)
    {
        line_ += ' ';
        line_ += key;
        line_ += '=';
        line_ += std::to_string(v);
    }

    void
    hex(const char *key, uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(v));
        line_ += ' ';
        line_ += key;
        line_ += '=';
        line_ += buf;
    }

    void
    snum(const char *key, int64_t v)
    {
        line_ += ' ';
        line_ += key;
        line_ += '=';
        line_ += std::to_string(v);
    }

    void
    str(const char *key, const std::string &v)
    {
        line_ += ' ';
        line_ += key;
        line_ += '=';
        line_ += escape(v);
    }

    const std::string &str() const { return line_; }

  private:
    std::string line_;
};

/** Parsed "verb key=value ..." line; unknown keys are ignored by the
 *  typed getters, preserving forward compatibility. */
class LineReader
{
  public:
    bool
    parse(const std::string &line, std::string *err)
    {
        std::istringstream in(line);
        if (!(in >> verb_)) {
            if (err)
                *err = "empty line";
            return false;
        }
        std::string tok;
        while (in >> tok) {
            size_t eq = tok.find('=');
            if (eq == std::string::npos || eq == 0) {
                if (err)
                    *err = "malformed token '" + tok + "'";
                return false;
            }
            kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
        }
        return true;
    }

    const std::string &verb() const { return verb_; }

    bool has(const char *key) const { return kv_.count(key) > 0; }

    bool
    num(const char *key, uint64_t &out) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return false;
        const char *s = it->second.c_str();
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 0);
        if (end == s || *end != '\0')
            return false;
        out = v;
        return true;
    }

    bool
    snum(const char *key, int64_t &out) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return false;
        const char *s = it->second.c_str();
        char *end = nullptr;
        long long v = std::strtoll(s, &end, 0);
        if (end == s || *end != '\0')
            return false;
        out = v;
        return true;
    }

    bool
    str(const char *key, std::string &out) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return false;
        return unescape(it->second, out);
    }

    std::string
    raw(const char *key) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? std::string() : it->second;
    }

    /** Visit every key=value whose key starts with @p prefix, in key
     *  order (raw values; the caller unescapes if needed). */
    template <typename Fn>
    void
    forEachWithPrefix(const std::string &prefix, Fn fn) const
    {
        for (auto it = kv_.lower_bound(prefix); it != kv_.end(); ++it) {
            if (it->first.compare(0, prefix.size(), prefix) != 0)
                break;
            fn(it->first, it->second);
        }
    }

  private:
    std::string verb_;
    std::map<std::string, std::string> kv_;
};

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

} // namespace

const char *
requestKindName(RequestKind kind)
{
    for (const auto &t : kRequestTokens)
        if (t.kind == kind)
            return t.name;
    return "?";
}

const char *
backendToken(BackendKind kind)
{
    for (const auto &t : kBackendTokens)
        if (t.kind == kind)
            return t.name;
    return "?";
}

bool
parseBackendToken(const std::string &token, BackendKind &kind)
{
    for (const auto &t : kBackendTokens) {
        if (token == t.name) {
            kind = t.kind;
            return true;
        }
    }
    return false;
}

const char *
sessionEventKindName(SessionEventKind kind)
{
    switch (kind) {
      case SessionEventKind::Watch: return "watch";
      case SessionEventKind::Break: return "break";
      case SessionEventKind::Protection: return "protection";
      case SessionEventKind::Checkpoint: return "checkpoint";
      case SessionEventKind::Restore: return "restore";
      case SessionEventKind::Attached: return "attached";
      case SessionEventKind::Halted: return "halted";
      case SessionEventKind::SubscriberDropped:
        return "subscriber-dropped";
      case SessionEventKind::ToolFinding: return "tool-finding";
    }
    return "?";
}

// ------------------------------------------------------------ request

std::string
encodeRequest(const Request &req)
{
    LineWriter w(requestKindName(req.kind));
    w.num("seq", req.seq);
    switch (req.kind) {
      case RequestKind::SelectBackend:
        w.str("backend", backendToken(req.backend));
        break;
      case RequestKind::SetWatch:
        w.str("wkind", watchKindToken(req.watch.kind));
        w.str("name", req.watch.name);
        w.hex("addr", req.watch.addr);
        w.num("size", req.watch.size);
        w.num("length", req.watch.length);
        w.num("cond", req.watch.conditional ? 1 : 0);
        w.hex("pred", req.watch.predConst);
        break;
      case RequestKind::SetBreak:
        w.hex("pc", req.brk.pc);
        w.str("name", req.brk.name);
        w.num("cond", req.brk.conditional ? 1 : 0);
        w.hex("caddr", req.brk.condAddr);
        w.num("csize", req.brk.condSize);
        w.hex("cconst", req.brk.condConst);
        break;
      case RequestKind::RemoveWatch:
      case RequestKind::RemoveBreak:
        w.snum("index", req.index);
        break;
      case RequestKind::Stepi:
      case RequestKind::ReverseStep:
      case RequestKind::RunToEvent:
      case RequestKind::ReplayVerify:
        w.num("count", req.count);
        break;
      case RequestKind::ReadMemory:
        w.hex("addr", req.addr);
        w.num("size", req.size);
        break;
      case RequestKind::WriteMemory:
        w.hex("addr", req.addr);
        w.num("size", req.size);
        w.hex("value", req.value);
        break;
      case RequestKind::WriteRegister:
        w.num("reg", req.reg);
        w.hex("value", req.value);
        break;
      case RequestKind::SessionCreate:
        w.str("name", req.name);
        w.str("backend", backendToken(req.backend));
        if (req.shard >= 0)
            w.snum("shard", req.shard);
        break;
      case RequestKind::SessionSelect:
      case RequestKind::SessionDestroy:
      case RequestKind::SessionExport:
        w.num("session", req.session);
        break;
      case RequestKind::SessionMigrate:
        w.num("session", req.session);
        if (req.shard >= 0)
            w.snum("shard", req.shard);
        break;
      case RequestKind::SessionAdopt:
        w.str("data", req.data);
        break;
      case RequestKind::SessionHibernate:
      case RequestKind::SessionPersist:
        if (req.session)
            w.num("session", req.session);
        break;
      case RequestKind::TraceStart:
        if (req.count != 1)
            w.num("count", req.count); // ring KiB per thread (0=default)
        break;
      case RequestKind::TraceDump:
        w.num("count", req.count); // max chunk bytes (0 = server pick)
        w.num("value", req.value); // byte offset into the rendered JSON
        break;
      case RequestKind::ToolEnable:
        w.str("name", req.name);
        for (const auto &kv : req.toolConfig)
            w.str(("cfg." + kv.first).c_str(), kv.second);
        if (req.session)
            w.num("session", req.session);
        break;
      case RequestKind::ToolDisable:
      case RequestKind::ToolReport:
        w.str("name", req.name);
        if (req.session)
            w.num("session", req.session);
        break;
      case RequestKind::ToolList:
        if (req.session)
            w.num("session", req.session);
        break;
      default:
        break;
    }
    return w.str();
}

bool
decodeRequest(const std::string &line, Request &req, std::string *err)
{
    LineReader r;
    if (!r.parse(line, err))
        return false;

    req = Request{};
    bool known = false;
    for (const auto &t : kRequestTokens) {
        if (r.verb() == t.name) {
            req.kind = t.kind;
            known = true;
            break;
        }
    }
    if (!known)
        return fail(err, "unknown request '" + r.verb() + "'");
    r.num("seq", req.seq);

    switch (req.kind) {
      case RequestKind::SelectBackend: {
        std::string tok = r.raw("backend");
        if (!parseBackendToken(tok, req.backend))
            return fail(err, "unknown backend '" + tok + "'");
        break;
      }
      case RequestKind::SetWatch: {
        if (!parseWatchKind(r.raw("wkind"), req.watch.kind))
            return fail(err, "bad watch kind '" + r.raw("wkind") + "'");
        r.str("name", req.watch.name);
        uint64_t v = 0;
        if (!r.num("addr", req.watch.addr))
            return fail(err, "set-watch needs addr=");
        if (r.num("size", v))
            req.watch.size = static_cast<unsigned>(v);
        r.num("length", req.watch.length);
        if (r.num("cond", v))
            req.watch.conditional = v != 0;
        r.num("pred", req.watch.predConst);
        break;
      }
      case RequestKind::SetBreak: {
        uint64_t v = 0;
        if (!r.num("pc", req.brk.pc))
            return fail(err, "set-break needs pc=");
        r.str("name", req.brk.name);
        if (r.num("cond", v))
            req.brk.conditional = v != 0;
        r.num("caddr", req.brk.condAddr);
        if (r.num("csize", v))
            req.brk.condSize = static_cast<unsigned>(v);
        r.num("cconst", req.brk.condConst);
        break;
      }
      case RequestKind::RemoveWatch:
      case RequestKind::RemoveBreak: {
        int64_t idx = -1;
        if (!r.snum("index", idx))
            return fail(err, "remove needs index=");
        req.index = static_cast<int>(idx);
        break;
      }
      case RequestKind::Stepi:
      case RequestKind::ReverseStep:
      case RequestKind::RunToEvent:
      case RequestKind::ReplayVerify:
        r.num("count", req.count);
        break;
      case RequestKind::ReadMemory:
      case RequestKind::WriteMemory: {
        uint64_t v = 0;
        if (!r.num("addr", req.addr))
            return fail(err, "memory access needs addr=");
        if (r.num("size", v))
            req.size = static_cast<unsigned>(v);
        r.num("value", req.value);
        break;
      }
      case RequestKind::WriteRegister: {
        uint64_t v = 0;
        if (!r.num("reg", v))
            return fail(err, "write-register needs reg=");
        req.reg = static_cast<unsigned>(v);
        if (!r.num("value", req.value))
            return fail(err, "write-register needs value=");
        break;
      }
      case RequestKind::SessionCreate: {
        r.str("name", req.name);
        std::string tok = r.raw("backend");
        if (!tok.empty() && !parseBackendToken(tok, req.backend))
            return fail(err, "unknown backend '" + tok + "'");
        r.snum("shard", req.shard); // optional: balancer picks
        break;
      }
      case RequestKind::SessionSelect:
      case RequestKind::SessionDestroy:
      case RequestKind::SessionExport:
        if (!r.num("session", req.session))
            return fail(err, "session verb needs session=");
        break;
      case RequestKind::SessionMigrate:
        if (!r.num("session", req.session))
            return fail(err, "session-migrate needs session=");
        r.snum("shard", req.shard); // optional: balancer picks
        break;
      case RequestKind::SessionAdopt:
        if (!r.str("data", req.data) || req.data.empty())
            return fail(err, "session-adopt needs data=");
        break;
      case RequestKind::SessionHibernate:
      case RequestKind::SessionPersist:
        r.num("session", req.session); // optional: default selected
        break;
      case RequestKind::TraceStart:
        req.count = 0;
        r.num("count", req.count);
        break;
      case RequestKind::TraceDump:
        req.count = 0;
        r.num("count", req.count);
        r.num("value", req.value);
        break;
      case RequestKind::ToolEnable:
      case RequestKind::ToolDisable:
      case RequestKind::ToolReport: {
        if (!r.str("name", req.name) || req.name.empty())
            return fail(err, "tool verb needs name=");
        r.num("session", req.session); // optional: default selected
        if (req.kind == RequestKind::ToolEnable) {
            bool cfgOk = true;
            r.forEachWithPrefix(
                "cfg.",
                [&](const std::string &key, const std::string &raw) {
                    std::string k = key.substr(4), v;
                    if (k.empty() || !unescape(raw, v)) {
                        cfgOk = false;
                        return;
                    }
                    req.toolConfig.emplace_back(std::move(k),
                                                std::move(v));
                });
            if (!cfgOk)
                return fail(err, "bad tool configuration key");
        }
        break;
      }
      case RequestKind::ToolList:
        r.num("session", req.session); // optional: default selected
        break;
      default:
        break;
    }
    return true;
}

std::string
Request::describe() const
{
    return encodeRequest(*this);
}

// ----------------------------------------------------------- response

namespace {

void
encodeStop(LineWriter &w, const StopInfo &stop)
{
    w.num("stop", 1);
    w.str("sreason", stopReasonToken(stop.reason));
    w.snum("sevent", stop.eventIndex);
    w.num("stime", stop.time);
    w.num("sinsts", stop.appInsts);
    w.hex("spc", stop.pc);
    if (stop.eventIndex >= 0) {
        w.str("skind", eventKindToken(stop.mark.kind));
        w.snum("sindex", stop.mark.index);
        w.hex("smarkpc", stop.mark.pc);
    }
}

bool
decodeStop(const LineReader &r, StopInfo &stop, std::string *err)
{
    if (!parseStopReason(r.raw("sreason"), stop.reason))
        return fail(err, "bad stop reason");
    int64_t sv = -1;
    r.snum("sevent", sv);
    stop.eventIndex = static_cast<int>(sv);
    r.num("stime", stop.time);
    r.num("sinsts", stop.appInsts);
    r.num("spc", stop.pc);
    if (stop.eventIndex >= 0) {
        parseEventKind(r.raw("skind"), stop.mark.kind);
        int64_t mi = 0;
        r.snum("sindex", mi);
        stop.mark.index = static_cast<int>(mi);
        r.num("smarkpc", stop.mark.pc);
        stop.mark.time = stop.time;
        stop.mark.appInsts = stop.appInsts;
    }
    return true;
}

} // namespace

std::string
encodeResponse(const Response &resp)
{
    const char *verb = resp.status == ResponseStatus::Ok ? "ok"
                       : resp.status == ResponseStatus::Error
                           ? "error"
                           : "unsupported";
    LineWriter w(verb);
    w.num("seq", resp.seq);
    w.str("re", requestKindName(resp.inReplyTo));
    if (!resp.error.empty())
        w.str("msg", resp.error);
    if (resp.index >= 0)
        w.snum("index", resp.index);
    if (resp.hasStop)
        encodeStop(w, resp.stop);
    if (!resp.regs.empty()) {
        std::string list;
        for (size_t i = 0; i < resp.regs.size(); ++i) {
            char buf[24];
            std::snprintf(buf, sizeof buf, "%s%llx", i ? "," : "",
                          static_cast<unsigned long long>(resp.regs[i]));
            list += buf;
        }
        w.str("regs", list);
    }
    if (!resp.bytes.empty())
        w.str("bytes", bytesToHex(resp.bytes));
    if (resp.value)
        w.hex("value", resp.value);
    if (!resp.text.empty())
        w.str("text", resp.text);
    if (resp.inReplyTo == RequestKind::Stats) {
        w.num("st.time", resp.stats.time);
        w.num("st.insts", resp.stats.appInsts);
        w.num("st.events", resp.stats.events);
        w.num("st.cps", resp.stats.checkpoints);
        w.num("st.pages", resp.stats.pagesCopied);
        w.num("st.restores", resp.stats.restores);
        w.num("st.replayed", resp.stats.replayedUops);
    }
    if (resp.inReplyTo == RequestKind::ServerStats) {
        w.num("sv.active", resp.server.activeSessions);
        w.num("sv.peak", resp.server.peakSessions);
        w.num("sv.created", resp.server.created);
        w.num("sv.destroyed", resp.server.destroyed);
        w.num("sv.rejected", resp.server.rejected);
        w.num("sv.max", resp.server.maxSessions);
        w.num("sv.workers", resp.server.workers);
        w.num("sv.slices", resp.server.slices);
        w.num("sv.jobs", resp.server.jobs);
        w.num("sv.uops", resp.server.totalUops);
        w.num("sv.insts", resp.server.totalAppInsts);
        w.num("sv.events", resp.server.totalEvents);
        w.num("sv.pushed", resp.server.eventsPushed);
        w.num("sv.subs", resp.server.subscribers);
        w.num("sv.dropped", resp.server.dropped);
        w.num("sv.hibernated", resp.server.hibernated);
        w.num("sv.evictions", resp.server.evictions);
        w.num("sv.resurrections", resp.server.resurrections);
        w.num("sv.quarantined", resp.server.quarantined);
        w.num("sv.faults", resp.server.faultsInjected);
        w.num("sv.migin", resp.server.migratedIn);
        w.num("sv.migout", resp.server.migratedOut);
        // One key per latency family: hist.<name>=count:sum:b0,b1,...
        // (digits, ':' and ',' pass the escaper untouched; unknown
        // keys are ignored by older decoders).
        for (const HistogramSnapshot &h : resp.server.hists) {
            std::string key = "hist." + h.name;
            std::string val = std::to_string(h.count) + ':' +
                              std::to_string(h.sum) + ':';
            for (size_t i = 0; i < h.buckets.size(); ++i) {
                if (i)
                    val += ',';
                val += std::to_string(h.buckets[i]);
            }
            w.str(key.c_str(), val);
        }
        // One key per tool, same dotted-family scheme:
        // tool.<name>=<uops>:<checks>:<suppressed>:<findings>.
        for (const tools::ToolStatsRow &t : resp.server.tools) {
            std::string key = "tool." + t.name;
            std::string val = std::to_string(t.uopsSeen) + ':' +
                              std::to_string(t.checks) + ':' +
                              std::to_string(t.suppressed) + ':' +
                              std::to_string(t.findings);
            w.str(key.c_str(), val);
        }
    }
    if (resp.inReplyTo == RequestKind::StoreStats) {
        w.num("ps.images", resp.store.images);
        w.num("ps.bytes", resp.store.bytes);
        w.num("ps.puts", resp.store.puts);
        w.num("ps.loads", resp.store.loads);
        w.num("ps.erases", resp.store.erases);
        w.num("ps.quarantined", resp.store.quarantined);
        w.num("ps.orphans", resp.store.orphansRemoved);
    }
    // One key per shard, same dotted-family scheme as hist./tool.:
    // shard.<index>=<pid>:<sessions>:<hibernated>:<jobs>:<uops>:
    // <appInsts>:<queueWaitMeanUs>:<restarts>:<migratedIn>:
    // <migratedOut>.
    for (const ShardStatsRow &sh : resp.shards) {
        std::string key = "shard." + std::to_string(sh.index);
        std::string val =
            std::to_string(sh.pid) + ':' +
            std::to_string(sh.sessions) + ':' +
            std::to_string(sh.hibernated) + ':' +
            std::to_string(sh.jobs) + ':' +
            std::to_string(sh.totalUops) + ':' +
            std::to_string(sh.appInsts) + ':' +
            std::to_string(sh.queueWaitMeanUs) + ':' +
            std::to_string(sh.restarts) + ':' +
            std::to_string(sh.migratedIn) + ':' +
            std::to_string(sh.migratedOut);
        w.str(key.c_str(), val);
    }
    return w.str();
}

bool
decodeResponse(const std::string &line, Response &resp, std::string *err)
{
    LineReader r;
    if (!r.parse(line, err))
        return false;

    resp = Response{};
    if (r.verb() == "ok")
        resp.status = ResponseStatus::Ok;
    else if (r.verb() == "error")
        resp.status = ResponseStatus::Error;
    else if (r.verb() == "unsupported")
        resp.status = ResponseStatus::Unsupported;
    else
        return fail(err, "unknown response verb '" + r.verb() + "'");

    r.num("seq", resp.seq);
    std::string re = r.raw("re");
    for (const auto &t : kRequestTokens)
        if (re == t.name)
            resp.inReplyTo = t.kind;
    r.str("msg", resp.error);
    int64_t idx = -1;
    if (r.snum("index", idx))
        resp.index = static_cast<int>(idx);
    uint64_t stop = 0;
    if (r.num("stop", stop) && stop) {
        resp.hasStop = true;
        if (!decodeStop(r, resp.stop, err))
            return false;
    }
    std::string list;
    if (r.str("regs", list) && !list.empty()) {
        std::istringstream in(list);
        std::string item;
        while (std::getline(in, item, ',')) {
            char *end = nullptr;
            resp.regs.push_back(std::strtoull(item.c_str(), &end, 16));
            if (end == item.c_str() || *end != '\0')
                return fail(err, "bad register list");
        }
    }
    std::string hex;
    if (r.str("bytes", hex) && !hexToBytes(hex, resp.bytes))
        return fail(err, "bad byte string");
    r.num("value", resp.value);
    r.str("text", resp.text);
    if (resp.inReplyTo == RequestKind::Stats) {
        r.num("st.time", resp.stats.time);
        r.num("st.insts", resp.stats.appInsts);
        uint64_t v = 0;
        if (r.num("st.events", v))
            resp.stats.events = v;
        if (r.num("st.cps", v))
            resp.stats.checkpoints = v;
        r.num("st.pages", resp.stats.pagesCopied);
        r.num("st.restores", resp.stats.restores);
        r.num("st.replayed", resp.stats.replayedUops);
    }
    if (resp.inReplyTo == RequestKind::ServerStats) {
        r.num("sv.active", resp.server.activeSessions);
        r.num("sv.peak", resp.server.peakSessions);
        r.num("sv.created", resp.server.created);
        r.num("sv.destroyed", resp.server.destroyed);
        r.num("sv.rejected", resp.server.rejected);
        r.num("sv.max", resp.server.maxSessions);
        r.num("sv.workers", resp.server.workers);
        r.num("sv.slices", resp.server.slices);
        r.num("sv.jobs", resp.server.jobs);
        r.num("sv.uops", resp.server.totalUops);
        r.num("sv.insts", resp.server.totalAppInsts);
        r.num("sv.events", resp.server.totalEvents);
        r.num("sv.pushed", resp.server.eventsPushed);
        r.num("sv.subs", resp.server.subscribers);
        r.num("sv.dropped", resp.server.dropped);
        r.num("sv.hibernated", resp.server.hibernated);
        r.num("sv.evictions", resp.server.evictions);
        r.num("sv.resurrections", resp.server.resurrections);
        r.num("sv.quarantined", resp.server.quarantined);
        r.num("sv.faults", resp.server.faultsInjected);
        r.num("sv.migin", resp.server.migratedIn);
        r.num("sv.migout", resp.server.migratedOut);
        bool histsOk = true;
        r.forEachWithPrefix(
            "hist.", [&](const std::string &key, const std::string &raw) {
                HistogramSnapshot h;
                h.name = key.substr(5);
                size_t c1 = raw.find(':');
                size_t c2 = c1 == std::string::npos
                                ? std::string::npos
                                : raw.find(':', c1 + 1);
                if (c2 == std::string::npos) {
                    histsOk = false;
                    return;
                }
                char *end = nullptr;
                h.count = std::strtoull(raw.c_str(), &end, 10);
                h.sum = std::strtoull(raw.c_str() + c1 + 1, &end, 10);
                std::istringstream in(raw.substr(c2 + 1));
                std::string item;
                while (std::getline(in, item, ',')) {
                    end = nullptr;
                    uint64_t b = std::strtoull(item.c_str(), &end, 10);
                    if (end == item.c_str() || *end != '\0') {
                        histsOk = false;
                        return;
                    }
                    h.buckets.push_back(b);
                }
                resp.server.hists.push_back(std::move(h));
            });
        if (!histsOk)
            return fail(err, "bad histogram encoding");
        bool toolsOk = true;
        r.forEachWithPrefix(
            "tool.", [&](const std::string &key, const std::string &raw) {
                tools::ToolStatsRow t;
                t.name = key.substr(5);
                uint64_t *fields[] = {&t.uopsSeen, &t.checks,
                                      &t.suppressed, &t.findings};
                size_t pos = 0;
                for (size_t i = 0; i < 4; ++i) {
                    char *end = nullptr;
                    *fields[i] =
                        std::strtoull(raw.c_str() + pos, &end, 10);
                    if (end == raw.c_str() + pos ||
                        (i < 3 && *end != ':') ||
                        (i == 3 && *end != '\0')) {
                        toolsOk = false;
                        return;
                    }
                    pos = end - raw.c_str() + 1;
                }
                resp.server.tools.push_back(std::move(t));
            });
        if (!toolsOk)
            return fail(err, "bad tool-stats encoding");
    }
    if (resp.inReplyTo == RequestKind::StoreStats) {
        r.num("ps.images", resp.store.images);
        r.num("ps.bytes", resp.store.bytes);
        r.num("ps.puts", resp.store.puts);
        r.num("ps.loads", resp.store.loads);
        r.num("ps.erases", resp.store.erases);
        r.num("ps.quarantined", resp.store.quarantined);
        r.num("ps.orphans", resp.store.orphansRemoved);
    }
    bool shardsOk = true;
    r.forEachWithPrefix(
        "shard.", [&](const std::string &key, const std::string &raw) {
            ShardStatsRow sh;
            char *end = nullptr;
            const char *idx = key.c_str() + 6;
            sh.index = std::strtoull(idx, &end, 10);
            if (end == idx || *end != '\0') {
                shardsOk = false;
                return;
            }
            uint64_t *fields[] = {&sh.pid, &sh.sessions,
                                  &sh.hibernated, &sh.jobs,
                                  &sh.totalUops, &sh.appInsts,
                                  &sh.queueWaitMeanUs, &sh.restarts,
                                  &sh.migratedIn, &sh.migratedOut};
            constexpr size_t n = sizeof fields / sizeof fields[0];
            size_t pos = 0;
            for (size_t i = 0; i < n; ++i) {
                end = nullptr;
                *fields[i] = std::strtoull(raw.c_str() + pos, &end, 10);
                if (end == raw.c_str() + pos ||
                    (i + 1 < n && *end != ':') ||
                    (i + 1 == n && *end != '\0')) {
                    shardsOk = false;
                    return;
                }
                pos = end - raw.c_str() + 1;
            }
            resp.shards.push_back(sh);
        });
    if (!shardsOk)
        return fail(err, "bad shard-stats encoding");
    return true;
}

std::string
Response::describe() const
{
    std::ostringstream os;
    os << (status == ResponseStatus::Ok ? "ok"
           : status == ResponseStatus::Error ? "error" : "unsupported")
       << " [" << requestKindName(inReplyTo) << "]";
    if (!error.empty())
        os << ": " << error;
    if (index >= 0)
        os << " index=" << index;
    if (hasStop)
        os << " — " << stop.describe();
    if (!regs.empty())
        os << " (" << regs.size() << " registers)";
    if (!bytes.empty())
        os << " (" << bytes.size() << " bytes)";
    if (inReplyTo == RequestKind::Stats)
        os << " t=" << stats.time << " insts=" << stats.appInsts
           << " events=" << stats.events << " checkpoints="
           << stats.checkpoints << " pagesCopied=" << stats.pagesCopied
           << " restores=" << stats.restores;
    if (inReplyTo == RequestKind::ServerStats)
        os << " sessions=" << server.activeSessions << " (peak "
           << server.peakSessions << ", cap " << server.maxSessions
           << ") created=" << server.created << " rejected="
           << server.rejected << " slices=" << server.slices
           << " uops=" << server.totalUops;
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const Response &resp)
{
    return os << resp.describe();
}

// -------------------------------------------------------------- event

std::string
encodeEvent(const SessionEvent &ev)
{
    LineWriter w("event");
    w.str("kind", sessionEventKindName(ev.kind));
    w.num("seq", ev.seq);
    w.num("time", ev.time);
    w.num("insts", ev.appInsts);
    w.hex("pc", ev.pc);
    w.snum("index", ev.index);
    w.hex("addr", ev.addr);
    w.hex("old", ev.oldValue);
    w.hex("new", ev.newValue);
    w.num("value", ev.value);
    if (!ev.tool.empty())
        w.str("tool", ev.tool);
    if (!ev.detail.empty())
        w.str("detail", ev.detail);
    return w.str();
}

bool
decodeEvent(const std::string &line, SessionEvent &ev, std::string *err)
{
    LineReader r;
    if (!r.parse(line, err))
        return false;
    if (r.verb() != "event")
        return fail(err, "not an event line");

    ev = SessionEvent{};
    std::string tok = r.raw("kind");
    bool found = false;
    for (SessionEventKind k :
         {SessionEventKind::Watch, SessionEventKind::Break,
          SessionEventKind::Protection, SessionEventKind::Checkpoint,
          SessionEventKind::Restore, SessionEventKind::Attached,
          SessionEventKind::Halted,
          SessionEventKind::SubscriberDropped,
          SessionEventKind::ToolFinding}) {
        if (tok == sessionEventKindName(k)) {
            ev.kind = k;
            found = true;
        }
    }
    if (!found)
        return fail(err, "unknown event kind '" + tok + "'");
    r.num("seq", ev.seq);
    r.num("time", ev.time);
    r.num("insts", ev.appInsts);
    r.num("pc", ev.pc);
    int64_t idx = -1;
    if (r.snum("index", idx))
        ev.index = static_cast<int>(idx);
    r.num("addr", ev.addr);
    r.num("old", ev.oldValue);
    r.num("new", ev.newValue);
    r.num("value", ev.value);
    r.str("tool", ev.tool);
    r.str("detail", ev.detail);
    return true;
}

std::string
SessionEvent::describe() const
{
    std::ostringstream os;
    os << "[" << seq << "] ";
    switch (kind) {
      case SessionEventKind::Watch:
        os << "watchpoint " << index << " hit: *0x" << std::hex << addr
           << " = 0x" << oldValue << " -> 0x" << newValue
           << " (store pc 0x" << pc << std::dec << ")";
        break;
      case SessionEventKind::Break:
        os << "breakpoint " << index << " hit at pc=0x" << std::hex << pc
           << std::dec;
        break;
      case SessionEventKind::Protection:
        os << "protection fault: pc=0x" << std::hex << pc << " addr=0x"
           << addr << std::dec;
        break;
      case SessionEventKind::Checkpoint:
        os << value << " checkpoint(s) taken";
        break;
      case SessionEventKind::Restore:
        os << "timeline restored (" << value << " page(s) rolled back)";
        break;
      case SessionEventKind::Attached:
        os << "attached; target loaded at pc=0x" << std::hex << pc
           << std::dec;
        break;
      case SessionEventKind::Halted:
        os << "target halted";
        break;
      case SessionEventKind::SubscriberDropped:
        os << "subscription dropped: the peer stopped draining events";
        break;
      case SessionEventKind::ToolFinding:
        os << "tool " << tool << ": " << detail << " pc=0x" << std::hex
           << pc << " addr=0x" << addr << " value=0x" << value
           << std::dec;
        break;
    }
    os << " @ t=" << time << ", " << appInsts << " insts";
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const SessionEvent &ev)
{
    return os << ev.describe();
}

} // namespace dise
