#include "session/debug_session.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "replay/checkpoint.hh"

namespace dise {

namespace {

bool
sameWatch(const WatchSpec &a, const WatchSpec &b)
{
    return a.kind == b.kind && a.addr == b.addr && a.size == b.size &&
           a.length == b.length && a.conditional == b.conditional &&
           a.predConst == b.predConst;
}

bool
sameBreak(const BreakSpec &a, const BreakSpec &b)
{
    return a.pc == b.pc && a.conditional == b.conditional &&
           a.condAddr == b.condAddr && a.condSize == b.condSize &&
           a.condConst == b.condConst;
}

} // namespace

DebugSession::DebugSession(Program program, SessionOptions opts)
    : program_(std::move(program)), opts_(std::move(opts))
{
}

DebugSession::~DebugSession() = default;

// ------------------------------------------------------- configuration

bool
DebugSession::selectBackend(BackendKind kind)
{
    if (attached())
        return false;
    opts_.debugger.backend = kind;
    attachFailed_ = false; // a different technique may succeed
    return true;
}

int
DebugSession::setWatchBegin(const WatchSpec &spec, bool &done)
{
    done = true;
    for (size_t i = 0; i < pendingWatches_.size(); ++i) {
        if (sameWatch(pendingWatches_[i], spec)) {
            int idx = static_cast<int>(i);
            // A spec muted before attach was never installed; arming
            // it now takes a machinery rebuild like any new spec.
            if (attached() && watchInstalled_[i] < 0) {
                mutedWatches_.erase(idx);
                if (!rebuildBegin()) {
                    mutedWatches_.insert(idx);
                    return -1;
                }
                done = !rebuild_.active;
                return idx;
            }
            mutedWatches_.erase(idx);
            return idx;
        }
    }
    if (attached()) {
        // Post-attach addition: rebuild from the initial state with
        // the enlarged set and replay to the current position. On
        // failure the original session is untouched.
        pendingWatches_.push_back(spec);
        if (!rebuildBegin()) {
            pendingWatches_.pop_back();
            return -1;
        }
        done = !rebuild_.active;
        return static_cast<int>(pendingWatches_.size()) - 1;
    }
    pendingWatches_.push_back(spec);
    return static_cast<int>(pendingWatches_.size()) - 1;
}

int
DebugSession::setWatch(const WatchSpec &spec)
{
    bool done = false;
    int idx = setWatchBegin(spec, done);
    while (idx >= 0 && !done)
        done = rebuildStep(0);
    return idx;
}

int
DebugSession::setBreakBegin(const BreakSpec &spec, bool &done)
{
    done = true;
    for (size_t i = 0; i < pendingBreaks_.size(); ++i) {
        if (sameBreak(pendingBreaks_[i], spec)) {
            int idx = static_cast<int>(i);
            if (attached() && breakInstalled_[i] < 0) {
                mutedBreaks_.erase(idx);
                if (!rebuildBegin()) {
                    mutedBreaks_.insert(idx);
                    return -1;
                }
                done = !rebuild_.active;
                return idx;
            }
            mutedBreaks_.erase(idx);
            return idx;
        }
    }
    if (attached()) {
        pendingBreaks_.push_back(spec);
        if (!rebuildBegin()) {
            pendingBreaks_.pop_back();
            return -1;
        }
        done = !rebuild_.active;
        return static_cast<int>(pendingBreaks_.size()) - 1;
    }
    pendingBreaks_.push_back(spec);
    return static_cast<int>(pendingBreaks_.size()) - 1;
}

int
DebugSession::setBreak(const BreakSpec &spec)
{
    bool done = false;
    int idx = setBreakBegin(spec, done);
    while (idx >= 0 && !done)
        done = rebuildStep(0);
    return idx;
}

bool
DebugSession::removeWatch(int index)
{
    if (index < 0 || static_cast<size_t>(index) >= pendingWatches_.size())
        return false;
    // Removal mutes in every phase (never erases): indices previously
    // handed to clients stay stable, and re-adding the identical spec
    // re-arms the same slot.
    mutedWatches_.insert(index);
    return true;
}

bool
DebugSession::removeBreak(int index)
{
    if (index < 0 || static_cast<size_t>(index) >= pendingBreaks_.size())
        return false;
    mutedBreaks_.insert(index);
    return true;
}

bool
DebugSession::watchMuted(int index) const
{
    return mutedWatches_.count(index) > 0;
}

// ---------------------------------------------------------- attachment

DebugTarget &
DebugSession::ensurePeekTarget()
{
    if (attached())
        return *target_;
    if (!preview_) {
        preview_ = std::make_unique<DebugTarget>(program_);
        preview_->load();
        for (const PendingPoke &p : pendingPokes_) {
            if (p.isReg) {
                if (p.reg == PcRegIndex)
                    preview_->arch.pc = p.value;
                else
                    preview_->arch.write(ir(p.reg), p.value);
            } else {
                preview_->mem.write(p.addr, p.size, p.value);
            }
        }
    }
    return *preview_;
}

bool
DebugSession::buildMachinery(Machinery &m)
{
    m.target = std::make_unique<DebugTarget>(program_);
    if (opts_.prepare)
        opts_.prepare(*m.target);
    m.debugger = std::make_unique<Debugger>(*m.target, opts_.debugger);
    // Specs removed before attach are never installed — a deleted
    // breakpoint must not make a capability-limited backend (hwreg,
    // vm) refuse the whole session. The maps keep session indices
    // stable against the compacted installed list.
    m.watchInstalled.assign(pendingWatches_.size(), -1);
    m.breakInstalled.assign(pendingBreaks_.size(), -1);
    for (size_t i = 0; i < pendingWatches_.size(); ++i) {
        if (mutedWatches_.count(static_cast<int>(i)))
            continue;
        m.watchInstalled[i] = m.debugger->watch(pendingWatches_[i]);
        m.installedWatchOwner.push_back(static_cast<int>(i));
    }
    for (size_t i = 0; i < pendingBreaks_.size(); ++i) {
        if (mutedBreaks_.count(static_cast<int>(i)))
            continue;
        m.breakInstalled[i] = m.debugger->breakAt(pendingBreaks_[i]);
        m.installedBreakOwner.push_back(static_cast<int>(i));
    }
    // Configuration-phase pokes fold into the initial state between
    // load and prime, so watchpoint shadows snapshot the poked image
    // (and they precede the time-travel session's time-zero
    // checkpoint). Kept across rebuilds: every re-attach re-applies
    // the same initial state.
    auto applyPokes = [this](DebugTarget &t) {
        for (const PendingPoke &p : pendingPokes_) {
            if (p.isReg) {
                if (p.reg == PcRegIndex)
                    t.arch.pc = p.value;
                else
                    t.arch.write(ir(p.reg), p.value);
            } else {
                t.mem.write(p.addr, p.size, p.value);
            }
        }
    };
    return m.debugger->attach(applyPokes);
}

void
DebugSession::commitMachinery(Machinery &m)
{
    // Order matters: the outgoing debugger references the outgoing
    // target, so it must die first.
    debugger_ = std::move(m.debugger);
    target_ = std::move(m.target);
    watchInstalled_ = std::move(m.watchInstalled);
    breakInstalled_ = std::move(m.breakInstalled);
    installedWatchOwner_ = std::move(m.installedWatchOwner);
    installedBreakOwner_ = std::move(m.installedBreakOwner);
    attachFailed_ = false;
    preview_.reset();

    // The fresh backend has empty event lists; everything re-crossed
    // during a replay is re-announced (the queue narrates traversal).
    markCursor_ = 0;
    announcedWatch_ = announcedBreak_ = announcedProt_ = 0;
    announcedCheckpoints_ = announcedRestores_ = 0;
    announcedPagesRestored_ = 0;
    announcedHalt_ = false;

    SessionEvent ev;
    ev.kind = SessionEventKind::Attached;
    ev.pc = target_->arch.pc;
    events_.push(ev);
}

bool
DebugSession::attach()
{
    if (attached())
        return true;
    DISE_ASSERT(!detached_, "session already detached");

    Machinery m;
    if (!buildMachinery(m)) {
        attachFailed_ = true;
        return false;
    }
    commitMachinery(m);
    return true;
}

/**
 * The stable identity of a mark across a machinery rebuild:
 * session-level spec index (owner-translated — stable across
 * re-installation) plus the event's data address. (kind, pc, appInsts)
 * alone is ambiguous when a newly added spec fires on the very same
 * instruction as the park event.
 */
void
DebugSession::markDetail(const EventMark &mk, int &sessIdx,
                         Addr &addr) const
{
    const DebugBackend &backend =
        const_cast<Debugger &>(*debugger_).backend();
    sessIdx = -1;
    addr = 0;
    if (mk.index < 0)
        return;
    size_t i = static_cast<size_t>(mk.index);
    switch (mk.kind) {
      case EventKind::Watch:
        if (i < backend.watchEvents().size()) {
            const WatchEvent &we = backend.watchEvents()[i];
            sessIdx = we.wpIndex >= 0 &&
                              static_cast<size_t>(we.wpIndex) <
                                  installedWatchOwner_.size()
                          ? installedWatchOwner_[we.wpIndex]
                          : we.wpIndex;
            addr = we.addr;
        }
        break;
      case EventKind::Break:
        if (i < backend.breakEvents().size()) {
            const BreakEvent &be = backend.breakEvents()[i];
            sessIdx = be.bpIndex >= 0 &&
                              static_cast<size_t>(be.bpIndex) <
                                  installedBreakOwner_.size()
                          ? installedBreakOwner_[be.bpIndex]
                          : be.bpIndex;
        }
        break;
      case EventKind::Protection:
        if (i < backend.protectionEvents().size())
            addr = backend.protectionEvents()[i].addr;
        break;
    }
}

/**
 * Re-apply one logged intervention on the rebuilt machinery. Journal
 * entries are re-recorded in order, so the new log's index of an
 * already-replayed entry equals its journal index — which is how a
 * RemoveProduction re-targets the fresh engine id its AddProduction
 * was assigned; a pre-session production is re-found by its stable
 * pattern-table slot (the rebuilt engine ran the same prepare hook).
 */
void
DebugSession::applyJournalEntry(const Intervention &iv)
{
    TimeTravel &tt = debugger_->timeTravel();
    switch (iv.kind) {
      case InterventionKind::PokeMemory:
        tt.pokeMemory(iv.addr, iv.size, iv.value);
        break;
      case InterventionKind::PokeRegister:
        tt.pokeRegister(iv.reg, iv.value);
        break;
      case InterventionKind::AddProduction:
        tt.addProduction(iv.production);
        break;
      case InterventionKind::RemoveProduction: {
        const auto &replayed = debugger_->replayLog().interventions;
        ProductionId id =
            iv.addIndex >= 0 &&
                    static_cast<size_t>(iv.addIndex) < replayed.size()
                ? replayed[iv.addIndex].engineId
                : target_->engine.idAt(iv.slot);
        DISE_ASSERT(id, "rebuild replay cannot re-target a logged "
                        "production removal");
        tt.removeProduction(id);
        break;
      }
      case InterventionKind::ToolEnable: {
        std::string terr;
        bool ok = tt.enableTool(iv.toolName, iv.toolConfig, &terr);
        DISE_ASSERT(ok, "rebuild replay could not re-enable tool '",
                    iv.toolName, "': ", terr);
        break;
      }
      case InterventionKind::ToolDisable: {
        std::string terr;
        bool ok = tt.disableTool(iv.toolName, &terr);
        DISE_ASSERT(ok, "rebuild replay could not disable tool '",
                    iv.toolName, "': ", terr);
        break;
      }
    }
}

/**
 * Plan a post-attach rebuild-replay and perform its instantaneous
 * part: capture the current position's instrumentation-invariant
 * identity and the intervention journal, build fresh machinery with
 * the enlarged spec set, and commit it. The replay back to the
 * captured position is metered out by rebuildStep(). Returns false —
 * leaving the live session untouched — when the target advanced
 * through a non-replayable batch run or the backend cannot implement
 * the enlarged set.
 */
bool
DebugSession::rebuildBegin()
{
    refusal_.clear();
    // A batch cycle-level/functional run advanced the target outside
    // the replayable timeline: there is no position to rebuild to.
    if (batchRan_) {
        refusal_ = "rebuild refused: a batch cycle-level/functional "
                   "run advanced the target outside the replayable "
                   "timeline";
        return false;
    }

    rebuild_ = RebuildPlan{};
    rebuild_.hadTravel = debugger_->timeTraveling();
    if (rebuild_.hadTravel) {
        TimeTravel &tt = debugger_->timeTravel();
        const ReplayLog &log = debugger_->replayLog();
        rebuild_.targetInsts = tt.appInsts();
        rebuild_.parkedAtHalt = tt.halted();
        // A session stopped on an event sits mid-instruction (inside
        // the detecting expansion), below app-instruction resolution.
        size_t cur = tt.eventsSoFar();
        // Build a park goal from the last mark at or before index
        // markIdx whose time is exactly @p time: the mark's identity
        // plus its absolute occurrence among identical earlier marks.
        auto makeGoal = [&](size_t markIdx) {
            ParkGoal g;
            g.mark = log.marks[markIdx];
            markDetail(g.mark, g.sessIdx, g.addr);
            for (size_t i = 0; i < markIdx; ++i) {
                const EventMark &mk = log.marks[i];
                if (mk.kind != g.mark.kind || mk.pc != g.mark.pc ||
                    mk.appInsts != g.mark.appInsts)
                    continue;
                int si = -1;
                Addr ad = 0;
                markDetail(mk, si, ad);
                if (si == g.sessIdx && ad == g.addr)
                    ++g.occurrence;
            }
            return g;
        };
        if (!rebuild_.parkedAtHalt && cur > 0 &&
            log.marks[cur - 1].time == tt.time()) {
            rebuild_.parkedAtEvent = true;
            rebuild_.finalPark = makeGoal(cur - 1);
        }
        for (size_t n = 0; n < log.interventions.size(); ++n) {
            const Intervention &iv = log.interventions[n];
            if (iv.time > tt.time())
                break; // truncated future
            // A poke recorded at an INTERIOR event park (the client
            // parked mid-expansion, poked, and then ran on) sits below
            // app-instruction resolution, so the replay must navigate
            // to it the way it navigates to the current park: by the
            // parked-on mark's identity and occurrence. Pokes at the
            // CURRENT park re-apply in phase 3, after that park is
            // re-found.
            int parkIdx = -1;
            if (iv.atEventPark &&
                !(rebuild_.parkedAtEvent && iv.time == tt.time())) {
                if (!rebuild_.parks.empty() &&
                    rebuild_.parks.back().mark.time == iv.time) {
                    // Another poke while parked at the same event.
                    parkIdx = static_cast<int>(rebuild_.parks.size()) - 1;
                } else {
                    size_t mi = log.marks.size();
                    for (size_t i = 0; i < log.marks.size(); ++i)
                        if (log.marks[i].time == iv.time)
                            mi = i; // last mark of the park's µop
                    DISE_ASSERT(mi < log.marks.size(),
                                "event-park intervention at t=",
                                iv.time, " has no event mark");
                    rebuild_.parks.push_back(makeGoal(mi));
                    parkIdx = static_cast<int>(rebuild_.parks.size()) - 1;
                }
            }
            rebuild_.journal.push_back(iv);
            rebuild_.journalPark.push_back(parkIdx);
        }
    }

    Machinery m;
    if (!buildMachinery(m)) {
        refusal_ = std::string("rebuild refused: the ") +
                   backendName(backendKind()) +
                   " backend cannot implement the enlarged spec set";
        rebuild_ = RebuildPlan{};
        return false;
    }
    commitMachinery(m);

    if (!rebuild_.hadTravel)
        return true; // nothing to replay; rebuild_ stays inactive

    debugger_->timeTravel(opts_.timeTravel);
    rebuild_.active = true;
    return true;
}

/**
 * Advance the rebuild-replay by up to @p maxInsts application
 * instructions (0 = run to completion). Stream positions (µops) shift
 * under different instrumentation, so the replay navigates by
 * instrumentation-invariant coordinates: journal entries are
 * re-applied at their application-instruction stamps (pokes recorded
 * *at* the original event park re-apply after the park is re-found),
 * and an event-position park is re-found as the corresponding event —
 * same (kind, pc, appInsts, owner, address) occurrence — of the
 * rebuilt timeline. The new spec's past hits materialize on the event
 * queue as the replay re-crosses them. Returns true when the session
 * is back at its position.
 */
bool
DebugSession::rebuildStep(uint64_t maxInsts)
{
    if (!rebuild_.active)
        return true;
    TimeTravel &tt = debugger_->timeTravel();
    uint64_t used = 0;
    auto budgetLeft = [&]() -> uint64_t {
        if (!maxInsts)
            return ~uint64_t{0};
        return maxInsts > used ? maxInsts - used : 0;
    };
    // Run exactly @p need instructions (bounded by the budget);
    // returns false when the budget expired first.
    auto boundedStepi = [&](uint64_t need) {
        while (need) {
            uint64_t n = std::min(need, budgetLeft());
            if (n == 0)
                return false;
            uint64_t before = tt.appInsts();
            tt.stepi(n);
            uint64_t ran = tt.appInsts() - before;
            DISE_ASSERT(ran > 0, "rebuild replay made no progress at ",
                        tt.appInsts(), " insts");
            used += ran;
            need -= std::min(need, ran);
        }
        return true;
    };

    // Feed every mark the replay has produced since the last scan to
    // every park goal. Matching marks only exist at a goal's own
    // instruction, and the single monotone cursor means goals sharing
    // an identity (two parks on the same instruction) count each mark
    // exactly once between them.
    auto scanMarks = [&]() {
        const auto &marks = debugger_->replayLog().marks;
        auto feed = [&](ParkGoal &g, const EventMark &mk) {
            if (g.reached || mk.kind != g.mark.kind ||
                mk.pc != g.mark.pc || mk.appInsts != g.mark.appInsts)
                return;
            int si = -1;
            Addr ad = 0;
            markDetail(mk, si, ad);
            if (si != g.sessIdx || ad != g.addr)
                return;
            if (g.seen++ == g.occurrence)
                g.reached = true;
        };
        for (; rebuild_.scanned < tt.eventsSoFar(); ++rebuild_.scanned) {
            const EventMark &mk = marks[rebuild_.scanned];
            for (ParkGoal &g : rebuild_.parks)
                feed(g, mk);
            if (rebuild_.parkedAtEvent)
                feed(rebuild_.finalPark, mk);
        }
    };
    // Run event to event until @p goal's occurrence shows up; the
    // replay then sits parked on that event's µop, exactly where the
    // original poke was recorded. Returns false on budget expiry.
    auto runToPark = [&](ParkGoal &goal) {
        while (!goal.reached) {
            uint64_t chunk =
                std::min<uint64_t>(budgetLeft(), uint64_t{1} << 30);
            if (chunk == 0)
                return false;
            uint64_t before = tt.appInsts();
            StopInfo stop = tt.contTo(tt.appInsts() + chunk);
            used += tt.appInsts() - before;
            scanMarks();
            DISE_ASSERT(goal.reached ||
                            stop.reason == StopReason::Event ||
                            stop.reason == StopReason::Step,
                        "rebuild replay lost its event position (",
                        eventKindName(goal.mark.kind), " at pc=0x",
                        std::hex, goal.mark.pc, std::dec, ", ",
                        goal.mark.appInsts, " insts)");
        }
        return true;
    };

    // Phase 1: journal entries at their app-inst stamps — or, for
    // entries recorded at an interior event park, at that park's
    // re-found event. Entries recorded while parked on the final event
    // stop wait for phase 3.
    while (rebuild_.nextJournal < rebuild_.journal.size()) {
        const Intervention &iv =
            rebuild_.journal[rebuild_.nextJournal];
        int parkIdx = rebuild_.journalPark[rebuild_.nextJournal];
        if (iv.atEventPark && parkIdx < 0)
            break; // recorded at the final park: phase 3
        if (parkIdx >= 0) {
            if (!runToPark(rebuild_.parks[parkIdx]))
                return false;
        } else if (iv.appInsts > tt.appInsts() &&
                   !boundedStepi(iv.appInsts - tt.appInsts())) {
            return false;
        }
        applyJournalEntry(iv);
        ++rebuild_.nextJournal;
    }

    // Phase 2: navigate back to the captured position.
    if (rebuild_.parkedAtHalt) {
        while (!tt.halted()) {
            uint64_t chunk =
                std::min<uint64_t>(budgetLeft(), uint64_t{1} << 30);
            if (chunk == 0)
                return false;
            uint64_t before = tt.appInsts();
            tt.stepi(chunk);
            DISE_ASSERT(tt.halted() || tt.appInsts() > before,
                        "rebuild replay made no progress toward halt");
            used += tt.appInsts() - before;
        }
    } else if (rebuild_.parkedAtEvent) {
        // Run to the final park's occurrence; the new spec's own hits
        // pass by (and get announced) on the way. (The owner
        // translation works on the NEW maps here; session indices are
        // stable.)
        if (!runToPark(rebuild_.finalPark))
            return false;
    } else if (rebuild_.targetInsts > tt.appInsts()) {
        if (!boundedStepi(rebuild_.targetInsts - tt.appInsts()))
            return false;
    }

    // Phase 3: pokes recorded at the re-found event park.
    while (rebuild_.nextJournal < rebuild_.journal.size())
        applyJournalEntry(rebuild_.journal[rebuild_.nextJournal++]);

    DISE_ASSERT(tt.appInsts() == rebuild_.targetInsts,
                "rebuild replay fell short: at ", tt.appInsts(),
                " insts, wanted ", rebuild_.targetInsts);
    pumpEvents();
    rebuild_.active = false;
    return true;
}

/** The one-shot rebuild: plan, then replay to completion. */
bool
DebugSession::reattachAndReplay()
{
    if (!rebuildBegin())
        return false;
    while (!rebuildStep(0)) {
    }
    return true;
}

bool
DebugSession::ensureAttached()
{
    return attach();
}

TimeTravel &
DebugSession::ensureTravel()
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    return debugger_->timeTravel(opts_.timeTravel);
}

// ------------------------------------------------------ event delivery

const TimeTravel::Stats *
DebugSession::travelStats() const
{
    if (!debugger_ || !debugger_->timeTraveling())
        return nullptr;
    return &const_cast<Debugger &>(*debugger_).timeTravel().stats();
}

/**
 * Reconcile the queue with everything that happened during the last
 * operation: announce a restore if the timeline was rolled back, then
 * any newly discovered (or re-crossed) watch/break/protection events,
 * then checkpoint notices and halts.
 */
void
DebugSession::pumpEvents()
{
    if (!debugger_)
        return;
    DebugBackend &backend = debugger_->backend();
    const TimeTravel::Stats *ts = travelStats();
    uint64_t now = 0, insts = 0;
    bool halted = false;
    if (debugger_->timeTraveling()) {
        TimeTravel &tt = debugger_->timeTravel();
        now = tt.time();
        insts = tt.appInsts();
        halted = tt.halted();
    }

    if (ts && ts->restores > announcedRestores_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Restore;
        ev.time = now;
        ev.appInsts = insts;
        ev.value = ts->pagesRestored - announcedPagesRestored_;
        events_.push(ev);
        announcedRestores_ = ts->restores;
        announcedPagesRestored_ = ts->pagesRestored;
    }

    const auto &ws = backend.watchEvents();
    const auto &bs = backend.breakEvents();
    const auto &ps = backend.protectionEvents();
    // A restore rolled the lists back: later positions will be
    // re-announced if execution re-crosses them.
    announcedWatch_ = std::min(announcedWatch_, ws.size());
    announcedBreak_ = std::min(announcedBreak_, bs.size());
    announcedProt_ = std::min(announcedProt_, ps.size());

    // Each announced event carries its OWN timeline position (the
    // recorded mark), not the position the announcement happens to be
    // made at — a runToEnd() that crosses five hits must deliver five
    // distinct stamps. Without a time-travel session there is no
    // stream position; the backend's detection sequence is the best
    // per-event stamp.
    bool hasTravel = debugger_->timeTraveling();
    auto sessionWatchIdx = [&](int installed) {
        return installed >= 0 &&
                       static_cast<size_t>(installed) <
                           installedWatchOwner_.size()
                   ? installedWatchOwner_[installed]
                   : installed;
    };
    auto sessionBreakIdx = [&](int installed) {
        return installed >= 0 &&
                       static_cast<size_t>(installed) <
                           installedBreakOwner_.size()
                   ? installedBreakOwner_[installed]
                   : installed;
    };
    for (; announcedWatch_ < ws.size(); ++announcedWatch_) {
        const WatchEvent &we = ws[announcedWatch_];
        int idx = sessionWatchIdx(we.wpIndex);
        if (mutedWatches_.count(idx))
            continue; // muted: consume the position, deliver nothing
        const EventMark *mark =
            hasTravel ? findMark(EventKind::Watch,
                                 static_cast<int>(announcedWatch_))
                      : nullptr;
        SessionEvent ev;
        ev.kind = SessionEventKind::Watch;
        ev.time = mark ? mark->time : (hasTravel ? now : we.seq);
        ev.appInsts = mark ? mark->appInsts : insts;
        ev.pc = we.pc;
        ev.index = idx;
        ev.addr = we.addr;
        ev.oldValue = we.oldValue;
        ev.newValue = we.newValue;
        events_.push(ev);
    }
    for (; announcedBreak_ < bs.size(); ++announcedBreak_) {
        const BreakEvent &be = bs[announcedBreak_];
        int idx = sessionBreakIdx(be.bpIndex);
        if (mutedBreaks_.count(idx))
            continue;
        const EventMark *mark =
            hasTravel ? findMark(EventKind::Break,
                                 static_cast<int>(announcedBreak_))
                      : nullptr;
        SessionEvent ev;
        ev.kind = SessionEventKind::Break;
        ev.time = mark ? mark->time : (hasTravel ? now : be.seq);
        ev.appInsts = mark ? mark->appInsts : insts;
        ev.pc = be.pc;
        ev.index = idx;
        events_.push(ev);
    }
    for (; announcedProt_ < ps.size(); ++announcedProt_) {
        const ProtectionEvent &pe = ps[announcedProt_];
        const EventMark *mark =
            hasTravel ? findMark(EventKind::Protection,
                                 static_cast<int>(announcedProt_))
                      : nullptr;
        SessionEvent ev;
        ev.kind = SessionEventKind::Protection;
        ev.time = mark ? mark->time : now;
        ev.appInsts = mark ? mark->appInsts : insts;
        ev.pc = pe.pc;
        ev.addr = pe.addr;
        events_.push(ev);
    }

    // Tool findings ride the same ordered queue. The findings list
    // rolls back with the backend host state on restore, so (exactly
    // like the event lists above) re-crossing a stretch of the
    // timeline re-announces its findings.
    const auto &tfs = backend.tools().findings();
    announcedToolFindings_ = std::min(announcedToolFindings_, tfs.size());
    for (; announcedToolFindings_ < tfs.size();
         ++announcedToolFindings_) {
        const tools::ToolFinding &f = tfs[announcedToolFindings_];
        SessionEvent ev;
        ev.kind = SessionEventKind::ToolFinding;
        ev.time = now;
        ev.appInsts = insts;
        ev.pc = f.pc;
        ev.addr = f.addr;
        ev.value = f.value;
        ev.tool = f.tool;
        ev.detail = f.detail.empty() ? f.kind : f.kind + ": " + f.detail;
        events_.push(ev);
    }

    if (ts && ts->checkpointsTaken > announcedCheckpoints_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Checkpoint;
        ev.time = now;
        ev.appInsts = insts;
        ev.value = ts->checkpointsTaken - announcedCheckpoints_;
        events_.push(ev);
        announcedCheckpoints_ = ts->checkpointsTaken;
    }

    if (halted && !announcedHalt_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Halted;
        ev.time = now;
        ev.appInsts = insts;
        events_.push(ev);
        announcedHalt_ = true;
    } else if (!halted) {
        announcedHalt_ = false; // reverse travel un-halted the target
    }
}

/**
 * The recorded mark for the @p index -th backend event of @p kind.
 * Announcements arrive in per-kind index order, so a circular scan
 * from the last hit position amortizes to O(1) per event.
 */
const EventMark *
DebugSession::findMark(EventKind kind, int index)
{
    const auto &marks = debugger_->replayLog().marks;
    if (marks.empty())
        return nullptr;
    if (markCursor_ >= marks.size())
        markCursor_ = 0;
    for (size_t n = 0; n < marks.size(); ++n) {
        size_t i = (markCursor_ + n) % marks.size();
        if (marks[i].kind == kind && marks[i].index == index) {
            markCursor_ = i + 1;
            return &marks[i];
        }
    }
    return nullptr;
}

bool
DebugSession::stopIsMuted(const StopInfo &stop) const
{
    if (stop.reason != StopReason::Event || !debugger_)
        return false;
    const DebugBackend &backend =
        const_cast<Debugger &>(*debugger_).backend();
    // Backend event records carry installed indices; translate to the
    // stable session index before consulting the mute set.
    size_t i = static_cast<size_t>(stop.mark.index);
    switch (stop.mark.kind) {
      case EventKind::Watch:
        if (i < backend.watchEvents().size()) {
            int installed = backend.watchEvents()[i].wpIndex;
            int idx = installed >= 0 &&
                              static_cast<size_t>(installed) <
                                  installedWatchOwner_.size()
                          ? installedWatchOwner_[installed]
                          : installed;
            return mutedWatches_.count(idx) > 0;
        }
        return false;
      case EventKind::Break:
        if (i < backend.breakEvents().size()) {
            int installed = backend.breakEvents()[i].bpIndex;
            int idx = installed >= 0 &&
                              static_cast<size_t>(installed) <
                                  installedBreakOwner_.size()
                          ? installedBreakOwner_[installed]
                          : installed;
            return mutedBreaks_.count(idx) > 0;
        }
        return false;
      case EventKind::Protection:
        return false;
    }
    return false;
}

// ----------------------------------------------------------- execution

StopInfo
DebugSession::cont()
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop;
    do {
        stop = tt.cont();
        pumpEvents();
    } while (stop.reason == StopReason::Event && stopIsMuted(stop));
    return stop;
}

StopInfo
DebugSession::contSlice(uint64_t maxInsts)
{
    TimeTravel &tt = ensureTravel();
    uint64_t limit = tt.appInsts() + maxInsts;
    StopInfo stop;
    do {
        stop = tt.contTo(limit);
        pumpEvents();
    } while (stop.reason == StopReason::Event && stopIsMuted(stop));
    return stop;
}

StopInfo
DebugSession::stepi(uint64_t n)
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.stepi(n);
    pumpEvents();
    return stop;
}

StopInfo
DebugSession::runToEnd()
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.runToEnd();
    pumpEvents();
    return stop;
}

/**
 * Muted events must not surface from a reverse-continue: when a sliced
 * travel finishes on one, transparently begin another travel further
 * into the past (the non-sliced verbs relied on a retry loop; the
 * sliced form restarts inside the same job).
 */
StopInfo
DebugSession::restartMutedReverse(StopInfo stop, bool &done)
{
    if (sliceVerb_ != RequestKind::ReverseContinue)
        return stop;
    TimeTravel &tt = debugger_->timeTravel();
    while (done && stop.reason == StopReason::Event &&
           stopIsMuted(stop)) {
        stop = tt.travelBegin(TravelVerb::ReverseContinue, 0, done);
        pumpEvents();
    }
    return stop;
}

StopInfo
DebugSession::reverseBegin(RequestKind kind, uint64_t count, bool &done)
{
    DISE_ASSERT(kind == RequestKind::ReverseContinue ||
                    kind == RequestKind::ReverseStep ||
                    kind == RequestKind::RunToEvent,
                "not a sliced reverse verb");
    TimeTravel &tt = ensureTravel();
    sliceVerb_ = kind;
    TravelVerb verb = kind == RequestKind::ReverseContinue
                          ? TravelVerb::ReverseContinue
                          : kind == RequestKind::ReverseStep
                                ? TravelVerb::ReverseStep
                                : TravelVerb::RunToEvent;
    StopInfo stop = tt.travelBegin(verb, count, done);
    pumpEvents();
    if (done)
        stop = restartMutedReverse(stop, done);
    return stop;
}

StopInfo
DebugSession::reverseSlice(uint64_t maxInsts, bool &done)
{
    DISE_ASSERT(debugger_ && debugger_->timeTraveling(),
                "reverseSlice() without reverseBegin()");
    TimeTravel &tt = debugger_->timeTravel();
    StopInfo stop = tt.travelStep(maxInsts, done);
    pumpEvents();
    if (done)
        stop = restartMutedReverse(stop, done);
    return stop;
}

StopInfo
DebugSession::reverseContinue()
{
    bool done = false;
    StopInfo stop = reverseBegin(RequestKind::ReverseContinue, 0, done);
    while (!done)
        stop = reverseSlice(0, done);
    return stop;
}

StopInfo
DebugSession::reverseStep(uint64_t n)
{
    bool done = false;
    StopInfo stop = reverseBegin(RequestKind::ReverseStep, n, done);
    while (!done)
        stop = reverseSlice(0, done);
    return stop;
}

StopInfo
DebugSession::runToEvent(uint64_t n)
{
    bool done = false;
    StopInfo stop = reverseBegin(RequestKind::RunToEvent, n, done);
    while (!done)
        stop = reverseSlice(0, done);
    return stop;
}

std::unique_ptr<IntervalReplay>
DebugSession::beginIntervalReplay(unsigned pieces, bool steal)
{
    if (!attached() || !debugger_->timeTraveling() || batchRan_)
        return nullptr;
    // Each interval worker gets machinery built exactly the way this
    // session's was (same specs, same initial-state pokes, same
    // prepare hook), so its replay is bit-deterministic against the
    // live timeline.
    IntervalReplay::ReplicaFactory factory =
        [this](std::unique_ptr<DebugTarget> &t,
               std::unique_ptr<Debugger> &d) {
            Machinery m;
            if (!buildMachinery(m))
                return false;
            t = std::move(m.target);
            d = std::move(m.debugger);
            return true;
        };
    IntervalReplay::Options opts;
    if (pieces)
        opts.pieces = pieces;
    opts.steal = steal;
    return std::make_unique<IntervalReplay>(
        debugger_->timeTravel(), *target_, debugger_->backend(),
        debugger_->replayLog(), std::move(factory), opts);
}

IntervalReplay::Report
DebugSession::verifyReplay(unsigned workers, unsigned pieces,
                           bool steal)
{
    std::unique_ptr<IntervalReplay> ir =
        beginIntervalReplay(pieces, steal);
    if (!ir) {
        IntervalReplay::Report r;
        r.error = "no replayable timeline (attach and run first, and "
                  "batch runs cannot be reconstructed)";
        return r;
    }
    return ir->run(workers);
}

StopInfo
DebugSession::currentStop()
{
    StopInfo s;
    s.reason = StopReason::Step;
    if (debugger_ && debugger_->timeTraveling()) {
        TimeTravel &tt = debugger_->timeTravel();
        s.time = tt.time();
        s.appInsts = tt.appInsts();
        s.pc = target_->arch.pc;
    }
    return s;
}

RunStats
DebugSession::runCycles(TimingConfig cfg, RunLimits limits)
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    batchRan_ = true;
    RunStats stats = debugger_->run(cfg, limits);
    pumpEvents();
    if (stats.halt != HaltReason::None && !announcedHalt_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Halted;
        ev.appInsts = stats.appInsts;
        events_.push(ev);
        announcedHalt_ = true;
    }
    return stats;
}

FuncResult
DebugSession::runFunctional(uint64_t maxAppInsts)
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    batchRan_ = true;
    FuncResult res = debugger_->runFunctional(maxAppInsts);
    pumpEvents();
    return res;
}

// --------------------------------------------------------- peek / poke

std::vector<uint64_t>
DebugSession::readRegisters()
{
    DebugTarget &t = ensurePeekTarget();
    std::vector<uint64_t> regs(NumSessionRegs);
    for (unsigned i = 0; i < NumIntRegs; ++i)
        regs[i] = t.arch.read(ir(i));
    regs[PcRegIndex] = t.arch.pc;
    return regs;
}

uint64_t
DebugSession::readRegister(unsigned index)
{
    DebugTarget &t = ensurePeekTarget();
    if (index == PcRegIndex)
        return t.arch.pc;
    if (index < NumIntRegs)
        return t.arch.read(ir(index));
    return 0;
}

bool
DebugSession::writeRegister(unsigned index, uint64_t value)
{
    if (index >= NumSessionRegs)
        return false;
    if (!attached()) {
        PendingPoke p;
        p.isReg = true;
        p.reg = index;
        p.value = value;
        pendingPokes_.push_back(p);
        if (preview_) {
            if (index == PcRegIndex)
                preview_->arch.pc = value;
            else
                preview_->arch.write(ir(index), value);
        }
        return true;
    }
    if (debugger_->timeTraveling()) {
        if (index == PcRegIndex)
            return false; // the PC is not a loggable intervention
        debugger_->timeTravel().pokeRegister(ir(index), value);
        return true;
    }
    // Attached but not yet resumed: the target sits at its initial
    // state, so the poke is part of that initial state — record it
    // with the configuration-phase pokes so a machinery rebuild
    // (post-attach spec addition) re-applies it instead of silently
    // reverting the write.
    PendingPoke p;
    p.isReg = true;
    p.reg = index;
    p.value = value;
    pendingPokes_.push_back(p);
    if (index == PcRegIndex)
        target_->arch.pc = value;
    else
        target_->arch.write(ir(index), value);
    return true;
}

std::vector<uint8_t>
DebugSession::readMemory(Addr addr, size_t len)
{
    DebugTarget &t = ensurePeekTarget();
    std::vector<uint8_t> bytes(len);
    t.mem.readBlock(addr, bytes.data(), len);
    return bytes;
}

bool
DebugSession::writeMemory(Addr addr, unsigned size, uint64_t value)
{
    if (size == 0 || size > 8)
        return false;
    if (!attached()) {
        PendingPoke p;
        p.addr = addr;
        p.size = size;
        p.value = value;
        pendingPokes_.push_back(p);
        if (preview_)
            preview_->mem.write(addr, size, value);
        return true;
    }
    if (debugger_->timeTraveling()) {
        debugger_->timeTravel().pokeMemory(addr, size, value);
        return true;
    }
    // See writeRegister: pre-resume pokes belong to the initial state
    // and must survive a machinery rebuild.
    PendingPoke p;
    p.addr = addr;
    p.size = size;
    p.value = value;
    pendingPokes_.push_back(p);
    target_->mem.write(addr, size, value);
    return true;
}

// -------------------------------------------------------- introspection

SessionStats
DebugSession::stats() const
{
    SessionStats s;
    if (const TimeTravel::Stats *ts = travelStats()) {
        TimeTravel &tt = const_cast<Debugger &>(*debugger_).timeTravel();
        s.time = tt.time();
        s.appInsts = tt.appInsts();
        s.events = tt.eventCount();
        s.checkpoints = tt.checkpointCount();
        s.pagesCopied = ts->pagesCopied;
        s.restores = ts->restores;
        s.replayedUops = ts->replayedUops;
    } else if (debugger_) {
        s.events = debugger_->backend().totalEvents();
    }
    return s;
}

uint64_t
DebugSession::digest()
{
    DISE_ASSERT(attached(), "digest() requires an attached session");
    if (debugger_->timeTraveling())
        return debugger_->timeTravel().digest();
    return stateDigest(*target_, debugger_->backend());
}

size_t
DebugSession::eventCount() const
{
    if (debugger_ && debugger_->timeTraveling())
        return const_cast<Debugger &>(*debugger_).timeTravel()
            .eventCount();
    return debugger_ ? debugger_->backend().totalEvents() : 0;
}

DebugTarget &
DebugSession::target()
{
    return ensurePeekTarget();
}

Debugger &
DebugSession::debugger()
{
    DISE_ASSERT(attached(), "no debugger before attach");
    return *debugger_;
}

TimeTravel &
DebugSession::timeTravel()
{
    return ensureTravel();
}

bool
DebugSession::detach()
{
    debugger_.reset(); // tears down the time-travel session first
    target_.reset();
    preview_.reset();
    detached_ = true;
    return true;
}

// -------------------------------------------------------- debug tools

bool
DebugSession::toolEnable(
    const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &cfg,
    std::string *err)
{
    if (detached_) {
        if (err)
            *err = "session is detached";
        return false;
    }
    if (!ensureAttached()) {
        if (err)
            *err = std::string("the ") + backendName(backendKind()) +
                   " backend cannot attach this session";
        return false;
    }
    TimeTravel &tt = ensureTravel();
    if (!tt.enableTool(name, cfg, err))
        return false;
    pumpEvents();
    return true;
}

bool
DebugSession::toolDisable(const std::string &name, std::string *err)
{
    if (!attached()) {
        if (err)
            *err = "tool '" + name + "' is not enabled";
        return false;
    }
    TimeTravel &tt = ensureTravel();
    if (!tt.disableTool(name, err))
        return false;
    pumpEvents();
    return true;
}

std::string
DebugSession::toolList() const
{
    std::string out;
    for (const std::string &n :
         tools::ToolRegistry::instance().names()) {
        if (!out.empty())
            out += ',';
        out += n;
        if (attached() && debugger_->backend().tools().isEnabled(n))
            out += '*';
    }
    return out;
}

bool
DebugSession::toolReport(const std::string &name, std::string *out,
                         uint64_t *digest, std::string *err)
{
    if (!attached()) {
        if (err)
            *err = tools::ToolRegistry::instance().make(name)
                       ? "tool '" + name + "' is not enabled"
                       : "unknown tool '" + name + "'";
        return false;
    }
    const tools::ToolSet &ts = debugger_->backend().tools();
    if (!ts.report(name, out, err))
        return false;
    if (digest)
        *digest = ts.digest(name);
    return true;
}

// ---------------------------------------------------- durable sessions

bool
DebugSession::exportImage(persist::SessionImage &img, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (detached_)
        return fail("a detached session has no state to persist");
    if (batchRan_)
        return fail("a batch cycle-level/functional run advanced the "
                    "target outside the replayable timeline; the "
                    "session cannot be reconstructed from its log");
    if (rebuild_.active)
        return fail("a rebuild-replay is in flight; drive it to "
                    "completion before persisting");
    if (resurrect_.active)
        return fail("a resurrection replay is in flight");

    img.backend = opts_.debugger.backend;
    img.attached = attached();
    img.watches = pendingWatches_;
    img.breaks = pendingBreaks_;
    img.mutedWatches.assign(mutedWatches_.begin(), mutedWatches_.end());
    img.mutedBreaks.assign(mutedBreaks_.begin(), mutedBreaks_.end());
    img.pokes.clear();
    for (const PendingPoke &p : pendingPokes_)
        img.pokes.push_back({p.isReg, p.reg, p.addr, p.size, p.value});

    img.hasTravel = attached() && debugger_->timeTraveling();
    img.seed = 0;
    img.programName.clear();
    img.interventions.clear();
    img.marks.clear();
    img.time = 0;
    img.appInsts = 0;
    img.digest = 0;
    img.checkpoints.clear();
    if (img.hasTravel) {
        TimeTravel &tt = debugger_->timeTravel();
        if (tt.travelActive())
            return fail("a sliced travel is in flight; drive it to "
                        "completion before persisting");
        const ReplayLog &log = debugger_->replayLog();
        img.seed = log.seed;
        img.programName = log.programName;
        img.interventions = log.interventions;
        img.marks = log.marks;
        img.time = tt.time();
        img.appInsts = tt.appInsts();
        img.digest = tt.digest();
        for (const Checkpoint &cp : tt.checkpoints())
            img.checkpoints.push_back({cp.time, cp.appInsts});
    } else if (attached()) {
        img.digest = digest();
    }
    img.toolDigests.clear();
    if (attached()) {
        const tools::ToolSet &ts = debugger_->backend().tools();
        for (const std::string &n : ts.enabledNames())
            img.toolDigests.push_back({n, ts.digest(n)});
    }
    return true;
}

bool
DebugSession::resurrectBegin(const persist::SessionImage &img,
                             bool &done, std::string *err)
{
    done = true;
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (attached() || detached_ || !pendingWatches_.empty() ||
        !pendingBreaks_.empty() || !pendingPokes_.empty())
        return fail("resurrection requires a freshly constructed "
                    "session");

    opts_.debugger.backend = img.backend;
    pendingWatches_ = img.watches;
    pendingBreaks_ = img.breaks;
    mutedWatches_.clear();
    mutedBreaks_.clear();
    for (int32_t i : img.mutedWatches)
        mutedWatches_.insert(i);
    for (int32_t i : img.mutedBreaks)
        mutedBreaks_.insert(i);
    for (const persist::SessionImage::Poke &p : img.pokes)
        pendingPokes_.push_back({p.isReg, p.reg, p.addr, p.size,
                                 p.value});

    if (!img.attached)
        return true; // config-only image: nothing to replay

    // Divergence during the replay (a mark that does not re-fire at
    // its recorded position, a production removal that cannot
    // re-target) surfaces as an assertion; convert it into a typed
    // failure with the session safely detached rather than admitting
    // half-replayed state.
    try {
        if (!attach())
            return fail(std::string("the ") + backendName(img.backend) +
                        " backend refused the persisted spec set");
        if (!img.hasTravel) {
            uint64_t live = digest();
            if (live != img.digest) {
                detach();
                return fail("re-attach digest mismatch: live " +
                            std::to_string(live) + ", image says " +
                            std::to_string(img.digest));
            }
            return true;
        }
        // Create the controller FIRST (it holds a reference to the
        // debugger's log), then inject the recorded log underneath it:
        // the seek below replays the interventions at their stamps and
        // verifies every recorded mark as it crosses it.
        TimeTravel &tt = ensureTravel();
        ReplayLog &log = debugger_->replayLog();
        log.seed = img.seed;
        log.programName = img.programName;
        log.interventions = img.interventions;
        log.marks = img.marks;

        resurrect_.active = true;
        resurrect_.time = img.time;
        resurrect_.appInsts = img.appInsts;
        resurrect_.digest = img.digest;
        resurrect_.checkpoints = img.checkpoints;
        for (const persist::ToolDigest &td : img.toolDigests)
            resurrect_.toolDigests.push_back({td.name, td.digest});

        tt.seekBegin(img.time, done);
        pumpEvents();
        if (done)
            return resurrectFinish(err);
        return true;
    } catch (const std::exception &e) {
        resurrect_ = ResurrectPlan{};
        detach();
        return fail(std::string("resurrection replay diverged: ") +
                    e.what());
    }
}

bool
DebugSession::resurrectStep(uint64_t maxInsts, bool &done,
                            std::string *err)
{
    done = true;
    if (!resurrect_.active)
        return true;
    try {
        TimeTravel &tt = debugger_->timeTravel();
        tt.travelStep(maxInsts, done);
        pumpEvents();
        if (!done)
            return true;
        return resurrectFinish(err);
    } catch (const std::exception &e) {
        resurrect_ = ResurrectPlan{};
        detach();
        if (err)
            *err = std::string("resurrection replay diverged: ") +
                   e.what();
        return false;
    }
}

/** Verify the completed resurrection replay against the image's
 *  anchors; any mismatch detaches the session (typed error, no
 *  divergent state admitted). */
bool
DebugSession::resurrectFinish(std::string *err)
{
    ResurrectPlan plan = std::move(resurrect_);
    resurrect_ = ResurrectPlan{};
    auto fail = [&](const std::string &why) {
        detach();
        if (err)
            *err = why;
        return false;
    };
    TimeTravel &tt = debugger_->timeTravel();
    if (tt.time() != plan.time || tt.appInsts() != plan.appInsts)
        return fail("resurrection landed at t=" +
                    std::to_string(tt.time()) + ", " +
                    std::to_string(tt.appInsts()) +
                    " insts; image says t=" + std::to_string(plan.time) +
                    ", " + std::to_string(plan.appInsts) + " insts");
    uint64_t live = tt.digest();
    if (live != plan.digest)
        return fail("resurrection digest mismatch: replay produced " +
                    std::to_string(live) + ", image says " +
                    std::to_string(plan.digest));
    // The chain's positions are deterministic functions of the travel
    // history, so the re-taken chain must sit at the recorded
    // positions exactly.
    const auto &cps = tt.checkpoints();
    if (cps.size() != plan.checkpoints.size())
        return fail("resurrection re-took " +
                    std::to_string(cps.size()) +
                    " checkpoints; image recorded " +
                    std::to_string(plan.checkpoints.size()));
    for (size_t i = 0; i < cps.size(); ++i)
        if (cps[i].time != plan.checkpoints[i].time ||
            cps[i].appInsts != plan.checkpoints[i].appInsts)
            return fail("resurrection checkpoint #" +
                        std::to_string(i) + " sits at t=" +
                        std::to_string(cps[i].time) +
                        "; image recorded t=" +
                        std::to_string(plan.checkpoints[i].time));
    // Tool state is excluded from the user-visible digest, so verify
    // it separately: the replayed tool state must serialize to the
    // exact bytes the image was taken from.
    const tools::ToolSet &ts = debugger_->backend().tools();
    for (const auto &td : plan.toolDigests) {
        uint64_t live = ts.digest(td.first);
        if (live != td.second)
            return fail("resurrection tool '" + td.first +
                        "' digest mismatch: replay produced " +
                        std::to_string(live) + ", image says " +
                        std::to_string(td.second));
    }
    return true;
}

// ---------------------------------------------------------- wire entry

Response
DebugSession::dispatch(const Request &req)
{
    TRACE_SPAN("session", requestKindName(req.kind));
    Response resp;
    resp.seq = req.seq;
    resp.inReplyTo = req.kind;

    auto errorOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Error;
        resp.error = msg;
        return resp;
    };
    auto unsupportedOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Unsupported;
        resp.error = msg;
        return resp;
    };
    auto stopOut = [&](StopInfo stop) {
        resp.hasStop = true;
        resp.stop = stop;
        return resp;
    };
    auto needAttach = [&]() -> bool { return ensureAttached(); };
    std::string cantAttach =
        std::string("the ") + backendName(backendKind()) +
        " backend cannot implement the requested watchpoints";

    if (detached_ && req.kind != RequestKind::Ping)
        return errorOut("session is detached");

    switch (req.kind) {
      case RequestKind::Ping:
        return resp;
      case RequestKind::SelectBackend:
        if (!selectBackend(req.backend))
            return errorOut("backend is fixed once attached");
        return resp;
      case RequestKind::SetWatch: {
        int idx = setWatch(req.watch);
        if (idx < 0)
            return unsupportedOut(
                !refusal_.empty()
                    ? refusal_
                    : "the backend cannot implement the enlarged "
                      "watchpoint set");
        resp.index = idx;
        return resp;
      }
      case RequestKind::SetBreak: {
        int idx = setBreak(req.brk);
        if (idx < 0)
            return unsupportedOut(
                !refusal_.empty()
                    ? refusal_
                    : "the backend cannot implement the enlarged "
                      "breakpoint set");
        resp.index = idx;
        return resp;
      }
      case RequestKind::RemoveWatch:
        if (!removeWatch(req.index))
            return errorOut("no such watchpoint");
        return resp;
      case RequestKind::RemoveBreak:
        if (!removeBreak(req.index))
            return errorOut("no such breakpoint");
        return resp;
      case RequestKind::Attach:
        if (!attach())
            return unsupportedOut(cantAttach);
        return resp;
      case RequestKind::Cont:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(cont());
      case RequestKind::Stepi:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(stepi(req.count));
      case RequestKind::RunToEnd:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(runToEnd());
      case RequestKind::ReverseContinue:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(reverseContinue());
      case RequestKind::ReverseStep:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(reverseStep(req.count));
      case RequestKind::RunToEvent:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(runToEvent(req.count));
      case RequestKind::ReadRegisters:
        resp.regs = readRegisters();
        return resp;
      case RequestKind::WriteRegister:
        if (!writeRegister(req.reg, req.value))
            return errorOut("cannot write that register here");
        return resp;
      case RequestKind::ReadMemory: {
        if (req.size > 65536)
            return errorOut("read too large");
        resp.bytes = readMemory(req.addr, req.size);
        return resp;
      }
      case RequestKind::WriteMemory:
        if (!writeMemory(req.addr, req.size, req.value))
            return errorOut("bad write size (1..8 bytes)");
        return resp;
      case RequestKind::Stats:
        resp.stats = stats();
        return resp;
      case RequestKind::Detach:
        detach();
        return resp;
      case RequestKind::ReplayVerify: {
        IntervalReplay::Report rep = verifyReplay(
            static_cast<unsigned>(req.count ? req.count : 1));
        if (!rep.ok)
            return errorOut(rep.error.empty()
                                ? "replay verification failed"
                                : rep.error);
        resp.value = rep.finalDigest;
        for (const IntervalReplay::Interval &iv : rep.intervals)
            resp.regs.push_back(iv.endDigest);
        return resp;
      }
      case RequestKind::ToolEnable: {
        if (!needAttach())
            return unsupportedOut(cantAttach);
        std::string terr;
        if (!toolEnable(req.name, req.toolConfig, &terr))
            return errorOut(terr);
        return resp;
      }
      case RequestKind::ToolDisable: {
        std::string terr;
        if (!toolDisable(req.name, &terr))
            return errorOut(terr);
        return resp;
      }
      case RequestKind::ToolList:
        resp.text = toolList();
        return resp;
      case RequestKind::ToolReport: {
        std::string terr;
        if (!toolReport(req.name, &resp.text, &resp.value, &terr))
            return errorOut(terr);
        return resp;
      }
      case RequestKind::SessionCreate:
      case RequestKind::SessionSelect:
      case RequestKind::SessionDestroy:
      case RequestKind::SessionList:
      case RequestKind::ServerStats:
      case RequestKind::Subscribe:
      case RequestKind::Unsubscribe:
      case RequestKind::SessionHibernate:
      case RequestKind::SessionPersist:
      case RequestKind::StoreStats:
      case RequestKind::TraceStart:
      case RequestKind::TraceStop:
      case RequestKind::TraceDump:
      case RequestKind::Metrics:
      case RequestKind::SessionMigrate:
      case RequestKind::ShardStats:
      case RequestKind::SessionExport:
      case RequestKind::SessionAdopt:
        return errorOut("session management verbs are handled by the "
                        "multi-session server, not a session");
    }
    return errorOut("unhandled request kind");
}

Response
DebugSession::handle(const Request &req)
{
    try {
        return dispatch(req);
    } catch (const std::exception &e) {
        Response resp;
        resp.seq = req.seq;
        resp.inReplyTo = req.kind;
        resp.status = ResponseStatus::Error;
        resp.error = e.what();
        return resp;
    }
}

std::string
DebugSession::handleEncoded(const std::string &line)
{
    Request req;
    std::string err;
    if (!decodeRequest(line, req, &err)) {
        Response resp;
        resp.status = ResponseStatus::Error;
        resp.error = "decode: " + err;
        // Best-effort correlation: even a malformed line usually has a
        // parseable seq token, and the client needs it to match the
        // error to its outstanding request.
        size_t pos = line.find("seq=");
        if (pos != std::string::npos)
            resp.seq = std::strtoull(line.c_str() + pos + 4, nullptr, 0);
        return encodeResponse(resp);
    }
    return encodeResponse(handle(req));
}

} // namespace dise
