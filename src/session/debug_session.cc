#include "session/debug_session.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "replay/checkpoint.hh"

namespace dise {

namespace {

bool
sameWatch(const WatchSpec &a, const WatchSpec &b)
{
    return a.kind == b.kind && a.addr == b.addr && a.size == b.size &&
           a.length == b.length && a.conditional == b.conditional &&
           a.predConst == b.predConst;
}

bool
sameBreak(const BreakSpec &a, const BreakSpec &b)
{
    return a.pc == b.pc && a.conditional == b.conditional &&
           a.condAddr == b.condAddr && a.condSize == b.condSize &&
           a.condConst == b.condConst;
}

} // namespace

DebugSession::DebugSession(Program program, SessionOptions opts)
    : program_(std::move(program)), opts_(std::move(opts))
{
}

DebugSession::~DebugSession() = default;

// ------------------------------------------------------- configuration

bool
DebugSession::selectBackend(BackendKind kind)
{
    if (attached())
        return false;
    opts_.debugger.backend = kind;
    attachFailed_ = false; // a different technique may succeed
    return true;
}

int
DebugSession::setWatch(const WatchSpec &spec)
{
    for (size_t i = 0; i < pendingWatches_.size(); ++i) {
        if (sameWatch(pendingWatches_[i], spec)) {
            int idx = static_cast<int>(i);
            // A spec muted before attach was never installed, so it
            // cannot be re-armed once machinery exists.
            if (attached() && watchInstalled_[i] < 0)
                return -1;
            mutedWatches_.erase(idx);
            return idx;
        }
    }
    if (attached())
        return -1; // machinery is installed; only re-arming is possible
    pendingWatches_.push_back(spec);
    return static_cast<int>(pendingWatches_.size()) - 1;
}

int
DebugSession::setBreak(const BreakSpec &spec)
{
    for (size_t i = 0; i < pendingBreaks_.size(); ++i) {
        if (sameBreak(pendingBreaks_[i], spec)) {
            int idx = static_cast<int>(i);
            if (attached() && breakInstalled_[i] < 0)
                return -1;
            mutedBreaks_.erase(idx);
            return idx;
        }
    }
    if (attached())
        return -1;
    pendingBreaks_.push_back(spec);
    return static_cast<int>(pendingBreaks_.size()) - 1;
}

bool
DebugSession::removeWatch(int index)
{
    if (index < 0 || static_cast<size_t>(index) >= pendingWatches_.size())
        return false;
    // Removal mutes in every phase (never erases): indices previously
    // handed to clients stay stable, and re-adding the identical spec
    // re-arms the same slot.
    mutedWatches_.insert(index);
    return true;
}

bool
DebugSession::removeBreak(int index)
{
    if (index < 0 || static_cast<size_t>(index) >= pendingBreaks_.size())
        return false;
    mutedBreaks_.insert(index);
    return true;
}

bool
DebugSession::watchMuted(int index) const
{
    return mutedWatches_.count(index) > 0;
}

// ---------------------------------------------------------- attachment

DebugTarget &
DebugSession::ensurePeekTarget()
{
    if (attached())
        return *target_;
    if (!preview_) {
        preview_ = std::make_unique<DebugTarget>(program_);
        preview_->load();
        for (const PendingPoke &p : pendingPokes_) {
            if (p.isReg) {
                if (p.reg == PcRegIndex)
                    preview_->arch.pc = p.value;
                else
                    preview_->arch.write(ir(p.reg), p.value);
            } else {
                preview_->mem.write(p.addr, p.size, p.value);
            }
        }
    }
    return *preview_;
}

bool
DebugSession::attach()
{
    if (attached())
        return true;
    DISE_ASSERT(!detached_, "session already detached");

    target_ = std::make_unique<DebugTarget>(program_);
    if (opts_.prepare)
        opts_.prepare(*target_);
    debugger_ = std::make_unique<Debugger>(*target_, opts_.debugger);
    // Specs removed before attach are never installed — a deleted
    // breakpoint must not make a capability-limited backend (hwreg,
    // vm) refuse the whole session. The maps keep session indices
    // stable against the compacted installed list.
    watchInstalled_.assign(pendingWatches_.size(), -1);
    breakInstalled_.assign(pendingBreaks_.size(), -1);
    installedWatchOwner_.clear();
    installedBreakOwner_.clear();
    for (size_t i = 0; i < pendingWatches_.size(); ++i) {
        if (mutedWatches_.count(static_cast<int>(i)))
            continue;
        watchInstalled_[i] = debugger_->watch(pendingWatches_[i]);
        installedWatchOwner_.push_back(static_cast<int>(i));
    }
    for (size_t i = 0; i < pendingBreaks_.size(); ++i) {
        if (mutedBreaks_.count(static_cast<int>(i)))
            continue;
        breakInstalled_[i] = debugger_->breakAt(pendingBreaks_[i]);
        installedBreakOwner_.push_back(static_cast<int>(i));
    }
    // Configuration-phase pokes fold into the initial state between
    // load and prime, so watchpoint shadows snapshot the poked image
    // (and they precede the time-travel session's time-zero
    // checkpoint).
    auto applyPokes = [this](DebugTarget &t) {
        for (const PendingPoke &p : pendingPokes_) {
            if (p.isReg) {
                if (p.reg == PcRegIndex)
                    t.arch.pc = p.value;
                else
                    t.arch.write(ir(p.reg), p.value);
            } else {
                t.mem.write(p.addr, p.size, p.value);
            }
        }
    };
    if (!debugger_->attach(applyPokes)) {
        debugger_.reset();
        target_.reset();
        attachFailed_ = true;
        return false;
    }
    attachFailed_ = false;
    pendingPokes_.clear();
    preview_.reset();

    SessionEvent ev;
    ev.kind = SessionEventKind::Attached;
    ev.pc = target_->arch.pc;
    events_.push(ev);
    return true;
}

bool
DebugSession::ensureAttached()
{
    return attach();
}

TimeTravel &
DebugSession::ensureTravel()
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    return debugger_->timeTravel(opts_.timeTravel);
}

// ------------------------------------------------------ event delivery

const TimeTravel::Stats *
DebugSession::travelStats() const
{
    if (!debugger_ || !debugger_->timeTraveling())
        return nullptr;
    return &const_cast<Debugger &>(*debugger_).timeTravel().stats();
}

/**
 * Reconcile the queue with everything that happened during the last
 * operation: announce a restore if the timeline was rolled back, then
 * any newly discovered (or re-crossed) watch/break/protection events,
 * then checkpoint notices and halts.
 */
void
DebugSession::pumpEvents()
{
    if (!debugger_)
        return;
    DebugBackend &backend = debugger_->backend();
    const TimeTravel::Stats *ts = travelStats();
    uint64_t now = 0, insts = 0;
    bool halted = false;
    if (debugger_->timeTraveling()) {
        TimeTravel &tt = debugger_->timeTravel();
        now = tt.time();
        insts = tt.appInsts();
        halted = tt.halted();
    }

    if (ts && ts->restores > announcedRestores_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Restore;
        ev.time = now;
        ev.appInsts = insts;
        ev.value = ts->pagesRestored - announcedPagesRestored_;
        events_.push(ev);
        announcedRestores_ = ts->restores;
        announcedPagesRestored_ = ts->pagesRestored;
    }

    const auto &ws = backend.watchEvents();
    const auto &bs = backend.breakEvents();
    const auto &ps = backend.protectionEvents();
    // A restore rolled the lists back: later positions will be
    // re-announced if execution re-crosses them.
    announcedWatch_ = std::min(announcedWatch_, ws.size());
    announcedBreak_ = std::min(announcedBreak_, bs.size());
    announcedProt_ = std::min(announcedProt_, ps.size());

    // Without a time-travel session there is no stream position; the
    // backend's detection sequence is the best per-event stamp.
    bool hasTravel = debugger_->timeTraveling();
    auto sessionWatchIdx = [&](int installed) {
        return installed >= 0 &&
                       static_cast<size_t>(installed) <
                           installedWatchOwner_.size()
                   ? installedWatchOwner_[installed]
                   : installed;
    };
    auto sessionBreakIdx = [&](int installed) {
        return installed >= 0 &&
                       static_cast<size_t>(installed) <
                           installedBreakOwner_.size()
                   ? installedBreakOwner_[installed]
                   : installed;
    };
    for (; announcedWatch_ < ws.size(); ++announcedWatch_) {
        const WatchEvent &we = ws[announcedWatch_];
        int idx = sessionWatchIdx(we.wpIndex);
        if (mutedWatches_.count(idx))
            continue; // muted: consume the position, deliver nothing
        SessionEvent ev;
        ev.kind = SessionEventKind::Watch;
        ev.time = hasTravel ? now : we.seq;
        ev.appInsts = insts;
        ev.pc = we.pc;
        ev.index = idx;
        ev.addr = we.addr;
        ev.oldValue = we.oldValue;
        ev.newValue = we.newValue;
        events_.push(ev);
    }
    for (; announcedBreak_ < bs.size(); ++announcedBreak_) {
        const BreakEvent &be = bs[announcedBreak_];
        int idx = sessionBreakIdx(be.bpIndex);
        if (mutedBreaks_.count(idx))
            continue;
        SessionEvent ev;
        ev.kind = SessionEventKind::Break;
        ev.time = hasTravel ? now : be.seq;
        ev.appInsts = insts;
        ev.pc = be.pc;
        ev.index = idx;
        events_.push(ev);
    }
    for (; announcedProt_ < ps.size(); ++announcedProt_) {
        const ProtectionEvent &pe = ps[announcedProt_];
        SessionEvent ev;
        ev.kind = SessionEventKind::Protection;
        ev.time = now;
        ev.appInsts = insts;
        ev.pc = pe.pc;
        ev.addr = pe.addr;
        events_.push(ev);
    }

    if (ts && ts->checkpointsTaken > announcedCheckpoints_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Checkpoint;
        ev.time = now;
        ev.appInsts = insts;
        ev.value = ts->checkpointsTaken - announcedCheckpoints_;
        events_.push(ev);
        announcedCheckpoints_ = ts->checkpointsTaken;
    }

    if (halted && !announcedHalt_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Halted;
        ev.time = now;
        ev.appInsts = insts;
        events_.push(ev);
        announcedHalt_ = true;
    } else if (!halted) {
        announcedHalt_ = false; // reverse travel un-halted the target
    }
}

bool
DebugSession::stopIsMuted(const StopInfo &stop) const
{
    if (stop.reason != StopReason::Event || !debugger_)
        return false;
    const DebugBackend &backend =
        const_cast<Debugger &>(*debugger_).backend();
    // Backend event records carry installed indices; translate to the
    // stable session index before consulting the mute set.
    size_t i = static_cast<size_t>(stop.mark.index);
    switch (stop.mark.kind) {
      case EventKind::Watch:
        if (i < backend.watchEvents().size()) {
            int installed = backend.watchEvents()[i].wpIndex;
            int idx = installed >= 0 &&
                              static_cast<size_t>(installed) <
                                  installedWatchOwner_.size()
                          ? installedWatchOwner_[installed]
                          : installed;
            return mutedWatches_.count(idx) > 0;
        }
        return false;
      case EventKind::Break:
        if (i < backend.breakEvents().size()) {
            int installed = backend.breakEvents()[i].bpIndex;
            int idx = installed >= 0 &&
                              static_cast<size_t>(installed) <
                                  installedBreakOwner_.size()
                          ? installedBreakOwner_[installed]
                          : installed;
            return mutedBreaks_.count(idx) > 0;
        }
        return false;
      case EventKind::Protection:
        return false;
    }
    return false;
}

// ----------------------------------------------------------- execution

StopInfo
DebugSession::cont()
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop;
    do {
        stop = tt.cont();
        pumpEvents();
    } while (stop.reason == StopReason::Event && stopIsMuted(stop));
    return stop;
}

StopInfo
DebugSession::stepi(uint64_t n)
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.stepi(n);
    pumpEvents();
    return stop;
}

StopInfo
DebugSession::runToEnd()
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.runToEnd();
    pumpEvents();
    return stop;
}

StopInfo
DebugSession::reverseContinue()
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop;
    do {
        stop = tt.reverseContinue();
        pumpEvents();
    } while (stop.reason == StopReason::Event && stopIsMuted(stop));
    return stop;
}

StopInfo
DebugSession::reverseStep(uint64_t n)
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.reverseStep(n);
    pumpEvents();
    return stop;
}

StopInfo
DebugSession::runToEvent(uint64_t n)
{
    TimeTravel &tt = ensureTravel();
    StopInfo stop = tt.runToEvent(static_cast<size_t>(n));
    pumpEvents();
    return stop;
}

RunStats
DebugSession::runCycles(TimingConfig cfg, RunLimits limits)
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    RunStats stats = debugger_->run(cfg, limits);
    pumpEvents();
    if (stats.halt != HaltReason::None && !announcedHalt_) {
        SessionEvent ev;
        ev.kind = SessionEventKind::Halted;
        ev.appInsts = stats.appInsts;
        events_.push(ev);
        announcedHalt_ = true;
    }
    return stats;
}

FuncResult
DebugSession::runFunctional(uint64_t maxAppInsts)
{
    DISE_ASSERT(ensureAttached(), "the ", backendName(backendKind()),
                " backend cannot implement this session's requests");
    FuncResult res = debugger_->runFunctional(maxAppInsts);
    pumpEvents();
    return res;
}

// --------------------------------------------------------- peek / poke

std::vector<uint64_t>
DebugSession::readRegisters()
{
    DebugTarget &t = ensurePeekTarget();
    std::vector<uint64_t> regs(NumSessionRegs);
    for (unsigned i = 0; i < NumIntRegs; ++i)
        regs[i] = t.arch.read(ir(i));
    regs[PcRegIndex] = t.arch.pc;
    return regs;
}

uint64_t
DebugSession::readRegister(unsigned index)
{
    DebugTarget &t = ensurePeekTarget();
    if (index == PcRegIndex)
        return t.arch.pc;
    if (index < NumIntRegs)
        return t.arch.read(ir(index));
    return 0;
}

bool
DebugSession::writeRegister(unsigned index, uint64_t value)
{
    if (index >= NumSessionRegs)
        return false;
    if (!attached()) {
        PendingPoke p;
        p.isReg = true;
        p.reg = index;
        p.value = value;
        pendingPokes_.push_back(p);
        if (preview_) {
            if (index == PcRegIndex)
                preview_->arch.pc = value;
            else
                preview_->arch.write(ir(index), value);
        }
        return true;
    }
    if (debugger_->timeTraveling()) {
        if (index == PcRegIndex)
            return false; // the PC is not a loggable intervention
        debugger_->timeTravel().pokeRegister(ir(index), value);
        return true;
    }
    if (index == PcRegIndex)
        target_->arch.pc = value;
    else
        target_->arch.write(ir(index), value);
    return true;
}

std::vector<uint8_t>
DebugSession::readMemory(Addr addr, size_t len)
{
    DebugTarget &t = ensurePeekTarget();
    std::vector<uint8_t> bytes(len);
    t.mem.readBlock(addr, bytes.data(), len);
    return bytes;
}

bool
DebugSession::writeMemory(Addr addr, unsigned size, uint64_t value)
{
    if (size == 0 || size > 8)
        return false;
    if (!attached()) {
        PendingPoke p;
        p.addr = addr;
        p.size = size;
        p.value = value;
        pendingPokes_.push_back(p);
        if (preview_)
            preview_->mem.write(addr, size, value);
        return true;
    }
    if (debugger_->timeTraveling()) {
        debugger_->timeTravel().pokeMemory(addr, size, value);
        return true;
    }
    target_->mem.write(addr, size, value);
    return true;
}

// -------------------------------------------------------- introspection

SessionStats
DebugSession::stats() const
{
    SessionStats s;
    if (const TimeTravel::Stats *ts = travelStats()) {
        TimeTravel &tt = const_cast<Debugger &>(*debugger_).timeTravel();
        s.time = tt.time();
        s.appInsts = tt.appInsts();
        s.events = tt.eventCount();
        s.checkpoints = tt.checkpointCount();
        s.pagesCopied = ts->pagesCopied;
        s.restores = ts->restores;
        s.replayedUops = ts->replayedUops;
    } else if (debugger_) {
        s.events = debugger_->backend().totalEvents();
    }
    return s;
}

uint64_t
DebugSession::digest()
{
    DISE_ASSERT(attached(), "digest() requires an attached session");
    if (debugger_->timeTraveling())
        return debugger_->timeTravel().digest();
    return stateDigest(*target_, debugger_->backend());
}

size_t
DebugSession::eventCount() const
{
    if (debugger_ && debugger_->timeTraveling())
        return const_cast<Debugger &>(*debugger_).timeTravel()
            .eventCount();
    return debugger_ ? debugger_->backend().totalEvents() : 0;
}

DebugTarget &
DebugSession::target()
{
    return ensurePeekTarget();
}

Debugger &
DebugSession::debugger()
{
    DISE_ASSERT(attached(), "no debugger before attach");
    return *debugger_;
}

TimeTravel &
DebugSession::timeTravel()
{
    return ensureTravel();
}

bool
DebugSession::detach()
{
    debugger_.reset(); // tears down the time-travel session first
    target_.reset();
    preview_.reset();
    detached_ = true;
    return true;
}

// ---------------------------------------------------------- wire entry

Response
DebugSession::dispatch(const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    resp.inReplyTo = req.kind;

    auto errorOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Error;
        resp.error = msg;
        return resp;
    };
    auto unsupportedOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Unsupported;
        resp.error = msg;
        return resp;
    };
    auto stopOut = [&](StopInfo stop) {
        resp.hasStop = true;
        resp.stop = stop;
        return resp;
    };
    auto needAttach = [&]() -> bool { return ensureAttached(); };
    std::string cantAttach =
        std::string("the ") + backendName(backendKind()) +
        " backend cannot implement the requested watchpoints";

    if (detached_ && req.kind != RequestKind::Ping)
        return errorOut("session is detached");

    switch (req.kind) {
      case RequestKind::Ping:
        return resp;
      case RequestKind::SelectBackend:
        if (!selectBackend(req.backend))
            return errorOut("backend is fixed once attached");
        return resp;
      case RequestKind::SetWatch: {
        int idx = setWatch(req.watch);
        if (idx < 0)
            return unsupportedOut(
                "watchpoint machinery is installed at attach; only an "
                "already-registered spec can be re-armed");
        resp.index = idx;
        return resp;
      }
      case RequestKind::SetBreak: {
        int idx = setBreak(req.brk);
        if (idx < 0)
            return unsupportedOut(
                "breakpoint machinery is installed at attach; only an "
                "already-registered spec can be re-armed");
        resp.index = idx;
        return resp;
      }
      case RequestKind::RemoveWatch:
        if (!removeWatch(req.index))
            return errorOut("no such watchpoint");
        return resp;
      case RequestKind::RemoveBreak:
        if (!removeBreak(req.index))
            return errorOut("no such breakpoint");
        return resp;
      case RequestKind::Attach:
        if (!attach())
            return unsupportedOut(cantAttach);
        return resp;
      case RequestKind::Cont:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(cont());
      case RequestKind::Stepi:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(stepi(req.count));
      case RequestKind::RunToEnd:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(runToEnd());
      case RequestKind::ReverseContinue:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(reverseContinue());
      case RequestKind::ReverseStep:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(reverseStep(req.count));
      case RequestKind::RunToEvent:
        if (!needAttach())
            return unsupportedOut(cantAttach);
        return stopOut(runToEvent(req.count));
      case RequestKind::ReadRegisters:
        resp.regs = readRegisters();
        return resp;
      case RequestKind::WriteRegister:
        if (!writeRegister(req.reg, req.value))
            return errorOut("cannot write that register here");
        return resp;
      case RequestKind::ReadMemory: {
        if (req.size > 65536)
            return errorOut("read too large");
        resp.bytes = readMemory(req.addr, req.size);
        return resp;
      }
      case RequestKind::WriteMemory:
        if (!writeMemory(req.addr, req.size, req.value))
            return errorOut("bad write size (1..8 bytes)");
        return resp;
      case RequestKind::Stats:
        resp.stats = stats();
        return resp;
      case RequestKind::Detach:
        detach();
        return resp;
    }
    return errorOut("unhandled request kind");
}

Response
DebugSession::handle(const Request &req)
{
    try {
        return dispatch(req);
    } catch (const std::exception &e) {
        Response resp;
        resp.seq = req.seq;
        resp.inReplyTo = req.kind;
        resp.status = ResponseStatus::Error;
        resp.error = e.what();
        return resp;
    }
}

std::string
DebugSession::handleEncoded(const std::string &line)
{
    Request req;
    std::string err;
    if (!decodeRequest(line, req, &err)) {
        Response resp;
        resp.status = ResponseStatus::Error;
        resp.error = "decode: " + err;
        // Best-effort correlation: even a malformed line usually has a
        // parseable seq token, and the client needs it to match the
        // error to its outstanding request.
        size_t pos = line.find("seq=");
        if (pos != std::string::npos)
            resp.seq = std::strtoull(line.c_str() + pos + 4, nullptr, 0);
        return encodeResponse(resp);
    }
    return encodeResponse(handle(req));
}

} // namespace dise
