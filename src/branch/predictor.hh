/**
 * @file
 * Branch prediction: an 8K-entry hybrid direction predictor (bimodal +
 * gshare with a chooser, as in the paper's configuration), a 2K-entry
 * 4-way BTB, and a return-address stack.
 */

#ifndef DISE_BRANCH_PREDICTOR_HH
#define DISE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "isa/inst.hh"

namespace dise {

struct BranchPredictorConfig
{
    unsigned hybridEntries = 8192; ///< per component table
    unsigned historyBits = 13;
    unsigned btbEntries = 2048;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 16;
};

/** Direction + target prediction state for the fetch stage. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &cfg = {});

    // Holds interior pointers into its own StatGroup.
    BranchPredictor(const BranchPredictor &) = delete;
    BranchPredictor &operator=(const BranchPredictor &) = delete;

    /** Predicted direction for a conditional branch at @p pc. */
    bool predictDirection(Addr pc) const;

    /** Predicted target from the BTB; 0 if no entry. */
    Addr predictTarget(Addr pc) const;

    /** @name Return-address stack */
    ///@{
    void pushRas(Addr retAddr);
    Addr popRas();
    ///@}

    /** Train tables with the resolved outcome of a branch. */
    void update(Addr pc, bool taken, Addr target, bool isCond);

    StatGroup &stats() { return stats_; }

  private:
    struct BtbEntry
    {
        bool valid = false;
        uint64_t tag = 0;
        Addr target = 0;
        uint64_t lastUse = 0;
    };

    unsigned bimodalIndex(Addr pc) const;
    unsigned gshareIndex(Addr pc) const;

    BranchPredictorConfig cfg_;
    std::vector<uint8_t> bimodal_;  ///< 2-bit counters
    std::vector<uint8_t> gshare_;   ///< 2-bit counters
    std::vector<uint8_t> chooser_;  ///< 2-bit: >=2 prefers gshare
    uint64_t history_ = 0;
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    size_t rasTop_ = 0;
    uint64_t useClock_ = 0;
    StatGroup stats_;
    /// Cached counter handle (update() runs once per resolved branch).
    uint64_t *condUpdatesStat_;
};

} // namespace dise

#endif // DISE_BRANCH_PREDICTOR_HH
