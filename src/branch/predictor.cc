#include "branch/predictor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

namespace {

void
bump(uint8_t &ctr, bool up)
{
    if (up && ctr < 3)
        ++ctr;
    else if (!up && ctr > 0)
        --ctr;
}

} // namespace

BranchPredictor::BranchPredictor(const BranchPredictorConfig &cfg)
    : cfg_(cfg),
      bimodal_(cfg.hybridEntries, 1),
      gshare_(cfg.hybridEntries, 1),
      chooser_(cfg.hybridEntries, 1),
      btb_(cfg.btbEntries),
      ras_(cfg.rasEntries, 0),
      stats_("bpred"),
      condUpdatesStat_(stats_.counter("cond_updates"))
{
    DISE_ASSERT(isPow2(cfg.hybridEntries), "hybrid table must be pow2");
    DISE_ASSERT(cfg.btbEntries % cfg.btbAssoc == 0, "BTB geometry");
    DISE_ASSERT(isPow2(cfg.btbEntries / cfg.btbAssoc), "BTB sets pow2");
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & (cfg_.hybridEntries - 1);
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    uint64_t hist = history_ & ((uint64_t{1} << cfg_.historyBits) - 1);
    return ((pc >> 2) ^ hist) & (cfg_.hybridEntries - 1);
}

bool
BranchPredictor::predictDirection(Addr pc) const
{
    bool useGshare = chooser_[bimodalIndex(pc)] >= 2;
    uint8_t ctr =
        useGshare ? gshare_[gshareIndex(pc)] : bimodal_[bimodalIndex(pc)];
    return ctr >= 2;
}

Addr
BranchPredictor::predictTarget(Addr pc) const
{
    unsigned sets = cfg_.btbEntries / cfg_.btbAssoc;
    unsigned set = (pc >> 2) & (sets - 1);
    uint64_t tag = pc >> 2 >> log2i(sets);
    const BtbEntry *base = &btb_[set * cfg_.btbAssoc];
    for (unsigned w = 0; w < cfg_.btbAssoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return base[w].target;
    return 0;
}

void
BranchPredictor::pushRas(Addr retAddr)
{
    ras_[rasTop_ % cfg_.rasEntries] = retAddr;
    ++rasTop_;
}

Addr
BranchPredictor::popRas()
{
    if (rasTop_ == 0)
        return 0;
    --rasTop_;
    return ras_[rasTop_ % cfg_.rasEntries];
}

void
BranchPredictor::update(Addr pc, bool taken, Addr target, bool isCond)
{
    ++useClock_;
    if (isCond) {
        uint8_t &bim = bimodal_[bimodalIndex(pc)];
        uint8_t &gsh = gshare_[gshareIndex(pc)];
        bool bimCorrect = (bim >= 2) == taken;
        bool gshCorrect = (gsh >= 2) == taken;
        uint8_t &cho = chooser_[bimodalIndex(pc)];
        if (gshCorrect != bimCorrect)
            bump(cho, gshCorrect);
        bump(bim, taken);
        bump(gsh, taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);
        ++*condUpdatesStat_;
    }
    if (taken && target) {
        unsigned sets = cfg_.btbEntries / cfg_.btbAssoc;
        unsigned set = (pc >> 2) & (sets - 1);
        uint64_t tag = pc >> 2 >> log2i(sets);
        BtbEntry *base = &btb_[set * cfg_.btbAssoc];
        BtbEntry *victim = nullptr;
        for (unsigned w = 0; w < cfg_.btbAssoc; ++w) {
            BtbEntry &e = base[w];
            if (e.valid && e.tag == tag) {
                e.target = target;
                e.lastUse = useClock_;
                return;
            }
            if (!victim || !e.valid ||
                (victim->valid && e.lastUse < victim->lastUse)) {
                victim = &e;
            }
        }
        victim->valid = true;
        victim->tag = tag;
        victim->target = target;
        victim->lastUse = useClock_;
    }
}

} // namespace dise
