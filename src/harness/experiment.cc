#include "harness/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "debug/target.hh"

namespace dise {

HarnessOptions
parseHarnessArgs(int argc, char **argv)
{
    HarnessOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--transition-cost") {
            opts.transitionCost =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--seed") {
            opts.seed = static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --scale N            workload size multiplier\n"
                "  --transition-cost N  spurious debugger-transition "
                "cycles (default 100000)\n"
                "  --seed N             workload RNG seed\n"
                "  --csv                CSV output\n");
            std::exit(0);
        } else {
            fatal("unknown option '", arg, "' (try --help)");
        }
    }
    return opts;
}

ExperimentRunner::ExperimentRunner(HarnessOptions opts) : opts_(opts)
{
}

TimingConfig
ExperimentRunner::timingConfig(bool mtHandlers) const
{
    TimingConfig cfg;
    cfg.transitionCost = opts_.transitionCost;
    cfg.mtHandlers = mtHandlers;
    return cfg;
}

const Workload &
ExperimentRunner::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        WorkloadParams params;
        params.scale = opts_.scale;
        params.seed = opts_.seed;
        it = workloads_.emplace(name, buildWorkload(name, params)).first;
    }
    return it->second;
}

const RunStats &
ExperimentRunner::baseline(const std::string &name)
{
    auto it = baselines_.find(name);
    if (it == baselines_.end()) {
        const Workload &w = workload(name);
        DebugTarget target(w.program);
        target.load();
        StreamEnv env;
        env.sink = &target.sink;
        TimingCpu cpu(target.arch, target.mem, &target.engine, env,
                      timingConfig());
        RunStats stats = cpu.run({});
        if (stats.halt != HaltReason::Exited &&
            stats.halt != HaltReason::Halted)
            fatal("baseline run of '", name, "' did not complete: ",
                  stats.faultMessage);
        it = baselines_.emplace(name, stats).first;
    }
    return it->second;
}

RunOutcome
ExperimentRunner::debugged(const std::string &name,
                           const std::vector<WatchSpec> &watches,
                           DebuggerOptions dopts, bool mtHandlers,
                           const std::vector<BreakSpec> &breaks)
{
    const Workload &w = workload(name);
    const RunStats &base = baseline(name);

    SessionOptions sopts;
    sopts.debugger = dopts;
    DebugSession session(w.program, sopts);
    for (const auto &spec : watches)
        session.setWatch(spec);
    for (const auto &bp : breaks)
        session.setBreak(bp);

    RunOutcome outcome;
    if (!session.attach()) {
        outcome.supported = false;
        return outcome;
    }
    outcome.stats = session.runCycles(timingConfig(mtHandlers), {});
    if (outcome.stats.halt != HaltReason::Exited &&
        outcome.stats.halt != HaltReason::Halted)
        fatal("debugged run of '", name, "' under ",
              backendName(dopts.backend), " did not complete: ",
              outcome.stats.faultMessage);
    // User-visible events arrive on the session's ordered queue.
    for (const SessionEvent &ev : session.events().drain()) {
        outcome.watchEvents += ev.kind == SessionEventKind::Watch;
        outcome.breakEvents += ev.kind == SessionEventKind::Break;
    }
    outcome.slowdown = static_cast<double>(outcome.stats.cycles) /
                       static_cast<double>(base.cycles);
    return outcome;
}

ExperimentRunner::CheckpointedOutcome
ExperimentRunner::checkpointedRun(const std::string &name,
                                  const std::vector<WatchSpec> &watches,
                                  DebuggerOptions dopts,
                                  uint64_t checkpointInterval,
                                  uint64_t maxAppInsts)
{
    const Workload &w = workload(name);
    SessionOptions sopts;
    sopts.debugger = dopts;
    sopts.timeTravel.checkpointInterval = checkpointInterval;
    sopts.timeTravel.maxAppInsts = maxAppInsts;
    DebugSession session(w.program, sopts);
    for (const auto &spec : watches)
        session.setWatch(spec);

    CheckpointedOutcome outcome;
    if (!session.attach()) {
        outcome.supported = false;
        return outcome;
    }
    session.debugger().replayLog().seed = opts_.seed;
    session.debugger().replayLog().programName = name;

    auto t0 = std::chrono::steady_clock::now();
    StopInfo end = session.runToEnd();
    outcome.forwardSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (end.reason != StopReason::Halted &&
        end.reason != StopReason::InstLimit)
        fatal("checkpointed run of '", name, "' did not complete: ",
              end.describe());
    uint64_t endDigest = session.digest();
    uint64_t endTime = end.time;

    if (session.eventCount() > 0) {
        auto t1 = std::chrono::steady_clock::now();
        StopInfo hit = session.reverseContinue();
        outcome.reverseContinueSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t1)
                .count();
        outcome.reverseLanded =
            hit.reason == StopReason::Event &&
            hit.eventIndex ==
                static_cast<int>(session.eventCount()) - 1;
        StopInfo end2 = session.runToEnd();
        outcome.replayExact =
            end2.time == endTime && session.digest() == endDigest;
    }

    const TimeTravel::Stats *ts = session.travelStats();
    outcome.appInsts = end.appInsts;
    outcome.events = session.eventCount();
    outcome.checkpoints = session.stats().checkpoints;
    outcome.pagesCopied =
        ts->pagesCopied + session.target().mem.undoPagesPending();
    outcome.pagesRestored = ts->pagesRestored;
    outcome.replayedUops = ts->replayedUops;
    outcome.digest = endDigest;
    return outcome;
}

WatchSpec
ExperimentRunner::standardWatch(const std::string &name, WatchSel sel,
                                bool conditional)
{
    WatchSpec spec = workload(name).watch(sel);
    if (conditional) {
        // The paper's Figure 4 predicate: compare the watched
        // expression to a constant it never matches.
        spec = spec.withCondition(0xdeadbeefcafeull);
    }
    return spec;
}

namespace {

/** Functional store observer for frequency measurement. */
class FreqMonitor : public DebugMonitor
{
  public:
    struct Region
    {
        Addr lo = 0;
        Addr hi = 0;
        uint64_t writes = 0;
        uint64_t silent = 0;
    };

    DebugAction
    onStore(const MicroOp &op) override
    {
        ++stores;
        for (auto &r : regions) {
            if (op.effAddr < r.hi && r.lo < op.effAddr + op.memBytes) {
                ++r.writes;
                if (op.storeOld == op.storeNew)
                    ++r.silent;
            }
        }
        return {};
    }

    std::vector<Region> regions;
    uint64_t stores = 0;
};

} // namespace

std::map<WatchSel, ExperimentRunner::FreqRow>
ExperimentRunner::measureFrequencies(const std::string &name)
{
    const Workload &w = workload(name);
    DebugTarget target(w.program);
    target.load();

    FreqMonitor mon;
    Addr indirectTarget = target.mem.read(w.ptrAddr, 8);
    const WatchSel order[] = {WatchSel::HOT, WatchSel::WARM1,
                              WatchSel::WARM2, WatchSel::COLD,
                              WatchSel::INDIRECT, WatchSel::RANGE};
    mon.regions = {
        {w.hotAddr, w.hotAddr + 8},
        {w.warm1Addr, w.warm1Addr + 8},
        {w.warm2Addr, w.warm2Addr + 8},
        {w.coldAddr, w.coldAddr + 8},
        {indirectTarget, indirectTarget + 8},
        {w.rangeBase, w.rangeBase + w.rangeLen},
    };

    StreamEnv env;
    env.sink = &target.sink;
    env.monitor = &mon;
    env.monitorStores = true;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);
    FuncResult res = cpu.run();
    if (res.halt != HaltReason::Exited && res.halt != HaltReason::Halted)
        fatal("frequency run of '", name, "' did not complete");

    std::map<WatchSel, FreqRow> rows;
    double per = mon.stores ? 100000.0 / mon.stores : 0.0;
    for (size_t i = 0; i < std::size(order); ++i) {
        const auto &r = mon.regions[i];
        FreqRow row;
        row.per100k = r.writes * per;
        row.silentPct =
            r.writes ? 100.0 * r.silent / r.writes : 0.0;
        rows[order[i]] = row;
    }
    return rows;
}

ExperimentRunner::FuncSummary
ExperimentRunner::functionalSummary(const std::string &name)
{
    const Workload &w = workload(name);
    DebugTarget target(w.program);
    target.load();
    StreamEnv env;
    env.sink = &target.sink;
    FuncCpu cpu(target.arch, target.mem, &target.engine, env);
    FuncResult res = cpu.run();
    FuncSummary s;
    s.appInsts = res.appInsts;
    s.stores = res.stores;
    s.loads = res.loads;
    s.storeDensity =
        res.appInsts ? static_cast<double>(res.stores) / res.appInsts
                     : 0.0;
    return s;
}

std::string
slowdownCell(const RunOutcome &outcome)
{
    if (!outcome.supported)
        return "n/a";
    return fmtSlowdown(outcome.slowdown);
}

} // namespace dise
