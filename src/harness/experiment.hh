/**
 * @file
 * Experiment harness: builds workloads, runs baseline and debugged
 * configurations under the paper's Section 5 methodology, and computes
 * slowdowns. Every table/figure binary in bench/ drives this.
 */

#ifndef DISE_HARNESS_EXPERIMENT_HH
#define DISE_HARNESS_EXPERIMENT_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "cpu/timing_cpu.hh"
#include "session/debug_session.hh"
#include "workloads/workload.hh"

namespace dise {

/** Command-line options shared by all bench binaries. */
struct HarnessOptions
{
    unsigned scale = 1;               ///< workload size multiplier
    uint64_t transitionCost = 100000; ///< spurious-transition cycles
    bool csv = false;                 ///< machine-readable output
    uint64_t seed = 12345;
};

/** Parse --scale/--transition-cost/--csv/--seed; exits on --help. */
HarnessOptions parseHarnessArgs(int argc, char **argv);

/** One debugged run's result. */
struct RunOutcome
{
    bool supported = true; ///< false: the paper's "no experiment" cell
    RunStats stats;
    size_t watchEvents = 0;
    size_t breakEvents = 0;
    double slowdown = 0.0; ///< cycles vs the undebugged baseline
};

/** Builds workloads and runs experiments with caching of baselines. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(HarnessOptions opts = {});

    /** The workload (built once per name). */
    const Workload &workload(const std::string &name);

    /** Undebugged cycle-level run (cached per workload). */
    const RunStats &baseline(const std::string &name);

    /** Debugged cycle-level run. */
    RunOutcome debugged(const std::string &name,
                        const std::vector<WatchSpec> &watches,
                        DebuggerOptions dopts,
                        bool mtHandlers = false,
                        const std::vector<BreakSpec> &breaks = {});

    /**
     * One checkpointed (time-travel) functional run: execute to
     * completion under the TimeTravel controller, then reverse-continue
     * to the last event and replay back to the end, verifying the
     * replayed final state digests identically. Returns the cost
     * counters the checkpoint bench reports.
     */
    struct CheckpointedOutcome
    {
        bool supported = true;
        uint64_t appInsts = 0;
        size_t events = 0;
        size_t checkpoints = 0;
        uint64_t pagesCopied = 0;
        uint64_t pagesRestored = 0;
        uint64_t replayedUops = 0;
        uint64_t digest = 0;
        /** Wall time of the forward (record-mode) run. */
        double forwardSeconds = 0.0;
        /** Wall time of the reverse-continue restore + replay. */
        double reverseContinueSeconds = 0.0;
        /** reverse-continue landed on the final event's exact mark. */
        bool reverseLanded = false;
        /** replayed end state digested identically. */
        bool replayExact = false;
    };
    CheckpointedOutcome checkpointedRun(
        const std::string &name, const std::vector<WatchSpec> &watches,
        DebuggerOptions dopts, uint64_t checkpointInterval = 4096,
        uint64_t maxAppInsts = 0);

    /** The paper's standard per-benchmark watchpoint. */
    WatchSpec standardWatch(const std::string &name, WatchSel sel,
                            bool conditional);

    const HarnessOptions &options() const { return opts_; }
    TimingConfig timingConfig(bool mtHandlers = false) const;

    /** Functional measurement of watched-location write frequencies
     *  (Table 2): writes per 100K stores and silent-store percentage. */
    struct FreqRow
    {
        double per100k = 0.0;
        double silentPct = 0.0;
    };
    std::map<WatchSel, FreqRow> measureFrequencies(
        const std::string &name);

    /** Functional workload summary (Table 1 feed + tests). */
    struct FuncSummary
    {
        uint64_t appInsts = 0;
        uint64_t stores = 0;
        uint64_t loads = 0;
        double storeDensity = 0.0;
    };
    FuncSummary functionalSummary(const std::string &name);

  private:
    HarnessOptions opts_;
    std::map<std::string, Workload> workloads_;
    std::map<std::string, RunStats> baselines_;
};

/** Render "n/a" or a slowdown cell. */
std::string slowdownCell(const RunOutcome &outcome);

} // namespace dise

#endif // DISE_HARNESS_EXPERIMENT_HH
