/**
 * @file
 * The time-travel controller: checkpointed, deterministically
 * replayable functional execution of a debugged target.
 *
 * Forward execution steps the InstStream one micro-op at a time,
 * polling the backend's event lists so every user-visible event
 * (watchpoint, breakpoint, protection violation) is pinned to an exact
 * stream position in the ReplayLog's event timeline. Periodic
 * checkpoints capture registers, the backend's host-side state, and —
 * via MainMemory's copy-on-write undo log — only the pages dirtied
 * since the previous checkpoint.
 *
 * Reverse operations (reverseContinue / reverseStep / runToEvent) are
 * restore-and-replay: roll memory back through the undo intervals to
 * the nearest earlier checkpoint, then re-execute forward to the exact
 * target position. Because the simulator is deterministic and the
 * checkpoint restores every input the stream consumes (registers,
 * memory, backend shadow state, engine match caches invalidated),
 * replay reproduces the identical micro-op and event sequence — which
 * the controller asserts against the recorded timeline as it goes.
 *
 * Debugger interventions (memory/register pokes, DISE pattern-table
 * mutations) are the nondeterministic inputs: each is stamped into the
 * ReplayLog at its stream position, re-applied when replay crosses that
 * position forward, unwound when a restore crosses it backward, and —
 * when performed after reverse travel — truncates the stale future
 * timeline.
 *
 * The controller works identically over all five debugger backends:
 * it only observes the DebugBackend interface.
 */

#ifndef DISE_REPLAY_TIME_TRAVEL_HH
#define DISE_REPLAY_TIME_TRAVEL_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cpu/inst_stream.hh"
#include "replay/checkpoint.hh"
#include "replay/replay_log.hh"
#include "tools/toolset.hh"

namespace dise {

class DebugTarget;
class DebugBackend;

struct TimeTravelConfig
{
    /** Application instructions between automatic checkpoints. */
    uint64_t checkpointInterval = 4096;
    /** Safety cap for cont()/runToEnd() (0 = none). */
    uint64_t maxAppInsts = 0;
};

/** Why the controller handed control back. */
enum class StopReason : uint8_t {
    Start,     ///< reached the beginning of time
    Event,     ///< a user-visible event (see eventIndex / mark)
    Step,      ///< requested step count reached
    Halted,    ///< target exited or halted
    Fault,     ///< target faulted
    InstLimit, ///< maxAppInsts safety cap
};

const char *stopReasonName(StopReason reason);
const char *eventKindName(EventKind kind);

/** Travel goals the sliced (preemptible) travel API accepts. */
enum class TravelVerb : uint8_t {
    ReverseContinue, ///< back to the previous user-visible event
    ReverseStep,     ///< back count application instructions
    RunToEvent,      ///< position just after timeline event #count
};

struct StopInfo
{
    StopReason reason = StopReason::Start;
    /** Global event index (position in the timeline), or -1. */
    int eventIndex = -1;
    EventMark mark{};
    /** Stream position at the stop. */
    uint64_t time = 0;
    uint64_t appInsts = 0;
    /** Architectural PC at the stop. */
    Addr pc = 0;

    /** One-line human rendering ("stopped: watch event #3 at
     *  pc=0x100005c, t=1234, 567 insts") for transcripts and test
     *  failure messages. */
    std::string describe() const;
};

std::ostream &operator<<(std::ostream &os, StopReason reason);
std::ostream &operator<<(std::ostream &os, const StopInfo &stop);

class TimeTravel
{
  public:
    /**
     * Attach to an already-loaded, backend-primed target (i.e. after
     * Debugger::attach()). Takes the time-zero checkpoint and starts
     * the copy-on-write undo log.
     */
    TimeTravel(DebugTarget &target, DebugBackend &backend, ReplayLog &log,
               TimeTravelConfig cfg = {});
    ~TimeTravel();

    TimeTravel(const TimeTravel &) = delete;
    TimeTravel &operator=(const TimeTravel &) = delete;

    /** @name Forward execution */
    ///@{
    /** Run to the next user-visible event (or halt/fault/limit). */
    StopInfo cont();
    /**
     * cont() bounded by an absolute instruction position: stop on the
     * next event OR once @p maxAppInsts application instructions have
     * retired (reason Step), whichever comes first. The job scheduler's
     * slicing primitive — a server worker can hand the session back
     * after a bounded quantum even when no event fires.
     */
    StopInfo contTo(uint64_t maxAppInsts);
    /** Run to program end (reporting the halt, not each event). */
    StopInfo runToEnd();
    /** Execute @p n application instructions. */
    StopInfo stepi(uint64_t n = 1);
    ///@}

    /** @name Reverse execution */
    ///@{
    /** Travel back to the previous user-visible event. */
    StopInfo reverseContinue();
    /** Travel back @p n application instructions. */
    StopInfo reverseStep(uint64_t n = 1);
    ///@}

    /**
     * Position the session just after event @p n fired — traveling
     * backward to a known mark, or forward (discovering new events) if
     * the timeline has not reached it yet.
     */
    StopInfo runToEvent(size_t n);

    /** @name Sliced travel (preemptible reverse execution)
     * A reverse verb decomposes into one cheap restore (travelBegin)
     * plus a replay the caller drives in bounded quanta (travelStep),
     * so a scheduler can interleave other sessions' work between
     * slices instead of parking a worker for the whole replay. The
     * one-shot verbs above are travelBegin + travelStep(0) loops. */
    ///@{
    /**
     * Prepare a sliced travel toward @p verb's goal (count carries the
     * step distance / event number). Performs the restore when the
     * goal lies in the past; never replays. @p done is set when the
     * goal was reached outright (the returned stop is final);
     * otherwise the return value is the interim position and the
     * caller must travelStep() until done.
     */
    StopInfo travelBegin(TravelVerb verb, uint64_t count, bool &done);
    /**
     * Replay up to @p maxAppInsts application instructions toward the
     * active goal (0 = unbounded). Sets @p done (and finishes the
     * travel) when the goal is reached; otherwise returns the interim
     * position with reason Step.
     */
    StopInfo travelStep(uint64_t maxAppInsts, bool &done);
    /**
     * Prepare a sliced travel to the absolute µop position
     * @p targetTime. The resurrection primitive: a session restored
     * from its on-disk image (whose ReplayLog was injected into this
     * controller's log) seeks from time zero to its persisted position,
     * re-taking checkpoints and re-verifying recorded marks as the
     * replay crosses them. Also valid mid-life, forward or backward.
     * Same contract as travelBegin: drive travelStep() until @p done.
     */
    StopInfo seekBegin(uint64_t targetTime, bool &done);
    bool travelActive() const { return travel_.active; }
    ///@}

    /** @name Logged debugger interventions */
    ///@{
    void pokeMemory(Addr addr, unsigned size, uint64_t value);
    void pokeRegister(RegId r, uint64_t value);
    ProductionId addProduction(const Production &p);
    void removeProduction(ProductionId id);
    /**
     * Enable/disable a debug tool as a logged intervention, so replay
     * re-arms it at the same stream position and reverse travel
     * unwinds it. Validated up front; failures leave the timeline
     * untouched.
     */
    bool enableTool(const std::string &name,
                    const tools::ToolSet::Config &cfg, std::string *err);
    bool disableTool(const std::string &name, std::string *err);
    ///@}

    /** @name Position and introspection */
    ///@{
    uint64_t time() const { return time_; }
    uint64_t appInsts() const { return appInsts_; }
    bool halted() const { return halted_; }
    /** Events fired at or before the current position. */
    size_t eventsSoFar() const { return curEvents_; }
    /** Events discovered on the whole known timeline. */
    size_t eventCount() const { return log_.marks.size(); }
    size_t checkpointCount() const { return cps_.size(); }
    const std::vector<Checkpoint> &checkpoints() const { return cps_; }
    /** Digest of the current user-visible state (replay validation). */
    uint64_t digest() const;
    ///@}

    /** Cumulative cost counters (bench/checkpoint.cc). */
    struct Stats
    {
        uint64_t checkpointsTaken = 0;
        uint64_t pagesCopied = 0; ///< undo pre-images captured
        uint64_t restores = 0;
        uint64_t pagesRestored = 0;
        uint64_t replayedUops = 0; ///< µops re-executed by travel
        uint64_t uops = 0;         ///< total µops executed (incl. replay)
    };
    const Stats &stats() const { return stats_; }

  private:
    bool atBoundary() const;
    void ensureStream();
    bool stepUop(bool &firedEvent);
    /** Pin any events the backend recorded since the last poll to the
     *  current stream position (verifying against the known timeline
     *  when replaying). Shared by stepUop() and bulkStep(). */
    void pollEvents(bool &firedEvent);
    /**
     * Retire µops in bulk through the target's trace cache, stopping at
     * whichever comes first: @p stopTime (absolute µop position, 0 =
     * none), @p stopAppInsts (absolute app-instruction position at a
     * boundary, 0 = none), the next pending intervention, the next
     * checkpoint position, cfg_.maxAppInsts, an event, or a trace side
     * exit. Returns the µops retired (0 = no trace applied; fall back
     * to stepUop). Event pinning and position accounting are identical
     * to the equivalent stepUop sequence.
     */
    uint64_t bulkStep(uint64_t stopTime, uint64_t stopAppInsts,
                      bool &firedEvent);
    void takeCheckpoint();
    void maybeCheckpoint();
    size_t checkpointAtOrBefore(uint64_t time) const;
    void restoreTo(size_t cpIdx);
    StopInfo travelToTime(uint64_t targetTime, int eventIndex);
    StopInfo runForward(uint64_t stopAppInsts, bool stopOnEvent);
    StopInfo stopHere(StopReason reason, int eventIndex = -1);
    StopInfo travelFinish(bool &done);
    void applyIntervention(Intervention &iv);
    void unwindIntervention(Intervention &iv);
    void recordIntervention(Intervention iv);
    void replayPendingInterventions();

    DebugTarget &target_;
    DebugBackend &backend_;
    ReplayLog &log_;
    TimeTravelConfig cfg_;

    std::unique_ptr<InstStream> stream_;
    std::vector<Checkpoint> cps_;

    uint64_t time_ = 0;     ///< µops executed at the current position
    uint64_t appInsts_ = 0; ///< app instructions retired
    bool halted_ = false;
    HaltReason haltReason_ = HaltReason::None;

    /** Events (watch+break+protection) at the current position. */
    size_t curEvents_ = 0;
    /** Per-kind backend event-list sizes already accounted for. */
    size_t seenWatch_ = 0;
    size_t seenBreak_ = 0;
    size_t seenProt_ = 0;
    /** Backend eventsRecorded() value already accounted for: while it
     *  is unchanged the per-µop event-list polling is skipped. */
    uint64_t seenRecorded_ = 0;
    /** Next intervention to re-apply while replaying forward. */
    size_t nextIntervention_ = 0;

    /** The sliced-travel goal. A travel abandoned mid-way (a new verb
     *  issued, or an interrupted job) simply leaves the session at a
     *  valid intermediate replay position; the next verb cancels it. */
    struct TravelState
    {
        bool active = false;
        bool byTime = false;   ///< goal in µops; else app-instructions
        bool discover = false; ///< forward discovery past known marks
        uint64_t targetTime = 0;
        uint64_t targetInsts = 0;
        size_t eventGoal = 0;  ///< discover: wanted global event index
        int eventIndex = -1;
        StopReason reachReason = StopReason::Step;
    };
    TravelState travel_;

    /** App-inst position of the next automatic checkpoint — the
     *  record-mode loop pays one compare instead of re-deriving it
     *  from cps_.back() (and probing the stream for a boundary) every
     *  µop. */
    uint64_t nextCheckpointAt_ = 0;
    /** Scratch µop reused across stepUop() calls (avoids the
     *  caller-side zero-initialization of a fresh local per µop;
     *  InstStream::next() fully re-initializes it anyway). */
    MicroOp scratchOp_{};

    Stats stats_;
};

} // namespace dise

#endif // DISE_REPLAY_TIME_TRAVEL_HH
