/**
 * @file
 * A point-in-time capture of a debugged target: the architectural
 * register state, the backend's host-side debugger state, and a
 * copy-on-write undo interval holding the pre-images of every memory
 * page dirtied AFTER the checkpoint was taken. Restoring checkpoint k
 * from a later position applies the open undo interval and then each
 * intermediate checkpoint's interval, newest first — cost proportional
 * to pages actually dirtied since k, never to total memory size.
 */

#ifndef DISE_REPLAY_CHECKPOINT_HH
#define DISE_REPLAY_CHECKPOINT_HH

#include "cpu/arch_state.hh"
#include "debug/backend.hh"
#include "mem/mainmem.hh"

namespace dise {

class DebugTarget;

struct Checkpoint
{
    /** Stream position: micro-ops executed when the capture was made. */
    uint64_t time = 0;
    /** Application instructions retired when the capture was made. */
    uint64_t appInsts = 0;

    ArchState arch;
    BackendSnapshot host;

    /** Simulated-OS output lengths (rolled back on restore so replay
     *  does not duplicate syscall output). */
    size_t sinkText = 0;
    size_t sinkMarks = 0;

    /**
     * Pre-images of pages dirtied between this checkpoint and the next
     * one (sealed when the next checkpoint is taken). Empty for the
     * most recent checkpoint, whose interval is still open inside
     * MainMemory.
     */
    UndoLog undo;

    uint64_t undoBytes() const { return undo.size() * PageBytes; }
};

/**
 * Digest of everything user-visible about a debug session: registers,
 * memory image, recorded events, and simulated-OS output. Two
 * deterministic runs (or a run and its replay) must digest equal.
 */
uint64_t stateDigest(const DebugTarget &target, const DebugBackend &backend);

} // namespace dise

#endif // DISE_REPLAY_CHECKPOINT_HH
