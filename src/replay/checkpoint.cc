#include "replay/checkpoint.hh"

#include "common/bitutils.hh"
#include "debug/target.hh"

namespace dise {

uint64_t
stateDigest(const DebugTarget &target, const DebugBackend &backend)
{
    uint64_t h = FnvOffsetBasis;
    auto mix = [&h](uint64_t v) { h = fnvMix(h, v); };

    h = target.arch.hashInto(h);
    mix(target.mem.contentHash());

    for (const auto &e : backend.watchEvents()) {
        mix(static_cast<uint64_t>(e.wpIndex));
        mix(e.addr);
        mix(e.oldValue);
        mix(e.newValue);
        mix(e.pc);
        mix(e.seq);
    }
    for (const auto &e : backend.breakEvents()) {
        mix(static_cast<uint64_t>(e.bpIndex));
        mix(e.pc);
        mix(e.seq);
    }
    for (const auto &e : backend.protectionEvents()) {
        mix(e.pc);
        mix(e.addr);
    }

    for (char c : target.sink.text)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    for (uint64_t m : target.sink.marks)
        mix(m);

    return h;
}

} // namespace dise
