#include "replay/interval_replay.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.hh"
#include "debug/debugger.hh"
#include "debug/target.hh"
#include "obs/trace.hh"
#include "replay/checkpoint.hh"

namespace dise {

IntervalReplay::IntervalReplay(TimeTravel &tt, DebugTarget &live,
                               DebugBackend &liveBackend,
                               const ReplayLog &log,
                               ReplicaFactory factory, Options opts)
    : tt_(tt), live_(live), liveBackend_(liveBackend), log_(log),
      factory_(std::move(factory)), opts_(opts)
{
    DISE_ASSERT(factory_, "IntervalReplay needs a replica factory");
    const auto &cps = tt_.checkpoints();
    DISE_ASSERT(!cps.empty(), "no checkpoints to replay from");
    // Cut the checkpoint list into `pieces` contiguous ranges of
    // near-equal length; the last range runs to the live position.
    size_t pieces =
        std::max<size_t>(1, std::min<size_t>(opts_.pieces, cps.size()));
    for (size_t p = 0; p < pieces; ++p) {
        size_t lo = p * cps.size() / pieces;
        size_t hi = (p + 1) * cps.size() / pieces;
        Interval iv;
        iv.index = p;
        iv.cpFrom = lo;
        iv.cpTo = hi;
        iv.fromTime = cps[lo].time;
        iv.fromInsts = cps[lo].appInsts;
        iv.toTime = hi < cps.size() ? cps[hi].time : tt_.time();
        plan_.push_back(iv);
    }
}

std::unique_ptr<IntervalReplay::Worker>
IntervalReplay::makeWorker(size_t idx) const
{
    DISE_ASSERT(idx < plan_.size(), "interval index out of range");
    return std::unique_ptr<Worker>(new Worker(*this, idx));
}

// --------------------------------------------------------------- worker

IntervalReplay::Worker::Worker(const IntervalReplay &owner, size_t idx)
    : owner_(owner), interval_(owner.plan_[idx]),
      final_(idx + 1 == owner.plan_.size())
{
}

IntervalReplay::Worker::~Worker() = default;

void
IntervalReplay::Worker::applyProduction(const Intervention &iv)
{
    DiseEngine &engine = target_->engine;
    size_t journalIdx = nextIntervention_; // caller positions us
    switch (iv.kind) {
      case InterventionKind::AddProduction:
        journalIds_[journalIdx] = engine.addProduction(iv.production);
        break;
      case InterventionKind::RemoveProduction: {
        // An in-session production is identified through its
        // AddProduction record (ids are replica-local); a pre-session
        // one (prepare-hook installed) by its stable table slot.
        ProductionId id = iv.addIndex >= 0
                              ? journalIds_[iv.addIndex]
                              : engine.idAt(iv.slot);
        DISE_ASSERT(id, "interval replay cannot re-target a logged "
                        "production removal");
        engine.removeProduction(id);
        break;
      }
      case InterventionKind::ToolEnable: {
        // Re-arm at the exact recorded slots so the replica's pattern
        // table matches the live session's slot-for-slot.
        std::string err;
        DebugBackend &backend = debugger_->backend();
        bool ok = backend.tools().enable(
            *target_, iv.toolName, iv.toolConfig,
            backend.usesDiseProductions(), &err, nullptr,
            iv.toolSlots.empty() ? nullptr : &iv.toolSlots);
        DISE_ASSERT(ok, "interval replay could not re-enable tool '",
                    iv.toolName, "': ", err);
        break;
      }
      case InterventionKind::ToolDisable: {
        std::string err;
        bool ok = debugger_->backend().tools().disable(
            *target_, iv.toolName, &err);
        DISE_ASSERT(ok, "interval replay could not disable tool '",
                    iv.toolName, "': ", err);
        break;
      }
      default:
        break;
    }
}

void
IntervalReplay::Worker::prepare()
{
    TRACE_SPAN("replay", "ireplay.prepare");
    DISE_ASSERT(!prepared_, "worker already prepared");
    if (!owner_.factory_(target_, debugger_))
        throw std::runtime_error(
            "interval replay: machinery rebuild failed");
    DebugBackend &backend = debugger_->backend();
    const auto &cps = owner_.tt_.checkpoints();
    const Checkpoint &cp = cps[interval_.cpFrom];

    // Materialize the memory image at the starting checkpoint: clone
    // the live image (read-only on the live side) and roll it back
    // through the undo chain, newest interval first.
    target_->mem.copyImageFrom(owner_.live_.mem);
    target_->mem.applyUndo(owner_.live_.mem.pendingUndo());
    for (size_t j = cps.size() - 1; j > interval_.cpFrom; --j)
        target_->mem.applyUndo(cps[j - 1].undo);

    // Interventions before the interval: pokes are baked into the
    // materialized image and register file; engine-table mutations and
    // tool enables are host state the checkpoint does not carry, so
    // re-apply them — before restoreHost, which refills the tool-state
    // blobs the checkpoint captured into the re-enabled tools.
    const auto &ivs = owner_.log_.interventions;
    journalIds_.assign(ivs.size(), 0);
    while (nextIntervention_ < ivs.size() &&
           ivs[nextIntervention_].time < interval_.fromTime) {
        const Intervention &iv = ivs[nextIntervention_];
        if (iv.kind == InterventionKind::AddProduction ||
            iv.kind == InterventionKind::RemoveProduction ||
            iv.kind == InterventionKind::ToolEnable ||
            iv.kind == InterventionKind::ToolDisable)
            applyProduction(iv);
        ++nextIntervention_;
    }

    // Registers, backend host state, and the sink prefix as of the
    // checkpoint; the event-list prefix is adopted from the live
    // session so per-kind indices and digests line up.
    target_->arch = cp.arch;
    backend.restoreHost(cp.host);
    backend.adoptEvents(
        {owner_.liveBackend_.watchEvents().begin(),
         owner_.liveBackend_.watchEvents().begin() + cp.host.watchEvents},
        {owner_.liveBackend_.breakEvents().begin(),
         owner_.liveBackend_.breakEvents().begin() + cp.host.breakEvents},
        {owner_.liveBackend_.protectionEvents().begin(),
         owner_.liveBackend_.protectionEvents().begin() +
             cp.host.protectionEvents});
    target_->sink.text = owner_.live_.sink.text.substr(0, cp.sinkText);
    target_->sink.marks.assign(
        owner_.live_.sink.marks.begin(),
        owner_.live_.sink.marks.begin() + cp.sinkMarks);
    target_->engine.invalidateMatchCaches();
    target_->mem.invalidatePagePointerCaches();

    time_ = cp.time;
    appInsts_ = cp.appInsts;
    seenWatch_ = cp.host.watchEvents;
    seenBreak_ = cp.host.breakEvents;
    seenProt_ = cp.host.protectionEvents;
    markCursor_ = seenWatch_ + seenBreak_ + seenProt_;
    seenRecorded_ = backend.eventsRecorded();

    interval_.startDigest = stateDigest(*target_, backend);
    stream_ = std::make_unique<InstStream>(target_->arch, target_->mem,
                                           &target_->engine,
                                           backend.streamEnv(*target_));
    prepared_ = true;
}

void
IntervalReplay::Worker::pollEvents()
{
    DebugBackend &backend = debugger_->backend();
    if (backend.eventsRecorded() == seenRecorded_)
        return;
    seenRecorded_ = backend.eventsRecorded();

    const auto &marks = owner_.log_.marks;
    auto note = [&](EventKind kind, size_t &seen, size_t now,
                    auto pcOf) {
        for (; seen < now; ++seen) {
            DISE_ASSERT(markCursor_ < marks.size(),
                        "interval replay fired an event beyond the "
                        "recorded timeline at t=", time_);
            const EventMark &rec = marks[markCursor_];
            DISE_ASSERT(rec.kind == kind &&
                            rec.index == static_cast<int>(seen) &&
                            rec.time == time_ && rec.pc == pcOf(seen),
                        "interval replay diverged from the recorded "
                        "event timeline at t=", time_);
            ++markCursor_;
            ++interval_.marksVerified;
        }
    };
    note(EventKind::Watch, seenWatch_, backend.watchEvents().size(),
         [&](size_t i) { return backend.watchEvents()[i].pc; });
    note(EventKind::Break, seenBreak_, backend.breakEvents().size(),
         [&](size_t i) { return backend.breakEvents()[i].pc; });
    note(EventKind::Protection, seenProt_,
         backend.protectionEvents().size(),
         [&](size_t i) { return backend.protectionEvents()[i].pc; });
}

bool
IntervalReplay::Worker::step(uint64_t maxUops)
{
    TRACE_SPAN("replay", "ireplay.step");
    DISE_ASSERT(prepared_, "step() before prepare()");
    const auto &ivs = owner_.log_.interventions;
    uint64_t budget = maxUops ? maxUops : ~uint64_t{0};

    auto applyHere = [&] {
        while (nextIntervention_ < ivs.size() &&
               ivs[nextIntervention_].time == time_) {
            const Intervention &iv = ivs[nextIntervention_];
            switch (iv.kind) {
              case InterventionKind::PokeMemory:
                target_->mem.write(iv.addr, iv.size, iv.value);
                break;
              case InterventionKind::PokeRegister:
                target_->arch.write(iv.reg, iv.value);
                break;
              default:
                applyProduction(iv);
                break;
            }
            ++nextIntervention_;
        }
    };

    while (time_ < interval_.toTime && budget--) {
        applyHere();
        MicroOp &op = scratchOp_;
        DISE_ASSERT(stream_->next(op),
                    "interval replay halted before its interval end "
                    "(t=", time_, ", wanted t=", interval_.toTime, ")");
        ++time_;
        ++interval_.uopsReplayed;
        if (op.isAppInst())
            ++appInsts_;
        pollEvents();
    }
    if (time_ < interval_.toTime)
        return false; // budget expired; call step() again

    // The final interval ends at the live position, where same-time
    // interventions were applied live (and are part of the live
    // digest). Interior intervals leave them to their successor's
    // first µop, matching the checkpoint-restore convention.
    if (final_)
        applyHere();
    interval_.endDigest = stateDigest(*target_, debugger_->backend());
    return true;
}

// ----------------------------------------------------------- execution

IntervalReplay::Report
IntervalReplay::run(unsigned workers) const
{
    std::vector<Interval> results(plan_.size());
    std::vector<std::string> errors(plan_.size());
    std::atomic<size_t> next{0};
    auto work = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= plan_.size())
                return;
            try {
                std::unique_ptr<Worker> w = makeWorker(i);
                w->prepare();
                while (!w->step(opts_.sliceUops)) {
                }
                results[i] = w->result();
            } catch (const std::exception &e) {
                errors[i] = e.what();
                results[i] = plan_[i];
            }
        }
    };

    unsigned n = std::max<size_t>(
        1, std::min<size_t>(workers ? workers : 1, plan_.size()));
    if (n == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        for (unsigned i = 0; i < n; ++i)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    Report r = stitch(std::move(results));
    r.workers = n;
    for (size_t i = 0; i < errors.size(); ++i) {
        if (!errors[i].empty()) {
            r.ok = false;
            if (r.error.empty())
                r.error = "interval " + std::to_string(i) + ": " +
                          errors[i];
        }
    }
    return r;
}

IntervalReplay::Report
IntervalReplay::stitch(std::vector<Interval> results) const
{
    Report r;
    r.intervals = std::move(results);
    r.liveDigest = stateDigest(live_, liveBackend_);
    r.ok = !r.intervals.empty();
    for (size_t i = 0; i < r.intervals.size(); ++i) {
        const Interval &iv = r.intervals[i];
        r.uopsReplayed += iv.uopsReplayed;
        r.marksVerified += iv.marksVerified;
        // Deterministic stitch: each interval must end exactly where
        // the next one starts.
        if (i + 1 < r.intervals.size() &&
            iv.endDigest != r.intervals[i + 1].startDigest) {
            r.ok = false;
            if (r.error.empty())
                r.error = "stitch mismatch between intervals " +
                          std::to_string(i) + " and " +
                          std::to_string(i + 1);
        }
    }
    if (!r.intervals.empty()) {
        r.finalDigest = r.intervals.back().endDigest;
        if (r.finalDigest != r.liveDigest) {
            r.ok = false;
            if (r.error.empty())
                r.error = "final digest differs from the live session";
        }
    }
    return r;
}

} // namespace dise
