#include "replay/interval_replay.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "debug/debugger.hh"
#include "debug/target.hh"
#include "obs/trace.hh"
#include "replay/checkpoint.hh"

namespace dise {

IntervalReplay::IntervalReplay(TimeTravel &tt, DebugTarget &live,
                               DebugBackend &liveBackend,
                               const ReplayLog &log,
                               ReplicaFactory factory, Options opts)
    : tt_(tt), live_(live), liveBackend_(liveBackend), log_(log),
      factory_(std::move(factory)), opts_(opts)
{
    DISE_ASSERT(factory_, "IntervalReplay needs a replica factory");
    const auto &cps = tt_.checkpoints();
    DISE_ASSERT(!cps.empty(), "no checkpoints to replay from");
    // Cut the checkpoint list into `pieces` contiguous ranges of
    // near-equal length; the last range runs to the live position.
    // With stealing on this is only the seed cut — idle workers
    // re-split in-flight ranges at checkpoint granularity.
    size_t pieces =
        std::max<size_t>(1, std::min<size_t>(opts_.pieces, cps.size()));
    for (size_t p = 0; p < pieces; ++p) {
        size_t lo = p * cps.size() / pieces;
        size_t hi = (p + 1) * cps.size() / pieces;
        Interval iv;
        iv.cpFrom = lo;
        iv.cpTo = hi;
        iv.fromTime = cps[lo].time;
        iv.fromInsts = cps[lo].appInsts;
        iv.toTime = hi < cps.size() ? cps[hi].time : tt_.time();
        plan_.push_back(iv);
    }
}

std::unique_ptr<IntervalReplay::Pool>
IntervalReplay::makePool() const
{
    return std::unique_ptr<Pool>(new Pool(*this));
}

// ----------------------------------------------------------------- pool

IntervalReplay::Pool::Pool(const IntervalReplay &owner) : owner_(owner)
{
    for (const Interval &iv : owner_.plan_)
        pending_.push_back(iv);
}

std::unique_ptr<IntervalReplay::Worker>
IntervalReplay::Pool::claim()
{
    std::lock_guard<std::mutex> lk(mu_);
    Interval iv;
    if (!pending_.empty()) {
        iv = pending_.front();
        pending_.pop_front();
    } else if (owner_.opts_.steal) {
        // Split the largest in-flight range: take its far half, from
        // the midpoint of what the victim has not yet reached. The
        // victim re-reads its end under this lock at every checkpoint
        // boundary, so it stops exactly at the handoff.
        auto victim = active_.end();
        size_t best = 1; // a single checkpoint interval is not worth it
        for (auto it = active_.begin(); it != active_.end(); ++it) {
            size_t remaining = it->second.end - it->second.progress;
            if (remaining > best) {
                best = remaining;
                victim = it;
            }
        }
        if (victim == active_.end())
            return nullptr; // nothing splittable left in flight
        const auto &cps = owner_.tt_.checkpoints();
        size_t mid = victim->second.progress + (best + 1) / 2;
        iv.cpFrom = mid;
        iv.cpTo = victim->second.end;
        iv.fromTime = cps[mid].time;
        iv.fromInsts = cps[mid].appInsts;
        iv.toTime = iv.cpTo < cps.size() ? cps[iv.cpTo].time
                                         : owner_.tt_.time();
        iv.stolen = true;
        victim->second.end = mid;
        ++steals_;
    } else {
        return nullptr;
    }
    iv.index = nextIndex_++;
    iv.slot = nextSlot_++;
    active_[iv.slot] = Active{iv.cpFrom, iv.cpTo};
    return std::unique_ptr<Worker>(new Worker(owner_, iv, this));
}

size_t
IntervalReplay::Pool::checkpointReached(unsigned slot, size_t cp)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = active_.find(slot);
    DISE_ASSERT(it != active_.end(), "boundary publish on a retired "
                                     "pool slot");
    it->second.progress = cp;
    return it->second.end;
}

void
IntervalReplay::Pool::complete(const Worker &w)
{
    std::lock_guard<std::mutex> lk(mu_);
    active_.erase(w.interval_.slot);
    done_.push_back(w.interval_);
}

void
IntervalReplay::Pool::abandon(const Worker &w, const std::string &error)
{
    std::lock_guard<std::mutex> lk(mu_);
    active_.erase(w.interval_.slot);
    if (error_.empty())
        error_ = "range [" + std::to_string(w.interval_.cpFrom) + "," +
                 std::to_string(w.interval_.cpTo) + "): " + error;
}

std::vector<IntervalReplay::Interval>
IntervalReplay::Pool::take()
{
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(done_);
}

uint64_t
IntervalReplay::Pool::steals() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return steals_;
}

const std::string &
IntervalReplay::Pool::error() const
{
    return error_;
}

// --------------------------------------------------------------- worker

IntervalReplay::Worker::Worker(const IntervalReplay &owner, Interval iv,
                               Pool *pool)
    : owner_(owner), interval_(iv), pool_(pool)
{
}

IntervalReplay::Worker::~Worker() = default;

void
IntervalReplay::Worker::applyProduction(const Intervention &iv)
{
    DiseEngine &engine = target_->engine;
    size_t journalIdx = nextIntervention_; // caller positions us
    switch (iv.kind) {
      case InterventionKind::AddProduction:
        journalIds_[journalIdx] = engine.addProduction(iv.production);
        break;
      case InterventionKind::RemoveProduction: {
        // An in-session production is identified through its
        // AddProduction record (ids are replica-local); a pre-session
        // one (prepare-hook installed) by its stable table slot.
        ProductionId id = iv.addIndex >= 0
                              ? journalIds_[iv.addIndex]
                              : engine.idAt(iv.slot);
        DISE_ASSERT(id, "interval replay cannot re-target a logged "
                        "production removal");
        engine.removeProduction(id);
        break;
      }
      case InterventionKind::ToolEnable: {
        // Re-arm at the exact recorded slots so the replica's pattern
        // table matches the live session's slot-for-slot.
        std::string err;
        DebugBackend &backend = debugger_->backend();
        bool ok = backend.tools().enable(
            *target_, iv.toolName, iv.toolConfig,
            backend.usesDiseProductions(), &err, nullptr,
            iv.toolSlots.empty() ? nullptr : &iv.toolSlots);
        DISE_ASSERT(ok, "interval replay could not re-enable tool '",
                    iv.toolName, "': ", err);
        break;
      }
      case InterventionKind::ToolDisable: {
        std::string err;
        bool ok = debugger_->backend().tools().disable(
            *target_, iv.toolName, &err);
        DISE_ASSERT(ok, "interval replay could not disable tool '",
                    iv.toolName, "': ", err);
        break;
      }
      default:
        break;
    }
}

void
IntervalReplay::Worker::prepare()
{
    TRACE_SPAN("replay", "ireplay.prepare");
    DISE_ASSERT(!prepared_, "worker already prepared");
    if (!owner_.factory_(target_, debugger_))
        throw std::runtime_error(
            "interval replay: machinery rebuild failed");
    DebugBackend &backend = debugger_->backend();
    const auto &cps = owner_.tt_.checkpoints();
    const Checkpoint &cp = cps[interval_.cpFrom];

    // Materialize the memory image at the starting checkpoint: clone
    // the live image (read-only on the live side) and roll it back
    // through the undo chain, newest interval first.
    target_->mem.copyImageFrom(owner_.live_.mem);
    target_->mem.applyUndo(owner_.live_.mem.pendingUndo());
    for (size_t j = cps.size() - 1; j > interval_.cpFrom; --j)
        target_->mem.applyUndo(cps[j - 1].undo);

    // Interventions before the interval: pokes are baked into the
    // materialized image and register file; engine-table mutations and
    // tool enables are host state the checkpoint does not carry, so
    // re-apply them — before restoreHost, which refills the tool-state
    // blobs the checkpoint captured into the re-enabled tools.
    const auto &ivs = owner_.log_.interventions;
    journalIds_.assign(ivs.size(), 0);
    while (nextIntervention_ < ivs.size() &&
           ivs[nextIntervention_].time < interval_.fromTime) {
        const Intervention &iv = ivs[nextIntervention_];
        if (iv.kind == InterventionKind::AddProduction ||
            iv.kind == InterventionKind::RemoveProduction ||
            iv.kind == InterventionKind::ToolEnable ||
            iv.kind == InterventionKind::ToolDisable)
            applyProduction(iv);
        ++nextIntervention_;
    }

    // Registers, backend host state, and the sink prefix as of the
    // checkpoint; the event-list prefix is adopted from the live
    // session so per-kind indices and digests line up.
    target_->arch = cp.arch;
    backend.restoreHost(cp.host);
    backend.adoptEvents(
        {owner_.liveBackend_.watchEvents().begin(),
         owner_.liveBackend_.watchEvents().begin() + cp.host.watchEvents},
        {owner_.liveBackend_.breakEvents().begin(),
         owner_.liveBackend_.breakEvents().begin() + cp.host.breakEvents},
        {owner_.liveBackend_.protectionEvents().begin(),
         owner_.liveBackend_.protectionEvents().begin() +
             cp.host.protectionEvents});
    target_->sink.text = owner_.live_.sink.text.substr(0, cp.sinkText);
    target_->sink.marks.assign(
        owner_.live_.sink.marks.begin(),
        owner_.live_.sink.marks.begin() + cp.sinkMarks);
    target_->engine.invalidateMatchCaches();
    target_->mem.invalidatePagePointerCaches();

    time_ = cp.time;
    appInsts_ = cp.appInsts;
    nextCp_ = interval_.cpFrom + 1;
    seenWatch_ = cp.host.watchEvents;
    seenBreak_ = cp.host.breakEvents;
    seenProt_ = cp.host.protectionEvents;
    markCursor_ = seenWatch_ + seenBreak_ + seenProt_;
    seenRecorded_ = backend.eventsRecorded();

    interval_.startDigest = stateDigest(*target_, backend);
    stream_ = std::make_unique<InstStream>(target_->arch, target_->mem,
                                           &target_->engine,
                                           backend.streamEnv(*target_));
    prepared_ = true;
}

void
IntervalReplay::Worker::pollEvents()
{
    DebugBackend &backend = debugger_->backend();
    if (backend.eventsRecorded() == seenRecorded_)
        return;
    seenRecorded_ = backend.eventsRecorded();

    const auto &marks = owner_.log_.marks;
    auto note = [&](EventKind kind, size_t &seen, size_t now,
                    auto pcOf) {
        for (; seen < now; ++seen) {
            DISE_ASSERT(markCursor_ < marks.size(),
                        "interval replay fired an event beyond the "
                        "recorded timeline at t=", time_);
            const EventMark &rec = marks[markCursor_];
            DISE_ASSERT(rec.kind == kind &&
                            rec.index == static_cast<int>(seen) &&
                            rec.time == time_ && rec.pc == pcOf(seen),
                        "interval replay diverged from the recorded "
                        "event timeline at t=", time_);
            ++markCursor_;
            ++interval_.marksVerified;
        }
    };
    note(EventKind::Watch, seenWatch_, backend.watchEvents().size(),
         [&](size_t i) { return backend.watchEvents()[i].pc; });
    note(EventKind::Break, seenBreak_, backend.breakEvents().size(),
         [&](size_t i) { return backend.breakEvents()[i].pc; });
    note(EventKind::Protection, seenProt_,
         backend.protectionEvents().size(),
         [&](size_t i) { return backend.protectionEvents()[i].pc; });
}

bool
IntervalReplay::Worker::step(uint64_t maxUops)
{
    TRACE_SPAN("replay", "ireplay.step");
    DISE_ASSERT(prepared_, "step() before prepare()");
    const auto &ivs = owner_.log_.interventions;
    const auto &cps = owner_.tt_.checkpoints();
    uint64_t budget = maxUops ? maxUops : ~uint64_t{0};

    auto applyHere = [&] {
        while (nextIntervention_ < ivs.size() &&
               ivs[nextIntervention_].time == time_) {
            const Intervention &iv = ivs[nextIntervention_];
            switch (iv.kind) {
              case InterventionKind::PokeMemory:
                target_->mem.write(iv.addr, iv.size, iv.value);
                break;
              case InterventionKind::PokeRegister:
                target_->arch.write(iv.reg, iv.value);
                break;
              default:
                applyProduction(iv);
                break;
            }
            ++nextIntervention_;
        }
    };

    while (time_ < interval_.toTime && budget--) {
        applyHere();
        MicroOp &op = scratchOp_;
        DISE_ASSERT(stream_->next(op),
                    "interval replay halted before its interval end "
                    "(t=", time_, ", wanted t=", interval_.toTime, ")");
        ++time_;
        ++interval_.uopsReplayed;
        if (op.isAppInst())
            ++appInsts_;
        pollEvents();
        // Checkpoint boundary: publish progress and honor a steal
        // that shrank this range. A thief only ever takes checkpoints
        // beyond the published progress, so the shrunk end is always
        // still ahead — or exactly here, ending the range cleanly at
        // the boundary it was cut at.
        if (pool_ && nextCp_ < interval_.cpTo &&
            time_ == cps[nextCp_].time) {
            size_t end = pool_->checkpointReached(interval_.slot,
                                                  nextCp_);
            if (end != interval_.cpTo) {
                interval_.cpTo = end;
                interval_.toTime = cps[end].time;
            }
            ++nextCp_;
        }
    }
    if (time_ < interval_.toTime)
        return false; // budget expired; call step() again

    // The final chunk ends at the live position, where same-time
    // interventions were applied live (and are part of the live
    // digest). Interior chunks leave them to their successor's
    // first µop, matching the checkpoint-restore convention.
    if (interval_.cpTo == cps.size())
        applyHere();
    interval_.endDigest = stateDigest(*target_, debugger_->backend());
    return true;
}

// ----------------------------------------------------------- execution

IntervalReplay::Report
IntervalReplay::run(unsigned workers) const
{
    Pool pool(*this);
    auto work = [&] {
        for (;;) {
            std::unique_ptr<Worker> w = pool.claim();
            if (!w)
                return;
            try {
                w->prepare();
                while (!w->step(opts_.sliceUops)) {
                }
                pool.complete(*w);
            } catch (const std::exception &e) {
                pool.abandon(*w, e.what());
            }
        }
    };

    // More threads than checkpoints can never all find work; beyond
    // that, stealing lets any worker count profit from any cut.
    unsigned n = std::max<size_t>(
        1, std::min<size_t>(workers ? workers : 1,
                            tt_.checkpoints().size()));
    if (n == 1) {
        work();
    } else {
        std::vector<std::thread> pool_threads;
        for (unsigned i = 0; i < n; ++i)
            pool_threads.emplace_back(work);
        for (auto &t : pool_threads)
            t.join();
    }

    uint64_t steals = pool.steals();
    std::string err = pool.error();
    Report r = stitch(pool.take());
    r.workers = n;
    r.steals = steals;
    if (!err.empty()) {
        r.ok = false;
        if (r.error.empty())
            r.error = err;
    }
    return r;
}

IntervalReplay::Report
IntervalReplay::stitch(std::vector<Interval> results) const
{
    Report r;
    r.intervals = std::move(results);
    std::sort(r.intervals.begin(), r.intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.cpFrom < b.cpFrom;
              });
    r.liveDigest = stateDigest(live_, liveBackend_);
    r.ok = !r.intervals.empty();
    const size_t cpCount = tt_.checkpoints().size();
    for (size_t i = 0; i < r.intervals.size(); ++i) {
        const Interval &iv = r.intervals[i];
        r.uopsReplayed += iv.uopsReplayed;
        r.marksVerified += iv.marksVerified;
        // Full coverage: the sorted chunks must tile the checkpoint
        // list exactly, whatever mix of planned and stolen ranges
        // executed them.
        size_t wantFrom = i == 0 ? 0 : r.intervals[i - 1].cpTo;
        if (iv.cpFrom != wantFrom) {
            r.ok = false;
            if (r.error.empty())
                r.error = "coverage gap before checkpoint " +
                          std::to_string(iv.cpFrom);
        }
        // Deterministic stitch: each chunk must end exactly where
        // the next one starts.
        if (i + 1 < r.intervals.size() &&
            iv.endDigest != r.intervals[i + 1].startDigest) {
            r.ok = false;
            if (r.error.empty())
                r.error = "stitch mismatch between chunks " +
                          std::to_string(i) + " and " +
                          std::to_string(i + 1);
        }
    }
    if (!r.intervals.empty()) {
        if (r.intervals.back().cpTo != cpCount) {
            r.ok = false;
            if (r.error.empty())
                r.error = "coverage ends before the live position";
        }
        r.finalDigest = r.intervals.back().endDigest;
        if (r.finalDigest != r.liveDigest) {
            r.ok = false;
            if (r.error.empty())
                r.error = "final digest differs from the live session";
        }
    }
    return r;
}

} // namespace dise
