/**
 * @file
 * Interval-parallel replay: reconstruct the explored timeline as
 * independent checkpoint intervals on share-nothing replicas.
 *
 * A debugged run's history is already cut into checkpoint intervals by
 * the TimeTravel controller. Because the simulator is deterministic and
 * every checkpoint captures the full replay input set (registers,
 * backend host state, and — via the memory undo chain — the exact
 * memory image), each interval can be re-executed *independently*: a
 * worker gets a fresh replica of the session's machinery (same program,
 * same specs, same instrumentation), is positioned at its interval's
 * starting checkpoint, and replays forward to the interval's end,
 * verifying every re-fired event against the recorded marks and
 * re-applying logged interventions at their exact stream times.
 *
 * Fanned out across workers this turns an O(trace) serial
 * reconstruction into O(trace/workers) wall time; the results are
 * stitched deterministically by digest: interval k's end-state digest
 * must equal interval k+1's start-state digest, and the final
 * interval's end digest must equal the live session's digest
 * bit-for-bit. Any mismatch means determinism was broken — the whole
 * point of running the reconstruction.
 *
 * Workers read the live session (checkpoints, marks, interventions,
 * memory pages) strictly read-only, so any number of them may run
 * concurrently while the session is quiescent. Each worker's replay is
 * itself preemptible (step() takes a µop budget), so a job scheduler
 * can interleave interval jobs with other sessions' work.
 */

#ifndef DISE_REPLAY_INTERVAL_REPLAY_HH
#define DISE_REPLAY_INTERVAL_REPLAY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "replay/time_travel.hh"

namespace dise {

class Debugger;

class IntervalReplay
{
  public:
    /**
     * Builds a share-nothing replica of the debugged session's
     * machinery: fresh loaded target + attached backend with the
     * identical spec set and initial state. Returns false when the
     * machinery cannot be rebuilt.
     */
    using ReplicaFactory =
        std::function<bool(std::unique_ptr<DebugTarget> &target,
                           std::unique_ptr<Debugger> &debugger)>;

    struct Options
    {
        /** µops per step() call in run() (preemption grain). */
        uint64_t sliceUops = 250000;
        /**
         * How many independent pieces to cut the timeline into. Each
         * piece is a contiguous RANGE of checkpoint intervals replayed
         * by one worker — coarse enough that replica setup and digest
         * cost amortize, fine enough to fan out. The piece boundaries
         * (not the worker count) determine the digest chain, so runs
         * with different worker counts stay comparable.
         */
        unsigned pieces = 8;
    };

    /** One timeline piece (a run of checkpoint intervals). */
    struct Interval
    {
        size_t index = 0;
        size_t cpFrom = 0;      ///< first checkpoint of the range
        size_t cpTo = 0;        ///< one past the last checkpoint
        uint64_t fromTime = 0;  ///< starting checkpoint's µop position
        uint64_t toTime = 0;    ///< end position (next cp, or live now)
        uint64_t fromInsts = 0;
        uint64_t startDigest = 0; ///< digest of the materialized start
        uint64_t endDigest = 0;   ///< digest after replaying to toTime
        uint64_t uopsReplayed = 0;
        size_t marksVerified = 0; ///< recorded events re-fired on cue
    };

    /** Stitched outcome of a full reconstruction. */
    struct Report
    {
        bool ok = false;
        std::string error;
        unsigned workers = 0;
        uint64_t liveDigest = 0;  ///< the session's own digest
        uint64_t finalDigest = 0; ///< last interval's end digest
        uint64_t uopsReplayed = 0;
        size_t marksVerified = 0;
        std::vector<Interval> intervals;
    };

    IntervalReplay(TimeTravel &tt, DebugTarget &live,
                   DebugBackend &liveBackend, const ReplayLog &log,
                   ReplicaFactory factory, Options opts);

    size_t intervalCount() const { return plan_.size(); }
    const Options &options() const { return opts_; }

    /**
     * One interval's share-nothing worker. prepare() builds the
     * replica and materializes the interval's start state (throws on a
     * factory failure or a start-state mismatch); step() replays a
     * bounded chunk and returns true once the interval is complete
     * (throws on replay divergence). Workers of different intervals
     * are fully independent.
     */
    class Worker
    {
      public:
        ~Worker();
        void prepare();
        bool step(uint64_t maxUops);
        const Interval &result() const { return interval_; }

      private:
        friend class IntervalReplay;
        Worker(const IntervalReplay &owner, size_t idx);

        void applyProduction(const Intervention &iv);
        void pollEvents();

        const IntervalReplay &owner_;
        Interval interval_;
        bool final_ = false;
        bool prepared_ = false;

        std::unique_ptr<DebugTarget> target_;
        std::unique_ptr<Debugger> debugger_;
        std::unique_ptr<InstStream> stream_;

        uint64_t time_ = 0;
        uint64_t appInsts_ = 0;
        size_t nextIntervention_ = 0;
        size_t markCursor_ = 0;
        size_t seenWatch_ = 0, seenBreak_ = 0, seenProt_ = 0;
        uint64_t seenRecorded_ = 0;
        /** Live-log intervention index → replica engine production id
         *  (productions are re-created with fresh ids on a replica). */
        std::vector<ProductionId> journalIds_;
        MicroOp scratchOp_{};
    };

    std::unique_ptr<Worker> makeWorker(size_t idx) const;

    /**
     * Reconstruct every interval on @p workers threads (1 = serial)
     * and stitch. Worker errors land in the report, never throw.
     */
    Report run(unsigned workers) const;

    /** Digest-chain verification of externally driven workers. */
    Report stitch(std::vector<Interval> results) const;

  private:
    TimeTravel &tt_;
    DebugTarget &live_;
    DebugBackend &liveBackend_;
    const ReplayLog &log_;
    ReplicaFactory factory_;
    Options opts_;
    std::vector<Interval> plan_;
};

} // namespace dise

#endif // DISE_REPLAY_INTERVAL_REPLAY_HH
