/**
 * @file
 * Interval-parallel replay: reconstruct the explored timeline as
 * independent checkpoint intervals on share-nothing replicas.
 *
 * A debugged run's history is already cut into checkpoint intervals by
 * the TimeTravel controller. Because the simulator is deterministic and
 * every checkpoint captures the full replay input set (registers,
 * backend host state, and — via the memory undo chain — the exact
 * memory image), each interval can be re-executed *independently*: a
 * worker gets a fresh replica of the session's machinery (same program,
 * same specs, same instrumentation), is positioned at its interval's
 * starting checkpoint, and replays forward to the interval's end,
 * verifying every re-fired event against the recorded marks and
 * re-applying logged interventions at their exact stream times.
 *
 * Fanned out across workers this turns an O(trace) serial
 * reconstruction into O(trace/workers) wall time; the results are
 * stitched deterministically by digest: chunk k's end-state digest
 * must equal the start-state digest of the chunk that begins at k's
 * last checkpoint, and the final chunk's end digest must equal the
 * live session's digest bit-for-bit. Any mismatch means determinism
 * was broken — the whole point of running the reconstruction.
 *
 * Work distribution is dynamic: claimed ranges live in a shared Pool,
 * and an idle worker with no pending range left *steals* the far half
 * of the largest in-flight range. The victim publishes its checkpoint
 * progress at every boundary crossing and re-reads its (possibly
 * shrunk) end under the pool lock at the same point, so a steal is
 * race-free: the thief only ever takes checkpoints the victim has not
 * reached, and both sides agree on the handoff boundary exactly. This
 * is what lets W workers profit from any initial cut — including
 * workers > pieces, where static assignment used to leave cores idle.
 *
 * Workers read the live session (checkpoints, marks, interventions,
 * memory pages) strictly read-only, so any number of them may run
 * concurrently while the session is quiescent. Each worker's replay is
 * itself preemptible (step() takes a µop budget), so a job scheduler
 * can interleave interval jobs with other sessions' work.
 */

#ifndef DISE_REPLAY_INTERVAL_REPLAY_HH
#define DISE_REPLAY_INTERVAL_REPLAY_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "replay/time_travel.hh"

namespace dise {

class Debugger;

class IntervalReplay
{
  public:
    /**
     * Builds a share-nothing replica of the debugged session's
     * machinery: fresh loaded target + attached backend with the
     * identical spec set and initial state. Returns false when the
     * machinery cannot be rebuilt.
     */
    using ReplicaFactory =
        std::function<bool(std::unique_ptr<DebugTarget> &target,
                           std::unique_ptr<Debugger> &debugger)>;

    struct Options
    {
        /** µops per step() call in run() (preemption grain). */
        uint64_t sliceUops = 250000;
        /**
         * How many ranges to cut the timeline into up front. Each
         * range is a contiguous run of checkpoint intervals — coarse
         * enough that replica setup and digest cost amortize, fine
         * enough to fan out. With stealing on this is only the seed
         * cut; idle workers split in-flight ranges further.
         */
        unsigned pieces = 8;
        /**
         * Dynamic work-stealing: an idle worker splits the largest
         * remaining in-flight range instead of going idle. Off =
         * static assignment (the pre-stealing behavior, kept for
         * benchmarking the difference).
         */
        bool steal = true;
    };

    /** One executed chunk (a run of checkpoint intervals). */
    struct Interval
    {
        size_t index = 0;       ///< claim order
        unsigned slot = 0;      ///< pool slot that executed it
        bool stolen = false;    ///< carved from an in-flight range
        size_t cpFrom = 0;      ///< first checkpoint of the range
        size_t cpTo = 0;        ///< one past the last checkpoint
        uint64_t fromTime = 0;  ///< starting checkpoint's µop position
        uint64_t toTime = 0;    ///< end position (next cp, or live now)
        uint64_t fromInsts = 0;
        uint64_t startDigest = 0; ///< digest of the materialized start
        uint64_t endDigest = 0;   ///< digest after replaying to toTime
        uint64_t uopsReplayed = 0;
        size_t marksVerified = 0; ///< recorded events re-fired on cue
    };

    /** Stitched outcome of a full reconstruction. */
    struct Report
    {
        bool ok = false;
        std::string error;
        unsigned workers = 0;
        uint64_t steals = 0;      ///< ranges split off in-flight work
        uint64_t liveDigest = 0;  ///< the session's own digest
        uint64_t finalDigest = 0; ///< last chunk's end digest
        uint64_t uopsReplayed = 0;
        size_t marksVerified = 0;
        std::vector<Interval> intervals; ///< sorted by cpFrom
    };

    IntervalReplay(TimeTravel &tt, DebugTarget &live,
                   DebugBackend &liveBackend, const ReplayLog &log,
                   ReplicaFactory factory, Options opts);

    size_t intervalCount() const { return plan_.size(); }
    const Options &options() const { return opts_; }

    class Pool;

    /**
     * A share-nothing worker for one claimed range. prepare() builds
     * the replica and materializes the range's start state (throws on
     * a factory failure or a start-state mismatch); step() replays a
     * bounded chunk and returns true once the range is complete
     * (throws on replay divergence). While stepping, the worker
     * publishes checkpoint progress to its pool at every boundary
     * crossing and honors steals that shrink its end. Workers of
     * different ranges are fully independent.
     */
    class Worker
    {
      public:
        ~Worker();
        void prepare();
        bool step(uint64_t maxUops);
        const Interval &result() const { return interval_; }

      private:
        friend class IntervalReplay;
        friend class Pool;
        Worker(const IntervalReplay &owner, Interval iv, Pool *pool);

        void applyProduction(const Intervention &iv);
        void pollEvents();

        const IntervalReplay &owner_;
        Interval interval_;
        Pool *pool_ = nullptr;
        bool prepared_ = false;

        std::unique_ptr<DebugTarget> target_;
        std::unique_ptr<Debugger> debugger_;
        std::unique_ptr<InstStream> stream_;

        uint64_t time_ = 0;
        uint64_t appInsts_ = 0;
        size_t nextCp_ = 0; ///< next checkpoint boundary to publish
        size_t nextIntervention_ = 0;
        size_t markCursor_ = 0;
        size_t seenWatch_ = 0, seenBreak_ = 0, seenProt_ = 0;
        uint64_t seenRecorded_ = 0;
        /** Live-log intervention index → replica engine production id
         *  (productions are re-created with fresh ids on a replica). */
        std::vector<ProductionId> journalIds_;
        MicroOp scratchOp_{};
    };

    /**
     * The shared work queue one reconstruction drains. claim() hands
     * out the next pending range — or, when stealing is on and the
     * queue is dry, splits the largest in-flight range — and returns
     * nullptr once no further parallel work can be extracted. Safe to
     * call from any number of threads or scheduler jobs.
     */
    class Pool
    {
      public:
        /** Next range to execute, or nullptr when drained. */
        std::unique_ptr<Worker> claim();
        /** Record a finished worker's chunk. */
        void complete(const Worker &w);
        /** Record a worker that died mid-range (leaves a gap). */
        void abandon(const Worker &w, const std::string &error);
        /** All completed chunks (call after the workers are done). */
        std::vector<Interval> take();
        uint64_t steals() const;
        const std::string &error() const;

      private:
        friend class IntervalReplay;
        friend class Worker;
        explicit Pool(const IntervalReplay &owner);

        /** Victim-side boundary publish: records that @p slot reached
         *  checkpoint @p cp and returns its current (possibly stolen-
         *  from) end. */
        size_t checkpointReached(unsigned slot, size_t cp);

        struct Active
        {
            size_t progress; ///< last checkpoint boundary reached
            size_t end;      ///< one past the last owned checkpoint
        };

        const IntervalReplay &owner_;
        mutable std::mutex mu_;
        std::deque<Interval> pending_;
        std::map<unsigned, Active> active_;
        std::vector<Interval> done_;
        unsigned nextSlot_ = 0;
        size_t nextIndex_ = 0;
        uint64_t steals_ = 0;
        std::string error_;
    };

    /** A fresh pool over the full timeline cut. */
    std::unique_ptr<Pool> makePool() const;

    /**
     * Reconstruct the whole timeline on @p workers threads (1 =
     * serial) with dynamic stealing and stitch. Worker errors land in
     * the report, never throw.
     */
    Report run(unsigned workers) const;

    /** Digest-chain + coverage verification of executed chunks. */
    Report stitch(std::vector<Interval> results) const;

  private:
    TimeTravel &tt_;
    DebugTarget &live_;
    DebugBackend &liveBackend_;
    const ReplayLog &log_;
    ReplicaFactory factory_;
    Options opts_;
    std::vector<Interval> plan_;
};

} // namespace dise

#endif // DISE_REPLAY_INTERVAL_REPLAY_HH
