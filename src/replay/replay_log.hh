/**
 * @file
 * The record of everything that makes a debugged run what it is beyond
 * the program image: the workload seed, the time-stamped debugger
 * interventions (memory/register pokes, DISE pattern-table mutations),
 * and the discovered event timeline (which user-visible event fired at
 * which stream position). Re-executing from any checkpoint while
 * re-applying logged interventions at their recorded times reproduces
 * the run bit-identically, which is what lets the TimeTravel
 * controller move the debugger backward as cheaply as forward.
 */

#ifndef DISE_REPLAY_REPLAY_LOG_HH
#define DISE_REPLAY_REPLAY_LOG_HH

#include <string>
#include <vector>

#include "dise/engine.hh"
#include "isa/inst.hh"

namespace dise {

/** Kinds of nondeterministic inputs the log captures. */
enum class InterventionKind : uint8_t {
    PokeMemory,       ///< debugger wrote target memory
    PokeRegister,     ///< debugger wrote a target register
    AddProduction,    ///< debugger installed a DISE production
    RemoveProduction, ///< debugger removed a DISE production
    ToolEnable,       ///< debugger enabled a debug tool
    ToolDisable,      ///< debugger disabled a debug tool
};

inline const char *
interventionKindName(InterventionKind kind)
{
    switch (kind) {
      case InterventionKind::PokeMemory: return "poke-memory";
      case InterventionKind::PokeRegister: return "poke-register";
      case InterventionKind::AddProduction: return "add-production";
      case InterventionKind::RemoveProduction: return "remove-production";
      case InterventionKind::ToolEnable: return "tool-enable";
      case InterventionKind::ToolDisable: return "tool-disable";
    }
    return "?";
}

/**
 * One debugger intervention, stamped with the stream position (µops
 * executed) it was applied at. Each record carries enough to re-apply
 * the intervention during forward replay AND to unwind it when the
 * session travels backward across it.
 */
struct Intervention
{
    InterventionKind kind = InterventionKind::PokeMemory;
    uint64_t time = 0;
    /** Application instructions retired when it was applied. Stream
     *  positions (µops) are instrumentation-dependent, so replaying a
     *  session under a *different* watchpoint set — the session layer's
     *  post-attach rebuild — re-applies interventions at this stamp
     *  instead. */
    uint64_t appInsts = 0;
    /** Recorded while parked on an event stop (mid-expansion, below
     *  app-instruction resolution). Same-machinery replay re-applies it
     *  at its exact µop time as usual; a machinery REBUILD (which only
     *  has app-instruction coordinates) re-applies it at the park
     *  position after re-finding the event. */
    bool atEventPark = false;

    // PokeMemory / PokeRegister payload.
    Addr addr = 0;
    unsigned size = 8;
    uint64_t value = 0;
    RegId reg{};

    // AddProduction payload; also the unwind payload for
    // RemoveProduction (the production that was removed).
    Production production;
    /** Engine id currently backing this intervention (updated on each
     *  replay: the engine assigns fresh ids). */
    ProductionId engineId = 0;
    /** RemoveProduction: index of the AddProduction record it undoes,
     *  or -1 when it removed a production installed before the session
     *  started. */
    int addIndex = -1;
    /** RemoveProduction: pattern-table slot the production occupied.
     *  Unwinding the removal re-installs into this exact slot, since
     *  slot order breaks equal-specificity match ties. */
    int slot = -1;

    // ToolEnable / ToolDisable payload. ToolDisable carries the same
    // name + config so unwinding it can re-enable the tool.
    std::string toolName;
    std::vector<std::pair<std::string, std::string>> toolConfig;
    /** ToolEnable (DISE backend): pattern-table slots the tool's
     *  production set occupied, for exact-slot re-install on unwind of
     *  a ToolDisable and for journal round-trips. */
    std::vector<int> toolSlots;
};

/** Which backend list a user-visible event was recorded in. */
enum class EventKind : uint8_t { Watch, Break, Protection };

/**
 * One entry of the event timeline: the n-th user-visible event of the
 * run, pinned to the exact stream position where it fired. Marks are
 * discovered during first execution and stay valid across reverse
 * travel — determinism guarantees the same event fires at the same
 * position on every replay (verified by the controller).
 */
struct EventMark
{
    EventKind kind = EventKind::Watch;
    /** Index within the backend's per-kind event list. */
    int index = 0;
    /** Stream position (µops executed) just after the event fired. */
    uint64_t time = 0;
    /** Application instructions retired at that position. */
    uint64_t appInsts = 0;
    /** Event PC (the detecting instruction, backend-dependent). */
    Addr pc = 0;
};

class ReplayLog
{
  public:
    /** @name Run identity (recorded nondeterministic inputs) */
    ///@{
    uint64_t seed = 0;
    std::string programName;
    ///@}

    std::vector<Intervention> interventions;
    std::vector<EventMark> marks;

    /**
     * A new intervention at @p time invalidates the already-explored
     * future: marks and interventions beyond it describe a timeline
     * that can no longer happen.
     */
    void
    truncateAfter(uint64_t time)
    {
        while (!marks.empty() && marks.back().time > time)
            marks.pop_back();
        while (!interventions.empty() &&
               interventions.back().time > time)
            interventions.pop_back();
    }
};

} // namespace dise

#endif // DISE_REPLAY_REPLAY_LOG_HH
