#include "replay/time_travel.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "debug/target.hh"
#include "obs/trace.hh"

namespace dise {

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Start: return "start-of-history";
      case StopReason::Event: return "event";
      case StopReason::Step: return "step";
      case StopReason::Halted: return "halted";
      case StopReason::Fault: return "fault";
      case StopReason::InstLimit: return "inst-limit";
    }
    return "?";
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Watch: return "watch";
      case EventKind::Break: return "break";
      case EventKind::Protection: return "protection";
    }
    return "?";
}

std::string
StopInfo::describe() const
{
    std::ostringstream os;
    os << "stopped: " << stopReasonName(reason);
    if (reason == StopReason::Event && eventIndex >= 0)
        os << " #" << eventIndex << " (" << eventKindName(mark.kind)
           << " " << mark.index << ")";
    os << " at pc=0x" << std::hex << pc << std::dec << ", t=" << time
       << ", " << appInsts << " insts";
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, StopReason reason)
{
    return os << stopReasonName(reason);
}

std::ostream &
operator<<(std::ostream &os, const StopInfo &stop)
{
    return os << stop.describe();
}

TimeTravel::TimeTravel(DebugTarget &target, DebugBackend &backend,
                       ReplayLog &log, TimeTravelConfig cfg)
    : target_(target), backend_(backend), log_(log), cfg_(cfg)
{
    DISE_ASSERT(target_.loaded(),
                "TimeTravel requires a loaded target (attach first)");
    DISE_ASSERT(cfg_.checkpointInterval > 0, "zero checkpoint interval");
    target_.mem.beginUndoLog();
    takeCheckpoint(); // time-zero checkpoint anchors the timeline
}

TimeTravel::~TimeTravel()
{
    target_.mem.endUndoLog();
}

bool
TimeTravel::atBoundary() const
{
    // A fresh (or just-restored) stream is between instructions by
    // construction; otherwise we must not be mid-expansion or inside a
    // DISE-called function, so a checkpoint can re-enter cleanly.
    return !stream_ || (!stream_->inExpansion() && !stream_->inHandler());
}

void
TimeTravel::ensureStream()
{
    if (!stream_)
        stream_ = std::make_unique<InstStream>(
            target_.arch, target_.mem, &target_.engine,
            backend_.streamEnv(target_));
}

/**
 * Execute one micro-op and pin any events it fired to the timeline.
 * Newly discovered events extend the mark list; during replay the
 * re-fired events are verified against the recorded marks — any
 * divergence means determinism was broken.
 */
bool
TimeTravel::stepUop(bool &firedEvent)
{
    firedEvent = false;
    if (halted_)
        return false;
    ensureStream();

    // Reused scratch op: a local `MicroOp op` would zero-initialize
    // ~sizeof(MicroOp) bytes on every call *in addition to* the value
    // re-initialization next() performs internally; measured at
    // roughly the whole remaining record-mode overhead.
    MicroOp &op = scratchOp_;
    if (!stream_->next(op)) {
        halted_ = true;
        haltReason_ = stream_->haltReason();
        return false;
    }
    ++time_;
    ++stats_.uops;
    if (op.isAppInst())
        ++appInsts_;
    if (op.isHalt) {
        halted_ = true;
        haltReason_ = op.haltReason;
    }

    pollEvents(firedEvent);
    return true;
}

void
TimeTravel::pollEvents(bool &firedEvent)
{
    // Record-mode fast path: detection is batched behind the backend's
    // monotonic event counter, so the common no-event µop pays one
    // integer compare instead of three list polls.
    if (backend_.eventsRecorded() == seenRecorded_)
        return;
    seenRecorded_ = backend_.eventsRecorded();

    auto noteEvents = [&](EventKind kind, size_t &seen, size_t now,
                          auto pcOf) {
        for (; seen < now; ++seen) {
            EventMark mark{kind, static_cast<int>(seen), time_,
                           appInsts_, pcOf(seen)};
            if (curEvents_ == log_.marks.size()) {
                log_.marks.push_back(mark);
            } else {
                const EventMark &rec = log_.marks[curEvents_];
                DISE_ASSERT(rec.kind == mark.kind &&
                                rec.index == mark.index &&
                                rec.time == mark.time &&
                                rec.pc == mark.pc,
                            "deterministic replay diverged from the "
                            "recorded event timeline at t=", time_);
            }
            ++curEvents_;
            firedEvent = true;
        }
    };
    noteEvents(EventKind::Watch, seenWatch_,
               backend_.watchEvents().size(),
               [&](size_t i) { return backend_.watchEvents()[i].pc; });
    noteEvents(EventKind::Break, seenBreak_,
               backend_.breakEvents().size(),
               [&](size_t i) { return backend_.breakEvents()[i].pc; });
    noteEvents(EventKind::Protection, seenProt_,
               backend_.protectionEvents().size(), [&](size_t i) {
                   return backend_.protectionEvents()[i].pc;
               });
}

uint64_t
TimeTravel::bulkStep(uint64_t stopTime, uint64_t stopAppInsts,
                     bool &firedEvent)
{
    firedEvent = false;
    if (halted_)
        return 0;
    ensureStream();

    // Absolute µop positions execution must not cross: the travel
    // target and the next logged intervention (callers run
    // replayPendingInterventions() first, so a pending one is strictly
    // in the future — if not, defer to the per-µop path).
    uint64_t maxUops = 0;
    auto capTime = [&](uint64_t absTime) {
        if (absTime <= time_)
            return false;
        uint64_t left = absTime - time_;
        if (!maxUops || left < maxUops)
            maxUops = left;
        return true;
    };
    if (stopTime && !capTime(stopTime))
        return 0;
    if (nextIntervention_ < log_.interventions.size() &&
        !capTime(log_.interventions[nextIntervention_].time))
        return 0;

    // Absolute app-instruction caps, tightest wins. nextCheckpointAt_
    // keeps checkpoint placement bit-identical to per-µop stepping:
    // the trace executor stops at exactly the boundary maybeCheckpoint
    // would fire on.
    uint64_t maxApp = nextCheckpointAt_;
    if (cfg_.maxAppInsts && cfg_.maxAppInsts < maxApp)
        maxApp = cfg_.maxAppInsts;
    if (stopAppInsts && stopAppInsts < maxApp)
        maxApp = stopAppInsts;
    if (maxApp <= appInsts_)
        return 0;

    InstStream::TracedCounts c = stream_->runTraced(
        maxUops, maxApp - appInsts_, /*appStopAtBoundary=*/true);
    if (!c.uops)
        return 0;
    time_ += c.uops;
    appInsts_ += c.appInsts;
    stats_.uops += c.uops;
    // An event exit retires the firing µop and stops immediately after
    // it, so the mark lands at the identical time_/appInsts_ a
    // stepUop-by-stepUop run would record.
    pollEvents(firedEvent);
    return c.uops;
}

void
TimeTravel::takeCheckpoint()
{
    TRACE_SPAN("travel", "travel.checkpoint");
    Checkpoint cp;
    cp.time = time_;
    cp.appInsts = appInsts_;
    cp.arch = target_.arch;
    cp.host = backend_.snapshotHost();
    cp.sinkText = target_.sink.text.size();
    cp.sinkMarks = target_.sink.marks.size();
    if (!cps_.empty()) {
        // Seal the interval since the previous checkpoint: those
        // pre-images are what roll the memory image back to it.
        UndoLog sealed = target_.mem.sealUndoInterval();
        stats_.pagesCopied += sealed.size();
        cps_.back().undo = std::move(sealed);
    }
    cps_.push_back(std::move(cp));
    ++stats_.checkpointsTaken;
    nextCheckpointAt_ = appInsts_ + cfg_.checkpointInterval;
}

void
TimeTravel::maybeCheckpoint()
{
    if (appInsts_ < nextCheckpointAt_) // the per-µop fast path
        return;
    if (!halted_ && atBoundary())
        takeCheckpoint();
}

size_t
TimeTravel::checkpointAtOrBefore(uint64_t time) const
{
    size_t idx = cps_.size() - 1;
    while (idx > 0 && cps_[idx].time > time)
        --idx;
    return idx;
}

void
TimeTravel::restoreTo(size_t cpIdx)
{
    TRACE_SPAN("travel", "travel.restore");
    MainMemory &mem = target_.mem;
    ++stats_.restores;

    // Roll memory back interval by interval, newest first: the open
    // interval takes us to the newest checkpoint, then each stored
    // interval takes us one checkpoint further into the past.
    UndoLog open = mem.sealUndoInterval();
    stats_.pagesRestored += open.size();
    mem.applyUndo(open);
    for (size_t i = cps_.size() - 1; i > cpIdx; --i) {
        const UndoLog &u = cps_[i - 1].undo;
        stats_.pagesRestored += u.size();
        mem.applyUndo(u);
    }

    // Unwind debugger interventions the rollback crossed, newest
    // first. (Memory and register effects were covered by the undo log
    // and the register snapshot; this reverts engine-table mutations.)
    const Checkpoint &cp = cps_[cpIdx];
    while (nextIntervention_ > 0 &&
           log_.interventions[nextIntervention_ - 1].time >= cp.time)
        unwindIntervention(log_.interventions[--nextIntervention_]);

    target_.arch = cp.arch;
    backend_.restoreHost(cp.host);
    target_.sink.text.resize(cp.sinkText);
    target_.sink.marks.resize(cp.sinkMarks);

    // No stale fetch/decode/match state may survive the restore: drop
    // the stream (and with it the predecoded µop cache), advance the
    // engine generation, and flush the memory page-pointer caches.
    stream_.reset();
    target_.engine.invalidateMatchCaches();
    mem.invalidatePagePointerCaches();

    time_ = cp.time;
    appInsts_ = cp.appInsts;
    halted_ = false;
    haltReason_ = HaltReason::None;
    seenWatch_ = cp.host.watchEvents;
    seenBreak_ = cp.host.breakEvents;
    seenProt_ = cp.host.protectionEvents;
    curEvents_ = seenWatch_ + seenBreak_ + seenProt_;

    // This checkpoint's interval was consumed; it is the open interval
    // now. Checkpoints past it describe a future we just left.
    cps_.resize(cpIdx + 1);
    cps_.back().undo.clear();
    nextCheckpointAt_ = cps_.back().appInsts + cfg_.checkpointInterval;
    seenRecorded_ = backend_.eventsRecorded();
}

StopInfo
TimeTravel::stopHere(StopReason reason, int eventIndex)
{
    StopInfo s;
    s.reason = reason;
    s.eventIndex = eventIndex;
    if (eventIndex >= 0 &&
        static_cast<size_t>(eventIndex) < log_.marks.size())
        s.mark = log_.marks[eventIndex];
    s.time = time_;
    s.appInsts = appInsts_;
    s.pc = target_.arch.pc;
    return s;
}

void
TimeTravel::replayPendingInterventions()
{
    while (nextIntervention_ < log_.interventions.size() &&
           log_.interventions[nextIntervention_].time == time_)
        applyIntervention(log_.interventions[nextIntervention_++]);
}

StopInfo
TimeTravel::travelToTime(uint64_t targetTime, int eventIndex)
{
    if (targetTime < time_)
        restoreTo(checkpointAtOrBefore(targetTime));
    while (time_ < targetTime) {
        replayPendingInterventions();
        bool fired = false;
        uint64_t bulk = bulkStep(targetTime, 0, fired);
        if (bulk) {
            stats_.replayedUops += bulk;
        } else if (stepUop(fired)) {
            ++stats_.replayedUops;
        } else {
            break;
        }
        maybeCheckpoint();
    }
    replayPendingInterventions();
    DISE_ASSERT(time_ == targetTime,
                "replay fell short of its target position (halted at t=",
                time_, ", wanted t=", targetTime, ")");
    return stopHere(eventIndex >= 0 ? StopReason::Event : StopReason::Step,
                    eventIndex);
}

StopInfo
TimeTravel::runForward(uint64_t stopAppInsts, bool stopOnEvent)
{
    TRACE_SPAN("travel", "travel.run");
    for (;;) {
        if (halted_)
            return stopHere(haltReason_ == HaltReason::Fault
                                ? StopReason::Fault
                                : StopReason::Halted);
        if (cfg_.maxAppInsts && appInsts_ >= cfg_.maxAppInsts)
            return stopHere(StopReason::InstLimit);
        if (stopAppInsts && appInsts_ >= stopAppInsts && atBoundary())
            return stopHere(StopReason::Step);
        replayPendingInterventions();
        bool fired = false;
        if (!bulkStep(0, stopAppInsts, fired))
            stepUop(fired);
        maybeCheckpoint();
        if (fired && stopOnEvent)
            return stopHere(StopReason::Event,
                            static_cast<int>(curEvents_) - 1);
    }
}

StopInfo
TimeTravel::cont()
{
    travel_.active = false; // a new verb abandons any sliced travel
    // A future already explored is replayed to its next known event;
    // fresh territory is discovered live.
    if (curEvents_ < log_.marks.size())
        return travelToTime(log_.marks[curEvents_].time,
                            static_cast<int>(curEvents_));
    return runForward(0, true);
}

StopInfo
TimeTravel::contTo(uint64_t maxAppInsts)
{
    travel_.active = false;
    // Unlike cont(), always discovers step-by-step: in replayed
    // territory the re-fired events are verified against the recorded
    // marks as usual, so the bound applies uniformly.
    return runForward(maxAppInsts, true);
}

StopInfo
TimeTravel::runToEnd()
{
    travel_.active = false;
    return runForward(0, false);
}

StopInfo
TimeTravel::stepi(uint64_t n)
{
    travel_.active = false;
    return runForward(appInsts_ + n, false);
}

StopInfo
TimeTravel::reverseContinue()
{
    bool done = false;
    StopInfo s = travelBegin(TravelVerb::ReverseContinue, 0, done);
    while (!done)
        s = travelStep(0, done);
    return s;
}

StopInfo
TimeTravel::reverseStep(uint64_t n)
{
    bool done = false;
    StopInfo s = travelBegin(TravelVerb::ReverseStep, n, done);
    while (!done)
        s = travelStep(0, done);
    return s;
}

StopInfo
TimeTravel::runToEvent(size_t n)
{
    bool done = false;
    StopInfo s = travelBegin(TravelVerb::RunToEvent, n, done);
    while (!done)
        s = travelStep(0, done);
    return s;
}

// ------------------------------------------------------- sliced travel

StopInfo
TimeTravel::travelBegin(TravelVerb verb, uint64_t count, bool &done)
{
    travel_ = TravelState{};
    switch (verb) {
      case TravelVerb::ReverseContinue: {
        int target = static_cast<int>(curEvents_) - 1;
        // Stopped exactly on an event: travel to the one before it —
        // past ALL marks at the current position, since one micro-op
        // can fire several events at once (e.g. overlapping
        // watchpoints) and re-landing on the same position would make
        // no progress.
        while (target >= 0 && log_.marks[target].time == time_)
            --target;
        travel_.byTime = true;
        if (target < 0) {
            travel_.targetTime = 0;
            travel_.eventIndex = -1;
            travel_.reachReason = StopReason::Start;
        } else {
            travel_.targetTime = log_.marks[target].time;
            travel_.eventIndex = target;
            travel_.reachReason = StopReason::Event;
        }
        break;
      }
      case TravelVerb::ReverseStep:
        travel_.targetInsts =
            count >= appInsts_ ? 0 : appInsts_ - count;
        travel_.reachReason = StopReason::Step;
        break;
      case TravelVerb::RunToEvent:
        if (count < log_.marks.size()) {
            travel_.byTime = true;
            travel_.targetTime = log_.marks[count].time;
            travel_.eventIndex = static_cast<int>(count);
            travel_.reachReason = StopReason::Event;
        } else {
            travel_.discover = true;
            travel_.eventGoal = count;
        }
        break;
    }

    // The restore is the cheap part (cost ∝ pages dirtied since the
    // target checkpoint); the replay that follows is what travelStep
    // meters out in quanta.
    if (travel_.byTime && travel_.targetTime < time_) {
        restoreTo(checkpointAtOrBefore(travel_.targetTime));
    } else if (!travel_.byTime && !travel_.discover &&
               travel_.targetInsts < appInsts_) {
        size_t idx = cps_.size() - 1;
        while (idx > 0 && cps_[idx].appInsts > travel_.targetInsts)
            --idx;
        restoreTo(idx);
    }
    travel_.active = true;
    done = false;
    // The restore may land exactly on the goal (it often does for
    // reverse-continue: the target event sits at a checkpoint).
    bool arrived =
        !travel_.discover &&
        (travel_.byTime
             ? time_ == travel_.targetTime
             : !(appInsts_ < travel_.targetInsts || !atBoundary()));
    if (arrived) {
        replayPendingInterventions();
        return travelFinish(done);
    }
    return stopHere(StopReason::Step);
}

StopInfo
TimeTravel::seekBegin(uint64_t targetTime, bool &done)
{
    travel_ = TravelState{};
    travel_.byTime = true;
    travel_.targetTime = targetTime;
    travel_.reachReason = StopReason::Step;
    if (targetTime < time_)
        restoreTo(checkpointAtOrBefore(targetTime));
    travel_.active = true;
    done = false;
    if (time_ == targetTime) {
        replayPendingInterventions();
        return travelFinish(done);
    }
    return stopHere(StopReason::Step);
}

StopInfo
TimeTravel::travelStep(uint64_t maxAppInsts, bool &done)
{
    TRACE_SPAN("travel", "travel.replay");
    DISE_ASSERT(travel_.active, "travelStep() without an active travel");
    done = false;
    uint64_t budgetEnd = maxAppInsts ? appInsts_ + maxAppInsts : 0;

    if (travel_.discover) {
        // Forward discovery toward global event #eventGoal; known
        // marks crossed on the way are verified by stepUop as usual.
        for (;;) {
            StopInfo s = runForward(budgetEnd, true);
            if (s.reason == StopReason::Event &&
                static_cast<size_t>(s.eventIndex) !=
                    travel_.eventGoal)
                continue; // an earlier event: keep going
            if (s.reason == StopReason::Step && budgetEnd &&
                appInsts_ >= budgetEnd)
                return s; // quantum expired; travel stays active
            // The goal event — or halt/fault/inst-limit, meaning the
            // timeline never reaches the requested event.
            done = true;
            travel_.active = false;
            return s;
        }
    }

    if (travel_.byTime) {
        while (time_ < travel_.targetTime &&
               (!budgetEnd || appInsts_ < budgetEnd)) {
            replayPendingInterventions();
            bool fired = false;
            uint64_t bulk = bulkStep(travel_.targetTime, budgetEnd,
                                     fired);
            if (bulk) {
                stats_.replayedUops += bulk;
            } else if (stepUop(fired)) {
                ++stats_.replayedUops;
            } else {
                break;
            }
            maybeCheckpoint();
        }
        if (time_ < travel_.targetTime) {
            DISE_ASSERT(!halted_,
                        "replay fell short of its target position "
                        "(halted at t=", time_, ", wanted t=",
                        travel_.targetTime, ")");
            return stopHere(StopReason::Step);
        }
        replayPendingInterventions();
        DISE_ASSERT(time_ == travel_.targetTime,
                    "replay overshot its target position (at t=",
                    time_, ", wanted t=", travel_.targetTime, ")");
        return travelFinish(done);
    }

    // App-instruction goal (reverse-step): land on the first
    // inter-instruction boundary at or past the target.
    while ((appInsts_ < travel_.targetInsts || !atBoundary()) &&
           (!budgetEnd || appInsts_ < budgetEnd)) {
        replayPendingInterventions();
        bool fired = false;
        uint64_t stopApp = travel_.targetInsts;
        if (budgetEnd && (!stopApp || budgetEnd < stopApp))
            stopApp = budgetEnd;
        uint64_t bulk = bulkStep(0, stopApp, fired);
        if (bulk) {
            stats_.replayedUops += bulk;
        } else if (stepUop(fired)) {
            ++stats_.replayedUops;
        } else {
            break;
        }
        maybeCheckpoint();
    }
    if (!halted_ && (appInsts_ < travel_.targetInsts || !atBoundary()))
        return stopHere(StopReason::Step);
    replayPendingInterventions();
    return travelFinish(done);
}

/** Close out the active travel and build its final stop. */
StopInfo
TimeTravel::travelFinish(bool &done)
{
    done = true;
    travel_.active = false;
    StopInfo s = stopHere(travel_.reachReason == StopReason::Event
                              ? StopReason::Event
                              : StopReason::Step,
                          travel_.eventIndex);
    if (travel_.reachReason == StopReason::Start)
        s.reason = StopReason::Start;
    return s;
}

uint64_t
TimeTravel::digest() const
{
    return stateDigest(target_, backend_);
}

void
TimeTravel::applyIntervention(Intervention &iv)
{
    switch (iv.kind) {
      case InterventionKind::PokeMemory:
        // Goes through the normal write path, so the undo log captures
        // the pre-image like any target store.
        target_.mem.write(iv.addr, iv.size, iv.value);
        break;
      case InterventionKind::PokeRegister:
        target_.arch.write(iv.reg, iv.value);
        break;
      case InterventionKind::AddProduction:
        // The engine assigns a fresh id on every (re)application; keep
        // the record pointing at the live one.
        iv.engineId = target_.engine.addProduction(iv.production);
        break;
      case InterventionKind::RemoveProduction: {
        ProductionId id = iv.addIndex >= 0
                              ? log_.interventions[iv.addIndex].engineId
                              : iv.engineId;
        iv.engineId = id;
        iv.slot = target_.engine.slotOf(id);
        target_.engine.removeProduction(id);
        break;
      }
      case InterventionKind::ToolEnable: {
        // Fresh tool state; forward replay re-derives it µop by µop.
        // First-free slot insertion is deterministic given the same
        // table history, but record the slots anyway for journal
        // round-trips and exact-slot unwinds.
        std::vector<int> slots;
        std::string terr;
        bool ok = backend_.tools().enable(
            target_, iv.toolName, iv.toolConfig,
            backend_.usesDiseProductions(), &terr, &slots);
        DISE_ASSERT(ok, "tool-enable replay failed: ", terr);
        iv.toolSlots = std::move(slots);
        break;
      }
      case InterventionKind::ToolDisable: {
        // Remember the slots the tool's productions held so unwinding
        // this disable can re-install into exactly those slots.
        iv.toolSlots = backend_.tools().installedSlots(iv.toolName);
        std::string terr;
        bool ok = backend_.tools().disable(target_, iv.toolName, &terr);
        DISE_ASSERT(ok, "tool-disable replay failed: ", terr);
        break;
      }
    }
}

void
TimeTravel::unwindIntervention(Intervention &iv)
{
    switch (iv.kind) {
      case InterventionKind::PokeMemory:
      case InterventionKind::PokeRegister:
        // Covered by the memory undo log / register snapshot.
        break;
      case InterventionKind::AddProduction:
        target_.engine.removeProduction(iv.engineId);
        break;
      case InterventionKind::RemoveProduction: {
        // Back into its original slot: first-free insertion would
        // reorder the table and flip equal-specificity match ties.
        ProductionId id =
            target_.engine.addProductionAt(iv.production, iv.slot);
        iv.engineId = id;
        if (iv.addIndex >= 0)
            log_.interventions[iv.addIndex].engineId = id;
        break;
      }
      case InterventionKind::ToolEnable: {
        // Crossing back over the enable: the tool ceases to exist at
        // this position (the checkpoint restore that follows carries
        // no blob for it either).
        std::string terr;
        bool ok = backend_.tools().disable(target_, iv.toolName, &terr);
        DISE_ASSERT(ok, "tool-enable unwind failed: ", terr);
        break;
      }
      case InterventionKind::ToolDisable: {
        // Re-enable into the exact slots recorded at disable time; the
        // checkpoint restore that follows refills the tool's state.
        std::string terr;
        bool ok = backend_.tools().enable(
            target_, iv.toolName, iv.toolConfig,
            backend_.usesDiseProductions(), &terr, nullptr,
            &iv.toolSlots);
        DISE_ASSERT(ok, "tool-disable unwind failed: ", terr);
        break;
      }
    }
}

void
TimeTravel::recordIntervention(Intervention iv)
{
    // Between instructions is always fine. Mid-expansion is allowed
    // only while parked exactly on an event stop — the position a gdb
    // sits at when it writes memory at a watchpoint hit. The record
    // keeps the exact µop time (same-machinery replay re-applies it
    // there, preserving determinism) and flags the park so a machinery
    // rebuild can re-apply it at the re-found event instead.
    bool parked = !atBoundary() && curEvents_ > 0 &&
                  curEvents_ <= log_.marks.size() &&
                  log_.marks[curEvents_ - 1].time == time_;
    DISE_ASSERT(atBoundary() || parked,
                "interventions are only valid between instructions or "
                "parked at an event stop");
    iv.atEventPark = parked;
    // Intervening forks the timeline: the already-explored future can
    // no longer happen.
    log_.truncateAfter(time_);
    DISE_ASSERT(nextIntervention_ == log_.interventions.size(),
                "stale pending interventions survived a timeline fork");
    iv.time = time_;
    iv.appInsts = appInsts_;
    applyIntervention(iv);
    log_.interventions.push_back(std::move(iv));
    nextIntervention_ = log_.interventions.size();
}

void
TimeTravel::pokeMemory(Addr addr, unsigned size, uint64_t value)
{
    Intervention iv;
    iv.kind = InterventionKind::PokeMemory;
    iv.addr = addr;
    iv.size = size;
    iv.value = value;
    recordIntervention(std::move(iv));
}

void
TimeTravel::pokeRegister(RegId r, uint64_t value)
{
    Intervention iv;
    iv.kind = InterventionKind::PokeRegister;
    iv.reg = r;
    iv.value = value;
    recordIntervention(std::move(iv));
}

ProductionId
TimeTravel::addProduction(const Production &p)
{
    Intervention iv;
    iv.kind = InterventionKind::AddProduction;
    iv.production = p;
    recordIntervention(std::move(iv));
    return log_.interventions.back().engineId;
}

void
TimeTravel::removeProduction(ProductionId id)
{
    Intervention iv;
    iv.kind = InterventionKind::RemoveProduction;
    iv.engineId = id;
    const Production *p = target_.engine.production(id);
    DISE_ASSERT(p, "removeProduction: unknown production id ", id);
    iv.production = *p;
    for (size_t i = 0; i < log_.interventions.size(); ++i) {
        const Intervention &other = log_.interventions[i];
        if (other.kind == InterventionKind::AddProduction &&
            other.engineId == id) {
            iv.addIndex = static_cast<int>(i);
            break;
        }
    }
    recordIntervention(std::move(iv));
}

bool
TimeTravel::enableTool(const std::string &name,
                       const tools::ToolSet::Config &cfg,
                       std::string *err)
{
    // Validate before touching the timeline: recordIntervention forks
    // (truncates) the explored future, which a refused enable must not.
    if (!backend_.tools().canEnable(target_, name, cfg,
                                    backend_.usesDiseProductions(), err))
        return false;
    Intervention iv;
    iv.kind = InterventionKind::ToolEnable;
    iv.toolName = name;
    iv.toolConfig = cfg;
    recordIntervention(std::move(iv));
    return true;
}

bool
TimeTravel::disableTool(const std::string &name, std::string *err)
{
    if (!backend_.tools().isEnabled(name)) {
        if (err)
            *err = "tool '" + name + "' is not enabled";
        return false;
    }
    Intervention iv;
    iv.kind = InterventionKind::ToolDisable;
    iv.toolName = name;
    // Carry the config so unwinding the disable can re-enable.
    for (const Intervention &other : log_.interventions)
        if (other.kind == InterventionKind::ToolEnable &&
            other.toolName == name)
            iv.toolConfig = other.toolConfig;
    recordIntervention(std::move(iv));
    return true;
}

} // namespace dise
