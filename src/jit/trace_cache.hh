/**
 * @file
 * The trace cache: storage, hotness profiling, invalidation, and the
 * build-time redundancy-suppression pass.
 *
 * Invalidation channels, each mapped to the stale assumption it covers:
 *
 *  - Self-modifying / debugger-rewritten code: the cache registers as a
 *    CodeWatcher with MainMemory and marks every page a trace body was
 *    decoded from; a write to such a page drops the traces touching it
 *    and bumps writeEpoch() so an executing trace notices mid-run.
 *  - DISE table mutations: traces validate the engine tableVersion they
 *    were built under at every entry (semantic changes only — restore's
 *    cache-invalidation generation bumps do not wipe the trace cache,
 *    which is precisely where replay needs its speed).
 *  - Backend machinery changes: traces bake in monitor identity,
 *    store-monitoring, and statement-trap sites; bindEnv() fingerprints
 *    the stream environment and clears the cache when it changes
 *    (session rebuilds create fresh backends, possibly at reused
 *    addresses).
 *
 * Trace bodies are shared_ptr-held so an executing trace survives its
 * own invalidation (an SMC store inside the running trace erases the
 * cache entry; the executor still holds a reference and side-exits at
 * the next op boundary).
 */

#ifndef DISE_JIT_TRACE_CACHE_HH
#define DISE_JIT_TRACE_CACHE_HH

#include <unordered_map>
#include <unordered_set>

#include "jit/trace.hh"
#include "mem/mainmem.hh"

namespace dise {

struct StreamEnv;

class TraceCache : public CodeWatcher
{
  public:
    explicit TraceCache(MainMemory &mem);
    ~TraceCache() override;

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    TraceJitConfig &config() { return cfg_; }
    const TraceJitConfig &config() const { return cfg_; }

    /**
     * Adopt the stream environment traces will run under. A different
     * fingerprint (new monitor, changed statement-trap set, toggled
     * store monitoring) invalidates every cached trace.
     */
    void bindEnv(const StreamEnv &env);

    /**
     * Trace starting at @p pc and valid under @p tableVersion, or null.
     * Stale entries are evicted on sight.
     */
    TraceRef lookup(Addr pc, uint64_t tableVersion);

    /**
     * Count a taken backward transfer to @p target. Returns true once
     * the target is hot and holds no valid trace — the caller should
     * start recording at @p target.
     */
    bool noteBackEdge(Addr target, uint64_t tableVersion);

    /** Install a finished trace (runs the suppression pass, marks its
     *  code pages for write invalidation). */
    void insert(std::shared_ptr<Trace> t);

    void invalidateAll();

    /**
     * Advances whenever a code write invalidates traces. The executor
     * samples it at trace entry and exits after any store that moved
     * it — the remainder of the trace may be stale.
     */
    uint64_t writeEpoch() const { return writeEpoch_; }

    /** CodeWatcher: a write hit a page holding trace-body code. */
    void onCodeWrite(uint64_t frame) override;

    const TraceCacheStats &stats() const { return stats_; }
    TraceCacheStats &stats() { return stats_; }
    size_t size() const { return traces_.size(); }

  private:
    void evict(Addr startPc);
    void suppressRedundant(Trace &t) const;

    MainMemory &mem_;
    TraceJitConfig cfg_;
    std::unordered_map<Addr, TraceRef> traces_;
    /** Page frame -> start PCs of traces with body code in that frame. */
    std::unordered_map<uint64_t, std::unordered_set<Addr>> byFrame_;
    /** Backward-transfer target -> taken count (profiling). */
    std::unordered_map<Addr, unsigned> hotness_;
    uint64_t writeEpoch_ = 0;
    uint64_t envSig_ = 0;
    bool envBound_ = false;
    /** Whether the bound environment has a DebugMonitor (suppression
     *  may then never elide trap instructions). */
    bool envMonitored_ = false;
    TraceCacheStats stats_;
};

} // namespace dise

#endif // DISE_JIT_TRACE_CACHE_HH
