#include "jit/trace_cache.hh"

#include <vector>

#include "cpu/inst_stream.hh"

namespace dise {

TraceCache::TraceCache(MainMemory &mem) : mem_(mem)
{
    mem_.addCodeWatcher(this);
}

TraceCache::~TraceCache()
{
    mem_.removeCodeWatcher(this);
}

void
TraceCache::bindEnv(const StreamEnv &env)
{
    // Everything a trace bakes in about the stream environment: whether
    // stores invoke the monitor and which PCs are statement-trap sites.
    // The callbacks themselves dispatch virtually through the monitor
    // pointer at run time, so watch/break list contents stay dynamic.
    uint64_t sig = 0x9e3779b97f4a7c15ULL;
    auto mix = [&](uint64_t v) { sig = (sig ^ v) * 0x100000001b3ULL; };
    mix(reinterpret_cast<uintptr_t>(env.monitor));
    mix(env.monitorStores ? 1 : 2);
    mix(reinterpret_cast<uintptr_t>(env.events));
    if (env.stmtTraps) {
        mix(env.stmtTraps->size());
        uint64_t x = 0;
        for (Addr a : *env.stmtTraps)
            x ^= (a + 1) * 0x9e3779b97f4a7c15ULL;
        mix(x);
    }
    envMonitored_ = env.monitor != nullptr;
    if (envBound_ && sig == envSig_)
        return;
    envBound_ = true;
    envSig_ = sig;
    invalidateAll();
}

namespace {

/** Page frames holding code bytes the trace was decoded from: every
 *  raw-op word plus every expansion trigger word (expansion bodies come
 *  from the pattern table and are covered by tableVersion instead). */
void
collectFrames(const Trace &t, std::unordered_set<uint64_t> &frames)
{
    for (const TraceOp &o : t.ops) {
        if (o.expCtx >= 0)
            continue;
        frames.insert(o.pc / PageBytes);
        frames.insert((o.pc + 3) / PageBytes);
    }
    for (const TraceExpCtx &c : t.ctxs) {
        frames.insert(c.trigPc / PageBytes);
        frames.insert((c.trigPc + 3) / PageBytes);
    }
}

} // namespace

TraceRef
TraceCache::lookup(Addr pc, uint64_t tableVersion)
{
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return nullptr;
    if (it->second->tableVersion != tableVersion) {
        evict(pc);
        ++stats_.invalidated;
        return nullptr;
    }
    return it->second;
}

bool
TraceCache::noteBackEdge(Addr target, uint64_t tableVersion)
{
    auto it = traces_.find(target);
    if (it != traces_.end()) {
        if (it->second->tableVersion == tableVersion)
            return false;
        evict(target);
        ++stats_.invalidated;
    }
    unsigned &h = hotness_[target];
    if (++h < cfg_.hotThreshold)
        return false;
    hotness_.erase(target);
    return true;
}

void
TraceCache::insert(std::shared_ptr<Trace> t)
{
    if (cfg_.suppress)
        suppressRedundant(*t);
    evict(t->startPc);
    std::unordered_set<uint64_t> frames;
    collectFrames(*t, frames);
    for (uint64_t f : frames) {
        byFrame_[f].insert(t->startPc);
        // Arm write invalidation. Re-marking matters: a prior code
        // write unmarks the page after notifying watchers.
        mem_.markCodePage(f * PageBytes);
    }
    traces_[t->startPc] = std::move(t);
    ++stats_.built;
}

void
TraceCache::evict(Addr startPc)
{
    auto it = traces_.find(startPc);
    if (it == traces_.end())
        return;
    std::unordered_set<uint64_t> frames;
    collectFrames(*it->second, frames);
    for (uint64_t f : frames) {
        auto fit = byFrame_.find(f);
        if (fit == byFrame_.end())
            continue;
        fit->second.erase(startPc);
        if (fit->second.empty())
            byFrame_.erase(fit);
    }
    traces_.erase(it);
}

void
TraceCache::onCodeWrite(uint64_t frame)
{
    auto it = byFrame_.find(frame);
    if (it == byFrame_.end())
        return;
    std::vector<Addr> pcs(it->second.begin(), it->second.end());
    size_t n = 0;
    for (Addr pc : pcs) {
        if (traces_.count(pc)) {
            evict(pc);
            ++n;
        }
    }
    byFrame_.erase(frame);
    if (n) {
        ++writeEpoch_;
        stats_.invalidated += n;
    }
}

void
TraceCache::invalidateAll()
{
    stats_.invalidated += traces_.size();
    traces_.clear();
    byFrame_.clear();
    hotness_.clear();
    ++writeEpoch_;
}

namespace {

/** Can this op sit inside an elidable group? Register-only work whose
 *  outcome is a pure function of register state. */
bool
regOnlyKind(TraceOpKind k)
{
    return k == TraceOpKind::AluReg || k == TraceOpKind::AluImm ||
           k == TraceOpKind::Lda || k == TraceOpKind::Ldah;
}

/** Registers read or written by the ops in [begin, end), as a bitmask
 *  over the unified logical register space. The hardwired zero register
 *  is excluded (reads are constant, writes are discarded). */
uint64_t
groupRegMask(const std::vector<TraceOp> &ops, size_t begin, size_t end)
{
    uint64_t mask = 0;
    auto add = [&](RegId r) {
        if (r.valid() && !r.isZero())
            mask |= uint64_t{1} << r.flat();
    };
    for (size_t i = begin; i < end; ++i) {
        SrcRegs s = srcRegs(ops[i].inst);
        add(s.r[0]);
        add(s.r[1]);
        add(dstReg(ops[i].inst));
    }
    return mask;
}

} // namespace

/**
 * Build-time redundancy suppression (the in-trace analogue of the
 * memtrace same-granule win): find instrumentation check groups —
 * maximal runs of consecutive register-only ops from one expansion
 * instance — that repeat an identical earlier group with no intervening
 * write to any register the group touches. The registers provably
 * already hold exactly the values the duplicate would compute, so the
 * duplicate executes as counter-retirement only.
 *
 * Only pure groups qualify: a group whose live-in registers (read
 * before written within the group) intersect its own writes is an
 * accumulator — executing the first instance changes the inputs the
 * duplicate would read, so the duplicate computes *different* values
 * and must run.
 *
 * A trailing CTRAP may join its group only when no monitor is bound:
 * with a monitor, the first instance's trap callback can mutate state
 * or record an event the duplicate's would too, so duplicated traps
 * must genuinely re-fire. Side exits into or budget exits inside an
 * elided group are safe — the interpreter re-executes the remaining
 * group ops idempotently, writing back the values already present.
 */
void
TraceCache::suppressRedundant(Trace &t) const
{
    struct Group
    {
        size_t begin = 0, end = 0;
        uint64_t regs = 0;
        bool pure = false; ///< live-ins disjoint from the group's writes
    };
    std::vector<Group> groups;
    const auto &ops = t.ops;
    size_t i = 0;
    while (i < ops.size()) {
        const TraceOp &o = ops[i];
        if (o.expCtx < 0 || o.isTriggerCopy || !regOnlyKind(o.kind)) {
            ++i;
            continue;
        }
        size_t j = i;
        while (j < ops.size() && ops[j].expCtx == o.expCtx &&
               !ops[j].isTriggerCopy && regOnlyKind(ops[j].kind))
            ++j;
        if (j < ops.size() && ops[j].expCtx == o.expCtx &&
            !ops[j].isTriggerCopy && ops[j].kind == TraceOpKind::Ctrap &&
            !envMonitored_)
            ++j;
        uint64_t liveIn = 0, written = 0;
        for (size_t k = i; k < j; ++k) {
            SrcRegs s = srcRegs(ops[k].inst);
            for (RegId r : {s.r[0], s.r[1]})
                if (r.valid() && !r.isZero() &&
                    !((written >> r.flat()) & 1))
                    liveIn |= uint64_t{1} << r.flat();
            RegId d = dstReg(ops[k].inst);
            if (d.valid() && !d.isZero())
                written |= uint64_t{1} << d.flat();
        }
        groups.push_back(
            {i, j, groupRegMask(ops, i, j), (liveIn & written) == 0});
        i = j;
    }

    for (size_t g = 1; g < groups.size(); ++g) {
        const Group &dup = groups[g];
        if (!dup.pure)
            continue;
        // Nearest earlier identical group minimizes the intervening
        // range the no-clobber check must clear.
        for (size_t f = g; f-- > 0;) {
            const Group &first = groups[f];
            if (first.end - first.begin != dup.end - dup.begin)
                continue;
            bool same = true;
            for (size_t k = 0; same && k < dup.end - dup.begin; ++k)
                same = ops[first.begin + k].inst == ops[dup.begin + k].inst;
            if (!same)
                continue;
            bool clobbered = false;
            for (size_t k = first.end; !clobbered && k < dup.begin; ++k) {
                RegId d = dstReg(ops[k].inst);
                if (d.valid() && !d.isZero() &&
                    (dup.regs >> d.flat()) & 1)
                    clobbered = true;
            }
            if (clobbered)
                break; // every earlier occurrence is behind the clobber
            for (size_t k = dup.begin; k < dup.end; ++k)
                t.ops[k].kind = TraceOpKind::Suppressed;
            t.suppressedOps += dup.end - dup.begin;
            break;
        }
    }
}

} // namespace dise
