/**
 * @file
 * Trace-JIT data model.
 *
 * A Trace is a recorded straight-line run of correct-path µops spanning
 * basic blocks, with DISE replacement sequences baked in at build time
 * (the DynamoRIO model applied to the functional interpreter). The
 * executor (InstStream::runTraced) dispatches trace ops from a dense
 * vector with all fetch/decode/match work pre-resolved, side-exiting
 * back to the interpreter at any point where the recorded assumptions
 * stop holding: a branch goes the other way, an instrumentation
 * callback records a debugger event, a store modifies cached code, or
 * an execution budget runs out.
 *
 * Determinism contract: a trace retires exactly the µops the
 * interpreter would produce, in the same order, with the same
 * architectural effects and the same monitor callbacks — or it exits at
 * an op boundary where interpreter state has been restored exactly.
 * Record-mode digests (checkpoints, replay-log µop stamps, tool state)
 * are therefore bit-identical with the cache on or off.
 */

#ifndef DISE_JIT_TRACE_HH
#define DISE_JIT_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dise/engine.hh"
#include "isa/inst.hh"

namespace dise {

struct TraceJitConfig
{
    bool enabled = true;
    /** Taken backward transfers to one target before recording starts. */
    unsigned hotThreshold = 16;
    /** Longest trace recorded (µops); longer runs trim to a boundary. */
    unsigned maxOps = 256;
    /** Shortest trace worth keeping; tighter loops unroll until this. */
    unsigned minOps = 3;
    /** Run the per-trace redundancy-suppression pass at build time. */
    bool suppress = true;
};

/** How the executor must treat one trace op. */
enum class TraceOpKind : uint8_t {
    AluReg,
    AluImm,
    Lda,
    Ldah,
    Load,
    Store,
    CondBranch, ///< raw or in-expansion PC-relative branch (direction guard)
    Jump,       ///< jump through a register (dynamic-target guard)
    DiseBranch, ///< intra-expansion skip (direction guard)
    Ctrap,      ///< conditional trap; fires monitor->onTrap when taken
    Trap,       ///< unconditional trap (rewrite-backend machinery)
    Nop,        ///< NOP / unmatched CODEWORD
    Suppressed, ///< provably redundant: retires counters, executes nothing
};

/**
 * Mid-expansion stream context, restored verbatim when a side exit
 * lands inside a replacement sequence. Holding the ExpansionRef keeps
 * the instantiated sequence alive independent of the engine's memo
 * table, exactly like an in-flight interpreter expansion.
 */
struct TraceExpCtx
{
    int slot = -1; ///< pattern-table slot of the matched production
    Inst trigger{};
    Addr trigPc = 0;
    Addr nextPc = 0; ///< PC the stream resumes at after the expansion
    DiseEngine::ExpansionRef seq;
};

struct TraceOp
{
    Inst inst{};
    Addr pc = 0;
    uint16_t disepc = 0;
    int16_t expCtx = -1; ///< index into Trace::ctxs; -1 = raw op
    TraceOpKind kind = TraceOpKind::Nop;
    bool isApp = false;
    bool isTriggerCopy = false;
    bool isAppLoad = false;
    bool isAppStore = false;
    /** Raw op at a statement boundary: call monitor->onStatement first. */
    bool stmtSite = false;
    /** Recorded direction (CondBranch/DiseBranch guards; Ctrap takenness
     *  is informational — the executor always recomputes it). */
    bool expectTaken = false;
    /** Recorded dynamic target (Jump guard). */
    Addr expectTarget = 0;
};

struct Trace
{
    Addr startPc = 0;
    Addr endPc = 0; ///< architectural PC after a complete run
    /** DiseEngine::tableVersion() the expansions were instantiated
     *  under; any semantic table change makes the trace stale. */
    uint64_t tableVersion = 0;
    std::vector<TraceOp> ops;
    std::vector<TraceExpCtx> ctxs;
    uint64_t suppressedOps = 0; ///< ops elided by the build-time pass
};

using TraceRef = std::shared_ptr<const Trace>;

struct TraceCacheStats
{
    uint64_t built = 0;
    uint64_t discarded = 0; ///< recordings too short to keep
    uint64_t invalidated = 0;
    uint64_t runs = 0;        ///< trace executions entered
    uint64_t tracedUops = 0;  ///< µops retired from traces
    uint64_t sideExits = 0;   ///< guard/event/SMC exits (not natural ends)
    uint64_t suppressedExecs = 0; ///< elided op executions at run time
};

} // namespace dise

#endif // DISE_JIT_TRACE_HH
