/**
 * @file
 * Trace recording and trace execution, as InstStream members (they are
 * the stream's hot path — recording rides next(), execution replaces
 * it). Kept beside the trace cache: the two halves share the trace
 * model's invariants.
 *
 * Recording: jitAfterOp() observes every µop next() delivers. Taken
 * backward raw transfers profile their targets; a hot target starts a
 * recording, and subsequent µops append until the run closes back on
 * its start PC (a loop trace), grows past the size cap, or hits an op
 * that cannot live in a trace (syscall, halt, DISE-called function,
 * expansion-aborting control) — then the recording finalizes at the
 * last raw-op boundary or is discarded as too short.
 *
 * Execution: runTraced() dispatches cached traces while they keep
 * applying. Every op retires exactly the counters and monitor
 * callbacks the interpreter would produce; any failed assumption
 * (branch direction, jump target, recorded-code write, recorded
 * debugger event, budget) restores interpreter state at an op boundary
 * and side-exits. The restore is exact — raw-op boundaries set the
 * architectural PC, in-expansion boundaries rebuild the full expansion
 * context from the trace's side table — so record-mode digests are
 * bit-identical with the cache on or off.
 */

#include "common/logging.hh"
#include "cpu/alu.hh"
#include "cpu/inst_stream.hh"
#include "jit/trace_cache.hh"

namespace dise {

void
InstStream::jitAfterOp(const MicroOp &op)
{
    TraceCache &jit = *env_.jit;
    if (!jit.config().enabled) {
        if (jitRec_.active)
            jitRec_ = JitRec{};
        return;
    }
    if (jitRec_.active) {
        jitRecordOp(op);
        return;
    }
    // Hotness profiling: taken backward transfers out of raw ops mark
    // loop heads. (A raw op can never leave the stream mid-expansion.)
    if (!op.fromExpansion && !op.inHandler && op.isCtrl && op.taken &&
        op.target <= op.pc && !halted_) {
        uint64_t tv = engine_ ? engine_->tableVersion() : 0;
        if (jit.noteBackEdge(op.target, tv))
            jitStartRecording(op.target);
    }
}

void
InstStream::jitStartRecording(Addr startPc)
{
    jitRec_.active = true;
    jitRec_.trace = std::make_shared<Trace>();
    jitRec_.trace->startPc = startPc;
    jitRec_.trace->tableVersion = engine_ ? engine_->tableVersion() : 0;
    jitRec_.trace->ops.reserve(env_.jit->config().maxOps);
    jitRec_.lastBoundaryOps = 0;
    jitRec_.lastBoundaryPc = startPc;
    jitRec_.lastExpId = 0;
}

void
InstStream::jitRecordOp(const MicroOp &op)
{
    Trace &t = *jitRec_.trace;
    const TraceJitConfig &cfg = env_.jit->config();

    // Ops a trace cannot carry finalize the recording at the last
    // raw-op boundary (or discard it when still too short).
    const Format fmt = op.inst.info().fmt;
    bool hostile =
        op.isHalt || halted_ || op.inHandler || inHandler_ ||
        (fmt == Format::System && op.inst.op == Opcode::SYSCALL) ||
        fmt == Format::DiseCall || fmt == Format::DiseMove ||
        // Conventional control taken inside a replacement sequence
        // aborts the expansion mid-flight; not worth modelling.
        (op.fromExpansion && op.isCtrl && op.taken &&
         (fmt == Format::Branch || fmt == Format::Jump));
    // Monitored ops need the event counter to make debugger events
    // observable to the executor; without it they stay interpreted.
    if (!hostile && env_.monitor && !env_.events) {
        bool stmtSite = !op.fromExpansion && !op.inHandler &&
                        env_.stmtTraps && env_.stmtTraps->count(op.pc);
        hostile = stmtSite || fmt == Format::Ctrap ||
                  (fmt == Format::System && op.inst.op == Opcode::TRAP) ||
                  (env_.monitorStores && op.inst.isStore());
    }
    if (hostile) {
        jitFinalize(false);
        return;
    }

    TraceOp to;
    to.inst = op.inst;
    to.pc = op.pc;
    to.disepc = op.disepc;
    to.isApp = op.isAppInst();
    to.isTriggerCopy = op.isTriggerCopy;
    to.isAppLoad = to.isApp && op.inst.isLoad();
    to.isAppStore = to.isApp && op.inst.isStore();
    to.stmtSite = !op.fromExpansion && env_.monitor && env_.stmtTraps &&
                  env_.stmtTraps->count(op.pc);

    if (op.fromExpansion) {
        if (jitRec_.lastExpId != expId_) {
            // First op recorded from this expansion instance: capture
            // the side-exit context. The stream members still hold it
            // even if the expansion just finished.
            TraceExpCtx cx;
            cx.slot = curSlot_;
            cx.trigger = trigger_;
            cx.trigPc = trigPc_;
            cx.nextPc = seqNextPc_;
            cx.seq = seq_;
            t.ctxs.push_back(std::move(cx));
            jitRec_.lastExpId = expId_;
        }
        to.expCtx = static_cast<int16_t>(t.ctxs.size() - 1);
    }

    switch (fmt) {
      case Format::Operate:
        to.kind = TraceOpKind::AluReg;
        break;
      case Format::OperateImm:
        to.kind = TraceOpKind::AluImm;
        break;
      case Format::Memory:
        if (op.inst.op == Opcode::LDA)
            to.kind = TraceOpKind::Lda;
        else if (op.inst.op == Opcode::LDAH)
            to.kind = TraceOpKind::Ldah;
        else if (op.inst.isLoad())
            to.kind = TraceOpKind::Load;
        else
            to.kind = TraceOpKind::Store;
        break;
      case Format::Branch:
        to.kind = TraceOpKind::CondBranch;
        to.expectTaken = op.taken;
        break;
      case Format::Jump:
        to.kind = TraceOpKind::Jump;
        to.expectTaken = true;
        to.expectTarget = op.target;
        break;
      case Format::System:
        // SYSCALL was filtered above; TRAP executes in-trace, an
        // unmatched CODEWORD is a nop.
        to.kind = op.inst.op == Opcode::TRAP ? TraceOpKind::Trap
                                             : TraceOpKind::Nop;
        break;
      case Format::Ctrap:
        to.kind = TraceOpKind::Ctrap;
        // Informational (suppression eligibility); execution always
        // recomputes the condition.
        to.expectTaken = op.flush == FlushClass::Serialize;
        break;
      case Format::Nullary:
        to.kind = TraceOpKind::Nop; // HALT/D_RET filtered above
        break;
      case Format::DiseBranch:
        to.kind = TraceOpKind::DiseBranch;
        to.expectTaken = op.taken;
        break;
      default:
        jitFinalize(false);
        return;
    }

    t.ops.push_back(to);

    if (!expanding_ && !inHandler_ && !halted_) {
        jitRec_.lastBoundaryOps = t.ops.size();
        jitRec_.lastBoundaryPc = arch_.pc;
        if (arch_.pc == t.startPc && t.ops.size() >= cfg.minOps) {
            jitFinalize(true);
            return;
        }
    }
    if (t.ops.size() >= cfg.maxOps)
        jitFinalize(false);
}

void
InstStream::jitFinalize(bool full)
{
    JitRec rec = std::move(jitRec_);
    jitRec_ = JitRec{};
    Trace &t = *rec.trace;
    if (full) {
        t.endPc = t.startPc;
    } else {
        t.ops.resize(rec.lastBoundaryOps);
        t.endPc = rec.lastBoundaryPc;
    }
    if (t.ops.size() < env_.jit->config().minOps) {
        ++env_.jit->stats().discarded;
        return;
    }
    env_.jit->insert(std::move(rec.trace));
}

InstStream::TracedCounts
InstStream::runTraced(uint64_t maxUops, uint64_t maxAppInsts,
                      bool appStopAtBoundary)
{
    TracedCounts c;
    TraceCache *jit = env_.jit;
    if (!jit || !jit->config().enabled || halted_ || expanding_ ||
        inHandler_ || jitRec_.active)
        return c;
    // Armed tools observe every µop through the interpreter's tap;
    // traces would have to replicate the callback stream op-for-op.
    // Tool runs are not the hot path this cache serves — refuse.
    if (env_.observer && env_.observer->armed())
        return c;

    const uint64_t tv = engine_ ? engine_->tableVersion() : 0;
    for (;;) {
        if (maxUops && c.uops >= maxUops)
            break;
        if (maxAppInsts && c.appInsts >= maxAppInsts)
            break;
        TraceRef t = jit->lookup(arch_.pc, tv);
        if (!t)
            break;
        ++jit->stats().runs;
        TraceExit exit =
            execTrace(*t, c, maxUops, maxAppInsts, appStopAtBoundary);
        if (exit != TraceExit::End) {
            ++jit->stats().sideExits;
            break;
        }
    }
    jit->stats().tracedUops += c.uops;
    return c;
}

InstStream::TraceExit
InstStream::execTrace(const Trace &t, TracedCounts &c, uint64_t maxUops,
                      uint64_t maxAppInsts, bool appStopAtBoundary)
{
    TraceCache &jit = *env_.jit;
    const uint64_t epoch0 = jit.writeEpoch();
    const uint64_t *evp = env_.events;
    uint64_t evSeen = evp ? *evp : 0;
    const size_t n = t.ops.size();

    // The position *before* op j is an inter-instruction boundary when
    // j is raw or the first op of an expansion instance — at that point
    // the interpreter has not matched the trigger yet, so it sits
    // between instructions (each instance owns a distinct ctx entry,
    // making the comparison exact even for back-to-back expansions of
    // one production).
    auto boundaryBefore = [&](size_t j) {
        return t.ops[j].expCtx < 0 || j == 0 ||
               t.ops[j - 1].expCtx != t.ops[j].expCtx;
    };

    // Restore interpreter state as if the next µop to execute were
    // t.ops[j]; j == n is the natural end.
    auto exitAt = [&](size_t j) {
        if (j >= n) {
            arch_.pc = t.endPc;
            return;
        }
        const TraceOp &o = t.ops[j];
        if (o.expCtx < 0) {
            arch_.pc = o.pc;
        } else if (boundaryBefore(j)) {
            // Between instructions, trigger not yet matched: resuming
            // at the trigger PC re-matches and re-expands identically
            // (the table cannot have mutated mid-trace), and
            // atBoundary() observers see the boundary the interpreter
            // would report.
            arch_.pc = t.ctxs[o.expCtx].trigPc;
        } else {
            const TraceExpCtx &cx = t.ctxs[o.expCtx];
            expanding_ = true;
            seq_ = cx.seq;
            seqIdx_ = o.disepc - 1;
            trigger_ = cx.trigger;
            trigPc_ = cx.trigPc;
            seqNextPc_ = cx.nextPc;
            curSlot_ = cx.slot;
            arch_.pc = cx.trigPc;
        }
    };
    auto materialize = [&](const TraceOp &o, MicroOp &mop) {
        mop.inst = o.inst;
        mop.pc = o.pc;
        mop.disepc = o.disepc;
        mop.fromExpansion = o.expCtx >= 0;
        mop.isTriggerCopy = o.isTriggerCopy;
        mop.seq = seqCounter_;
    };

    for (size_t i = 0; i < n; ++i) {
        const TraceOp &o = t.ops[i];
        if (maxUops && c.uops >= maxUops) {
            exitAt(i);
            return TraceExit::Budget;
        }
        if (maxAppInsts && c.appInsts >= maxAppInsts &&
            (!appStopAtBoundary || boundaryBefore(i))) {
            // Boundary mode stops exactly where the interpreter's
            // "first boundary with the count met" discipline would —
            // checkpoint placement stays bit-identical.
            exitAt(i);
            return TraceExit::Budget;
        }

        bool fired = false;    // a monitor callback ran for this op
        bool storeRan = false; // re-check the code-write epoch after

        if (o.stmtSite && env_.monitor) {
            // Interpreter order: onStatement before the op executes
            // (watch evaluation must see pre-store memory). But a
            // failed guard must exit *without* the callback — the
            // interpreter will re-deliver it — so pre-evaluate guards
            // here; they are pure register reads and onStatement
            // mutates neither registers nor memory.
            if (o.kind == TraceOpKind::CondBranch ||
                o.kind == TraceOpKind::DiseBranch) {
                if (branchTaken(o.inst.op, arch_.read(o.inst.ra)) !=
                    o.expectTaken) {
                    exitAt(i);
                    return TraceExit::Guard;
                }
            } else if (o.kind == TraceOpKind::Jump) {
                if (arch_.read(o.inst.rb) != o.expectTarget) {
                    exitAt(i);
                    return TraceExit::Guard;
                }
            }
            env_.monitor->onStatement(o.pc);
            fired = true;
        }

        switch (o.kind) {
          case TraceOpKind::AluReg:
            arch_.write(o.inst.rc,
                        aluCompute(o.inst.op, arch_.read(o.inst.ra),
                                   arch_.read(o.inst.rb)));
            break;
          case TraceOpKind::AluImm:
            arch_.write(o.inst.rc,
                        aluCompute(o.inst.op, arch_.read(o.inst.ra),
                                   static_cast<uint64_t>(o.inst.imm) &
                                       0xff));
            break;
          case TraceOpKind::Lda:
            arch_.write(o.inst.ra, arch_.read(o.inst.rb) + o.inst.imm);
            break;
          case TraceOpKind::Ldah:
            arch_.write(o.inst.ra,
                        arch_.read(o.inst.rb) +
                            (static_cast<int64_t>(o.inst.imm) << 16));
            break;
          case TraceOpKind::Load: {
            Addr addr = arch_.read(o.inst.rb) + o.inst.imm;
            unsigned bytes = o.inst.memBytes();
            uint64_t v =
                o.inst.op == Opcode::LDL
                    ? static_cast<uint64_t>(mem_.readSigned(addr, bytes))
                    : mem_.read(addr, bytes);
            arch_.write(o.inst.ra, v);
            break;
          }
          case TraceOpKind::Store: {
            Addr addr = arch_.read(o.inst.rb) + o.inst.imm;
            unsigned bytes = o.inst.memBytes();
            if (env_.monitor && env_.monitorStores) {
                MicroOp mop{};
                materialize(o, mop);
                mop.effAddr = addr;
                mop.memBytes = bytes;
                mop.storeOld = mem_.read(addr, bytes);
                mem_.write(addr, bytes, arch_.read(o.inst.ra));
                mop.storeNew = mem_.read(addr, bytes);
                env_.monitor->onStore(mop);
                fired = true;
            } else {
                // Reads of absent pages return zero without creating
                // them, so skipping the old/new reads the interpreter
                // performs cannot diverge memory state.
                mem_.write(addr, bytes, arch_.read(o.inst.ra));
            }
            storeRan = true;
            break;
          }
          case TraceOpKind::CondBranch: {
            bool taken = branchTaken(o.inst.op, arch_.read(o.inst.ra));
            if (taken != o.expectTaken) {
                exitAt(i);
                return TraceExit::Guard;
            }
            if (o.inst.op == Opcode::BSR)
                arch_.write(o.inst.ra, o.pc + 4);
            break;
          }
          case TraceOpKind::Jump: {
            Addr target = arch_.read(o.inst.rb);
            if (target != o.expectTarget) {
                exitAt(i);
                return TraceExit::Guard;
            }
            if (o.inst.op == Opcode::JSR)
                arch_.write(o.inst.ra, o.pc + 4);
            break;
          }
          case TraceOpKind::DiseBranch: {
            bool taken = branchTaken(o.inst.op, arch_.read(o.inst.ra));
            if (taken != o.expectTaken) {
                exitAt(i);
                return TraceExit::Guard;
            }
            break;
          }
          case TraceOpKind::Ctrap:
            if (arch_.read(o.inst.ra) != 0 && env_.monitor) {
                MicroOp mop{};
                materialize(o, mop);
                env_.monitor->onTrap(mop);
                fired = true;
            }
            break;
          case TraceOpKind::Trap:
            if (env_.monitor) {
                MicroOp mop{};
                materialize(o, mop);
                env_.monitor->onTrap(mop);
                fired = true;
            }
            break;
          case TraceOpKind::Nop:
            break;
          case TraceOpKind::Suppressed:
            // Build-time proof: the registers already hold exactly the
            // values this op would compute. Retire counters only.
            ++jit.stats().suppressedExecs;
            break;
        }

        ++c.uops;
        ++seqCounter_;
        if (o.isApp) {
            ++c.appInsts;
            if (o.isAppLoad)
                ++c.appLoads;
            if (o.isAppStore)
                ++c.appStores;
        }

        if (fired && evp && *evp != evSeen) {
            // A debugger event was recorded at this µop: exit after it
            // so the caller pins the event at the exact time the
            // interpreter would have.
            exitAt(i + 1);
            return TraceExit::Event;
        }
        if (storeRan && jit.writeEpoch() != epoch0) {
            // The store hit recorded code (possibly this trace's own
            // body, already evicted under us — the shared_ptr keeps
            // the ops alive). The remainder is stale.
            exitAt(i + 1);
            return TraceExit::Guard;
        }
    }
    arch_.pc = t.endPc;
    return TraceExit::End;
}

} // namespace dise
