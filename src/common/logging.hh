/**
 * @file
 * Error reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for user/configuration errors (clean exit),
 * warn()/inform() for status messages that never stop the simulation.
 */

#ifndef DISE_COMMON_LOGGING_HH
#define DISE_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dise {

/** Exception thrown by panic(); tests catch it via EXPECT_THROW. */
struct PanicError : std::logic_error {
    using std::logic_error::logic_error;
};

/** Exception thrown by fatal(); distinguishes user error from bug. */
struct FatalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

namespace detail {

void emitMessage(const char *prefix, const std::string &msg);

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation (a simulator bug) and throw.
 * Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user/configuration error and throw.
 * Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn",
                        detail::formatParts(std::forward<Args>(args)...));
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info",
                        detail::formatParts(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define DISE_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::dise::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                          ":", __LINE__, ": ", ##__VA_ARGS__);               \
        }                                                                    \
    } while (0)

} // namespace dise

#endif // DISE_COMMON_LOGGING_HH
