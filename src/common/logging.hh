/**
 * @file
 * Error reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for user/configuration errors (clean exit),
 * warn()/inform() for status messages that never stop the simulation.
 */

#ifndef DISE_COMMON_LOGGING_HH
#define DISE_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dise {

/** Exception thrown by panic(); tests catch it via EXPECT_THROW. */
struct PanicError : std::logic_error {
    using std::logic_error::logic_error;
};

/** Exception thrown by fatal(); distinguishes user error from bug. */
struct FatalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/** Message severities, most to least severe. panic/fatal always
 *  throw regardless of level; the level only gates what is printed. */
enum class LogLevel : int {
    Error = 0, ///< only panic/fatal messages
    Warn = 1,
    Info = 2,  ///< the default: warn() + inform()
    Debug = 3, ///< + debugMsg() diagnostics
};

/** The process log level. Initialized once from the DISE_LOG
 *  environment variable ("error" / "warn" / "info" / "debug", default
 *  info); rsp_server's --log-level flag overrides it. */
LogLevel logLevel();
void setLogLevel(LogLevel level);
/** Parse a level token; false (level untouched) when unknown. */
bool parseLogLevel(const std::string &token, LogLevel &level);

namespace detail {

void emitMessage(const char *prefix, const std::string &msg);
/** True when messages of @p level should be printed. */
bool levelEnabled(LogLevel level);

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation (a simulator bug) and throw.
 * Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user/configuration error and throw.
 * Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::formatParts(std::forward<Args>(args)...);
    detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Warn))
        return;
    detail::emitMessage("warn",
                        detail::formatParts(std::forward<Args>(args)...));
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Info))
        return;
    detail::emitMessage("info",
                        detail::formatParts(std::forward<Args>(args)...));
}

/** Diagnostic chatter, silent unless the level is raised to debug
 *  (DISE_LOG=debug or --log-level=debug). The format-parts expansion
 *  is skipped entirely when disabled. */
template <typename... Args>
void
debugMsg(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Debug))
        return;
    detail::emitMessage("debug",
                        detail::formatParts(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define DISE_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::dise::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                          ":", __LINE__, ": ", ##__VA_ARGS__);               \
        }                                                                    \
    } while (0)

} // namespace dise

#endif // DISE_COMMON_LOGGING_HH
