#include "common/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace dise {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
            c != 'x')
            return false;
    }
    return true;
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            size_t pad = widths[i] - row[i].size();
            bool right = looksNumeric(row[i]);
            if (i)
                os << "  ";
            if (right)
                os << std::string(pad, ' ') << row[i];
            else
                os << row[i] << std::string(pad, ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << row[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtSlowdown(double v)
{
    if (v >= 1000)
        return fmtDouble(v, 0);
    if (v >= 100)
        return fmtDouble(v, 1);
    return fmtDouble(v, 2);
}

} // namespace dise
