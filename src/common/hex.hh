/**
 * @file
 * Hex parsing/formatting helpers shared by the wire layers (the
 * session protocol's %XX escaping and byte strings, the RSP packet
 * codec's hex-heavy payloads).
 */

#ifndef DISE_COMMON_HEX_HH
#define DISE_COMMON_HEX_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dise {

/** Value of one hex digit, or -1 for a non-digit. */
inline int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Two lowercase hex digits. */
inline std::string
hexByte(uint8_t b)
{
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", b);
    return buf;
}

/** Bytes → lowercase hex string. */
inline std::string
bytesToHex(const std::vector<uint8_t> &bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes)
        out += hexByte(b);
    return out;
}

/** Hex string → bytes; false on odd length or a non-digit. */
inline bool
hexToBytes(const std::string &hex, std::vector<uint8_t> &bytes)
{
    bytes.clear();
    if (hex.size() % 2)
        return false;
    bytes.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]), lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        bytes.push_back(static_cast<uint8_t>(hi * 16 + lo));
    }
    return true;
}

} // namespace dise

#endif // DISE_COMMON_HEX_HH
