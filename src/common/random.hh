/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behavior in the workloads and tests flows through this
 * xoshiro256** generator so that every experiment is exactly repeatable
 * from its seed.
 */

#ifndef DISE_COMMON_RANDOM_HH
#define DISE_COMMON_RANDOM_HH

#include <cstdint>

namespace dise {

/** Deterministic xoshiro256** PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a single seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace dise

#endif // DISE_COMMON_RANDOM_HH
