/**
 * @file
 * Minimal statistics package: named scalar counters grouped per component,
 * with a registry that can be dumped for debugging or consumed by the
 * experiment harness.
 */

#ifndef DISE_COMMON_STATS_HH
#define DISE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dise {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void
    inc(const std::string &key, uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Set counter @p key to an absolute value. */
    void
    set(const std::string &key, uint64_t value)
    {
        counters_[key] = value;
    }

    /** Read counter @p key (zero if never touched). */
    uint64_t
    get(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    /**
     * Stable handle to counter @p key's storage (created at zero).
     *
     * Hot loops fetch the handle once and bump the integer directly,
     * avoiding a string-keyed map lookup per event. Handles stay valid
     * for the lifetime of the group: map nodes are never erased, and
     * reset() zeroes values in place.
     */
    uint64_t *counter(const std::string &key) { return &counters_[key]; }

    /** Reset every counter to zero (counter() handles stay valid). */
    void
    reset()
    {
        for (auto &[key, value] : counters_)
            value = 0;
    }

    const std::string &name() const { return name_; }
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Dump "group.key value" lines. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[key, value] : counters_)
            os << name_ << '.' << key << ' ' << value << '\n';
    }

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

} // namespace dise

#endif // DISE_COMMON_STATS_HH
