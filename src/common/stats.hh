/**
 * @file
 * Minimal statistics package: named scalar counters grouped per component,
 * with a registry that can be dumped for debugging or consumed by the
 * experiment harness, plus a lock-free fixed-bucket log2 Histogram for
 * latency distributions.
 */

#ifndef DISE_COMMON_STATS_HH
#define DISE_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dise {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void
    inc(const std::string &key, uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Set counter @p key to an absolute value. */
    void
    set(const std::string &key, uint64_t value)
    {
        counters_[key] = value;
    }

    /** Read counter @p key (zero if never touched). */
    uint64_t
    get(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    /**
     * Stable handle to counter @p key's storage (created at zero).
     *
     * Hot loops fetch the handle once and bump the integer directly,
     * avoiding a string-keyed map lookup per event. Handles stay valid
     * for the lifetime of the group: map nodes are never erased, and
     * reset() zeroes values in place.
     */
    uint64_t *counter(const std::string &key) { return &counters_[key]; }

    /** Reset every counter to zero (counter() handles stay valid). */
    void
    reset()
    {
        for (auto &[key, value] : counters_)
            value = 0;
    }

    const std::string &name() const { return name_; }
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Dump "group.key value" lines. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[key, value] : counters_)
            os << name_ << '.' << key << ' ' << value << '\n';
    }

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

/** Wire/registry snapshot of one Histogram (plain integers). */
struct HistogramSnapshot
{
    std::string name;   ///< metric family, e.g. "dise_verb_latency_us"
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> buckets; ///< per-bucket counts (not cumulative)

    bool
    operator==(const HistogramSnapshot &o) const
    {
        return name == o.name && count == o.count && sum == o.sum &&
               buckets == o.buckets;
    }
};

/**
 * Fixed-bucket log2 histogram with lock-free increments.
 *
 * Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1];
 * the last bucket additionally absorbs everything beyond the covered
 * range (an implicit +Inf tail). With 40 buckets the top finite bound
 * is 2^39 - 1 — about 9 days at microsecond resolution, comfortably
 * past any latency this server can produce.
 *
 * observe() is wait-free: one bit_width + three relaxed fetch_adds.
 * Concurrent observers never serialize; a concurrent snapshot() may
 * see count/sum/buckets mid-update (totals can disagree transiently by
 * in-flight observations), which is the standard monitoring trade.
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 40;

    /** Map a value to its bucket index. */
    static size_t
    bucketIndex(uint64_t value)
    {
        size_t idx = static_cast<size_t>(std::bit_width(value));
        return idx < kBuckets ? idx : kBuckets - 1;
    }

    /** Lowest value landing in bucket @p i (its inclusive floor). */
    static uint64_t
    bucketFloor(size_t i)
    {
        return i == 0 ? 0 : uint64_t(1) << (i - 1);
    }

    /** Highest value landing in bucket @p i; the last bucket is
     *  unbounded and reports ~0. */
    static uint64_t
    bucketCeil(size_t i)
    {
        if (i + 1 >= kBuckets)
            return ~uint64_t(0);
        return (uint64_t(1) << i) - 1;
    }

    void
    observe(uint64_t value)
    {
        buckets_[bucketIndex(value)].fetch_add(1,
                                               std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    uint64_t
    bucketCount(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Snapshot as plain integers, trailing-zero buckets trimmed (the
     *  wire encoding stays short for mostly-idle servers). */
    HistogramSnapshot
    snapshot(std::string name) const
    {
        HistogramSnapshot s;
        s.name = std::move(name);
        s.count = count();
        s.sum = sum();
        size_t last = 0;
        std::array<uint64_t, kBuckets> vals{};
        for (size_t i = 0; i < kBuckets; ++i) {
            vals[i] = bucketCount(i);
            if (vals[i])
                last = i + 1;
        }
        s.buckets.assign(vals.begin(), vals.begin() + last);
        return s;
    }

    void
    reset()
    {
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

} // namespace dise

#endif // DISE_COMMON_STATS_HH
