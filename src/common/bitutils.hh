/**
 * @file
 * Bit-manipulation helpers shared by the ISA, caches, and predictors.
 */

#ifndef DISE_COMMON_BITUTILS_HH
#define DISE_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace dise {

/** Extract bits [lo, lo+width) of val. */
constexpr uint64_t
bits(uint64_t val, unsigned lo, unsigned width)
{
    if (width >= 64)
        return val >> lo;
    return (val >> lo) & ((uint64_t{1} << width) - 1);
}

/** Sign-extend the low @p width bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(val);
    uint64_t sign_bit = uint64_t{1} << (width - 1);
    uint64_t mask = (uint64_t{1} << width) - 1;
    uint64_t v = val & mask;
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** True if @p val fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(int64_t val, unsigned width)
{
    if (width >= 64)
        return true;
    int64_t lo = -(int64_t{1} << (width - 1));
    int64_t hi = (int64_t{1} << (width - 1)) - 1;
    return val >= lo && val <= hi;
}

/** True if @p val fits in an unsigned field of @p width bits. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned width)
{
    if (width >= 64)
        return true;
    return val < (uint64_t{1} << width);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** @name FNV-1a hashing (replay/state digests — one definition so all
 *  digest producers stay in agreement). */
///@{
constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ull;

constexpr uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    h ^= v;
    h *= 0x100000001b3ull;
    return h;
}
///@}

} // namespace dise

#endif // DISE_COMMON_BITUTILS_HH
