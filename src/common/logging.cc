#include "common/logging.hh"

#include <cstdio>
#include <mutex>

namespace dise {
namespace detail {

namespace {
std::mutex emitMutex;
} // namespace

void
emitMessage(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emitMutex);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace dise
