#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dise {

namespace {

std::atomic<int> currentLevel{static_cast<int>(LogLevel::Info)};

/** One-shot DISE_LOG env read; a bad value keeps the default rather
 *  than failing a process that otherwise would have run. */
LogLevel
initialLevel()
{
    const char *env = std::getenv("DISE_LOG");
    LogLevel level = LogLevel::Info;
    if (env && *env)
        parseLogLevel(env, level);
    return level;
}

struct EnvInit
{
    EnvInit()
    {
        currentLevel.store(static_cast<int>(initialLevel()),
                           std::memory_order_relaxed);
    }
};
EnvInit envInit;

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        currentLevel.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    currentLevel.store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

bool
parseLogLevel(const std::string &token, LogLevel &level)
{
    if (token == "error")
        level = LogLevel::Error;
    else if (token == "warn" || token == "warning")
        level = LogLevel::Warn;
    else if (token == "info")
        level = LogLevel::Info;
    else if (token == "debug")
        level = LogLevel::Debug;
    else
        return false;
    return true;
}

namespace detail {

namespace {
std::mutex emitMutex;
} // namespace

bool
levelEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           currentLevel.load(std::memory_order_relaxed);
}

void
emitMessage(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emitMutex);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace dise
