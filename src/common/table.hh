/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every table/figure binary prints its rows through this formatter so the
 * output is uniform and easy to diff against EXPERIMENTS.md.
 */

#ifndef DISE_COMMON_TABLE_HH
#define DISE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace dise {

/** Accumulates rows of strings and renders them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment; numeric-looking cells right-align. */
    std::string render() const;

    /** Render as comma-separated values (for machine consumption). */
    std::string renderCsv() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a slowdown factor the way the paper's figures read (e.g. 1.23,
 *  45.6, 40100). */
std::string fmtSlowdown(double v);

} // namespace dise

#endif // DISE_COMMON_TABLE_HH
