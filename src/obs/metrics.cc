#include "obs/metrics.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace dise::obs {

namespace {

struct Family
{
    const char *name;
    const char *help;
};

/** Registry order must match Metrics member order (snapshotAll). */
constexpr Family kFamilies[] = {
    {"dise_verb_latency_us", "Wire verb round-trip latency, server side"},
    {"dise_sched_queue_wait_us",
     "Job wait between submit/requeue and worker dequeue"},
    {"dise_slice_duration_us", "Scheduler slice callback duration"},
    {"dise_store_fsync_us", "fsync duration inside SessionStore writes"},
    {"dise_resurrect_replay_us",
     "Rebuild-replay time resurrecting a stored session"},
    {"dise_event_push_us", "Time pushing queued events to a subscriber"},
    {"dise_tool_overhead_us",
     "Debug-tool observer work per batch of 1024 armed uops"},
};

const char *
helpFor(const std::string &name)
{
    for (const Family &f : kFamilies)
        if (name == f.name)
            return f.help;
    return "Latency histogram";
}

} // namespace

std::vector<HistogramSnapshot>
Metrics::snapshotAll() const
{
    std::vector<HistogramSnapshot> snaps;
    snaps.reserve(7);
    snaps.push_back(verbLatencyUs.snapshot(kFamilies[0].name));
    snaps.push_back(schedQueueWaitUs.snapshot(kFamilies[1].name));
    snaps.push_back(sliceDurationUs.snapshot(kFamilies[2].name));
    snaps.push_back(storeFsyncUs.snapshot(kFamilies[3].name));
    snaps.push_back(resurrectReplayUs.snapshot(kFamilies[4].name));
    snaps.push_back(eventPushUs.snapshot(kFamilies[5].name));
    snaps.push_back(toolOverheadUs.snapshot(kFamilies[6].name));
    return snaps;
}

Metrics &
metrics()
{
    static Metrics m;
    return m;
}

void
mergeHistogramSnapshots(std::vector<HistogramSnapshot> &into,
                        const std::vector<HistogramSnapshot> &add)
{
    for (const HistogramSnapshot &h : add) {
        HistogramSnapshot *dst = nullptr;
        for (HistogramSnapshot &cand : into)
            if (cand.name == h.name)
                dst = &cand;
        if (!dst) {
            into.push_back(h);
            continue;
        }
        dst->count += h.count;
        dst->sum += h.sum;
        if (dst->buckets.size() < h.buckets.size())
            dst->buckets.resize(h.buckets.size(), 0);
        for (size_t i = 0; i < h.buckets.size(); ++i)
            dst->buckets[i] += h.buckets[i];
    }
}

double
histogramMean(const HistogramSnapshot &h)
{
    return h.count ? static_cast<double>(h.sum) /
                         static_cast<double>(h.count)
                   : 0.0;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
usSince(uint64_t startNs)
{
    uint64_t now = nowNs();
    return now > startNs ? (now - startNs) / 1000 : 0;
}

std::string
renderPrometheus(const std::vector<HistogramSnapshot> &snaps)
{
    std::string out;
    char buf[160];
    for (const HistogramSnapshot &s : snaps) {
        out += "# HELP ";
        out += s.name;
        out += ' ';
        out += helpFor(s.name);
        out += "\n# TYPE ";
        out += s.name;
        out += " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
            cum += s.buckets[i];
            std::snprintf(buf, sizeof buf,
                          "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                          s.name.c_str(), Histogram::bucketCeil(i), cum);
            out += buf;
        }
        std::snprintf(buf, sizeof buf,
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n"
                      "%s_sum %" PRIu64 "\n"
                      "%s_count %" PRIu64 "\n",
                      s.name.c_str(), s.count, s.name.c_str(), s.sum,
                      s.name.c_str(), s.count);
        out += buf;
    }
    return out;
}

} // namespace dise::obs
