#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace dise::obs {

namespace {

/** Registered recording threads are capped so a daemon with heavy
 *  connection churn cannot grow tracer memory without bound; threads
 *  past the cap drop their records (counted). */
constexpr size_t kMaxThreads = 512;
constexpr size_t kDefaultBytesPerThread = 256u << 10;

uint64_t
tick()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

uint64_t
wallNs()
{
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
}

} // namespace

/** One thread's ring of records. Owned by the registry for the
 *  process lifetime (a dump may outlive the thread); the writer locks
 *  its own mutex per record, contended only by a concurrent dump. */
struct Tracer::ThreadBuf
{
    std::mutex mu;
    std::vector<TraceRecord> ring;
    uint64_t next = 0;    ///< records ever written since last arm
    uint64_t tid = 0;     ///< stable 1-based display id
    uint64_t armGen = 0;  ///< generation the ring was last reset for
};

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadBuf *
Tracer::threadBuf()
{
    thread_local ThreadBuf *tls = nullptr;
    thread_local uint64_t tlsGen = ~0ull;
    uint64_t gen = generation();
    if (tls && tlsGen == gen)
        return tls;
    std::lock_guard<std::mutex> lk(mu_);
    if (!tls) {
        if (bufs_.size() >= kMaxThreads) {
            droppedThreads_.fetch_add(1, std::memory_order_relaxed);
            tlsGen = gen;
            return nullptr;
        }
        bufs_.push_back(std::make_unique<ThreadBuf>());
        tls = bufs_.back().get();
        tls->tid = bufs_.size();
    }
    // A ring surviving from a previous arm() holds stale records:
    // reset it lazily the first time its thread records in this
    // generation (arm() already reset the registered ones; this
    // covers threads racing the arm).
    std::lock_guard<std::mutex> blk(tls->mu);
    if (tls->armGen != gen) {
        tls->armGen = gen;
        tls->next = 0;
        tls->ring.assign(recordsPerThread_, TraceRecord{});
    }
    tlsGen = gen;
    return tls;
}

void
Tracer::arm(size_t bytesPerThread)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!bytesPerThread)
        bytesPerThread = kDefaultBytesPerThread;
    recordsPerThread_ =
        std::max<size_t>(1, bytesPerThread / sizeof(TraceRecord));
    generation_.fetch_add(1, std::memory_order_relaxed);
    uint64_t gen = generation_.load(std::memory_order_relaxed);
    for (auto &b : bufs_) {
        std::lock_guard<std::mutex> blk(b->mu);
        b->armGen = gen;
        b->next = 0;
        b->ring.assign(recordsPerThread_, TraceRecord{});
    }
    droppedThreads_.store(0, std::memory_order_relaxed);
    armTick_ = tick();
    armWallNs_ = wallNs();
    armed_.store(true, std::memory_order_release);
}

void
Tracer::disarm()
{
    armed_.store(false, std::memory_order_release);
}

void
Tracer::record(const char *cat, const char *name, char phase)
{
    ThreadBuf *b = threadBuf();
    if (!b || b->ring.empty())
        return;
    uint64_t t = tick();
    std::lock_guard<std::mutex> lk(b->mu);
    TraceRecord &r = b->ring[b->next % b->ring.size()];
    r.tick = t;
    r.cat = cat;
    r.name = name;
    r.phase = phase;
    ++b->next;
}

size_t
Tracer::recordCount()
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t total = 0;
    for (auto &b : bufs_) {
        std::lock_guard<std::mutex> blk(b->mu);
        total += static_cast<size_t>(
            std::min<uint64_t>(b->next, b->ring.size()));
    }
    return total;
}

uint64_t
Tracer::droppedCount()
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t dropped = droppedThreads_.load(std::memory_order_relaxed);
    for (auto &b : bufs_) {
        std::lock_guard<std::mutex> blk(b->mu);
        if (b->next > b->ring.size())
            dropped += b->next - b->ring.size();
    }
    return dropped;
}

size_t
Tracer::countSpans(const char *name)
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t hits = 0;
    for (auto &b : bufs_) {
        std::lock_guard<std::mutex> blk(b->mu);
        uint64_t have = std::min<uint64_t>(b->next, b->ring.size());
        for (uint64_t i = 0; i < have; ++i) {
            const TraceRecord &r = b->ring[i];
            if (r.phase == 'B' && r.name &&
                std::strcmp(r.name, name) == 0)
                ++hits;
        }
    }
    return hits;
}

std::string
Tracer::dumpJson()
{
    // Snapshot every ring first (short critical sections), then render
    // outside all locks.
    struct Snap
    {
        uint64_t tid;
        std::vector<TraceRecord> records; ///< oldest first
    };
    std::vector<Snap> snaps;
    uint64_t dropped;
    uint64_t armTick, armWallNs;
    {
        std::lock_guard<std::mutex> lk(mu_);
        armTick = armTick_;
        armWallNs = armWallNs_;
        dropped = droppedThreads_.load(std::memory_order_relaxed);
        for (auto &b : bufs_) {
            std::lock_guard<std::mutex> blk(b->mu);
            if (!b->next || b->ring.empty())
                continue;
            Snap s;
            s.tid = b->tid;
            uint64_t have = std::min<uint64_t>(b->next, b->ring.size());
            if (b->next > b->ring.size())
                dropped += b->next - b->ring.size();
            s.records.reserve(have);
            // Ring order: oldest record sits at next % size when
            // wrapped, at 0 otherwise.
            uint64_t start = b->next > b->ring.size()
                                 ? b->next % b->ring.size()
                                 : 0;
            for (uint64_t i = 0; i < have; ++i)
                s.records.push_back(
                    b->ring[(start + i) % b->ring.size()]);
            snaps.push_back(std::move(s));
        }
    }

    // Calibrate ticks -> microseconds against the wall clock interval
    // since arm (rdtsc has no portable frequency API).
    double ticksPerUs = 1.0;
    uint64_t nowTick = tick(), nowWall = wallNs();
    if (nowTick > armTick && nowWall > armWallNs) {
        double us = static_cast<double>(nowWall - armWallNs) / 1000.0;
        if (us > 0)
            ticksPerUs = static_cast<double>(nowTick - armTick) / us;
    }
    if (ticksPerUs <= 0)
        ticksPerUs = 1.0;

    std::string out;
    out.reserve(1024 + 96 * (snaps.empty() ? 0 : snaps.size() *
                                                 snaps[0].records.size()));
    out += "{\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const Snap &s : snaps) {
        // One pid per recorded thread: Perfetto renders each as its
        // own process group, which keeps worker timelines separate.
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                      ",\"args\":{\"name\":\"dise-thread-%" PRIu64
                      "\"}}",
                      first ? "" : ",", s.tid, s.tid, s.tid);
        first = false;
        out += buf;
        // A wrapped ring may start with 'E' records whose 'B' was
        // overwritten; skip them so B/E nesting stays well-formed.
        int depth = 0;
        for (const TraceRecord &r : s.records) {
            if (r.phase == 'E') {
                if (depth == 0)
                    continue;
                --depth;
            } else {
                ++depth;
            }
            double ts =
                r.tick >= armTick
                    ? static_cast<double>(r.tick - armTick) / ticksPerUs
                    : 0.0;
            // Names/cats are compile-time literals today, but escape
            // them anyway — the invariant is one TRACE_SPAN away from
            // breaking.
            out += ",{\"name\":\"";
            appendEscaped(out, r.name ? r.name : "?");
            out += "\",\"cat\":\"";
            appendEscaped(out, r.cat ? r.cat : "?");
            out += "\",\"ph\":\"";
            out += r.phase;
            std::snprintf(buf, sizeof buf,
                          "\",\"ts\":%.3f,\"pid\":%" PRIu64
                          ",\"tid\":%" PRIu64 "}",
                          ts, s.tid, s.tid);
            out += buf;
        }
    }
    std::snprintf(buf, sizeof buf,
                  "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                  "\"dropped_records\":%" PRIu64 "}}",
                  dropped);
    out += buf;
    return out;
}

} // namespace dise::obs
