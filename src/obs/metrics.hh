/**
 * @file
 * Process-wide latency metrics: a fixed set of named Histograms
 * (src/common/stats.hh) that instrumented layers observe into
 * directly, a Prometheus text-exposition renderer for the `metrics`
 * wire verb, and snapshot plumbing so the distributions also ride
 * inside ServerStats.
 *
 * The registry is global and append-never: handles are plain member
 * references valid for the process lifetime, so hot paths pay one
 * wait-free observe() with no lookup and no locks. Families use the
 * Prometheus naming convention `dise_<what>_us`.
 */

#ifndef DISE_OBS_METRICS_HH
#define DISE_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace dise::obs {

/** Every latency family the server exports. */
struct Metrics
{
    Histogram verbLatencyUs;     ///< wire-verb round trip (server side)
    Histogram schedQueueWaitUs;  ///< submit -> first worker dequeue
    Histogram sliceDurationUs;   ///< one scheduler slice callback
    Histogram storeFsyncUs;      ///< fsync inside SessionStore writes
    Histogram resurrectReplayUs; ///< rebuild-replay of a stored session
    Histogram eventPushUs;       ///< pushing queued events to a peer
    Histogram toolOverheadUs;    ///< debug-tool work per 1024 armed µops

    /** Snapshot every family, in a fixed registry order. */
    std::vector<HistogramSnapshot> snapshotAll() const;
};

/** The process-wide registry (always present; observing is cheap
 *  enough to leave unconditional). */
Metrics &metrics();

/** Monotonic wall clock in nanoseconds. */
uint64_t nowNs();

/** Microseconds elapsed since a nowNs() reading (0 floor). */
uint64_t usSince(uint64_t startNs);

/**
 * Fold @p add into @p into by family name: counts, sums, and
 * per-bucket tallies accumulate; families only present in @p add are
 * appended. Used by the shard supervisor to merge per-worker
 * ServerStats histograms into one fleet-wide view.
 */
void mergeHistogramSnapshots(std::vector<HistogramSnapshot> &into,
                             const std::vector<HistogramSnapshot> &add);

/** Mean of a snapshot in the family's native unit (0 when empty). */
double histogramMean(const HistogramSnapshot &h);

/**
 * Render snapshots as Prometheus text exposition format v0: for each
 * family a `# HELP` / `# TYPE ... histogram` header, cumulative
 * `_bucket{le="..."}` lines ending at `le="+Inf"`, then `_sum` and
 * `_count`.
 */
std::string renderPrometheus(const std::vector<HistogramSnapshot> &snaps);

} // namespace dise::obs

#endif // DISE_OBS_METRICS_HH
