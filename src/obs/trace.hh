/**
 * @file
 * The flight recorder: an always-compiled, runtime-armed tracer of
 * begin/end span records over the server's coarse-grained phases —
 * scheduler slices, session verbs, time-travel restore/replay, store
 * I/O, interval-replay workers, event-push drains.
 *
 * Design constraints, in order:
 *
 *  1. **Disarmed cost ~ zero.** TRACE_SPAN compiles to one relaxed
 *     atomic load and a branch when tracing is off. No allocation, no
 *     clock read, no TLS touch. The spans sit at slice/verb/IO
 *     granularity (thousands of µops apart), never in the per-µop
 *     interpreter loop, so the functional-MIPS cost of carrying the
 *     instrumentation is unmeasurable (BENCH_obs.json proves it).
 *  2. **Armed cost lock-light.** Each thread owns a fixed-size ring of
 *     POD records; a span boundary is one rdtsc-style clock read plus
 *     a bump-pointer write under the thread's own (uncontended) mutex.
 *     That mutex exists only so a concurrent dump reads consistent
 *     records — writers never contend with each other.
 *  3. **Dumps open directly in Perfetto.** dumpJson() renders Chrome
 *     trace_event JSON ("ph":"B"/"E" pairs), one pid/tid per recorded
 *     thread with thread_name metadata, timestamps in microseconds
 *     calibrated against the wall clock at arm/dump time.
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the dump): records store the pointers, not copies.
 */

#ifndef DISE_OBS_TRACE_HH
#define DISE_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dise::obs {

/** One span boundary. POD; the ring overwrites oldest-first. */
struct TraceRecord
{
    uint64_t tick = 0;          ///< raw timestamp (Tracer ticks)
    const char *cat = nullptr;  ///< category (layer): "sched", "store", ...
    const char *name = nullptr; ///< span name: "sched.slice", ...
    char phase = 'B';           ///< 'B' begin / 'E' end
};

class Tracer
{
  public:
    /** The process-wide tracer every TRACE_SPAN reports to. */
    static Tracer &instance();

    /** Arm with @p bytesPerThread of ring per recording thread
     *  (clamped to at least one record; 0 = default 256 KiB). Resets
     *  previously recorded spans and bumps generation(). */
    void arm(size_t bytesPerThread = 0);
    /** Stop recording. Already-recorded spans stay dumpable. */
    void disarm();

    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Bumped by every arm(): lets dump consumers cache renders. */
    uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_relaxed);
    }

    /** Record one span boundary (TRACE_SPAN's slow path; callers must
     *  have seen armed() true, but a record racing a disarm is fine —
     *  it lands in the ring and simply may not be dumped). */
    void record(const char *cat, const char *name, char phase);

    /**
     * Render everything recorded since the last arm() as Chrome
     * trace_event JSON. Safe to call while armed (each thread ring is
     * snapshotted under its lock), but the canonical flow is
     * trace-start / run / trace-stop / trace-dump.
     */
    std::string dumpJson();

    /** Records currently held across all thread rings. */
    size_t recordCount();
    /** Records lost to ring wrap or the thread cap since arm(). */
    uint64_t droppedCount();

    /** Convenience for tests: spans recorded with @p name. */
    size_t countSpans(const char *name);

  private:
    struct ThreadBuf;

    Tracer() = default;
    ThreadBuf *threadBuf();

    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> generation_{0};
    std::atomic<uint64_t> droppedThreads_{0};

    std::mutex mu_; ///< registry of per-thread rings
    std::vector<std::unique_ptr<ThreadBuf>> bufs_;
    size_t recordsPerThread_ = 0;
    uint64_t armTick_ = 0;
    uint64_t armWallNs_ = 0;
};

/** RAII span: records 'B' at construction when armed, 'E' at scope
 *  exit iff the 'B' was recorded (arm state changing mid-span cannot
 *  produce an orphan E... a B without E is tolerated by viewers). */
class SpanGuard
{
  public:
    SpanGuard(const char *cat, const char *name)
    {
        Tracer &t = Tracer::instance();
        if (t.armed()) {
            cat_ = cat;
            name_ = name;
            t.record(cat, name, 'B');
        }
    }

    ~SpanGuard()
    {
        if (name_)
            Tracer::instance().record(cat_, name_, 'E');
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    const char *cat_ = nullptr;
    const char *name_ = nullptr;
};

#define DISE_TRACE_CONCAT2(a, b) a##b
#define DISE_TRACE_CONCAT(a, b) DISE_TRACE_CONCAT2(a, b)

/** Scope-guard span. @p cat and @p name must outlive any dump (string
 *  literals / static tables). One relaxed load + branch when the
 *  tracer is disarmed. */
#define TRACE_SPAN(cat, name)                                            \
    ::dise::obs::SpanGuard DISE_TRACE_CONCAT(_dise_span_,                \
                                             __LINE__)(cat, name)

} // namespace dise::obs

#endif // DISE_OBS_TRACE_HH
