#include "dise/pattern.hh"

#include <sstream>

namespace dise {

unsigned
Pattern::specificity() const
{
    unsigned n = 0;
    n += opclass.has_value();
    n += opcode.has_value();
    n += baseReg.has_value();
    n += pc.has_value();
    n += codewordId.has_value();
    return n;
}

bool
Pattern::matches(const Inst &inst, Addr instPc) const
{
    if (opclass && inst.cls() != *opclass)
        return false;
    if (opcode && inst.op != *opcode)
        return false;
    if (baseReg) {
        if (inst.info().fmt != Format::Memory || inst.rb != *baseReg)
            return false;
    }
    if (pc && instPc != *pc)
        return false;
    if (codewordId) {
        if (inst.op != Opcode::CODEWORD || inst.imm != *codewordId)
            return false;
    }
    return specificity() > 0;
}

std::string
Pattern::str() const
{
    std::ostringstream os;
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << " & ";
        first = false;
    };
    if (opclass) {
        sep();
        os << "T.OPCLASS==" << static_cast<int>(*opclass);
    }
    if (opcode) {
        sep();
        os << "T.OP==" << opName(*opcode);
    }
    if (baseReg) {
        sep();
        os << "T.RB==" << regName(*baseReg);
    }
    if (pc) {
        sep();
        os << "T.PC==0x" << std::hex << *pc << std::dec;
    }
    if (codewordId) {
        sep();
        os << "T.CODEWORD==" << *codewordId;
    }
    if (first)
        os << "<empty>";
    return os.str();
}

Pattern
Pattern::forClass(OpClass cls)
{
    Pattern p;
    p.opclass = cls;
    return p;
}

Pattern
Pattern::forOpcode(Opcode op)
{
    Pattern p;
    p.opcode = op;
    return p;
}

Pattern
Pattern::forPc(Addr pc)
{
    Pattern p;
    p.pc = pc;
    return p;
}

Pattern
Pattern::forCodeword(int64_t id)
{
    Pattern p;
    p.codewordId = id;
    return p;
}

} // namespace dise
