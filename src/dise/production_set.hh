/**
 * @file
 * Named, composable DISE production sets.
 *
 * A ProductionSet is a shippable unit of instrumentation: an ordered
 * list of productions that installs and removes as one atomic group.
 * Multiple sets coexist in the 32-entry pattern table (each remembers
 * the ids and slots it owns), which is what lets several debug tools —
 * plus the debugger's own watch/break productions — be armed at once.
 *
 * Lifetime rules the table model imposes:
 *  - install() is all-or-nothing: if the free pattern-table capacity
 *    cannot hold the whole set, nothing is installed and install()
 *    reports the shortfall (the engine itself fatals on overflow, so
 *    the set is the layer that makes exhaustion a recoverable error).
 *  - remove() erases exactly the productions this install() added, by
 *    the ids it recorded — never by name or pattern, so two sets with
 *    overlapping patterns cannot free each other's slots.
 *  - slots() reports the table slots this set occupies; replay logs
 *    them so deterministic reconstruction can re-arm the set and
 *    unwind it from the exact slots (slot order breaks
 *    equal-specificity match ties).
 */

#ifndef DISE_DISE_PRODUCTION_SET_HH
#define DISE_DISE_PRODUCTION_SET_HH

#include <string>
#include <vector>

#include "dise/engine.hh"

namespace dise {

class ProductionSet
{
  public:
    explicit ProductionSet(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    size_t size() const { return prods_.size(); }
    bool installed() const { return !ids_.empty(); }

    /** Stage a production (must not be installed). */
    void add(Production p);

    /**
     * Install every staged production into @p engine, in order.
     * All-or-nothing: fails (and installs nothing) when the free
     * pattern-table capacity cannot hold the whole set.
     */
    bool install(DiseEngine &engine, std::string *err = nullptr);

    /**
     * Install into exact pattern-table slots (one per staged
     * production) — the unwind path of a logged removal, where
     * first-free insertion would reorder the table and flip
     * equal-specificity match ties.
     */
    bool installAt(DiseEngine &engine, const std::vector<int> &slots,
                   std::string *err = nullptr);

    /** Remove exactly the productions the last install() added. */
    void remove(DiseEngine &engine);

    /** Ids owned by the current installation (empty when uninstalled). */
    const std::vector<ProductionId> &ids() const { return ids_; }
    /** Pattern-table slots occupied by the current installation. */
    const std::vector<int> &slots() const { return slots_; }

  private:
    std::string name_;
    std::vector<Production> prods_;
    std::vector<ProductionId> ids_;
    std::vector<int> slots_;
};

} // namespace dise

#endif // DISE_DISE_PRODUCTION_SET_HH
