/**
 * @file
 * The DISE engine: production storage, pattern matching, replacement
 * instantiation, and a capacity/timing model for the pattern and
 * replacement tables (32 patterns; 512 instructions, 2-way
 * set-associative, per the paper's modest configuration).
 *
 * The engine sits logically between fetch and decode. It holds no
 * architectural register state — the private DISE register file is
 * renamed and lives with the rest of the architectural state in the
 * CPU — the engine is pure instruction-stream transformation.
 *
 * Matching is indexed: every production is classified by its most
 * selective pattern field (exact PC, codeword id, opcode, operation
 * class), and decode-time lookup unions a handful of candidate
 * bitmasks instead of scanning all pattern-table slots. A generation
 * counter advances on every table mutation so fetch-side caches (the
 * CPU's predecoded µop cache) can hold match outcomes and revalidate
 * them in O(1). Instantiated replacement sequences are memoized per
 * (production, trigger) since triggers repeat heavily in loops.
 */

#ifndef DISE_DISE_ENGINE_HH
#define DISE_DISE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "dise/pattern.hh"
#include "dise/template.hh"

namespace dise {

using ProductionId = uint32_t;

/** A rewriting rule: pattern plus parameterized replacement sequence. */
struct Production
{
    std::string name;
    Pattern pattern;
    std::vector<TemplateInst> replacement;
};

struct DiseEngineConfig
{
    unsigned patternTableEntries = 32;
    unsigned replacementTableInsts = 512;
    unsigned replacementTableAssoc = 2;
    /** Cycles to refill one replacement-table line from memory. */
    unsigned replacementMissPenalty = 24;
    unsigned replacementLineInsts = 8;
    /** Memoized-expansion cache capacity (entries; 0 disables). */
    unsigned expansionMemoEntries = 4096;
};

/** Result of presenting one fetched instruction to the engine. */
struct MatchResult
{
    const Production *production = nullptr; ///< null: no expansion
    ProductionId id = 0;      ///< id of the matched production
    unsigned stallCycles = 0; ///< replacement-table refill stalls
};

/**
 * An instantiated replacement sequence, self-contained so that an
 * expansion in flight stays valid even if the pattern table mutates
 * (and the production's slot is reused) before it finishes.
 */
struct Expansion
{
    std::vector<Inst> insts;
    /** Per-element T.INST flags (parallel to insts). */
    std::vector<uint8_t> triggerCopy;
};

class DiseEngine
{
  public:
    /** A memoized, immutable instantiated replacement sequence. */
    using ExpansionRef = std::shared_ptr<const Expansion>;

    explicit DiseEngine(const DiseEngineConfig &cfg = {});

    // Holds interior pointers into its own StatGroup.
    DiseEngine(const DiseEngine &) = delete;
    DiseEngine &operator=(const DiseEngine &) = delete;

    /** @name Controller (privileged) interface */
    ///@{
    ProductionId addProduction(Production p);
    void removeProduction(ProductionId id);
    /** Pattern-table slot currently holding @p id, or -1. */
    int slotOf(ProductionId id) const;
    /** Id of the production occupying @p slot, or 0 when empty —
     *  the inverse of slotOf(), used by replay to re-target logged
     *  RemoveProduction records (which identify pre-session
     *  productions by their stable slot) onto a rebuilt engine. */
    ProductionId idAt(int slot) const;
    /**
     * Re-install @p p into a specific empty @p slot. Slot order breaks
     * equal-specificity match ties, so undoing a removal during
     * checkpoint restore must put the production back where it was —
     * first-free insertion would reorder the table and make replay
     * diverge from the original timeline.
     */
    ProductionId addProductionAt(Production p, int slot);
    void clear();
    void
    setEnabled(bool on)
    {
        if (enabled_ != on)
            ++tableVersion_;
        enabled_ = on;
    }
    bool enabled() const { return enabled_; }
    size_t productionCount() const;
    /** Pattern-table slots total (installed + free). */
    size_t patternCapacity() const { return slots_.size(); }
    const Production *production(ProductionId id) const;
    ///@}

    /**
     * Decode-time matching. Returns the most specific matching
     * production (ties broken by insertion order) and any
     * replacement-table refill stall.
     */
    MatchResult match(const Inst &inst, Addr pc);

    /** Pure matching without timing side effects (functional path). */
    const Production *matchFunctional(const Inst &inst, Addr pc) const;

    /**
     * Pattern-table slot of the most specific matching production, or
     * -1. The slot index is stable until the table mutates (observable
     * through generation()), so fetch-side caches may store it.
     */
    int matchSlot(const Inst &inst, Addr pc) const;

    /** Production occupying @p slot (from matchSlot; must be valid). */
    const Production *slotProduction(int slot) const;

    /**
     * Advances on every pattern-table mutation. A cached matchSlot()
     * outcome is valid iff the generation it was computed under still
     * matches.
     */
    uint64_t generation() const { return generation_; }

    /**
     * Advance the generation without mutating the table, forcing every
     * externally cached match outcome to revalidate. Called on
     * checkpoint restore: memory (and thus any predecoded fetch state)
     * may have been rolled back under the caches.
     */
    void invalidateMatchCaches() { ++generation_; }

    /**
     * Advances only on semantic table changes (production add/remove,
     * clear, enable toggle) — never on the cache-invalidation-only
     * generation bumps a checkpoint restore performs. Consumers whose
     * cached state depends on table *contents* rather than rolled-back
     * memory (the trace JIT bakes expansions into trace bodies) key on
     * this so restores do not wipe them.
     */
    uint64_t tableVersion() const { return tableVersion_; }

    /** Instantiate production @p prod for @p trigger (uncached). */
    std::vector<Inst> expand(const Production &prod,
                             const Inst &trigger) const;

    /**
     * Memoized expansion of the production in @p slot for @p trigger.
     * The returned sequence is shared and immutable; it stays alive
     * across table mutations even though the memo table is dropped.
     */
    ExpansionRef expandCached(int slot, const Inst &trigger);

    /** @name A/B switches for benchmarking the indexed hot path */
    ///@{
    void setIndexedMatch(bool on) { indexed_ = on; }
    void
    setExpansionMemo(bool on)
    {
        memoize_ = on;
        memo_.clear();
    }
    ///@}

    StatGroup &stats() { return stats_; }

  private:
    struct Slot
    {
        bool valid = false;
        ProductionId id = 0;
        Production prod;
    };

    /** Replacement-table residency model (tag-only, like a cache). */
    struct RtLine
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    /** One bit per pattern-table slot. */
    using SlotMask = uint64_t;
    static constexpr unsigned MaxSlots = 64;

    /** Memo key: productions are immutable while installed, so the
     *  expansion is a pure function of (production id, trigger). */
    struct ExpKey
    {
        ProductionId id = 0;
        Inst trigger{};
        bool operator==(const ExpKey &) const = default;
    };
    struct ExpKeyHash
    {
        size_t operator()(const ExpKey &k) const;
    };

    unsigned rtTouch(ProductionId id, size_t seqLen);
    void rebuildIndex();
    void touchTable();
    SlotMask candidates(const Inst &inst, Addr pc) const;
    int matchLinear(const Inst &inst, Addr pc) const;

    DiseEngineConfig cfg_;
    bool enabled_ = true;
    bool indexed_ = true;
    /** Tables wider than the candidate-mask width use the linear scan. */
    bool indexable_ = true;
    bool memoize_ = true;
    std::vector<Slot> slots_;
    ProductionId nextId_ = 1;
    std::vector<RtLine> rtLines_;
    uint64_t rtClock_ = 0;
    uint64_t generation_ = 0;
    uint64_t tableVersion_ = 0;

    // Candidate indexes, rebuilt on each (rare) table mutation.
    SlotMask validMask_ = 0;   ///< all installed slots
    SlotMask genericMask_ = 0; ///< slots with no indexable anchor
    std::array<SlotMask, NumOpcodes> byOpcode_{};
    std::array<SlotMask, NumOpClasses> byClass_{};
    std::unordered_map<Addr, SlotMask> pcAnchored_;
    std::unordered_map<int64_t, SlotMask> cwAnchored_;

    std::unordered_map<ExpKey, ExpansionRef, ExpKeyHash> memo_;

    StatGroup stats_;
    uint64_t *matchesStat_;
    uint64_t *rtMissesStat_;
};

} // namespace dise

#endif // DISE_DISE_ENGINE_HH
