/**
 * @file
 * The DISE engine: production storage, pattern matching, replacement
 * instantiation, and a capacity/timing model for the pattern and
 * replacement tables (32 patterns; 512 instructions, 2-way
 * set-associative, per the paper's modest configuration).
 *
 * The engine sits logically between fetch and decode. It holds no
 * architectural register state — the private DISE register file is
 * renamed and lives with the rest of the architectural state in the
 * CPU — the engine is pure instruction-stream transformation.
 */

#ifndef DISE_DISE_ENGINE_HH
#define DISE_DISE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "dise/pattern.hh"
#include "dise/template.hh"

namespace dise {

using ProductionId = uint32_t;

/** A rewriting rule: pattern plus parameterized replacement sequence. */
struct Production
{
    std::string name;
    Pattern pattern;
    std::vector<TemplateInst> replacement;
};

struct DiseEngineConfig
{
    unsigned patternTableEntries = 32;
    unsigned replacementTableInsts = 512;
    unsigned replacementTableAssoc = 2;
    /** Cycles to refill one replacement-table line from memory. */
    unsigned replacementMissPenalty = 24;
    unsigned replacementLineInsts = 8;
};

/** Result of presenting one fetched instruction to the engine. */
struct MatchResult
{
    const Production *production = nullptr; ///< null: no expansion
    unsigned stallCycles = 0; ///< replacement-table refill stalls
};

class DiseEngine
{
  public:
    explicit DiseEngine(const DiseEngineConfig &cfg = {});

    /** @name Controller (privileged) interface */
    ///@{
    ProductionId addProduction(Production p);
    void removeProduction(ProductionId id);
    void clear();
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }
    size_t productionCount() const;
    const Production *production(ProductionId id) const;
    ///@}

    /**
     * Decode-time matching. Returns the most specific matching
     * production (ties broken by insertion order) and any
     * replacement-table refill stall.
     */
    MatchResult match(const Inst &inst, Addr pc);

    /** Pure matching without timing side effects (functional path). */
    const Production *matchFunctional(const Inst &inst, Addr pc) const;

    /** Instantiate production @p prod for @p trigger. */
    std::vector<Inst> expand(const Production &prod,
                             const Inst &trigger) const;

    StatGroup &stats() { return stats_; }

  private:
    struct Slot
    {
        bool valid = false;
        ProductionId id = 0;
        Production prod;
    };

    /** Replacement-table residency model (tag-only, like a cache). */
    struct RtLine
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    unsigned rtTouch(ProductionId id, size_t seqLen);

    DiseEngineConfig cfg_;
    bool enabled_ = true;
    std::vector<Slot> slots_;
    ProductionId nextId_ = 1;
    std::vector<RtLine> rtLines_;
    uint64_t rtClock_ = 0;
    StatGroup stats_;
};

} // namespace dise

#endif // DISE_DISE_ENGINE_HH
