/**
 * @file
 * Parameterized replacement-sequence templates.
 *
 * A replacement sequence is a list of template instructions whose
 * fields are either literal or instantiated from the trigger
 * instruction (the paper's T.OP / T.RD / T.RS1 / T.IMM / T.INST
 * directives). Instantiation produces ordinary Inst records that flow
 * down the pipeline tagged with a DISEPC.
 */

#ifndef DISE_DISE_TEMPLATE_HH
#define DISE_DISE_TEMPLATE_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"

namespace dise {

/** A register field of a template: literal or copied from the trigger. */
struct TRegField
{
    enum class Kind : uint8_t { Lit, TrigRa, TrigRb, TrigRc };
    Kind kind = Kind::Lit;
    RegId lit{};

    RegId resolve(const Inst &trigger) const;

    static TRegField reg(RegId r) { return {Kind::Lit, r}; }
    static TRegField trigRa() { return {Kind::TrigRa, {}}; }
    static TRegField trigRb() { return {Kind::TrigRb, {}}; }
    static TRegField trigRc() { return {Kind::TrigRc, {}}; }
};

/** An immediate field of a template: literal or the trigger's. */
struct TImmField
{
    enum class Kind : uint8_t { Lit, TrigImm };
    Kind kind = Kind::Lit;
    int64_t lit = 0;

    int64_t resolve(const Inst &trigger) const;

    static TImmField imm(int64_t v) { return {Kind::Lit, v}; }
    static TImmField trigImm() { return {Kind::TrigImm, 0}; }
};

/** One template instruction. */
struct TemplateInst
{
    /** T.INST: reproduce the trigger unchanged. */
    bool triggerCopy = false;

    Opcode op = Opcode::NOP;
    TRegField ra, rb, rc;
    TImmField imm;

    /** Materialize for a specific trigger. */
    Inst instantiate(const Inst &trigger) const;

    /** @name Factories mirroring the paper's production syntax */
    ///@{
    static TemplateInst trigInst();
    static TemplateInst fixed(const Inst &inst);
    static TemplateInst op3(Opcode o, TRegField a, TRegField b, TRegField c);
    static TemplateInst opImm(Opcode o, TRegField a, int64_t imm,
                              TRegField c);
    static TemplateInst mem(Opcode o, TRegField a, TImmField disp,
                            TRegField b);
    ///@}
};

} // namespace dise

#endif // DISE_DISE_TEMPLATE_HH
