#include "dise/engine.hh"

#include <bit>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

size_t
DiseEngine::ExpKeyHash::operator()(const ExpKey &k) const
{
    const Inst &t = k.trigger;
    uint64_t h = k.id;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t.op);
    auto mixReg = [&](RegId r) {
        h = h * 0x9e3779b97f4a7c15ULL +
            ((static_cast<uint64_t>(r.kind) << 8) | r.idx);
    };
    mixReg(t.ra);
    mixReg(t.rb);
    mixReg(t.rc);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t.imm);
    return static_cast<size_t>(h ^ (h >> 32));
}

DiseEngine::DiseEngine(const DiseEngineConfig &cfg)
    : cfg_(cfg), slots_(cfg.patternTableEntries), stats_("dise"),
      matchesStat_(stats_.counter("matches")),
      rtMissesStat_(stats_.counter("rt_misses"))
{
    indexable_ = cfg_.patternTableEntries <= MaxSlots;
    unsigned numLines = cfg_.replacementTableInsts / cfg_.replacementLineInsts;
    DISE_ASSERT(numLines % cfg_.replacementTableAssoc == 0,
                "replacement table geometry");
    rtLines_.resize(numLines);
}

void
DiseEngine::touchTable()
{
    ++generation_;
    ++tableVersion_;
    memo_.clear();
    rebuildIndex();
}

void
DiseEngine::rebuildIndex()
{
    if (!indexable_)
        return; // masks cannot cover the table; matchLinear serves it
    validMask_ = 0;
    genericMask_ = 0;
    byOpcode_.fill(0);
    byClass_.fill(0);
    pcAnchored_.clear();
    cwAnchored_.clear();

    for (size_t i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (!slot.valid)
            continue;
        SlotMask bit = SlotMask{1} << i;
        validMask_ |= bit;
        // File each production under its most selective anchor; lookup
        // unions the buckets an instruction could possibly hit.
        const Pattern &p = slot.prod.pattern;
        if (p.pc) {
            pcAnchored_[*p.pc] |= bit;
        } else if (p.codewordId) {
            cwAnchored_[*p.codewordId] |= bit;
        } else if (p.opcode) {
            byOpcode_[static_cast<unsigned>(*p.opcode)] |= bit;
        } else if (p.opclass) {
            byClass_[static_cast<unsigned>(*p.opclass)] |= bit;
        } else {
            genericMask_ |= bit;
        }
    }
}

ProductionId
DiseEngine::addProduction(Production p)
{
    for (auto &slot : slots_) {
        if (!slot.valid) {
            slot.valid = true;
            slot.id = nextId_++;
            slot.prod = std::move(p);
            touchTable();
            return slot.id;
        }
    }
    fatal("DISE pattern table full (", cfg_.patternTableEntries,
          " entries)");
}

int
DiseEngine::slotOf(ProductionId id) const
{
    for (size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].valid && slots_[i].id == id)
            return static_cast<int>(i);
    return -1;
}

ProductionId
DiseEngine::idAt(int slot) const
{
    if (slot < 0 || slot >= static_cast<int>(slots_.size()) ||
        !slots_[slot].valid)
        return 0;
    return slots_[slot].id;
}

ProductionId
DiseEngine::addProductionAt(Production p, int slot)
{
    DISE_ASSERT(slot >= 0 && slot < static_cast<int>(slots_.size()),
                "addProductionAt: bad slot ", slot);
    Slot &s = slots_[static_cast<size_t>(slot)];
    DISE_ASSERT(!s.valid, "addProductionAt: slot ", slot, " occupied");
    s.valid = true;
    s.id = nextId_++;
    s.prod = std::move(p);
    touchTable();
    return s.id;
}

void
DiseEngine::removeProduction(ProductionId id)
{
    for (auto &slot : slots_) {
        if (slot.valid && slot.id == id) {
            slot.valid = false;
            touchTable();
            return;
        }
    }
    warn("removeProduction: no production with id ", id);
}

void
DiseEngine::clear()
{
    for (auto &slot : slots_)
        slot.valid = false;
    touchTable();
}

size_t
DiseEngine::productionCount() const
{
    size_t n = 0;
    for (const auto &slot : slots_)
        n += slot.valid;
    return n;
}

const Production *
DiseEngine::production(ProductionId id) const
{
    for (const auto &slot : slots_)
        if (slot.valid && slot.id == id)
            return &slot.prod;
    return nullptr;
}

const Production *
DiseEngine::slotProduction(int slot) const
{
    DISE_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size() &&
                    slots_[slot].valid,
                "bad pattern-table slot ", slot);
    return &slots_[slot].prod;
}

DiseEngine::SlotMask
DiseEngine::candidates(const Inst &inst, Addr pc) const
{
    SlotMask m = genericMask_ |
                 byOpcode_[static_cast<unsigned>(inst.op)] |
                 byClass_[static_cast<unsigned>(inst.cls())];
    if (!pcAnchored_.empty()) {
        auto it = pcAnchored_.find(pc);
        if (it != pcAnchored_.end())
            m |= it->second;
    }
    if (inst.op == Opcode::CODEWORD && !cwAnchored_.empty()) {
        auto it = cwAnchored_.find(inst.imm);
        if (it != cwAnchored_.end())
            m |= it->second;
    }
    return m;
}

int
DiseEngine::matchLinear(const Inst &inst, Addr pc) const
{
    int best = -1;
    unsigned bestSpec = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (!slot.valid || !slot.prod.pattern.matches(inst, pc))
            continue;
        unsigned spec = slot.prod.pattern.specificity();
        if (best < 0 || spec > bestSpec) {
            best = static_cast<int>(i);
            bestSpec = spec;
        }
    }
    return best;
}

int
DiseEngine::matchSlot(const Inst &inst, Addr pc) const
{
    if (!enabled_)
        return -1;
    if (!indexed_ || !indexable_)
        return matchLinear(inst, pc);
    if (!validMask_)
        return -1;
    // Ascending slot order preserves the linear scan's tie-break
    // (insertion order within the table; strictly-higher specificity
    // wins).
    int best = -1;
    unsigned bestSpec = 0;
    SlotMask m = candidates(inst, pc);
    while (m) {
        unsigned i = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        const Slot &slot = slots_[i];
        if (!slot.prod.pattern.matches(inst, pc))
            continue;
        unsigned spec = slot.prod.pattern.specificity();
        if (best < 0 || spec > bestSpec) {
            best = static_cast<int>(i);
            bestSpec = spec;
        }
    }
    return best;
}

const Production *
DiseEngine::matchFunctional(const Inst &inst, Addr pc) const
{
    int slot = matchSlot(inst, pc);
    return slot < 0 ? nullptr : &slots_[slot].prod;
}

unsigned
DiseEngine::rtTouch(ProductionId id, size_t seqLen)
{
    unsigned sets =
        rtLines_.size() / cfg_.replacementTableAssoc;
    unsigned linesNeeded =
        (seqLen + cfg_.replacementLineInsts - 1) / cfg_.replacementLineInsts;
    unsigned stall = 0;
    for (unsigned i = 0; i < linesNeeded; ++i) {
        ++rtClock_;
        uint64_t lineKey = (static_cast<uint64_t>(id) << 8) | i;
        unsigned set = lineKey % sets;
        RtLine *base = &rtLines_[set * cfg_.replacementTableAssoc];
        RtLine *victim = nullptr;
        bool hit = false;
        for (unsigned w = 0; w < cfg_.replacementTableAssoc; ++w) {
            RtLine &line = base[w];
            if (line.valid && line.tag == lineKey) {
                line.lastUse = rtClock_;
                hit = true;
                break;
            }
            if (!victim || !line.valid ||
                (victim->valid && line.lastUse < victim->lastUse)) {
                victim = &line;
            }
        }
        if (!hit) {
            ++*rtMissesStat_;
            stall += cfg_.replacementMissPenalty;
            victim->valid = true;
            victim->tag = lineKey;
            victim->lastUse = rtClock_;
        }
    }
    return stall;
}

MatchResult
DiseEngine::match(const Inst &inst, Addr pc)
{
    MatchResult res;
    int slot = matchSlot(inst, pc);
    if (slot < 0)
        return res;

    ++*matchesStat_;
    const Slot &s = slots_[slot];
    res.production = &s.prod;
    res.id = s.id;
    res.stallCycles = rtTouch(s.id, s.prod.replacement.size());
    return res;
}

std::vector<Inst>
DiseEngine::expand(const Production &prod, const Inst &trigger) const
{
    std::vector<Inst> out;
    out.reserve(prod.replacement.size());
    for (const auto &tmpl : prod.replacement)
        out.push_back(tmpl.instantiate(trigger));
    return out;
}

namespace {

Expansion
instantiateExpansion(const DiseEngine &engine, const Production &prod,
                     const Inst &trigger)
{
    Expansion e;
    e.insts = engine.expand(prod, trigger);
    e.triggerCopy.reserve(prod.replacement.size());
    for (const auto &tmpl : prod.replacement)
        e.triggerCopy.push_back(tmpl.triggerCopy);
    return e;
}

} // namespace

DiseEngine::ExpansionRef
DiseEngine::expandCached(int slot, const Inst &trigger)
{
    const Production &prod = *slotProduction(slot);
    if (!memoize_ || !cfg_.expansionMemoEntries)
        return std::make_shared<const Expansion>(
            instantiateExpansion(*this, prod, trigger));

    ExpKey key{slots_[slot].id, trigger};
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;
    if (memo_.size() >= cfg_.expansionMemoEntries)
        memo_.clear();
    auto seq = std::make_shared<const Expansion>(
        instantiateExpansion(*this, prod, trigger));
    memo_.emplace(std::move(key), seq);
    return seq;
}

} // namespace dise
