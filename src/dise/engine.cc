#include "dise/engine.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

DiseEngine::DiseEngine(const DiseEngineConfig &cfg)
    : cfg_(cfg), slots_(cfg.patternTableEntries), stats_("dise")
{
    unsigned numLines = cfg_.replacementTableInsts / cfg_.replacementLineInsts;
    DISE_ASSERT(numLines % cfg_.replacementTableAssoc == 0,
                "replacement table geometry");
    rtLines_.resize(numLines);
}

ProductionId
DiseEngine::addProduction(Production p)
{
    for (auto &slot : slots_) {
        if (!slot.valid) {
            slot.valid = true;
            slot.id = nextId_++;
            slot.prod = std::move(p);
            return slot.id;
        }
    }
    fatal("DISE pattern table full (", cfg_.patternTableEntries,
          " entries)");
}

void
DiseEngine::removeProduction(ProductionId id)
{
    for (auto &slot : slots_) {
        if (slot.valid && slot.id == id) {
            slot.valid = false;
            return;
        }
    }
    warn("removeProduction: no production with id ", id);
}

void
DiseEngine::clear()
{
    for (auto &slot : slots_)
        slot.valid = false;
}

size_t
DiseEngine::productionCount() const
{
    size_t n = 0;
    for (const auto &slot : slots_)
        n += slot.valid;
    return n;
}

const Production *
DiseEngine::production(ProductionId id) const
{
    for (const auto &slot : slots_)
        if (slot.valid && slot.id == id)
            return &slot.prod;
    return nullptr;
}

const Production *
DiseEngine::matchFunctional(const Inst &inst, Addr pc) const
{
    if (!enabled_)
        return nullptr;
    const Production *best = nullptr;
    unsigned bestSpec = 0;
    for (const auto &slot : slots_) {
        if (!slot.valid || !slot.prod.pattern.matches(inst, pc))
            continue;
        unsigned spec = slot.prod.pattern.specificity();
        if (!best || spec > bestSpec) {
            best = &slot.prod;
            bestSpec = spec;
        }
    }
    return best;
}

unsigned
DiseEngine::rtTouch(ProductionId id, size_t seqLen)
{
    unsigned sets =
        rtLines_.size() / cfg_.replacementTableAssoc;
    unsigned linesNeeded =
        (seqLen + cfg_.replacementLineInsts - 1) / cfg_.replacementLineInsts;
    unsigned stall = 0;
    for (unsigned i = 0; i < linesNeeded; ++i) {
        ++rtClock_;
        uint64_t lineKey = (static_cast<uint64_t>(id) << 8) | i;
        unsigned set = lineKey % sets;
        RtLine *base = &rtLines_[set * cfg_.replacementTableAssoc];
        RtLine *victim = nullptr;
        bool hit = false;
        for (unsigned w = 0; w < cfg_.replacementTableAssoc; ++w) {
            RtLine &line = base[w];
            if (line.valid && line.tag == lineKey) {
                line.lastUse = rtClock_;
                hit = true;
                break;
            }
            if (!victim || !line.valid ||
                (victim->valid && line.lastUse < victim->lastUse)) {
                victim = &line;
            }
        }
        if (!hit) {
            stats_.inc("rt_misses");
            stall += cfg_.replacementMissPenalty;
            victim->valid = true;
            victim->tag = lineKey;
            victim->lastUse = rtClock_;
        }
    }
    return stall;
}

MatchResult
DiseEngine::match(const Inst &inst, Addr pc)
{
    MatchResult res;
    const Production *prod = matchFunctional(inst, pc);
    if (!prod)
        return res;

    stats_.inc("matches");
    ProductionId id = 0;
    for (const auto &slot : slots_) {
        if (slot.valid && &slot.prod == prod) {
            id = slot.id;
            break;
        }
    }
    res.production = prod;
    res.stallCycles = rtTouch(id, prod->replacement.size());
    return res;
}

std::vector<Inst>
DiseEngine::expand(const Production &prod, const Inst &trigger) const
{
    std::vector<Inst> out;
    out.reserve(prod.replacement.size());
    for (const auto &tmpl : prod.replacement)
        out.push_back(tmpl.instantiate(trigger));
    return out;
}

} // namespace dise
