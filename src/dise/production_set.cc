#include "dise/production_set.hh"

#include "common/logging.hh"

namespace dise {

void
ProductionSet::add(Production p)
{
    DISE_ASSERT(!installed(),
                "cannot stage into an installed production set '",
                name_, "'");
    prods_.push_back(std::move(p));
}

bool
ProductionSet::install(DiseEngine &engine, std::string *err)
{
    DISE_ASSERT(!installed(), "production set '", name_,
                "' is already installed");
    size_t free = engine.patternCapacity() - engine.productionCount();
    if (prods_.size() > free) {
        if (err)
            *err = "pattern table cannot hold production set '" +
                   name_ + "' (" + std::to_string(prods_.size()) +
                   " productions, " + std::to_string(free) +
                   " free slots)";
        return false;
    }
    ids_.reserve(prods_.size());
    slots_.reserve(prods_.size());
    for (const Production &p : prods_) {
        ProductionId id = engine.addProduction(p);
        ids_.push_back(id);
        slots_.push_back(engine.slotOf(id));
    }
    return true;
}

bool
ProductionSet::installAt(DiseEngine &engine,
                         const std::vector<int> &slots, std::string *err)
{
    DISE_ASSERT(!installed(), "production set '", name_,
                "' is already installed");
    if (slots.size() != prods_.size()) {
        if (err)
            *err = "production set '" + name_ + "' has " +
                   std::to_string(prods_.size()) + " productions but " +
                   std::to_string(slots.size()) + " target slots";
        return false;
    }
    for (int slot : slots) {
        if (engine.idAt(slot) != 0) {
            if (err)
                *err = "pattern-table slot " + std::to_string(slot) +
                       " is occupied";
            return false;
        }
    }
    ids_.reserve(prods_.size());
    for (size_t i = 0; i < prods_.size(); ++i)
        ids_.push_back(engine.addProductionAt(prods_[i], slots[i]));
    slots_ = slots;
    return true;
}

void
ProductionSet::remove(DiseEngine &engine)
{
    for (ProductionId id : ids_)
        engine.removeProduction(id);
    ids_.clear();
    slots_.clear();
}

} // namespace dise
