/**
 * @file
 * DISE pattern specifications.
 *
 * A pattern inspects a single fetched instruction (peephole matching,
 * per the DISE papers): any combination of operation class, exact
 * opcode, base-register identity (the paper's T.RS==sp example), PC,
 * and codeword id. When several patterns match, the most specific one
 * (most specified fields) wins.
 */

#ifndef DISE_DISE_PATTERN_HH
#define DISE_DISE_PATTERN_HH

#include <optional>
#include <string>

#include "isa/inst.hh"

namespace dise {

/** A single-instruction match specification. */
struct Pattern
{
    std::optional<OpClass> opclass;
    std::optional<Opcode> opcode;
    /** Matches the base register of memory-format instructions. */
    std::optional<RegId> baseReg;
    /** Exact-PC trigger (the hardware-breakpoint-register analog). */
    std::optional<Addr> pc;
    /** Matches CODEWORD instructions carrying this id. */
    std::optional<int64_t> codewordId;

    /** Number of specified fields; higher overrides lower. */
    unsigned specificity() const;

    /** Does @p inst fetched from @p instPc satisfy this pattern? */
    bool matches(const Inst &inst, Addr instPc) const;

    /** Human-readable form (for logs and tests). */
    std::string str() const;

    /** @name Convenience factories */
    ///@{
    static Pattern forClass(OpClass cls);
    static Pattern forOpcode(Opcode op);
    static Pattern forPc(Addr pc);
    static Pattern forCodeword(int64_t id);
    ///@}
};

} // namespace dise

#endif // DISE_DISE_PATTERN_HH
