/**
 * @file
 * The OS-mediated DISE controller.
 *
 * The paper wraps the raw engine in two abstraction layers: a physical
 * controller that virtualizes internal format/capacity, and an OS
 * policy that lets applications create productions for their own code
 * stream freely but reserves cross-process productions for trusted
 * entities (like a debugger operating on its debuggee). This class
 * models that access-control seam.
 */

#ifndef DISE_DISE_CONTROLLER_HH
#define DISE_DISE_CONTROLLER_HH

#include "dise/engine.hh"

namespace dise {

/** Identity presented to the controller. */
struct DiseClient
{
    int pid = 0;       ///< owning process
    bool trusted = false; ///< may act on other processes (debuggers)
};

class DiseController
{
  public:
    explicit DiseController(DiseEngine &engine, int ownerPid)
        : engine_(engine), ownerPid_(ownerPid)
    {
    }

    /**
     * Install a production on behalf of @p client targeting process
     * @p targetPid. Applications may instrument themselves; only
     * trusted clients may instrument others. Returns 0 on policy
     * rejection.
     */
    ProductionId
    install(const DiseClient &client, int targetPid, Production p)
    {
        if (!allowed(client, targetPid))
            return 0;
        if (targetPid != ownerPid_)
            return 0; // this controller fronts a single engine/process
        return engine_.addProduction(std::move(p));
    }

    /** Remove a production, subject to the same policy. */
    bool
    remove(const DiseClient &client, int targetPid, ProductionId id)
    {
        if (!allowed(client, targetPid) || targetPid != ownerPid_)
            return false;
        engine_.removeProduction(id);
        return true;
    }

    static bool
    allowed(const DiseClient &client, int targetPid)
    {
        return client.trusted || client.pid == targetPid;
    }

  private:
    DiseEngine &engine_;
    int ownerPid_;
};

} // namespace dise

#endif // DISE_DISE_CONTROLLER_HH
