#include "dise/template.hh"

#include "common/logging.hh"

namespace dise {

RegId
TRegField::resolve(const Inst &trigger) const
{
    switch (kind) {
      case Kind::Lit:
        return lit;
      case Kind::TrigRa:
        return trigger.ra;
      case Kind::TrigRb:
        return trigger.rb;
      case Kind::TrigRc:
        return trigger.rc;
    }
    panic("bad template register field");
}

int64_t
TImmField::resolve(const Inst &trigger) const
{
    switch (kind) {
      case Kind::Lit:
        return lit;
      case Kind::TrigImm:
        return trigger.imm;
    }
    panic("bad template immediate field");
}

Inst
TemplateInst::instantiate(const Inst &trigger) const
{
    if (triggerCopy)
        return trigger;
    Inst inst;
    inst.op = op;
    inst.ra = ra.resolve(trigger);
    inst.rb = rb.resolve(trigger);
    inst.rc = rc.resolve(trigger);
    inst.imm = imm.resolve(trigger);
    return inst;
}

TemplateInst
TemplateInst::trigInst()
{
    TemplateInst t;
    t.triggerCopy = true;
    return t;
}

TemplateInst
TemplateInst::fixed(const Inst &inst)
{
    TemplateInst t;
    t.op = inst.op;
    t.ra = TRegField::reg(inst.ra);
    t.rb = TRegField::reg(inst.rb);
    t.rc = TRegField::reg(inst.rc);
    t.imm = TImmField::imm(inst.imm);
    return t;
}

TemplateInst
TemplateInst::op3(Opcode o, TRegField a, TRegField b, TRegField c)
{
    TemplateInst t;
    t.op = o;
    t.ra = a;
    t.rb = b;
    t.rc = c;
    return t;
}

TemplateInst
TemplateInst::opImm(Opcode o, TRegField a, int64_t imm, TRegField c)
{
    TemplateInst t;
    t.op = o;
    t.ra = a;
    t.rc = c;
    t.imm = TImmField::imm(imm);
    return t;
}

TemplateInst
TemplateInst::mem(Opcode o, TRegField a, TImmField disp, TRegField b)
{
    TemplateInst t;
    t.op = o;
    t.ra = a;
    t.rb = b;
    t.imm = disp;
    return t;
}

} // namespace dise
