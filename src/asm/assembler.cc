#include "asm/assembler.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace dise {

namespace {

/** Split an address into (hi, lo) such that (hi << 14) + sext(lo) == addr,
 *  with lo a signed 14-bit field. Used by the la/li expansions. */
void
splitAddr(uint64_t addr, int64_t &hi, int64_t &lo)
{
    lo = sext(addr & 0x3fff, 14);
    hi = static_cast<int64_t>(addr - lo) >> 14;
    DISE_ASSERT((hi << 14) + lo == static_cast<int64_t>(addr),
                "address split failed for 0x", std::hex, addr);
    DISE_ASSERT(fitsSigned(hi, 14),
                "address out of la/li range: 0x", std::hex, addr);
}

/** Size in bytes that a text item occupies. */
uint64_t
textItemSize(const AsmItem &item)
{
    switch (item.kind) {
      case AsmItem::Kind::Inst:
        return 4;
      case AsmItem::Kind::La:
        return 12; // lda + sll + lda
      case AsmItem::Kind::Label:
      case AsmItem::Kind::Stmt:
        return 0;
      default:
        panic("item kind not valid in text section");
    }
}

void
appendWord(std::vector<uint8_t> &bytes, uint32_t w)
{
    bytes.push_back(w & 0xff);
    bytes.push_back((w >> 8) & 0xff);
    bytes.push_back((w >> 16) & 0xff);
    bytes.push_back((w >> 24) & 0xff);
}

} // namespace

Assembler::Assembler()
{
    unit_.text.name = "text";
    unit_.data.name = "data";
}

AsmSection &
Assembler::cur()
{
    return inText_ ? unit_.text : unit_.data;
}

void
Assembler::pushItem(AsmItem item)
{
    cur().items.push_back(std::move(item));
}

void
Assembler::text(Addr base)
{
    unit_.text.base = base;
    inText_ = true;
}

void
Assembler::data(Addr base)
{
    unit_.data.base = base;
    inText_ = false;
}

void
Assembler::label(const std::string &name)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Label;
    item.label = name;
    pushItem(std::move(item));
}

void
Assembler::stmt(int line)
{
    DISE_ASSERT(inText_, "stmt marker outside text section");
    AsmItem item;
    item.kind = AsmItem::Kind::Stmt;
    item.line = line;
    pushItem(std::move(item));
}

std::string
Assembler::genLabel(const std::string &prefix)
{
    return "." + prefix + std::to_string(nextLabel_++);
}

void
Assembler::quad(uint64_t v)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Bytes;
    for (int i = 0; i < 8; ++i)
        item.bytes.push_back((v >> (8 * i)) & 0xff);
    pushItem(std::move(item));
}

void
Assembler::long_(uint32_t v)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Bytes;
    for (int i = 0; i < 4; ++i)
        item.bytes.push_back((v >> (8 * i)) & 0xff);
    pushItem(std::move(item));
}

void
Assembler::word(uint16_t v)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Bytes;
    item.bytes.push_back(v & 0xff);
    item.bytes.push_back(v >> 8);
    pushItem(std::move(item));
}

void
Assembler::byte(uint8_t v)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Bytes;
    item.bytes.push_back(v);
    pushItem(std::move(item));
}

void
Assembler::space(uint64_t n)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Space;
    item.size = n;
    pushItem(std::move(item));
}

void
Assembler::align(uint64_t boundary)
{
    DISE_ASSERT(isPow2(boundary), "alignment must be a power of two");
    AsmItem item;
    item.kind = AsmItem::Kind::Align;
    item.size = boundary;
    pushItem(std::move(item));
}

void
Assembler::blob(std::vector<uint8_t> bytes)
{
    AsmItem item;
    item.kind = AsmItem::Kind::Bytes;
    item.bytes = std::move(bytes);
    pushItem(std::move(item));
}

void
Assembler::quadLabel(const std::string &lbl)
{
    DISE_ASSERT(!inText_, "quadLabel belongs in the data section");
    AsmItem item;
    item.kind = AsmItem::Kind::QuadLabel;
    item.label = lbl;
    pushItem(std::move(item));
}

void
Assembler::emit(const Inst &inst)
{
    DISE_ASSERT(inText_, "instruction outside text section");
    AsmItem item;
    item.kind = AsmItem::Kind::Inst;
    item.inst = inst;
    pushItem(std::move(item));
}

void
Assembler::emitBranch(const Inst &inst, const std::string &target)
{
    DISE_ASSERT(inText_, "instruction outside text section");
    AsmItem item;
    item.kind = AsmItem::Kind::Inst;
    item.inst = inst;
    item.label = target;
    pushItem(std::move(item));
}

// ALU mnemonics.
#define DISE_ALU(mnem, OPC)                                                  \
    void Assembler::mnem(RegId a, RegId b, RegId c)                          \
    {                                                                        \
        emit(makeOp(Opcode::OPC, a, b, c));                                  \
    }                                                                        \
    void Assembler::mnem(RegId a, uint8_t imm, RegId c)                      \
    {                                                                        \
        emit(makeOpImm(Opcode::OPC##_I, a, imm, c));                         \
    }

DISE_ALU(addq, ADDQ)
DISE_ALU(subq, SUBQ)
DISE_ALU(mulq, MULQ)
DISE_ALU(and_, AND)
DISE_ALU(bis, BIS)
DISE_ALU(xor_, XOR)
DISE_ALU(bic, BIC)
DISE_ALU(sll, SLL)
DISE_ALU(srl, SRL)
DISE_ALU(sra, SRA)
DISE_ALU(cmpeq, CMPEQ)
DISE_ALU(cmplt, CMPLT)
DISE_ALU(cmple, CMPLE)
DISE_ALU(cmpult, CMPULT)
DISE_ALU(cmpule, CMPULE)
#undef DISE_ALU

void
Assembler::mov(RegId src, RegId dst)
{
    emit(makeOp(Opcode::BIS, src, src, dst));
}

// Memory mnemonics.
#define DISE_MEM(mnem, OPC)                                                  \
    void Assembler::mnem(RegId ra, int64_t disp, RegId rb)                   \
    {                                                                        \
        emit(makeMem(Opcode::OPC, ra, disp, rb));                            \
    }

DISE_MEM(ldq, LDQ)
DISE_MEM(ldl, LDL)
DISE_MEM(ldw, LDW)
DISE_MEM(ldb, LDB)
DISE_MEM(stq, STQ)
DISE_MEM(stl, STL)
DISE_MEM(stw, STW)
DISE_MEM(stb, STB)
DISE_MEM(lda, LDA)
DISE_MEM(ldah, LDAH)
#undef DISE_MEM

// Branch mnemonics.
#define DISE_BR(mnem, OPC)                                                   \
    void Assembler::mnem(RegId ra, const std::string &target)                \
    {                                                                        \
        emitBranch(makeBranch(Opcode::OPC, ra, 0), target);                  \
    }

DISE_BR(beq, BEQ)
DISE_BR(bne, BNE)
DISE_BR(blt, BLT)
DISE_BR(ble, BLE)
DISE_BR(bgt, BGT)
DISE_BR(bge, BGE)
#undef DISE_BR

void
Assembler::br(const std::string &target)
{
    emitBranch(makeBranch(Opcode::BR, reg::zero, 0), target);
}

void
Assembler::bsr(RegId link, const std::string &target)
{
    emitBranch(makeBranch(Opcode::BSR, link, 0), target);
}

void
Assembler::jmp(RegId rb)
{
    emit(makeJump(Opcode::JMP, reg::zero, rb));
}

void
Assembler::jsr(RegId link, RegId rb)
{
    emit(makeJump(Opcode::JSR, link, rb));
}

void
Assembler::ret(RegId rb)
{
    emit(makeJump(Opcode::RET, reg::zero, rb));
}

void
Assembler::syscall(int64_t code)
{
    emit(makeSystem(Opcode::SYSCALL, code));
}

void
Assembler::trap(int64_t code)
{
    emit(makeSystem(Opcode::TRAP, code));
}

void
Assembler::ctrap(RegId cond, int64_t code)
{
    emit(makeCtrap(cond, code));
}

void
Assembler::halt()
{
    emit(makeNullary(Opcode::HALT));
}

void
Assembler::nop()
{
    emit(makeNullary(Opcode::NOP));
}

void
Assembler::codeword(int64_t id)
{
    emit(makeSystem(Opcode::CODEWORD, id));
}

void
Assembler::d_ret()
{
    emit(makeNullary(Opcode::D_RET));
}

void
Assembler::d_mfr(RegId rd, RegId diseSrc)
{
    emit(makeDiseMove(Opcode::D_MFR, rd, diseSrc));
}

void
Assembler::d_mtr(RegId diseDst, RegId rs)
{
    emit(makeDiseMove(Opcode::D_MTR, rs, diseDst));
}

void
Assembler::li(RegId rd, uint64_t value)
{
    int64_t sv = static_cast<int64_t>(value);
    if (fitsSigned(sv, 14)) {
        lda(rd, sv, reg::zero);
        return;
    }
    if (fitsSigned(sv, 27)) {
        int64_t hi, lo;
        splitAddr(value, hi, lo);
        lda(rd, hi, reg::zero);
        sll(rd, 14, rd);
        lda(rd, lo, rd);
        return;
    }
    // General 64-bit constant: build bytewise from the MSB.
    bool started = false;
    for (int i = 7; i >= 0; --i) {
        uint8_t b = (value >> (8 * i)) & 0xff;
        if (!started) {
            if (b == 0 && i > 0)
                continue;
            lda(rd, b, reg::zero);
            started = true;
        } else {
            sll(rd, 8, rd);
            if (b)
                bis(rd, b, rd);
        }
    }
}

void
Assembler::la(RegId rd, const std::string &lbl)
{
    DISE_ASSERT(inText_, "la outside text section");
    AsmItem item;
    item.kind = AsmItem::Kind::La;
    item.reg = rd;
    item.label = lbl;
    pushItem(std::move(item));
}

Program
Assembler::finish(const std::string &entryLabel)
{
    unit_.entryLabel = entryLabel;
    return assemble(unit_);
}

Program
Assembler::assemble(const AsmUnit &unit)
{
    Program prog;
    prog.source = std::make_shared<AsmUnit>(unit);

    // Pass 1: lay out addresses and collect symbols.
    Addr pc = unit.text.base;
    for (const auto &item : unit.text.items) {
        if (item.kind == AsmItem::Kind::Label) {
            auto [it, fresh] = prog.symbols.emplace(item.label, pc);
            if (!fresh)
                fatal("duplicate label '", item.label, "'");
        } else if (item.kind == AsmItem::Kind::Stmt) {
            prog.stmtBoundaries.push_back(pc);
            prog.lineTable[pc] = item.line;
        }
        pc += textItemSize(item);
    }

    Addr dp = unit.data.base;
    for (const auto &item : unit.data.items) {
        switch (item.kind) {
          case AsmItem::Kind::Label: {
            auto [it, fresh] = prog.symbols.emplace(item.label, dp);
            if (!fresh)
                fatal("duplicate label '", item.label, "'");
            break;
          }
          case AsmItem::Kind::Bytes:
            dp += item.bytes.size();
            break;
          case AsmItem::Kind::Space:
            dp += item.size;
            break;
          case AsmItem::Kind::Align:
            dp = alignUp(dp, item.size);
            break;
          case AsmItem::Kind::QuadLabel:
            dp += 8;
            break;
          default:
            fatal("instruction in data section");
        }
    }

    // Pass 2: emit text bytes with label fixups.
    Program::Segment textSeg;
    textSeg.name = "text";
    textSeg.base = unit.text.base;
    textSeg.executable = true;
    pc = unit.text.base;
    for (const auto &item : unit.text.items) {
        switch (item.kind) {
          case AsmItem::Kind::Inst: {
            Inst inst = item.inst;
            if (!item.label.empty()) {
                Addr target = prog.symbol(item.label);
                int64_t disp =
                    (static_cast<int64_t>(target) -
                     static_cast<int64_t>(pc) - 4) / 4;
                if (!fitsSigned(disp, BranchDispBits))
                    fatal("branch to '", item.label, "' out of range");
                inst.imm = disp;
            }
            appendWord(textSeg.bytes, encode(inst));
            pc += 4;
            break;
          }
          case AsmItem::Kind::La: {
            Addr target = prog.symbol(item.label);
            int64_t hi, lo;
            splitAddr(target, hi, lo);
            appendWord(textSeg.bytes,
                       encode(makeMem(Opcode::LDA, item.reg, hi,
                                      reg::zero)));
            appendWord(textSeg.bytes,
                       encode(makeOpImm(Opcode::SLL_I, item.reg, 14,
                                        item.reg)));
            appendWord(textSeg.bytes,
                       encode(makeMem(Opcode::LDA, item.reg, lo,
                                      item.reg)));
            pc += 12;
            break;
          }
          case AsmItem::Kind::Label:
          case AsmItem::Kind::Stmt:
            break;
          default:
            fatal("data directive in text section");
        }
    }

    // Pass 2: emit data bytes.
    Program::Segment dataSeg;
    dataSeg.name = "data";
    dataSeg.base = unit.data.base;
    dp = unit.data.base;
    for (const auto &item : unit.data.items) {
        switch (item.kind) {
          case AsmItem::Kind::Bytes:
            dataSeg.bytes.insert(dataSeg.bytes.end(), item.bytes.begin(),
                                 item.bytes.end());
            dp += item.bytes.size();
            break;
          case AsmItem::Kind::Space:
            dataSeg.bytes.insert(dataSeg.bytes.end(), item.size, 0);
            dp += item.size;
            break;
          case AsmItem::Kind::Align: {
            Addr aligned = alignUp(dp, item.size);
            dataSeg.bytes.insert(dataSeg.bytes.end(), aligned - dp, 0);
            dp = aligned;
            break;
          }
          case AsmItem::Kind::QuadLabel: {
            uint64_t v = prog.symbol(item.label);
            for (int i = 0; i < 8; ++i)
                dataSeg.bytes.push_back((v >> (8 * i)) & 0xff);
            dp += 8;
            break;
          }
          case AsmItem::Kind::Label:
            break;
          default:
            fatal("instruction in data section");
        }
    }

    if (!textSeg.bytes.empty())
        prog.segments.push_back(std::move(textSeg));
    if (!dataSeg.bytes.empty())
        prog.segments.push_back(std::move(dataSeg));

    if (!unit.entryLabel.empty())
        prog.entry = prog.symbol(unit.entryLabel);
    return prog;
}

} // namespace dise
