#include "asm/program.hh"

#include "common/logging.hh"

namespace dise {

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '", name, "'");
    return it->second;
}

bool
Program::contains(Addr addr) const
{
    for (const auto &seg : segments) {
        if (addr >= seg.base && addr < seg.base + seg.bytes.size())
            return true;
    }
    return false;
}

Addr
Program::textEnd() const
{
    Addr end = 0;
    for (const auto &seg : segments)
        if (seg.executable)
            end = std::max(end, seg.base + seg.bytes.size());
    return end;
}

uint64_t
Program::textWords() const
{
    uint64_t words = 0;
    for (const auto &seg : segments)
        if (seg.executable)
            words += seg.bytes.size() / 4;
    return words;
}

} // namespace dise
