/**
 * @file
 * Programmatic assembler for the Alpha-like ISA.
 *
 * Workloads, tests, and the debugger's code generators build programs
 * through this API. Mnemonic methods mirror the paper's assembly
 * syntax: the destination is the right-most operand
 * ("addq sp, 8, dr0" is a.addq(sp, 8, dr0)).
 */

#ifndef DISE_ASM_ASSEMBLER_HH
#define DISE_ASM_ASSEMBLER_HH

#include <cstdint>
#include <string>

#include "asm/program.hh"

namespace dise {

/** Builds an AsmUnit and assembles it into a Program. */
class Assembler
{
  public:
    Assembler();

    /** @name Section control */
    ///@{
    void text(Addr base);
    void data(Addr base);
    ///@}

    /** @name Labels and line info */
    ///@{
    void label(const std::string &name);
    /** Mark a source-statement boundary at the current text position. */
    void stmt(int line = 0);
    /** Unique generated label with the given prefix. */
    std::string genLabel(const std::string &prefix = "L");
    ///@}

    /** @name Data directives */
    ///@{
    void quad(uint64_t v);
    void long_(uint32_t v);
    void word(uint16_t v);
    void byte(uint8_t v);
    void space(uint64_t n);
    void align(uint64_t boundary);
    /** Emit a pre-built byte blob (e.g. a generated input data set). */
    void blob(std::vector<uint8_t> bytes);
    /** Emit the 8-byte address of @p lbl (e.g. jump tables). */
    void quadLabel(const std::string &lbl);
    ///@}

    /** Emit a raw instruction (must be encodable). */
    void emit(const Inst &inst);
    /** Emit an instruction whose branch target is a label. */
    void emitBranch(const Inst &inst, const std::string &target);

    /** @name ALU (register and 8-bit-literal forms) */
    ///@{
    void addq(RegId a, RegId b, RegId c);
    void addq(RegId a, uint8_t imm, RegId c);
    void subq(RegId a, RegId b, RegId c);
    void subq(RegId a, uint8_t imm, RegId c);
    void mulq(RegId a, RegId b, RegId c);
    void mulq(RegId a, uint8_t imm, RegId c);
    void and_(RegId a, RegId b, RegId c);
    void and_(RegId a, uint8_t imm, RegId c);
    void bis(RegId a, RegId b, RegId c);
    void bis(RegId a, uint8_t imm, RegId c);
    void xor_(RegId a, RegId b, RegId c);
    void xor_(RegId a, uint8_t imm, RegId c);
    void bic(RegId a, RegId b, RegId c);
    void bic(RegId a, uint8_t imm, RegId c);
    void sll(RegId a, RegId b, RegId c);
    void sll(RegId a, uint8_t imm, RegId c);
    void srl(RegId a, RegId b, RegId c);
    void srl(RegId a, uint8_t imm, RegId c);
    void sra(RegId a, RegId b, RegId c);
    void sra(RegId a, uint8_t imm, RegId c);
    void cmpeq(RegId a, RegId b, RegId c);
    void cmpeq(RegId a, uint8_t imm, RegId c);
    void cmplt(RegId a, RegId b, RegId c);
    void cmplt(RegId a, uint8_t imm, RegId c);
    void cmple(RegId a, RegId b, RegId c);
    void cmple(RegId a, uint8_t imm, RegId c);
    void cmpult(RegId a, RegId b, RegId c);
    void cmpult(RegId a, uint8_t imm, RegId c);
    void cmpule(RegId a, RegId b, RegId c);
    void cmpule(RegId a, uint8_t imm, RegId c);
    void mov(RegId src, RegId dst);
    ///@}

    /** @name Memory */
    ///@{
    void ldq(RegId ra, int64_t disp, RegId rb);
    void ldl(RegId ra, int64_t disp, RegId rb);
    void ldw(RegId ra, int64_t disp, RegId rb);
    void ldb(RegId ra, int64_t disp, RegId rb);
    void stq(RegId ra, int64_t disp, RegId rb);
    void stl(RegId ra, int64_t disp, RegId rb);
    void stw(RegId ra, int64_t disp, RegId rb);
    void stb(RegId ra, int64_t disp, RegId rb);
    void lda(RegId ra, int64_t disp, RegId rb);
    void ldah(RegId ra, int64_t disp, RegId rb);
    ///@}

    /** @name Control */
    ///@{
    void beq(RegId ra, const std::string &target);
    void bne(RegId ra, const std::string &target);
    void blt(RegId ra, const std::string &target);
    void ble(RegId ra, const std::string &target);
    void bgt(RegId ra, const std::string &target);
    void bge(RegId ra, const std::string &target);
    void br(const std::string &target);
    void bsr(RegId link, const std::string &target);
    void jmp(RegId rb);
    void jsr(RegId link, RegId rb);
    void ret(RegId rb);
    ///@}

    /** @name System */
    ///@{
    void syscall(int64_t code);
    void trap(int64_t code = 0);
    void ctrap(RegId cond, int64_t code = 0);
    void halt();
    void nop();
    void codeword(int64_t id);
    void d_ret();
    void d_mfr(RegId rd, RegId diseSrc);
    void d_mtr(RegId diseDst, RegId rs);
    ///@}

    /** @name Pseudo-instructions */
    ///@{
    /** Load an arbitrary 64-bit constant (expands as needed). */
    void li(RegId rd, uint64_t value);
    /** Load the address of a label (ldah+lda pair, re-patchable). */
    void la(RegId rd, const std::string &lbl);
    ///@}

    /** Number of text items emitted so far (for test introspection). */
    size_t textItems() const { return unit_.text.items.size(); }

    /** Assemble into a loadable Program. */
    Program finish(const std::string &entryLabel);

    /** Assemble a pre-built IR unit (used by the binary rewriter). */
    static Program assemble(const AsmUnit &unit);

  private:
    AsmSection &cur();
    void pushItem(AsmItem item);

    AsmUnit unit_;
    bool inText_ = true;
    uint64_t nextLabel_ = 0;
};

} // namespace dise

#endif // DISE_ASM_ASSEMBLER_HH
