/**
 * @file
 * Loadable program images and the assembler IR they are built from.
 *
 * A Program retains its assembly-level intermediate representation
 * (AsmUnit) so that the static-binary-rewriting debugger backend can
 * insert instrumentation and re-assemble — the "wholesale
 * re-compilation" style of Wahbe et al. that the paper compares
 * against. The statement table drives the single-stepping backend, the
 * symbol table drives watchpoint address resolution.
 */

#ifndef DISE_ASM_PROGRAM_HH
#define DISE_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace dise {

/** One item of assembler IR. */
struct AsmItem
{
    enum class Kind : uint8_t {
        Inst,      ///< one instruction; target may hold a label
        La,        ///< load label address into reg (expands to ldah+lda)
        QuadLabel, ///< 8 data bytes holding a label's address
        Label,     ///< define a label here
        Stmt,      ///< source statement boundary (line table entry)
        Bytes,     ///< literal data bytes
        Space,     ///< zero-filled gap
        Align,     ///< align to power-of-two boundary
    };

    Kind kind;
    Inst inst{};               ///< Kind::Inst
    RegId reg{};               ///< Kind::La destination
    std::string label;         ///< target/defined label name
    std::vector<uint8_t> bytes; ///< Kind::Bytes payload
    uint64_t size = 0;         ///< Kind::Space length / Kind::Align amount
    int line = 0;              ///< Kind::Stmt source line number
};

/** A stream of IR items plus its base address. */
struct AsmSection
{
    std::string name;
    Addr base = 0;
    std::vector<AsmItem> items;
};

/** Full assembler IR for a compilation unit. */
struct AsmUnit
{
    AsmSection text;
    AsmSection data;
    std::string entryLabel;
};

/** A loadable memory image. */
struct Program
{
    struct Segment
    {
        std::string name;
        Addr base = 0;
        std::vector<uint8_t> bytes;
        bool executable = false;
    };

    std::vector<Segment> segments;
    Addr entry = 0;

    /** label -> address */
    std::map<std::string, Addr> symbols;

    /** Sorted PCs of source-statement boundaries (the "line table"). */
    std::vector<Addr> stmtBoundaries;

    /** PC -> source line, for debugger display. */
    std::map<Addr, int> lineTable;

    /** The IR this image was assembled from (for the binary rewriter). */
    std::shared_ptr<const AsmUnit> source;

    /** Look up a symbol; fatal() if missing. */
    Addr symbol(const std::string &name) const;

    /** True if some segment contains @p addr. */
    bool contains(Addr addr) const;

    /** End address (base+size) of the text segment. */
    Addr textEnd() const;

    /** Total instruction words in executable segments. */
    uint64_t textWords() const;
};

} // namespace dise

#endif // DISE_ASM_PROGRAM_HH
