#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace dise {

namespace {

constexpr OpInfo kTable[] = {
    // name      cls              fmt                 bytes dise  enc
    {"ldq",     OpClass::Load,    Format::Memory,     8, false, true},
    {"ldl",     OpClass::Load,    Format::Memory,     4, false, true},
    {"ldw",     OpClass::Load,    Format::Memory,     2, false, true},
    {"ldb",     OpClass::Load,    Format::Memory,     1, false, true},
    {"lda",     OpClass::IntAlu,  Format::Memory,     0, false, true},
    {"ldah",    OpClass::IntAlu,  Format::Memory,     0, false, true},
    {"stq",     OpClass::Store,   Format::Memory,     8, false, true},
    {"stl",     OpClass::Store,   Format::Memory,     4, false, true},
    {"stw",     OpClass::Store,   Format::Memory,     2, false, true},
    {"stb",     OpClass::Store,   Format::Memory,     1, false, true},
    {"addq",    OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"subq",    OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"mulq",    OpClass::IntMul,  Format::Operate,    0, false, true},
    {"and",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"bis",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"xor",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"bic",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"sll",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"srl",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"sra",     OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"cmpeq",   OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"cmplt",   OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"cmple",   OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"cmpult",  OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"cmpule",  OpClass::IntAlu,  Format::Operate,    0, false, true},
    {"addqi",   OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"subqi",   OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"mulqi",   OpClass::IntMul,  Format::OperateImm, 0, false, true},
    {"andi",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"bisi",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"xori",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"bici",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"slli",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"srli",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"srai",    OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"cmpeqi",  OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"cmplti",  OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"cmplei",  OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"cmpulti", OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"cmpulei", OpClass::IntAlu,  Format::OperateImm, 0, false, true},
    {"beq",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"bne",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"blt",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"ble",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"bgt",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"bge",     OpClass::CtrlBr,  Format::Branch,     0, false, true},
    {"br",      OpClass::CtrlJmp, Format::Branch,     0, false, true},
    {"bsr",     OpClass::CtrlJmp, Format::Branch,     0, false, true},
    {"jmp",     OpClass::CtrlJmp, Format::Jump,       0, false, true},
    {"jsr",     OpClass::CtrlJmp, Format::Jump,       0, false, true},
    {"ret",     OpClass::CtrlJmp, Format::Jump,       0, false, true},
    {"syscall", OpClass::Sys,     Format::System,     0, false, true},
    {"trap",    OpClass::Sys,     Format::System,     0, false, true},
    {"ctrap",   OpClass::Sys,     Format::Ctrap,      0, false, true},
    {"halt",    OpClass::Sys,     Format::Nullary,    0, false, true},
    {"nop",     OpClass::Sys,     Format::Nullary,    0, false, true},
    {"codeword",OpClass::Sys,     Format::System,     0, false, true},
    {"d_beq",   OpClass::DiseCtl, Format::DiseBranch, 0, true,  false},
    {"d_bne",   OpClass::DiseCtl, Format::DiseBranch, 0, true,  false},
    {"d_call",  OpClass::DiseCtl, Format::DiseCall,   0, true,  false},
    {"d_ccall", OpClass::DiseCtl, Format::DiseCall,   0, true,  false},
    {"d_ret",   OpClass::DiseCtl, Format::Nullary,    0, false, true},
    {"d_mfr",   OpClass::DiseCtl, Format::DiseMove,   0, false, true},
    {"d_mtr",   OpClass::DiseCtl, Format::DiseMove,   0, false, true},
};

static_assert(std::size(kTable) == NumOpcodes,
              "opcode metadata table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    DISE_ASSERT(idx < NumOpcodes, "bad opcode ", idx);
    return kTable[idx];
}

const char *
opName(Opcode op)
{
    return opInfo(op).name;
}

bool
isLoad(Opcode op)
{
    return opInfo(op).cls == OpClass::Load;
}

bool
isStore(Opcode op)
{
    return opInfo(op).cls == OpClass::Store;
}

bool
isCondBranch(Opcode op)
{
    return opInfo(op).cls == OpClass::CtrlBr;
}

bool
isControl(Opcode op)
{
    OpClass c = opInfo(op).cls;
    return c == OpClass::CtrlBr || c == OpClass::CtrlJmp;
}

} // namespace dise
