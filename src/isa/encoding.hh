/**
 * @file
 * 32-bit memory encoding of the ISA.
 *
 * Only "conventional" instructions have memory encodings; DISE-internal
 * opcodes (d_beq/d_bne/d_call/d_ccall) exist solely inside the DISE
 * engine's replacement table and are rejected by the encoder. d_ret,
 * d_mfr, and d_mtr are encodable because debugger-generated handler
 * functions, which live in ordinary text pages, contain them.
 *
 * Layout (bit 31 is the MSB):
 *   [31:24] opcode
 *   Operate:     [23:19] ra  [18:14] rb  [13:9] rc
 *   OperateImm:  [23:19] ra  [18:11] imm8  [10:6] rc
 *   Memory:      [23:19] ra  [18:14] rb  [13:0] disp14 (signed)
 *   Branch:      [23:19] ra  [18:0]  disp19 (signed words)
 *   Jump:        [23:19] ra  [18:14] rb
 *   System:      [23:0]  imm24
 *   Ctrap:       [23:19] ra  [18:0]  code19
 *   DiseMove:    [23:19] ra  [18:16] dise reg index
 */

#ifndef DISE_ISA_ENCODING_HH
#define DISE_ISA_ENCODING_HH

#include <cstdint>
#include <optional>

#include "isa/inst.hh"

namespace dise {

/** Displacement field widths, shared with the assembler's range checks. */
constexpr unsigned MemDispBits = 14;
constexpr unsigned BranchDispBits = 19;
constexpr unsigned SystemImmBits = 24;

/** Encode @p inst into a 32-bit word. panic()s on unencodable input. */
uint32_t encode(const Inst &inst);

/** True if @p inst can be represented in the 32-bit encoding. */
bool encodable(const Inst &inst);

/**
 * Decode a 32-bit word. Returns std::nullopt for illegal words (e.g.
 * wrong-path fetches of data); never panics on arbitrary input.
 */
std::optional<Inst> decode(uint32_t word);

} // namespace dise

#endif // DISE_ISA_ENCODING_HH
