/**
 * @file
 * Disassembler: renders an Inst in the paper's assembly syntax
 * (destination right-most, e.g. "addq sp, 8, dr0").
 */

#ifndef DISE_ISA_DISASM_HH
#define DISE_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace dise {

/** Disassemble one instruction. */
std::string disasm(const Inst &inst);

/** Disassemble with PC context (branch targets become absolute). */
std::string disasm(const Inst &inst, Addr pc);

} // namespace dise

#endif // DISE_ISA_DISASM_HH
