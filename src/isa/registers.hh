/**
 * @file
 * Register identifiers for the Alpha-like ISA, including the private DISE
 * register file that only replacement-sequence instructions (and the
 * d_mfr/d_mtr instructions of DISE-called functions) may name.
 */

#ifndef DISE_ISA_REGISTERS_HH
#define DISE_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace dise {

/** Number of architectural integer registers (r31 is hardwired zero). */
constexpr unsigned NumIntRegs = 32;
/** Number of private DISE registers (dr0..dr7). */
constexpr unsigned NumDiseRegs = 8;
/** Unified logical register space used by the renamer. */
constexpr unsigned NumLogicalRegs = NumIntRegs + NumDiseRegs;

/** Which register file an operand names. */
enum class RegKind : uint8_t { None, Int, Dise };

/** A register operand: file + index. */
struct RegId
{
    RegKind kind = RegKind::None;
    uint8_t idx = 0;

    constexpr bool valid() const { return kind != RegKind::None; }
    constexpr bool isZero() const
    {
        return kind == RegKind::Int && idx == NumIntRegs - 1;
    }
    constexpr bool operator==(const RegId &) const = default;

    /** Flat index into the unified logical space (renamer view). */
    constexpr unsigned
    flat() const
    {
        return kind == RegKind::Dise ? NumIntRegs + idx : idx;
    }
};

/** Architectural integer register rN. */
constexpr RegId
ir(unsigned n)
{
    return RegId{RegKind::Int, static_cast<uint8_t>(n)};
}

/** Private DISE register drN. */
constexpr RegId
dr(unsigned n)
{
    return RegId{RegKind::Dise, static_cast<uint8_t>(n)};
}

/** Conventional register aliases (Alpha-flavored calling convention). */
namespace reg {
constexpr RegId v0 = ir(0);
constexpr RegId t0 = ir(1), t1 = ir(2), t2 = ir(3), t3 = ir(4);
constexpr RegId t4 = ir(5), t5 = ir(6), t6 = ir(7), t7 = ir(8);
constexpr RegId s0 = ir(9), s1 = ir(10), s2 = ir(11), s3 = ir(12);
constexpr RegId s4 = ir(13), s5 = ir(14);
constexpr RegId fp = ir(15);
constexpr RegId a0 = ir(16), a1 = ir(17), a2 = ir(18), a3 = ir(19);
constexpr RegId a4 = ir(20), a5 = ir(21);
constexpr RegId t8 = ir(22), t9 = ir(23), t10 = ir(24), t11 = ir(25);
constexpr RegId ra = ir(26);
constexpr RegId t12 = ir(27);
constexpr RegId at = ir(28);
constexpr RegId gp = ir(29);
constexpr RegId sp = ir(30);
constexpr RegId zero = ir(31);
} // namespace reg

/** Human-readable register name ("t3", "sp", "dr2", ...). */
std::string regName(RegId r);

} // namespace dise

#endif // DISE_ISA_REGISTERS_HH
