#include "isa/disasm.hh"

#include <sstream>

namespace dise {

namespace {

std::string
render(const Inst &inst, bool havePc, Addr pc)
{
    std::ostringstream os;
    os << opName(inst.op);
    auto sep = [&, first = true]() mutable {
        os << (first ? " " : ", ");
        first = false;
    };
    switch (inst.info().fmt) {
      case Format::Operate:
        sep(); os << regName(inst.ra);
        sep(); os << regName(inst.rb);
        sep(); os << regName(inst.rc);
        break;
      case Format::OperateImm:
        sep(); os << regName(inst.ra);
        sep(); os << inst.imm;
        sep(); os << regName(inst.rc);
        break;
      case Format::Memory:
        sep(); os << regName(inst.ra);
        sep(); os << inst.imm << '(' << regName(inst.rb) << ')';
        break;
      case Format::Branch:
        if (inst.isCondBranch() || inst.op == Opcode::BSR) {
            sep(); os << regName(inst.ra);
        }
        sep();
        if (havePc)
            os << "0x" << std::hex << (pc + 4 + inst.imm * 4) << std::dec;
        else
            os << (inst.imm >= 0 ? "+" : "") << inst.imm;
        break;
      case Format::Jump:
        if (inst.op == Opcode::JSR) {
            sep(); os << regName(inst.ra);
        }
        sep(); os << '(' << regName(inst.rb) << ')';
        break;
      case Format::System:
        sep(); os << inst.imm;
        break;
      case Format::Ctrap:
        sep(); os << regName(inst.ra);
        break;
      case Format::DiseBranch:
        sep(); os << regName(inst.ra);
        sep(); os << (inst.imm >= 0 ? "+" : "") << inst.imm;
        break;
      case Format::DiseCall:
        if (inst.op == Opcode::D_CCALL) {
            sep(); os << regName(inst.ra);
        }
        sep(); os << regName(inst.rb);
        break;
      case Format::DiseMove:
        if (inst.op == Opcode::D_MFR) {
            sep(); os << regName(inst.ra);
            sep(); os << regName(inst.rb);
        } else {
            sep(); os << regName(inst.rb);
            sep(); os << regName(inst.ra);
        }
        break;
      case Format::Nullary:
        break;
    }
    return os.str();
}

} // namespace

std::string
disasm(const Inst &inst)
{
    return render(inst, false, 0);
}

std::string
disasm(const Inst &inst, Addr pc)
{
    return render(inst, true, pc);
}

} // namespace dise
